#!/usr/bin/env python
"""CI gate: the content-addressed caches must actually pay for
themselves, without changing a single report byte.

Runs one benchmark table (all workloads x the four configs) twice
against a fresh cache root:

    cold  — empty cache: every cell compiles and executes, then stores;
    warm  — same table again: every cell replays from the result tier.

Asserts (exit 1 on violation):

* the rendered table is byte-identical between the runs;
* the warm run's combined hit rate is >= --min-hit-rate (default 0.90);
* the warm wall time is >= --min-speedup x faster (default 2.0) —
  sound to demand because a warm cell skips compile *and* VM execution.

Appends one record to --out (default BENCH_exec.json) so the speedup
has a history, like BENCH_obs.json for telemetry overhead.

    python benchmarks/check_exec_cache.py
    python benchmarks/check_exec_cache.py --workers 4 --model ss10
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bench.harness import Harness  # noqa: E402
from repro.bench.tables import render_slowdown_table  # noqa: E402
from repro.exec import cache as exec_cache  # noqa: E402

TABLE_KEYS = {"ss2": "t1_ss2", "ss10": "t2_ss10", "p90": "t3_p90"}


def run_table(model: str, workloads: tuple[str, ...] | None,
              workers: int, cache_root: str) -> tuple[str, float, dict]:
    """One full table against the caches at ``cache_root``; returns
    (rendered table, wall seconds, per-tier stats dicts)."""
    tiers = exec_cache.open_caches(cache_root)
    with exec_cache.cache_context(*tiers):
        t0 = time.perf_counter()
        rows = Harness(model).run_all(workloads, workers=workers)
        table = render_slowdown_table(
            rows, TABLE_KEYS[model], f"Slowdowns ({model})")
        wall = time.perf_counter() - t0
    stats = {c.kind: c.stats.to_dict() for c in tiers}
    return table, wall, stats


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--model", default="ss10", choices=tuple(TABLE_KEYS))
    ap.add_argument("--workloads", default="",
                    help="comma-separated subset (default: all)")
    ap.add_argument("--workers", type=int, default=1)
    ap.add_argument("--min-speedup", type=float, default=2.0)
    ap.add_argument("--min-hit-rate", type=float, default=0.90)
    ap.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_exec.json"))
    ap.add_argument("--label", default="")
    args = ap.parse_args(argv)
    workloads = (tuple(args.workloads.split(","))
                 if args.workloads else None)

    with tempfile.TemporaryDirectory(prefix="exec-cache-") as cache_root:
        cold_table, cold_s, cold_stats = run_table(
            args.model, workloads, args.workers, cache_root)
        warm_table, warm_s, warm_stats = run_table(
            args.model, workloads, args.workers, cache_root)

    lookups = sum(s["hits"] + s["misses"] for s in warm_stats.values())
    hits = sum(s["hits"] for s in warm_stats.values())
    hit_rate = hits / lookups if lookups else 0.0
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    identical = warm_table == cold_table

    record = {
        "schema": "repro-exec-bench/1",
        "label": args.label,
        "model": args.model,
        "workers": args.workers,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "warm_hit_rate": round(hit_rate, 4),
        "tables_identical": identical,
        "table_sha256": hashlib.sha256(cold_table.encode()).hexdigest(),
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
    }
    history = []
    if os.path.exists(args.out):
        with open(args.out) as fh:
            history = json.load(fh)
    history.append(record)
    with open(args.out, "w") as fh:
        json.dump(history, fh, indent=2)
        fh.write("\n")

    failures = []
    if not identical:
        failures.append("warm table differs from cold table")
    if hit_rate < args.min_hit_rate:
        failures.append(f"warm hit rate {hit_rate:.1%} < "
                        f"{args.min_hit_rate:.0%}")
    if speedup < args.min_speedup:
        failures.append(f"warm speedup {speedup:.2f}x < "
                        f"{args.min_speedup:.1f}x")
    verdict = "FAIL" if failures else "OK"
    print(f"{verdict}: cold {cold_s:.2f}s -> warm {warm_s:.2f}s "
          f"({speedup:.1f}x), warm hit rate {hit_rate:.1%}, tables "
          f"{'identical' if identical else 'DIFFER'} "
          f"(model {args.model}, workers {args.workers}) -> {args.out}")
    for failure in failures:
        print(f"  - {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
