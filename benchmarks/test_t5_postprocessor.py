"""T5: the peephole postprocessor (SPARC 10).

"On a SPARC 10, the execution time and code size degradations from the
fully optimized normally compiled code were reduced to" 1-4% running
time and 3-7% code size.  The postprocessor must recover most of the
KEEP_LIVE overhead while leaving every answer unchanged.
"""

import pytest

from repro.bench import render_postproc_table
from repro.workloads import WORKLOAD_NAMES


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_t5_postproc_row(benchmark, ss10, workload):
    cells = benchmark.pedantic(ss10.run_postproc_row, args=(workload,),
                               rounds=1, iterations=1)
    base, safe, pp = cells["O"], cells["O_safe"], cells["O_safe_pp"]
    safe_pct = 100.0 * (safe.cycles - base.cycles) / base.cycles
    pp_pct = 100.0 * (pp.cycles - base.cycles) / base.cycles
    size_pct = 100.0 * (pp.code_size - base.code_size) / base.code_size
    benchmark.extra_info["residual"] = {
        "time_pct": round(pp_pct, 1), "size_pct": round(size_pct, 1),
        "before_pct": round(safe_pct, 1)}
    # Same answers across the board.
    assert base.exit_code == safe.exit_code == pp.exit_code
    # The postprocessor never makes safe code slower...
    assert pp.cycles <= safe.cycles
    # ...and removes a meaningful share of the overhead when there is
    # overhead worth removing (paper: down to 1-4%).
    if safe_pct > 5.0:
        assert pp_pct < safe_pct, "postprocessor removed nothing"
    assert pp_pct <= 20.0, f"residual time overhead {pp_pct:.1f}% too high"
    assert pp.code_size <= safe.code_size


def test_t5_table(benchmark, ss10, capsys):
    cells = benchmark.pedantic(
        lambda: {w: ss10.run_postproc_row(w) for w in WORKLOAD_NAMES},
        rounds=1, iterations=1)
    table = render_postproc_table(cells)
    benchmark.extra_info["table"] = table
    with capsys.disabled():
        print()
        print(table)
