"""T4: SPARC object-code expansion.

The paper measured static code size of the processed modules only
("These numbers include only the code that was actually processed, not
the standard libraries") — our library routines are VM builtins, so they
are excluded by construction.  Columns: -O2 safe / -g / -g checked as
percent growth over the optimized baseline.

Paper: safe 6-19%, -g 68-73%, checked 130-160% — and "the last column
... grossly understates dynamic instruction counts, since additional
procedure calls are introduced."
"""

import pytest

from repro.bench import render_size_table
from repro.workloads import WORKLOAD_NAMES


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_t4_size_row(benchmark, ss10, workload):
    row = benchmark.pedantic(ss10.run_workload, args=(workload,),
                             rounds=1, iterations=1)
    safe = row.slowdown_pct("O_safe", metric="code_size")
    g = row.slowdown_pct("g", metric="code_size")
    checked = row.slowdown_pct("g_checked", metric="code_size")
    benchmark.extra_info["size_growth"] = {
        "O_safe": round(safe, 1), "g": round(g, 1), "g_checked": round(checked, 1)}
    # Shape: safe adds a little; -g adds a lot; checked adds the most.
    assert 0.0 <= safe <= 45.0, f"safe size growth {safe:.1f}%"
    assert g > safe, f"-g ({g:.1f}%) should outgrow safe ({safe:.1f}%)"
    assert checked > g, f"checked ({checked:.1f}%) should outgrow -g ({g:.1f}%)"
    # Checked's *dynamic* cost must grossly exceed its static growth
    # (the calls loop at runtime), the paper's closing observation.
    dyn = row.slowdown_pct("g_checked", metric="cycles")
    assert dyn > checked


def test_t4_table(benchmark, ss10, capsys):
    rows = benchmark.pedantic(ss10.run_all, rounds=1, iterations=1)
    table = render_size_table(rows)
    benchmark.extra_info["table"] = table
    with capsys.disabled():
        print()
        print(table)
