"""Shared fixtures for the table-reproduction benchmarks.

One session-scoped :class:`repro.bench.Harness` per machine model, so a
given (workload, config) cell is compiled and executed exactly once per
model no matter how many tests inspect it.
"""

from __future__ import annotations

import pytest

from repro.bench import Harness

_HARNESSES: dict[str, Harness] = {}


def harness_for(model_key: str) -> Harness:
    if model_key not in _HARNESSES:
        _HARNESSES[model_key] = Harness(model_key)
    return _HARNESSES[model_key]


@pytest.fixture(scope="session")
def ss2() -> Harness:
    return harness_for("ss2")


@pytest.fixture(scope="session")
def ss10() -> Harness:
    return harness_for("ss10")


@pytest.fixture(scope="session")
def p90() -> Harness:
    return harness_for("p90")
