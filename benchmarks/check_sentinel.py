#!/usr/bin/env python
"""CI gate: the perf-regression sentinel plus the disabled-path cost.

Two checks, one command:

1. **Sentinel** — validate every ``BENCH_*.json`` trajectory, measure
   the workload fresh (min-of-N wall, repeated for determinism), and
   compare against the recorded points: simulated counts must be
   bit-identical, wall time must sit inside the median + MAD noise
   bound (advisory unless ``--strict-wall``).  The verdict is a
   ``repro-obs-sentinel/1`` envelope; ``--out`` persists it and
   ``--metrics-out`` / ``--prom`` persist the metrics snapshot captured
   during the fresh runs.

2. **Overhead** — delegate to :mod:`check_obs_overhead`: with all
   telemetry disabled (the default runtime state), HEAD must run the
   workload within ``--threshold`` percent of ``--baseline``.  A
   baseline that cannot be resolved (shallow clone) is a SKIP, not a
   failure.

    python benchmarks/check_sentinel.py --baseline origin/main
    python benchmarks/check_sentinel.py --baseline HEAD~1 --repeats 3 \
        --out sentinel-verdict.json --metrics-out obs-metrics.jsonl

Exit codes: 0 both gates green, 1 sentinel verdict not ok, and the
overhead gate's own code (1 above threshold, 2 count drift) otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "benchmarks"))

import check_obs_overhead  # noqa: E402  (needs benchmarks on sys.path)

from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.sentinel import (  # noqa: E402
    default_trajectories, render_verdict, run_sentinel,
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="HEAD~1",
                    help="git rev for the overhead gate (default: HEAD~1)")
    ap.add_argument("--workload", default="cfrac")
    ap.add_argument("--model", default="ss10")
    ap.add_argument("--configs", default="O,O_safe,g,g_checked")
    ap.add_argument("--repeats", type=int, default=3,
                    help="fresh measurements per config (min-of-N wall)")
    ap.add_argument("--wall-slack", type=float, default=0.5)
    ap.add_argument("--mad-k", type=float, default=3.0)
    ap.add_argument("--strict-wall", action="store_true",
                    help="a wall-bound breach fails the gate (default: "
                         "advisory — counts are the hard gate)")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="max disabled-path overhead in percent (default: 2)")
    ap.add_argument("--append", action="store_true",
                    help="append the accepted point to the trajectory")
    ap.add_argument("--out", default=None, metavar="FILE",
                    help="write the repro-obs-sentinel/1 verdict JSON")
    ap.add_argument("--metrics-out", default=None, metavar="FILE",
                    help="write the fresh-run metrics snapshot (JSONL)")
    ap.add_argument("--prom", default=None, metavar="FILE",
                    help="write the snapshot in Prometheus text format")
    ap.add_argument("--skip-overhead", action="store_true",
                    help="run only the sentinel half")
    args = ap.parse_args(argv)

    trajectories = default_trajectories(REPO)
    if not trajectories:
        print("FAIL: no BENCH_*.json trajectories found — the sentinel "
              "has nothing to gate against")
        return 1

    configs = tuple(c.strip() for c in args.configs.split(",") if c.strip())
    verdict = run_sentinel(
        workload=args.workload, model=args.model, configs=configs,
        repeats=args.repeats, trajectories=trajectories,
        wall_slack=args.wall_slack, mad_k=args.mad_k,
        strict_wall=args.strict_wall, append=args.append,
        label="ci-sentinel")
    print(render_verdict(verdict))

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(verdict, fh, indent=2, sort_keys=True)
        print(f"verdict written to {args.out}")
    if args.metrics_out or args.prom:
        registry = MetricsRegistry()
        registry.merge(verdict.get("metrics", {}).get("metrics", {}))
        if args.metrics_out:
            registry.write_jsonl(args.metrics_out, append=False)
            print(f"metrics snapshot written to {args.metrics_out}")
        if args.prom:
            registry.write_prometheus(args.prom)
            print(f"prometheus export written to {args.prom}")

    if not verdict["ok"]:
        return 1
    if args.skip_overhead:
        return 0
    print(f"--- disabled-path overhead vs {args.baseline} ---", flush=True)
    return check_obs_overhead.main([
        "--baseline", args.baseline, "--workload", args.workload,
        "--threshold", str(args.threshold),
        "--repeats", str(max(args.repeats, 5)),
    ])


if __name__ == "__main__":
    sys.exit(main())
