"""Ablation of the paper's "Optimizations" section, (1)-(4).

The paper argues each annotation-level optimization matters:

1. copy suppression avoids "many unnecessary KEEP_LIVE calls";
2. specialized ++/-- expansion avoids "forcing e to memory";
3. the slowly-varying-base heuristic frees the optimizer to use
   "indexed loads based on s and t";
4. restricting collections to call sites "could often be reduced
   dramatically" the number of KEEP_LIVE invocations.

Each ablation row measures KEEP_LIVE counts and run cycles with one
optimization disabled against the full annotator.
"""

import pytest

from repro.core.annotate import AnnotateOptions
from repro.machine.driver import CompileConfig, compile_source
from repro.machine.models import SPARC_10
from repro.machine.vm import VM
from repro.workloads import WORKLOADS, load_workload

VARIANTS = {
    "full": AnnotateOptions(),
    "no_copy_suppression": AnnotateOptions(suppress_copies=False),
    "no_incdec_expansion": AnnotateOptions(expand_incdec=False),
    "no_base_heuristic": AnnotateOptions(base_heuristic=False),
    "call_safe_points": AnnotateOptions(call_safe_points=True),
}


def _measure(workload: str, variant: str):
    options = AnnotateOptions(**vars(VARIANTS[variant]))
    config = CompileConfig(optimize=True, safe=True, model=SPARC_10,
                           annotate_options=options)
    compiled = compile_source(load_workload(workload), config)
    vm = VM(compiled.asm, SPARC_10)
    vm.stdin = WORKLOADS[workload].stdin
    run = vm.run()
    return compiled, run


@pytest.mark.parametrize("workload", ("cordtest", "miniawk"))
def test_ablation_keep_live_counts(benchmark, workload):
    results = benchmark.pedantic(
        lambda: {v: _measure(workload, v) for v in VARIANTS},
        rounds=1, iterations=1)
    full_compiled, full_run = results["full"]
    counts = {v: c.keep_lives for v, (c, _) in results.items()}
    cycles = {v: r.cycles for v, (_, r) in results.items()}
    benchmark.extra_info["keep_lives"] = counts
    # Every variant still computes the same answer.
    codes = {r.exit_code for _, r in results.values()}
    assert len(codes) == 1, codes
    # (1) suppressing copies removes KEEP_LIVEs.
    assert counts["no_copy_suppression"] > counts["full"]
    # (4) call-site-only collection needs at most as many KEEP_LIVEs.
    assert counts["call_safe_points"] <= counts["full"]


def test_ablation_base_heuristic_cost(benchmark):
    """(3): without the slowly-varying-base heuristic the safe code
    must not get faster (the heuristic can only relax constraints)."""
    with_h, without_h = benchmark.pedantic(
        lambda: (_measure("cordtest", "full")[1],
                 _measure("cordtest", "no_base_heuristic")[1]),
        rounds=1, iterations=1)
    benchmark.extra_info["cycles"] = {
        "with_heuristic": with_h.cycles, "without": without_h.cycles}
    assert with_h.exit_code == without_h.exit_code
    assert with_h.cycles <= without_h.cycles * 1.02


def test_ablation_incdec_expansion_cost(benchmark):
    """(2): the specialized ++/-- expansion should not lose to the
    general temporary-through-memory expansion."""
    fast, slow = benchmark.pedantic(
        lambda: (_measure("cordtest", "full")[1],
                 _measure("cordtest", "no_incdec_expansion")[1]),
        rounds=1, iterations=1)
    benchmark.extra_info["cycles"] = {"specialized": fast.cycles,
                                      "general": slow.cycles}
    assert fast.exit_code == slow.exit_code
    assert fast.cycles <= slow.cycles * 1.02


def test_ablation_naive_keep_live(benchmark):
    """The paper's strawman KEEP_LIVE ("a call to an external function
    ... is, of course, terribly inefficient") versus the inline-asm
    barrier.  The call version must cost several times more."""
    from repro.machine.driver import CompileConfig, compile_source
    from repro.machine.models import SPARC_10
    from repro.machine.vm import VM
    from repro.workloads import load_workload

    def measure():
        source = load_workload("cordtest")
        results = {}
        base = compile_source(source, CompileConfig.named("O"))
        results["O"] = VM(base.asm, SPARC_10).run()
        for name, naive in (("barrier", False), ("naive_call", True)):
            config = CompileConfig.named("O_safe")
            config.naive_keep_live = naive
            compiled = compile_source(source, config)
            results[name] = VM(compiled.asm, SPARC_10).run()
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    base = results["O"].cycles
    barrier_pct = 100.0 * (results["barrier"].cycles - base) / base
    naive_pct = 100.0 * (results["naive_call"].cycles - base) / base
    benchmark.extra_info["keep_live_impl"] = {
        "barrier_pct": round(barrier_pct, 1), "naive_pct": round(naive_pct, 1)}
    assert results["barrier"].exit_code == results["naive_call"].exit_code \
        == results["O"].exit_code
    assert naive_pct > 3 * barrier_pct, (
        f"naive call ({naive_pct:.0f}%) should dwarf the barrier "
        f"({barrier_pct:.0f}%)")
