"""T2: SPARC 10 slowdowns — reproduces the paper's slowdown table on the ss10 model.

Columns: -O safe / -g / -g checked, as percent slowdown vs the
optimized unsafe baseline.  Absolute numbers come from our cost model;
the shape assertions live in _shape.py.
"""

import pytest

from repro.bench import render_slowdown_table
from repro.workloads import WORKLOAD_NAMES

from _shape import run_and_check


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_t2_ss10_row(benchmark, ss10, workload):
    row = run_and_check(ss10, workload, benchmark)
    benchmark.extra_info["slowdowns"] = {
        c: round(row.slowdown_pct(c), 1) for c in ("O_safe", "g", "g_checked")
    }


def test_t2_ss10_table(benchmark, ss10, capsys):
    rows = benchmark.pedantic(ss10.run_all, rounds=1, iterations=1)
    table = render_slowdown_table(rows, "t2_ss10", "T2: SPARC 10 slowdowns")
    benchmark.extra_info["table"] = table
    with capsys.disabled():
        print()
        print(table)
