#!/usr/bin/env python
"""CI gate: the serve daemon must be a byte-transparent, resilient
front on the toolchain.

Replays the deterministic load tape (fuzz-corpus sources + bench/fuzz
jobs, seed 0, 8 concurrent clients) twice per worker count:

    check — every served envelope byte-identical to a serial
            Toolchain run of the same tape;
    chaos — the tape again under the default 10-fault plan
            (worker crashes, corrupt cache reads, slow worker/compile,
            lossy pipes); faulted bytes must equal fault-free bytes,
            exactly like ``repro chaos``.

Asserts (exit 1 on violation):

* byte-identity holds at every requested worker count;
* the faulted replay is identical and actually recovered from faults;
* the SLO report carries p50/p99 for every serve.* histogram;
* if --slo-p99-ms is given, overall request p99 stays under it.

Appends one record per worker count to --out (default BENCH_serve.json)
so served-latency percentiles have a history.

    python benchmarks/check_serve.py
    python benchmarks/check_serve.py --workers 1,4 --jobs 24 --clients 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.serve.daemon import ServeConfig  # noqa: E402
from repro.serve.load import (  # noqa: E402
    CHAOS_FAULTS, LoadSpec, render_report, run_load,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", default="1,4",
                        help="comma-separated worker counts to gate")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=24)
    parser.add_argument("--model", default="ss10")
    parser.add_argument("--slo-p99-ms", type=float, default=None)
    parser.add_argument("--label", default="")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="append one record per worker count here")
    args = parser.parse_args(argv)

    spec = LoadSpec(seed=args.seed, clients=args.clients, jobs=args.jobs)
    ok = True
    records = []
    for workers in (int(w) for w in args.workers.split(",")):
        config = ServeConfig(model=args.model, workers=workers)
        report = run_load(config, spec, check=True, faults=CHAOS_FAULTS,
                          slo_p99_ms=args.slo_p99_ms)
        print(f"--- workers={workers} ---")
        print(render_report(report))
        overall = report["latency"]["request_ns"].get("overall", {})
        if not overall:
            print(f"! workers={workers}: no request_ns percentiles",
                  file=sys.stderr)
            ok = False
        if not report["ok"]:
            ok = False
        records.append({
            "label": args.label, "time": time.time(),
            "workers": workers, "seed": args.seed,
            "jobs": args.jobs, "clients": args.clients,
            "ok": report["ok"],
            "byte_identity": report["byte_identity"]["ok"],
            "chaos_identical": report["chaos"]["identical"],
            "resil": report["chaos"]["resil"],
            "request_p50_ns": overall.get("p50"),
            "request_p99_ns": overall.get("p99"),
        })

    if args.out:
        history = []
        if os.path.exists(args.out):
            with open(args.out) as fh:
                history = json.load(fh)
        history.extend(records)
        with open(args.out, "w") as fh:
            json.dump(history, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"! appended {len(records)} record(s) to {args.out}",
              file=sys.stderr)

    print("serve gate: " + ("OK" if ok else "FAILED"), file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
