#!/usr/bin/env python
"""CI gate: disabled telemetry must cost <2% wall-clock on cfrac.

Measures the end-to-end compile+run wall time of one workload at HEAD
(telemetry present but disabled — the default runtime state) against
the same measurement from a baseline git revision, each as the minimum
of N interleaved repeats in separate subprocesses:

    python benchmarks/check_obs_overhead.py --baseline origin/main
    python benchmarks/check_obs_overhead.py --baseline <sha> --repeats 7

The baseline tree is materialized with ``git worktree add`` and the
child process runs with PYTHONPATH pointing at its ``src``; if the
baseline has no telemetry layer at all, the comparison is exactly
"instrumented vs. un-instrumented".  Interleaving the repeats and
taking minima makes the gate robust to CI-runner noise; the simulated
*cycle* counts are additionally asserted bit-identical, which catches
accidental semantic drift regardless of timing.

Exit codes: 0 ok (or SKIP when the baseline is unresolvable),
1 overhead above threshold, 2 cycle-count mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Runs in a child interpreter with PYTHONPATH set by the parent; prints
# one JSON line {"wall_s": ..., "cycles": ...}.
CHILD = r"""
import json, sys, time
from repro.machine.driver import CompileConfig, compile_source
from repro.machine.models import MODELS
from repro.machine.vm import VM
from repro.workloads import WORKLOADS, load_workload

workload, config_name = sys.argv[1], sys.argv[2]
source = load_workload(workload)
stdin = WORKLOADS[workload].stdin
config = CompileConfig.named(config_name, MODELS["ss10"])
t0 = time.perf_counter()
compiled = compile_source(source, config)
vm = VM(compiled.asm, config.model)
vm.stdin = stdin
result = vm.run()
wall = time.perf_counter() - t0
print(json.dumps({"wall_s": wall, "cycles": result.cycles,
                  "exit_code": result.exit_code}))
"""


def run_once(src_dir: str, workload: str, config: str) -> dict:
    env = dict(os.environ, PYTHONPATH=src_dir)
    out = subprocess.run(
        [sys.executable, "-c", CHILD, workload, config],
        capture_output=True, text=True, env=env, cwd=REPO, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


def resolve_baseline(ref: str) -> str | None:
    probe = subprocess.run(["git", "rev-parse", "--verify", ref + "^{commit}"],
                           capture_output=True, text=True, cwd=REPO)
    return probe.stdout.strip() if probe.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="HEAD~1",
                    help="git rev to compare against (default: HEAD~1)")
    ap.add_argument("--workload", default="cfrac")
    ap.add_argument("--config", default="O")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="max allowed overhead in percent (default: 2)")
    ap.add_argument("--repeats", type=int, default=5)
    args = ap.parse_args(argv)

    sha = resolve_baseline(args.baseline)
    if sha is None:
        print(f"SKIP: cannot resolve baseline {args.baseline!r} "
              f"(shallow clone?)")
        return 0

    with tempfile.TemporaryDirectory(prefix="obs-baseline-") as tmp:
        base_tree = os.path.join(tmp, "tree")
        subprocess.run(["git", "worktree", "add", "--detach", base_tree, sha],
                       check=True, cwd=REPO, capture_output=True)
        try:
            head_src = os.path.join(REPO, "src")
            base_src = os.path.join(base_tree, "src")
            head_runs, base_runs = [], []
            for i in range(args.repeats):
                # Interleave to decorrelate from slow CI-runner drift.
                head_runs.append(run_once(head_src, args.workload,
                                          args.config))
                base_runs.append(run_once(base_src, args.workload,
                                          args.config))
                print(f"  repeat {i + 1}/{args.repeats}: "
                      f"head {head_runs[-1]['wall_s']:.3f}s  "
                      f"base {base_runs[-1]['wall_s']:.3f}s", flush=True)
        finally:
            subprocess.run(["git", "worktree", "remove", "--force", base_tree],
                           cwd=REPO, capture_output=True)

    head_cycles = {r["cycles"] for r in head_runs}
    base_cycles = {r["cycles"] for r in base_runs}
    if len(head_cycles) != 1 or len(base_cycles) != 1:
        print(f"FAIL: nondeterministic cycle counts "
              f"(head {head_cycles}, base {base_cycles})")
        return 2
    if head_cycles != base_cycles:
        print(f"FAIL: simulated cycles drifted: head {head_cycles.pop()} "
              f"vs baseline {base_cycles.pop()} — telemetry must be "
              f"observation-only")
        return 2

    head = min(r["wall_s"] for r in head_runs)
    base = min(r["wall_s"] for r in base_runs)
    overhead = 100.0 * (head - base) / base
    verdict = "OK" if overhead <= args.threshold else "FAIL"
    print(f"{verdict}: {args.workload}/{args.config} tracing-disabled "
          f"overhead {overhead:+.2f}% (head {head:.3f}s vs base {base:.3f}s, "
          f"min of {args.repeats}; threshold {args.threshold:.1f}%)")
    return 0 if overhead <= args.threshold else 1


if __name__ == "__main__":
    sys.exit(main())
