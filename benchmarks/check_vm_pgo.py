#!/usr/bin/env python
"""CI gate: profile-guided superinstructions + allocation sinking must
actually buy raw VM speed — without moving a single observable count.

Three checks on the paper's hottest workload (cfrac at ``O``/ss10):

* **identity** — a PGO-fused run must be bit-identical to the plain run
  in every observable (exit code, instructions, cycles, output,
  collections, pointer checks); a PGO+sink run must keep exit code and
  output and must not *increase* collections.  Violations exit 2: a
  count mismatch is a correctness bug, not a perf regression.
* **allocation sinking payoff** — the ``scratch`` workload (short-lived
  constant-size buffers) must show strictly fewer collections with the
  pass applied.  Exit 1 on violation.
* **wall clock** — interleaved min-of-N (default 3) wall times of the
  interpreter loop, plain vs PGO+sink, each sample a fresh subprocess
  child printing a JSON line; the speedup must reach --min-speedup
  (default 1.5).  Interleaving cancels slow drift (thermal, noisy
  neighbors); min-of-N cancels one-off stalls.  Exit 1 on violation,
  or pass --skip-wall (e.g. on known-noisy runners) to print SKIP and
  gate only on identity + sinking.

Appends one record to --out (default BENCH_vm2.json) so the speedup has
a history, like BENCH_exec.json / BENCH_obs.json.

    python benchmarks/check_vm_pgo.py
    python benchmarks/check_vm_pgo.py --repeats 5 --min-speedup 1.5
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.machine.driver import CompileConfig, compile_source  # noqa: E402
from repro.machine.models import MODELS  # noqa: E402
from repro.machine.superinst import (  # noqa: E402
    load_pgo, plan_from_profile, plan_from_pgo, save_pgo,
)
from repro.machine.vm import VM  # noqa: E402
from repro.obs.vmprof import VMProfile  # noqa: E402
from repro.postproc.sink import sink_program  # noqa: E402
from repro.workloads import load_workload  # noqa: E402

WORKLOAD = "cfrac"
SINK_WORKLOAD = "scratch"
CONFIG = "O"
MODEL = "ss10"


def run_key(result) -> tuple:
    return (result.exit_code, result.instructions, result.cycles,
            result.output, result.collections, result.checks)


def compile_workload(name: str):
    model = MODELS[MODEL]
    return compile_source(load_workload(name),
                          CompileConfig.named(CONFIG, model)), model


def make_profile(tmp_pgo: str) -> None:
    """Profile one cfrac run and persist the pgo envelope the children
    replay — the same artifact `repro.obs record --pgo-out` emits."""
    compiled, model = compile_workload(WORKLOAD)
    profile = VMProfile(tag=f"{WORKLOAD}@{CONFIG}/{MODEL}")
    VM(compiled.asm, model, profile=profile).run()
    save_pgo(profile.to_pgo(), tmp_pgo)


def child_main(mode: str, pgo_path: str) -> int:
    """One timing sample: compile outside the clock, time only the
    interpreter loop, print a JSON line."""
    compiled, model = compile_workload(WORKLOAD)
    plan = None
    if mode == "pgo":
        plan = plan_from_pgo(load_pgo(pgo_path))
        sink_program(compiled.asm)
    vm = VM(compiled.asm, model, superinst=plan)
    t0 = time.perf_counter()
    result = vm.run()
    wall = time.perf_counter() - t0
    print(json.dumps({"mode": mode, "wall_s": wall,
                      "exit_code": result.exit_code}))
    return 0


def sample(mode: str, pgo_path: str) -> float:
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", mode,
         "--pgo-file", pgo_path],
        capture_output=True, text=True, check=True)
    return float(json.loads(proc.stdout.splitlines()[-1])["wall_s"])


def check_identity() -> tuple[list[str], dict]:
    """The bit-identity and collections checks; returns (mismatch
    descriptions, measured counters for the record)."""
    mismatches: list[str] = []
    compiled, model = compile_workload(WORKLOAD)
    profile = VMProfile()
    base = VM(compiled.asm, model, profile=profile).run()
    plan = plan_from_profile(profile)

    fused = VM(compiled.asm, model, superinst=plan).run()
    if run_key(fused) != run_key(base):
        mismatches.append(
            f"{WORKLOAD}: PGO-fused observables differ from plain: "
            f"{run_key(fused)} != {run_key(base)}")

    sunk_prog, _ = compile_workload(WORKLOAD)
    sink_stats = sink_program(sunk_prog.asm)
    both = VM(sunk_prog.asm, model, superinst=plan).run()
    if (both.exit_code, both.output) != (base.exit_code, base.output):
        mismatches.append(
            f"{WORKLOAD}: PGO+sink changed the answer: "
            f"exit {both.exit_code} vs {base.exit_code}")
    if both.collections > base.collections:
        mismatches.append(
            f"{WORKLOAD}: sinking increased collections "
            f"({base.collections} -> {both.collections})")

    counters = {
        "plan_blocks": len(plan.blocks),
        "plan_digest": plan.digest(),
        "base_cycles": base.cycles,
        "base_collections": base.collections,
        "pgo_sink_cycles": both.cycles,
        "pgo_sink_collections": both.collections,
        "cfrac_sink_stats": {"sunk": sink_stats.sunk,
                             "eliminated": sink_stats.eliminated,
                             "bytes_sunk": sink_stats.bytes_sunk},
    }
    return mismatches, counters


def check_sink_payoff() -> tuple[list[str], dict]:
    """scratch@O: the sinking pass must strictly reduce collections."""
    failures: list[str] = []
    base_prog, model = compile_workload(SINK_WORKLOAD)
    base = VM(base_prog.asm, model).run()
    sunk_prog, _ = compile_workload(SINK_WORKLOAD)
    stats = sink_program(sunk_prog.asm)
    sunk = VM(sunk_prog.asm, model).run()
    if (sunk.exit_code, sunk.output) != (base.exit_code, base.output):
        failures.append(f"{SINK_WORKLOAD}: sinking changed the answer")
    if stats.sunk < 1:
        failures.append(f"{SINK_WORKLOAD}: nothing sank ({stats})")
    if sunk.collections >= base.collections:
        failures.append(
            f"{SINK_WORKLOAD}: collections not reduced "
            f"({base.collections} -> {sunk.collections})")
    counters = {
        "scratch_sunk": stats.sunk,
        "scratch_collections_base": base.collections,
        "scratch_collections_sunk": sunk.collections,
        "scratch_cycles_base": base.cycles,
        "scratch_cycles_sunk": sunk.cycles,
    }
    return failures, counters


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=3,
                    help="interleaved samples per side (min is taken)")
    ap.add_argument("--min-speedup", type=float, default=1.5)
    ap.add_argument("--skip-wall", action="store_true",
                    help="skip the wall-clock gate (identity + sinking "
                         "still checked)")
    ap.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_vm2.json"))
    ap.add_argument("--label", default="")
    ap.add_argument("--child", default=None, choices=("plain", "pgo"),
                    help=argparse.SUPPRESS)
    ap.add_argument("--pgo-file", default=None, help=argparse.SUPPRESS)
    args = ap.parse_args(argv)
    if args.child:
        return child_main(args.child, args.pgo_file)

    mismatches, counters = check_identity()
    sink_failures, sink_counters = check_sink_payoff()
    counters.update(sink_counters)

    plain_times: list[float] = []
    pgo_times: list[float] = []
    speedup = None
    if not args.skip_wall:
        pgo_path = os.path.join(os.path.dirname(args.out),
                                ".vm-pgo-gate.json")
        make_profile(pgo_path)
        try:
            for _ in range(args.repeats):
                plain_times.append(sample("plain", pgo_path))
                pgo_times.append(sample("pgo", pgo_path))
        finally:
            try:
                os.unlink(pgo_path)
            except OSError:
                pass
        speedup = min(plain_times) / min(pgo_times)

    record = {
        "schema": "repro-vm2-bench/1",
        "label": args.label,
        "workload": WORKLOAD,
        "config": CONFIG,
        "model": MODEL,
        "repeats": args.repeats,
        "plain_wall_s": [round(t, 4) for t in plain_times],
        "pgo_sink_wall_s": [round(t, 4) for t in pgo_times],
        "speedup": round(speedup, 3) if speedup is not None else None,
        "identity_ok": not mismatches,
        **counters,
    }
    history = []
    if os.path.exists(args.out):
        with open(args.out) as fh:
            history = json.load(fh)
    history.append(record)
    with open(args.out, "w") as fh:
        json.dump(history, fh, indent=2)
        fh.write("\n")

    for m in mismatches:
        print(f"MISMATCH: {m}")
    if mismatches:
        return 2
    failures = list(sink_failures)
    if speedup is not None and speedup < args.min_speedup:
        failures.append(f"speedup {speedup:.2f}x < "
                        f"{args.min_speedup:.1f}x "
                        f"(plain min {min(plain_times):.3f}s, pgo+sink "
                        f"min {min(pgo_times):.3f}s)")
    verdict = "FAIL" if failures else ("SKIP(wall)" if speedup is None
                                       else "OK")
    wall_note = (f"{min(plain_times):.3f}s -> {min(pgo_times):.3f}s "
                 f"({speedup:.2f}x)" if speedup is not None
                 else "wall gate skipped")
    print(f"{verdict}: {WORKLOAD}@{CONFIG}/{MODEL} {wall_note}; "
          f"counts {'identical' if not mismatches else 'DIFFER'}; "
          f"{SINK_WORKLOAD} collections "
          f"{counters['scratch_collections_base']} -> "
          f"{counters['scratch_collections_sunk']} -> {args.out}")
    for failure in failures:
        print(f"  - {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
