#!/usr/bin/env python
"""CI gate: the fault-injection seams must cost <2% on uninjected runs.

The resilience layer (PR 5) threads hook calls through the engine's
worker loop, the cache read/write paths, and the compile driver.  With
no fault plan installed every hook is a single ``is None`` check; this
gate proves that claim end to end by timing a sharded engine run —
compile + execute per task, the seams' home turf — at HEAD against a
baseline git revision:

    python benchmarks/check_resil_overhead.py --baseline origin/main
    python benchmarks/check_resil_overhead.py --baseline <sha> --repeats 7

Methodology matches ``check_obs_overhead.py``: the baseline tree is
materialized with ``git worktree add``, repeats are interleaved to
decorrelate from CI-runner drift, and the minimum wall time of each
side is compared.  The summed simulated cycle counts are additionally
asserted bit-identical across every run of both trees — recovery
machinery must be invisible when nothing fails.

Exit codes: 0 ok (or SKIP when the baseline is unresolvable),
1 overhead above threshold, 2 cycle-count mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Runs in a child interpreter with PYTHONPATH set by the parent; prints
# one JSON line {"wall_s": ..., "cycles": ...}.  Deliberately restricted
# to API that exists on both sides of this PR (no policy= kwarg).
CHILD = r"""
import json, sys, time
from repro.exec.engine import run_sharded
from repro.machine.driver import CompileConfig, compile_source
from repro.machine.models import MODELS
from repro.machine.vm import VM

TEMPLATE = '''
int main(void) {
    char *s;
    int i, j, t;
    t = %d;
    for (j = 0; j < 40; j++) {
        s = (char *) GC_malloc(64);
        for (i = 0; i < 64; i++) s[i] = (i + j) & 0x7F;
        for (i = 0; i < 64; i++) t += s[i];
    }
    return t & 0xFF;
}
'''

def cell(n):
    config = CompileConfig.named("O_safe", MODELS["ss10"])
    compiled = compile_source(TEMPLATE % n, config)
    vm = VM(compiled.asm, config.model)
    result = vm.run()
    return (result.cycles, result.exit_code)

tasks, workers = int(sys.argv[1]), int(sys.argv[2])
payloads = list(range(tasks))
t0 = time.perf_counter()
merged = run_sharded(payloads, cell, workers=workers)
wall = time.perf_counter() - t0
assert merged.ok, merged.shard_failures or merged.task_failures
print(json.dumps({"wall_s": wall,
                  "cycles": sum(c for c, _ in merged.results)}))
"""


def run_once(src_dir: str, tasks: int, workers: int) -> dict:
    env = dict(os.environ, PYTHONPATH=src_dir)
    out = subprocess.run(
        [sys.executable, "-c", CHILD, str(tasks), str(workers)],
        capture_output=True, text=True, env=env, cwd=REPO, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


def resolve_baseline(ref: str) -> str | None:
    probe = subprocess.run(["git", "rev-parse", "--verify", ref + "^{commit}"],
                           capture_output=True, text=True, cwd=REPO)
    return probe.stdout.strip() if probe.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="HEAD~1",
                    help="git rev to compare against (default: HEAD~1)")
    ap.add_argument("--tasks", type=int, default=8)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="max allowed overhead in percent (default: 2)")
    ap.add_argument("--repeats", type=int, default=5)
    args = ap.parse_args(argv)

    sha = resolve_baseline(args.baseline)
    if sha is None:
        print(f"SKIP: cannot resolve baseline {args.baseline!r} "
              f"(shallow clone?)")
        return 0

    with tempfile.TemporaryDirectory(prefix="resil-baseline-") as tmp:
        base_tree = os.path.join(tmp, "tree")
        subprocess.run(["git", "worktree", "add", "--detach", base_tree, sha],
                       check=True, cwd=REPO, capture_output=True)
        try:
            head_src = os.path.join(REPO, "src")
            base_src = os.path.join(base_tree, "src")
            head_runs, base_runs = [], []
            for i in range(args.repeats):
                # Interleave to decorrelate from slow CI-runner drift.
                head_runs.append(run_once(head_src, args.tasks, args.workers))
                base_runs.append(run_once(base_src, args.tasks, args.workers))
                print(f"  repeat {i + 1}/{args.repeats}: "
                      f"head {head_runs[-1]['wall_s']:.3f}s  "
                      f"base {base_runs[-1]['wall_s']:.3f}s", flush=True)
        finally:
            subprocess.run(["git", "worktree", "remove", "--force", base_tree],
                           cwd=REPO, capture_output=True)

    head_cycles = {r["cycles"] for r in head_runs}
    base_cycles = {r["cycles"] for r in base_runs}
    if len(head_cycles) != 1 or len(base_cycles) != 1:
        print(f"FAIL: nondeterministic cycle counts "
              f"(head {head_cycles}, base {base_cycles})")
        return 2
    if head_cycles != base_cycles:
        print(f"FAIL: simulated cycles drifted: head {head_cycles.pop()} "
              f"vs baseline {base_cycles.pop()} — the resilience layer "
              f"must be invisible when nothing fails")
        return 2

    head = min(r["wall_s"] for r in head_runs)
    base = min(r["wall_s"] for r in base_runs)
    overhead = 100.0 * (head - base) / base
    verdict = "OK" if overhead <= args.threshold else "FAIL"
    print(f"{verdict}: sharded engine ({args.tasks} tasks, "
          f"{args.workers} workers) uninjected overhead {overhead:+.2f}% "
          f"(head {head:.3f}s vs base {base:.3f}s, min of {args.repeats}; "
          f"threshold {args.threshold:.1f}%)")
    return 0 if overhead <= args.threshold else 1


if __name__ == "__main__":
    sys.exit(main())
