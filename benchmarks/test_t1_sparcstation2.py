"""T1: SPARCstation 2 slowdowns — reproduces the paper's slowdown table on the ss2 model.

Columns: -O safe / -g / -g checked, as percent slowdown vs the
optimized unsafe baseline.  Absolute numbers come from our cost model;
the shape assertions live in _shape.py.
"""

import pytest

from repro.bench import render_slowdown_table
from repro.workloads import WORKLOAD_NAMES

from _shape import run_and_check


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_t1_ss2_row(benchmark, ss2, workload):
    row = run_and_check(ss2, workload, benchmark)
    benchmark.extra_info["slowdowns"] = {
        c: round(row.slowdown_pct(c), 1) for c in ("O_safe", "g", "g_checked")
    }


def test_t1_ss2_table(benchmark, ss2, capsys):
    rows = benchmark.pedantic(ss2.run_all, rounds=1, iterations=1)
    table = render_slowdown_table(rows, "t1_ss2", "T1: SPARCstation 2 slowdowns")
    benchmark.extra_info["table"] = table
    with capsys.disabled():
        print()
        print(table)
