"""Host-side interpreter throughput micro-benchmark.

The tables in T1-T5 measure *simulated* cycles, which are independent of
how fast the interpreter itself runs.  This file watches the other axis:
wall-clock instructions/second of the threaded-code engine, which bounds
how large a workload the benchmark suite can afford.

Two properties are asserted:

* **Determinism** — two fresh VMs on the same program produce identical
  instruction/cycle/collection counts and output.  The counts *are* the
  experiment data, so any nondeterminism here invalidates the tables.
* **A conservative throughput floor** — the threaded-code engine runs at
  roughly 2M simulated instructions per host second on current CPython;
  the floor is set ~10x below that so the test only fires on a genuine
  dispatch regression (e.g. reintroducing a decode loop), never on a
  slow CI machine.
"""

from __future__ import annotations

import time

from repro.machine import CompileConfig, VM, compile_source
from repro.machine.models import MODELS
from repro.workloads import WORKLOADS, load_workload

_FLOOR_INSTS_PER_SEC = 200_000


def _fresh_run(workload: str, config_name: str = "O"):
    spec = WORKLOADS[workload]
    config = CompileConfig.named(config_name, MODELS["ss10"])
    compiled = compile_source(load_workload(workload), config)
    vm = VM(compiled.asm, MODELS["ss10"])
    vm.stdin = spec.stdin
    start = time.perf_counter()
    result = vm.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_counts_are_deterministic():
    first, _ = _fresh_run("cfrac")
    second, _ = _fresh_run("cfrac")
    assert first.instructions == second.instructions
    assert first.cycles == second.cycles
    assert first.collections == second.collections
    assert first.output == second.output
    assert first.exit_code == second.exit_code


def test_dispatch_throughput_floor():
    result, elapsed = _fresh_run("cfrac")
    rate = result.instructions / elapsed
    assert rate > _FLOOR_INSTS_PER_SEC, (
        f"interpreter ran at {rate:,.0f} simulated insts/s "
        f"(floor {_FLOOR_INSTS_PER_SEC:,}); dispatch has regressed badly")


def test_debug_build_throughput_floor():
    # -g keeps every local in memory, so this additionally exercises the
    # load/store fast paths rather than pure register dispatch.
    result, elapsed = _fresh_run("cordtest", "g")
    rate = result.instructions / elapsed
    assert rate > _FLOOR_INSTS_PER_SEC, (
        f"debug-build interpreter ran at {rate:,.0f} simulated insts/s "
        f"(floor {_FLOOR_INSTS_PER_SEC:,})")
