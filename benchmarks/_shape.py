"""Shared shape assertions for the slowdown tables.

We are not expected to match the paper's absolute numbers (our substrate
is a simulated machine, not the authors' hardware), but the *shape* must
hold: the ordering of the columns, the rough magnitudes, and who wins.
"""

from __future__ import annotations

from repro.bench import Harness, WorkloadRow

# Shape bounds, generous enough for any cost model yet tight enough to
# catch a broken configuration: paper ranges were safe 0-17%,
# -g 17-56%, checked 205-529% (with the register-starved Pentium at the
# low end of every column, as the paper's Analysis section predicts).
SAFE_MAX = 40.0
G_MIN, G_MAX = 10.0, 130.0
CHECKED_MIN = 60.0


def run_and_check(harness: Harness, workload: str,
                  benchmark=None) -> WorkloadRow:
    if benchmark is not None:
        row = benchmark.pedantic(harness.run_workload, args=(workload,),
                                 rounds=1, iterations=1)
    else:
        row = harness.run_workload(workload)
    assert_shape(row)
    return row


def assert_shape(row: WorkloadRow) -> None:
    safe = row.slowdown_pct("O_safe")
    g = row.slowdown_pct("g")
    checked = row.slowdown_pct("g_checked")
    # Column ordering: safe is the cheapest, checking the dearest.
    assert -2.0 <= safe <= SAFE_MAX, f"{row.workload}: safe slowdown {safe:.1f}%"
    assert safe < g, f"{row.workload}: -O safe ({safe:.1f}%) should beat -g ({g:.1f}%)"
    assert G_MIN <= g <= G_MAX, f"{row.workload}: -g slowdown {g:.1f}%"
    assert checked > g, (f"{row.workload}: checked ({checked:.1f}%) should "
                         f"cost more than -g ({g:.1f}%)")
    assert checked >= CHECKED_MIN, f"{row.workload}: checked slowdown {checked:.1f}%"
