"""Height-2 page-table tests."""

from hypothesis import given, strategies as st

from repro.gc import PAGE_SIZE, PageTable


class TestPageTable:
    def test_register_and_lookup(self):
        table = PageTable()
        table.register(0x10_0000, "desc")
        assert table.lookup(0x10_0000) == "desc"

    def test_lookup_any_offset_in_page(self):
        table = PageTable()
        table.register(0x10_0000, "desc")
        assert table.lookup(0x10_0000 + PAGE_SIZE - 1) == "desc"

    def test_adjacent_page_is_separate(self):
        table = PageTable()
        table.register(0x10_0000, "a")
        assert table.lookup(0x10_0000 + PAGE_SIZE) is None

    def test_unregister(self):
        table = PageTable()
        table.register(0x10_0000, "a")
        table.unregister(0x10_0000)
        assert table.lookup(0x10_0000) is None
        assert table.pages == 0

    def test_contains(self):
        table = PageTable()
        table.register(0x20_0000, "x")
        assert 0x20_0000 + 5 in table
        assert 0x30_0000 not in table

    def test_out_of_range_addresses(self):
        table = PageTable()
        assert table.lookup(-1) is None
        assert table.lookup(1 << 33) is None

    def test_page_count(self):
        table = PageTable()
        for i in range(10):
            table.register(0x10_0000 + i * PAGE_SIZE, i)
        assert table.pages == 10

    def test_reregister_does_not_double_count(self):
        table = PageTable()
        table.register(0x10_0000, "a")
        table.register(0x10_0000, "b")
        assert table.pages == 1
        assert table.lookup(0x10_0000) == "b"

    @given(st.sets(st.integers(0, (1 << 32) // PAGE_SIZE - 1),
                   min_size=1, max_size=50))
    def test_registered_pages_always_found(self, page_indices):
        table = PageTable()
        for idx in page_indices:
            table.register(idx * PAGE_SIZE, idx)
        for idx in page_indices:
            assert table.lookup(idx * PAGE_SIZE + PAGE_SIZE // 2) == idx
        assert table.pages == len(page_indices)

    @given(st.sets(st.integers(0, (1 << 20) - 1), min_size=2, max_size=30))
    def test_unregistered_pages_not_found(self, page_indices):
        page_indices = sorted(page_indices)
        registered, skipped = page_indices[::2], page_indices[1::2]
        table = PageTable()
        for idx in registered:
            table.register(idx * PAGE_SIZE, idx)
        for idx in skipped:
            if idx not in registered:
                assert table.lookup(idx * PAGE_SIZE) is None
