"""Collector policy tests: allocation-trigger thresholds, statistics
accounting, and realloc chains under pressure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gc import Collector


def collector(threshold=8 * 1024):
    gc = Collector(initial_threshold=threshold)
    roots: list[int] = []
    gc.add_root_provider(lambda: roots)
    return gc, roots


class TestTriggerPolicy:
    def test_threshold_grows_with_live_set(self):
        gc, roots = collector()
        for _ in range(200):
            roots.append(gc.malloc(128))  # all live
        before = gc._threshold
        gc.collect()
        assert gc._threshold >= 2 * gc.heap.bytes_in_use
        assert gc._threshold >= before

    def test_no_thrashing_when_everything_is_live(self):
        gc, roots = collector(threshold=4 * 1024)
        for _ in range(400):
            roots.append(gc.malloc(64))
        # The growing threshold must keep the collection count sane.
        assert gc.stats.collections <= 12

    def test_allocation_counter_resets_after_collect(self):
        gc, _ = collector()
        gc.malloc(100)
        gc.collect()
        assert gc._allocated_since_gc == 0

    def test_stats_accounting(self):
        gc, roots = collector()
        gc.collections_enabled = False
        keep = gc.malloc(64)
        roots.append(keep)
        for _ in range(10):
            gc.malloc(64)
        reclaimed = gc.collect()
        assert reclaimed == 10
        assert gc.stats.objects_allocated == 11
        assert gc.stats.objects_reclaimed == 10
        assert gc.stats.bytes_reclaimed > 0
        assert gc.stats.marked_last_gc == 1


class TestReallocChains:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(1, 400), min_size=1, max_size=15))
    def test_growth_chain_preserves_prefix(self, sizes):
        gc, roots = collector()
        gc.collections_enabled = False
        data = bytes(range(1, 33))
        addr = gc.malloc(32)
        gc.memory.write_bytes(addr, data)
        roots.append(addr)
        for size in sizes:
            new_addr = gc.realloc(addr, max(size, 32))
            roots[0] = new_addr
            addr = new_addr
        assert gc.memory.read_bytes(addr, 32) == data

    def test_realloc_under_collection_pressure(self):
        gc, roots = collector(threshold=2 * 1024)
        addr = gc.malloc(16)
        gc.memory.write_bytes(addr, b"PRECIOUS")
        roots.append(addr)
        for i in range(60):
            new_addr = gc.realloc(roots[0], 16 + i * 8)
            roots[0] = new_addr
        assert gc.memory.read_bytes(roots[0], 8) == b"PRECIOUS"
        assert gc.stats.collections >= 1


class TestDisabledCollector:
    def test_explicit_collect_still_works_when_auto_disabled(self):
        gc, _ = collector()
        gc.collections_enabled = False
        gc.malloc(64)
        assert gc.collect() == 1
        assert gc.stats.collections == 1
