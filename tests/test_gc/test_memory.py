"""Simulated memory tests."""

import pytest
from hypothesis import given, strategies as st

from repro.gc import Memory, MemoryFault, PAGE_SIZE


@pytest.fixture
def mem():
    m = Memory()
    m.map_range(0x1000, 4 * PAGE_SIZE)
    return m


class TestBasicAccess:
    def test_store_load_word(self, mem):
        mem.store_word(0x1000, 0xDEADBEEF)
        assert mem.load_word(0x1000) == 0xDEADBEEF

    def test_little_endian_byte_order(self, mem):
        mem.store_word(0x1000, 0x04030201)
        assert [mem.load(0x1000 + i, 1) for i in range(4)] == [1, 2, 3, 4]

    def test_byte_and_halfword(self, mem):
        mem.store(0x1000, 0xAB, 1)
        mem.store(0x1002, 0x1234, 2)
        assert mem.load(0x1000, 1) == 0xAB
        assert mem.load(0x1002, 2) == 0x1234

    def test_signed_load(self, mem):
        mem.store(0x1000, 0xFF, 1)
        assert mem.load(0x1000, 1, signed=True) == -1
        assert mem.load(0x1000, 1, signed=False) == 255

    def test_store_truncates(self, mem):
        mem.store(0x1000, 0x1FF, 1)
        assert mem.load(0x1000, 1) == 0xFF

    def test_unaligned_word(self, mem):
        mem.store_word(0x1001, 0x11223344)
        assert mem.load_word(0x1001) == 0x11223344

    def test_cross_page_access(self, mem):
        addr = 0x1000 + PAGE_SIZE - 2
        mem.store_word(addr, 0xCAFEBABE)
        assert mem.load_word(addr) == 0xCAFEBABE

    def test_zero_initialized(self, mem):
        assert mem.load_word(0x1100) == 0


class TestFaults:
    def test_unmapped_load_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.load_word(0x900000)

    def test_unmapped_store_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.store_word(0x900000, 1)

    def test_out_of_range_address_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.load_word(2**32)

    def test_is_mapped(self, mem):
        assert mem.is_mapped(0x1000)
        assert not mem.is_mapped(0x900000)

    def test_unmap(self, mem):
        mem.unmap_page(0x1000)
        assert not mem.is_mapped(0x1000)


class TestBulkHelpers:
    def test_write_read_bytes(self, mem):
        mem.write_bytes(0x1000, b"hello")
        assert mem.read_bytes(0x1000, 5) == b"hello"

    def test_cstring(self, mem):
        mem.write_bytes(0x1000, b"text\0junk")
        assert mem.read_cstring(0x1000) == "text"

    def test_fill(self, mem):
        mem.fill(0x1000, 16, 0xDD)
        assert mem.read_bytes(0x1000, 16) == b"\xdd" * 16


class TestProperties:
    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 100))
    def test_word_roundtrip(self, value, offset):
        mem = Memory()
        addr = 0x2000 + offset
        mem.map_range(addr, 8)
        mem.store_word(addr, value)
        assert mem.load_word(addr) == value

    @given(st.binary(min_size=1, max_size=64), st.integers(0, PAGE_SIZE - 1))
    def test_bytes_roundtrip_across_pages(self, data, offset):
        mem = Memory()
        addr = 0x3000 + offset
        mem.map_range(addr, len(data) + 1)
        mem.write_bytes(addr, data)
        assert mem.read_bytes(addr, len(data)) == data

    @given(st.integers(0, 0xFFFF), st.sampled_from([1, 2, 4]))
    def test_width_masking(self, value, width):
        mem = Memory()
        mem.map_range(0x4000, 8)
        mem.store(0x4000, value, width)
        assert mem.load(0x4000, width) == value % (1 << (8 * width))
