"""Conservative collector tests: reachability, sweeping, checking
primitives, and the Extensions-mode variant."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront.ctypes import WORD_SIZE
from repro.gc import Collector, GCCheckError, round_size


def collector_with_roots():
    gc = Collector()
    roots: list[int] = []
    gc.add_root_provider(lambda: roots)
    return gc, roots


def make_chain(gc, length, link_offset=4):
    head = gc.malloc(8)
    node = head
    for _ in range(length - 1):
        nxt = gc.malloc(8)
        gc.memory.store_word(node + link_offset, nxt)
        node = nxt
    return head


class TestReachability:
    def test_rooted_chain_survives(self):
        gc, roots = collector_with_roots()
        roots.append(make_chain(gc, 20))
        gc.collect()
        assert gc.heap.objects_in_use == 20

    def test_unrooted_chain_collected(self):
        gc, roots = collector_with_roots()
        make_chain(gc, 20)
        assert gc.collect() == 20
        assert gc.heap.objects_in_use == 0

    def test_partial_chain_survives_from_middle(self):
        gc, roots = collector_with_roots()
        head = make_chain(gc, 10)
        # Walk to the 5th node and root it; the first 4 must die.
        node = head
        for _ in range(4):
            node = gc.memory.load_word(node + 4)
        roots.append(node)
        reclaimed = gc.collect()
        assert reclaimed == 4
        assert gc.heap.objects_in_use == 6

    def test_cycle_is_collected_when_unrooted(self):
        gc, roots = collector_with_roots()
        a = gc.malloc(8)
        b = gc.malloc(8)
        gc.memory.store_word(a + 4, b)
        gc.memory.store_word(b + 4, a)
        roots.append(a)
        gc.collect()
        assert gc.heap.objects_in_use == 2
        roots.clear()
        assert gc.collect() == 2

    def test_interior_pointer_roots_object(self):
        gc, roots = collector_with_roots()
        obj = gc.malloc(200)
        roots.append(obj + 117)
        gc.collect()
        assert gc.heap.objects_in_use == 1

    def test_heap_resident_interior_pointer_traced(self):
        gc, roots = collector_with_roots()
        box = gc.malloc(8)
        target = gc.malloc(64)
        gc.memory.store_word(box, target + 32)  # interior, via the heap
        roots.append(box)
        gc.collect()
        assert gc.heap.objects_in_use == 2

    def test_static_range_roots(self):
        gc = Collector()
        obj = gc.malloc(16)
        static_addr = 0x2_0000
        gc.memory.map_range(static_addr, 64)
        gc.memory.store_word(static_addr + 8, obj)
        gc.add_static_root(static_addr, 64, "globals")
        gc.collect()
        assert gc.heap.objects_in_use == 1

    def test_integer_that_looks_like_pointer_retains(self):
        # Conservatism: any bit pattern that might be an address pins
        # the object ("this may result in some extra memory retention").
        gc, roots = collector_with_roots()
        obj = gc.malloc(16)
        roots.append(obj)  # an int equal to the address
        gc.collect()
        assert gc.heap.objects_in_use == 1

    def test_misaligned_stack_scan_finds_aligned_words_only(self):
        gc = Collector()
        obj = gc.malloc(16)
        base = 0x3_0000
        gc.memory.map_range(base, 64)
        gc.memory.store_word(base + 12, obj)
        gc.add_static_root(base + 1, 63, "odd")  # unaligned range start
        gc.collect()
        assert gc.heap.objects_in_use == 1


class TestAllocationTrigger:
    def test_collection_triggered_by_allocation_pressure(self):
        gc, roots = collector_with_roots()
        for _ in range(5000):
            gc.malloc(64)  # all garbage
        assert gc.stats.collections >= 1
        assert gc.heap.objects_in_use < 5000

    def test_disabled_collections_never_fire(self):
        gc, _ = collector_with_roots()
        gc.collections_enabled = False
        for _ in range(3000):
            gc.malloc(64)
        assert gc.stats.collections == 0


class TestRealloc:
    def test_grow_preserves_contents(self):
        gc, roots = collector_with_roots()
        a = gc.malloc(16)
        gc.memory.write_bytes(a, b"0123456789abcdef")
        b = gc.realloc(a, 64)
        assert gc.memory.read_bytes(b, 16) == b"0123456789abcdef"

    def test_shrink_truncates(self):
        gc, _ = collector_with_roots()
        a = gc.malloc(64)
        gc.memory.write_bytes(a, b"x" * 32)
        b = gc.realloc(a, 8)
        assert gc.memory.read_bytes(b, 8) == b"x" * 8

    def test_realloc_null_allocates(self):
        gc, _ = collector_with_roots()
        assert gc.base(gc.realloc(0, 24)) is not None

    def test_realloc_non_heap_raises(self):
        gc, _ = collector_with_roots()
        with pytest.raises(GCCheckError):
            gc.realloc(0x99, 8)


class TestCheckingPrimitives:
    def test_same_obj_within(self):
        gc, _ = collector_with_roots()
        p = gc.malloc(32)
        assert gc.same_obj(p + 16, p) == p + 16

    def test_same_obj_one_past_end(self):
        gc, _ = collector_with_roots()
        p = gc.malloc(32)
        assert gc.same_obj(p + 32, p) == p + 32

    def test_same_obj_before_beginning_raises(self):
        gc, _ = collector_with_roots()
        gc.malloc(32)  # neighbor occupying the previous slot
        p = gc.malloc(32)
        with pytest.raises(GCCheckError):
            gc.same_obj(p - 1, p)

    def test_same_obj_across_objects_raises(self):
        gc, _ = collector_with_roots()
        p = gc.malloc(32)
        q = gc.malloc(32)
        with pytest.raises(GCCheckError):
            gc.same_obj(q, p)

    def test_same_obj_skips_non_heap_base(self):
        # "we do not check references to statically allocated and stack
        # memory"
        gc, _ = collector_with_roots()
        assert gc.same_obj(0x123, 0x77) == 0x123

    def test_pre_incr_moves_and_checks(self):
        gc, _ = collector_with_roots()
        slot = 0x2_0000
        gc.memory.map_range(slot, 8)
        p = gc.malloc(32)
        gc.memory.store_word(slot, p)
        assert gc.pre_incr(slot, 4) == p + 4
        assert gc.memory.load_word(slot) == p + 4

    def test_post_incr_returns_old(self):
        gc, _ = collector_with_roots()
        slot = 0x2_0000
        gc.memory.map_range(slot, 8)
        p = gc.malloc(32)
        gc.memory.store_word(slot, p)
        assert gc.post_incr(slot, 8) == p
        assert gc.memory.load_word(slot) == p + 8

    def test_incr_out_of_object_raises(self):
        gc, _ = collector_with_roots()
        slot = 0x2_0000
        gc.memory.map_range(slot, 8)
        p = gc.malloc(16)
        gc.memory.store_word(slot, p)
        with pytest.raises(GCCheckError):
            gc.pre_incr(slot, 4096)

    def test_checks_counted(self):
        gc, _ = collector_with_roots()
        p = gc.malloc(16)
        gc.same_obj(p + 1, p)
        gc.same_obj(p + 2, p)
        assert gc.stats.checks_performed == 2


class TestExtensionsMode:
    """Paper's Extensions section: interior pointers valid only when
    they originate from the stack or registers."""

    def test_heap_resident_interior_pointer_ignored(self):
        gc = Collector(interior_from_roots_only=True)
        roots: list[int] = []
        gc.add_root_provider(lambda: roots)
        box = gc.malloc(8)
        target = gc.malloc(64)
        gc.memory.store_word(box, target + 32)  # interior AND heap-resident
        roots.append(box)
        gc.collect()
        assert gc.base(target) is None  # target was collected

    def test_heap_resident_base_pointer_still_traced(self):
        gc = Collector(interior_from_roots_only=True)
        roots: list[int] = []
        gc.add_root_provider(lambda: roots)
        box = gc.malloc(8)
        target = gc.malloc(64)
        gc.memory.store_word(box, target)  # base pointer in the heap
        roots.append(box)
        gc.collect()
        assert gc.base(target) == target

    def test_root_interior_pointer_still_honored(self):
        gc = Collector(interior_from_roots_only=True)
        roots: list[int] = []
        gc.add_root_provider(lambda: roots)
        target = gc.malloc(64)
        roots.append(target + 48)
        gc.collect()
        assert gc.base(target) == target


class TestGCProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 200), st.booleans()),
                    min_size=1, max_size=40))
    def test_rooted_never_collected_unrooted_always(self, plan):
        """For any interleaving of allocations (rooted or not),
        collection reclaims exactly the unrooted ones."""
        gc, roots = collector_with_roots()
        gc.collections_enabled = False
        rooted = []
        for size, keep in plan:
            addr = gc.malloc(size)
            if keep:
                roots.append(addr)
                rooted.append(addr)
        gc.collect()
        for addr in rooted:
            assert gc.base(addr) == addr
        assert gc.heap.objects_in_use == len(rooted)
