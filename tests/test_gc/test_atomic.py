"""GC_malloc_atomic tests: pointer-free objects are never scanned."""

import pytest

from repro.gc import Collector
from repro.machine import CompileConfig, VM, compile_source


def collector_with_roots():
    gc = Collector()
    roots: list[int] = []
    gc.add_root_provider(lambda: roots)
    return gc, roots


class TestAtomicObjects:
    def test_atomic_allocation_basic(self):
        gc, roots = collector_with_roots()
        addr = gc.malloc_atomic(100)
        roots.append(addr)
        gc.collect()
        assert gc.base(addr) == addr

    def test_atomic_contents_not_traced(self):
        """A pointer stored inside an atomic object does NOT keep its
        target alive — the defining property of GC_malloc_atomic."""
        gc, roots = collector_with_roots()
        box = gc.malloc_atomic(16)
        target = gc.malloc(16)
        gc.memory.store_word(box, target)
        roots.append(box)
        gc.collect()
        assert gc.base(box) == box          # the box survives
        assert gc.base(target) is None      # the target does not

    def test_normal_contents_are_traced(self):
        gc, roots = collector_with_roots()
        box = gc.malloc(16)
        target = gc.malloc(16)
        gc.memory.store_word(box, target)
        roots.append(box)
        gc.collect()
        assert gc.base(target) == target

    def test_atomic_and_normal_pages_are_separate(self):
        gc, _ = collector_with_roots()
        a = gc.malloc(24)
        b = gc.malloc_atomic(24)
        da = gc.heap.descriptor_for(a)
        db = gc.heap.descriptor_for(b)
        assert da is not db
        assert not da.atomic and db.atomic

    def test_atomic_freed_slots_stay_atomic(self):
        gc, roots = collector_with_roots()
        addr = gc.malloc_atomic(24)
        gc.collect()  # unrooted: reclaimed
        again = gc.malloc_atomic(24)
        assert gc.heap.descriptor_for(again).atomic

    def test_large_atomic_object(self):
        gc, roots = collector_with_roots()
        big = gc.malloc_atomic(20_000)
        victim = gc.malloc(8)
        gc.memory.store_word(big + 96, victim)
        roots.append(big)
        gc.collect()
        assert gc.base(big) == big
        assert gc.base(victim) is None

    def test_false_retention_scenario(self):
        """The motivation: string data that happens to look like heap
        addresses retains garbage when scanned, but not when atomic."""
        gc, roots = collector_with_roots()
        victim = gc.malloc(8)
        victim_addr = victim
        # A conservative scan of this buffer would see victim's address.
        scanned = gc.malloc(16)
        atomic = gc.malloc_atomic(16)
        gc.memory.store_word(scanned + 4, victim_addr)
        gc.memory.store_word(atomic + 4, victim_addr)
        roots.append(scanned)
        roots.append(atomic)
        gc.collect()
        assert gc.base(victim) == victim  # retained via the scanned buffer
        roots.remove(scanned)
        gc.collect()
        assert gc.base(victim) is None  # atomic copy does not retain


class TestAtomicFromC:
    def test_builtin_available(self):
        src = """
        int main(void) {
            char *s = (char *)GC_malloc_atomic(32);
            int i;
            for (i = 0; i < 31; i++) s[i] = 'x';
            s[31] = 0;
            return strlen(s);
        }
        """
        compiled = compile_source(src, CompileConfig())
        assert VM(compiled.asm).run().exit_code == 31

    def test_atomic_string_does_not_retain_garbage(self):
        src = """
        char *stash;
        int main(void) {
            char *dead;
            int i;
            dead = (char *)GC_malloc(8);
            /* store dead's address INSIDE an atomic buffer */
            stash = (char *)GC_malloc_atomic(16);
            *((char **)stash) = dead;
            dead = 0;
            for (i = 0; i < 3000; i++) GC_malloc(64);  /* force collections */
            return GC_base(*((char **)stash)) == 0;    /* reclaimed? */
        }
        """
        compiled = compile_source(src, CompileConfig.named("g"))
        result = VM(compiled.asm).run()
        assert result.exit_code == 1
