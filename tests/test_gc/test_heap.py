"""Heap allocator tests: size classes, rounding, GC_base, large objects."""

import pytest
from hypothesis import given, strategies as st

from repro.gc import GRANULE, Heap, Memory, PAGE_SIZE, round_size
from repro.gc.heap import MAX_SMALL


@pytest.fixture
def heap():
    return Heap(Memory())


class TestRounding:
    def test_one_extra_byte_rule(self):
        # 8 usable bytes + the mandatory extra byte -> next granule.
        assert round_size(8) == 16
        assert round_size(7) == 8

    def test_minimum_size(self):
        assert round_size(0) == GRANULE
        assert round_size(1) == GRANULE

    @given(st.integers(1, 10000))
    def test_rounded_size_properties(self, request):
        size = round_size(request)
        assert size > request  # strictly: the extra byte
        assert size % GRANULE == 0
        assert size - request <= GRANULE + 1


class TestSmallObjects:
    def test_allocations_are_distinct(self, heap):
        addrs = [heap.allocate(24) for _ in range(50)]
        assert len(set(addrs)) == 50

    def test_allocations_do_not_overlap(self, heap):
        addrs = sorted(heap.allocate(20) for _ in range(100))
        size = round_size(20)
        for a, b in zip(addrs, addrs[1:]):
            assert b - a >= size or b - a == 0

    def test_same_size_class_shares_pages(self, heap):
        a = heap.allocate(24)
        b = heap.allocate(24)
        assert a >> 12 == b >> 12  # same page

    def test_different_size_classes_use_different_pages(self, heap):
        a = heap.allocate(8)
        b = heap.allocate(100)
        assert a >> 12 != b >> 12

    def test_zeroed_on_allocation(self, heap):
        addr = heap.allocate(32)
        assert heap.memory.read_bytes(addr, 32) == b"\0" * 32

    def test_accounting(self, heap):
        heap.allocate(24)
        heap.allocate(24)
        assert heap.objects_in_use == 2
        assert heap.bytes_in_use == 2 * round_size(24)


class TestBaseOf:
    def test_interior_pointer_maps_to_base(self, heap):
        addr = heap.allocate(100)
        for off in (0, 1, 50, 99, round_size(100) - 1):
            assert heap.base_of(addr + off) == addr

    def test_non_heap_address_is_none(self, heap):
        assert heap.base_of(0x50) is None
        assert heap.base_of(heap.base - 4) is None

    def test_unallocated_slot_is_none(self, heap):
        addr = heap.allocate(24)
        size = round_size(24)
        assert heap.base_of(addr + size) is None  # next, never-allocated slot

    def test_freed_object_is_none(self, heap):
        addr = heap.allocate(24)
        desc = heap.descriptor_for(addr)
        heap.free_object(desc, desc.object_index(addr))
        assert heap.base_of(addr) is None

    def test_size_of(self, heap):
        addr = heap.allocate(100)
        assert heap.size_of(addr) == round_size(100)
        assert heap.size_of(addr + 4) is None  # not a base


class TestFreeAndReuse:
    def test_freed_slot_is_reused(self, heap):
        addr = heap.allocate(24)
        desc = heap.descriptor_for(addr)
        heap.free_object(desc, desc.object_index(addr))
        again = heap.allocate(24)
        assert again == addr

    def test_poisoning(self, heap):
        heap.poison_byte = 0xDD
        addr = heap.allocate(24)
        heap.memory.write_bytes(addr, b"live data!")
        desc = heap.descriptor_for(addr)
        heap.free_object(desc, desc.object_index(addr))
        assert heap.memory.read_bytes(addr, 10) == b"\xdd" * 10

    def test_double_free_asserts(self, heap):
        addr = heap.allocate(24)
        desc = heap.descriptor_for(addr)
        heap.free_object(desc, desc.object_index(addr))
        with pytest.raises(AssertionError):
            heap.free_object(desc, desc.object_index(addr))


class TestLargeObjects:
    def test_large_allocation(self, heap):
        addr = heap.allocate(3 * PAGE_SIZE)
        desc = heap.descriptor_for(addr)
        assert desc.large and desc.n_pages >= 3

    def test_interior_pointer_into_middle_page(self, heap):
        addr = heap.allocate(3 * PAGE_SIZE)
        assert heap.base_of(addr + PAGE_SIZE + 123) == addr

    def test_threshold(self, heap):
        small = heap.allocate(MAX_SMALL - 1)
        assert not heap.descriptor_for(small).large

    def test_exhaustion_raises(self):
        heap = Heap(Memory(), limit_bytes=4 * PAGE_SIZE)
        with pytest.raises(MemoryError):
            for _ in range(10):
                heap.allocate(2 * PAGE_SIZE)


class TestLiveObjectsIteration:
    def test_live_objects_enumerates_all(self, heap):
        addrs = {heap.allocate(40) for _ in range(10)}
        addrs.add(heap.allocate(2 * PAGE_SIZE))
        seen = {base for _, _, base in heap.live_objects()}
        assert seen == addrs


class TestProperties:
    @given(st.lists(st.integers(1, 600), min_size=1, max_size=60))
    def test_interior_resolution_invariant(self, sizes):
        heap = Heap(Memory())
        allocs = [(heap.allocate(s), s) for s in sizes]
        for addr, size in allocs:
            assert heap.base_of(addr) == addr
            assert heap.base_of(addr + size - 1) == addr
            assert heap.base_of(addr + size) == addr  # extra byte
