"""BASE / BASEADDR tests — one per rule in the paper's table."""

import pytest

from repro.cfront import parse, typecheck
from repro.cfront import cast as A
from repro.core.base import base_of, baseaddr_of, is_generating, is_plain_copy

DECLS = """
struct s { int x; int arr[4]; struct s *next; };
char *p; char *q; int i; int a[8]; char buf[16];
struct s v; struct s *sp; char **pp;
char *get(void);
"""


def expr_of(body):
    source = f"{DECLS}\nvoid probe(void) {{ {body}; }}"
    tu = parse(source)
    typecheck(tu)
    fn = [item for item in tu.items if isinstance(item, A.FuncDef)][-1]
    return fn.body.items[0].expr


def base_name(body):
    base = base_of(expr_of(body))
    return None if base is None else base.name


def baseaddr_name(body):
    # body is the operand; wrap in & to reach it through parsing, then unwrap
    e = expr_of(f"&({body})")
    assert isinstance(e, A.Unary) and e.op == "&"
    base = baseaddr_of(e.operand)
    return None if base is None else base.name


class TestBaseRules:
    def test_base_of_zero_is_nil(self):
        assert base_name("0") is None

    def test_base_of_heap_pointer_variable_is_itself(self):
        assert base_name("p") == "p"

    def test_base_of_array_variable_is_nil(self):
        # An array denotes stack/static storage, never a heap pointer.
        assert base_name("a") is None

    def test_base_of_int_variable_is_nil(self):
        assert base_name("i") is None

    def test_assignment_to_pointer_var(self):
        assert base_name("p = q + 1") == "p"

    def test_assignment_through_deref_uses_rhs(self):
        # BASE(x = e) = BASE(e) when x is not a pointer variable.
        assert base_name("*pp = q") == "q"

    def test_compound_plus_assign(self):
        assert base_name("p += i") == "p"

    def test_compound_minus_assign(self):
        assert base_name("p -= 2") == "p"

    def test_post_increment(self):
        assert base_name("p++") == "p"

    def test_pre_decrement(self):
        assert base_name("--p") == "p"

    def test_pointer_plus_int(self):
        assert base_name("p + i") == "p"

    def test_int_plus_pointer_picks_pointer_side(self):
        assert base_name("i + p") == "p"

    def test_pointer_minus_int(self):
        assert base_name("p - 4") == "p"

    def test_comma_takes_last(self):
        assert base_name("(q, p)") == "p"

    def test_nested_arithmetic(self):
        assert base_name("(p + 1) + i") == "p"

    def test_cast_is_transparent(self):
        assert base_name("(char *)(p + 1)") == "p"

    def test_int_to_pointer_cast_is_nil(self):
        assert base_name("(char *)i") is None

    def test_addr_of_defers_to_baseaddr(self):
        assert base_name("&p[i]") == "p"

    def test_call_is_generating(self):
        assert base_name("get()") is None

    def test_deref_is_generating(self):
        assert base_name("*pp") is None

    def test_conditional_is_generating(self):
        assert base_name("i ? p : q") is None

    def test_string_literal_is_nil(self):
        assert base_name('"text"') is None


class TestBaseAddrRules:
    def test_variable_is_nil(self):
        assert baseaddr_name("i") is None

    def test_index_with_pointer_base(self):
        assert baseaddr_name("p[i]") == "p"

    def test_index_with_nil_base_uses_index(self):
        # BASEADDR(e1[e2]) = BASE(e2) when BASE(e1) is NIL: i[p] spelling.
        assert baseaddr_name("i[p]") == "p"

    def test_index_of_stack_array_is_nil(self):
        assert baseaddr_name("a[i]") is None

    def test_arrow_member(self):
        assert baseaddr_name("sp->x") == "sp"

    def test_dot_member_recurses(self):
        assert baseaddr_name("v.x") is None

    def test_dot_through_deref(self):
        assert baseaddr_name("(*sp).x") == "sp"

    def test_nested_chain(self):
        assert baseaddr_name("sp->next->x") is None  # inner deref generates

    def test_index_of_arrow_array_field(self):
        assert baseaddr_name("sp->arr[i]") is None  # &(sp->arr) decays, load


class TestCopyDetection:
    @pytest.mark.parametrize("body,expected", [
        ("p", True),
        ("*pp", True),
        ("a[0]", True),
        ("sp->next", True),
        ("(char *)q", True),
        ("(q, p)", True),
        ("p + 1", False),
        ("&p[i]", False),
        ("(char *)(p + 1)", False),
        ('"lit"', True),
        ("0", True),
    ])
    def test_is_plain_copy(self, body, expected):
        assert is_plain_copy(expr_of(body)) is expected


class TestGenerating:
    @pytest.mark.parametrize("body,expected", [
        ("get()", True),
        ("*pp", True),
        ("i ? p : q", True),
        ("a[0]", True),
        ("sp->next", True),
        ("p + 1", False),
        ("p", False),
    ])
    def test_is_generating(self, body, expected):
        assert is_generating(expr_of(body)) is expected
