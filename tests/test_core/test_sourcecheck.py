"""Source-safety diagnostics tests (paper's "Source Checking")."""

import pytest

from repro.api import Toolchain


def check_source(source):
    return Toolchain().check(source)


def categories(source):
    return [d.category for d in check_source(source)]


class TestIntToPointer:
    def test_direct_int_cast_warns(self):
        src = "char *f(int cookie) { return (char *)cookie; }"
        assert "int-to-pointer" in categories(src)

    def test_small_constant_is_benign(self):
        # "the common practice of converting very small integers to
        # pointers that are never dereferenced"
        src = "char *f(void) { return (char *)1; }"
        assert categories(src) == []

    def test_null_constant_is_benign(self):
        assert categories("char *f(void) { return (char *)0; }") == []

    def test_pointer_to_pointer_cast_is_fine(self):
        src = "void *f(char *p) { return (void *)p; }"
        assert categories(src) == []

    def test_round_trip_through_int_warns_on_the_way_back(self):
        src = ("char *f(char *p) { int v; v = (int)p; return (char *)v; }")
        assert "int-to-pointer" in categories(src)

    def test_arithmetic_disguise_warns(self):
        src = ("char *f(char *p) { return (char *)((int)p + 4); }")
        assert "int-to-pointer" in categories(src)


class TestStructPointerCasts:
    def test_unrelated_struct_cast_warns(self):
        src = ("struct a { int x; char *s; };\n"
               "struct b { char *s; int x; };\n"
               "struct b *f(struct a *p) { return (struct b *)p; }")
        assert "struct-pointer-cast" in categories(src)

    def test_prefix_compatible_header_idiom_allowed(self):
        src = ("struct hdr { int tag; };\n"
               "struct obj { int tag; int data; };\n"
               "struct hdr *f(struct obj *p) { return (struct hdr *)p; }")
        assert categories(src) == []


class TestHiddenPointerChannels:
    def test_scanf_with_percent_p_warns(self):
        src = 'void f(char **box) { scanf("%p", box); }'
        assert "pointer-input" in categories(src)

    def test_scanf_without_percent_p_is_fine(self):
        src = 'void f(int *n) { scanf("%d", n); }'
        assert categories(src) == []

    def test_memcpy_into_pointer_holding_struct_warns(self):
        src = ("struct s { char *p; };\n"
               "void f(struct s *d, struct s *s2) "
               "{ memcpy(d, s2, sizeof(struct s)); }")
        assert "raw-pointer-copy" in categories(src)

    def test_memcpy_of_plain_bytes_is_fine(self):
        src = "void f(char *d, char *s) { memcpy(d, s, 10); }"
        assert categories(src) == []

    def test_fread_into_pointer_table_warns(self):
        src = "void f(char **table) { fread(table, 4, 8, 0); }"
        assert "raw-pointer-copy" in categories(src)


class TestDiagnosticRendering:
    def test_positions_point_into_source(self):
        src = "char *f(int v) {\n    return (char *)v;\n}"
        diags = check_source(src)
        assert len(diags) == 1
        assert "line 2" in diags[0].render(src)

    def test_multiple_diagnostics_sorted_by_position(self):
        src = ("char *f(int v, char **b) {\n"
               '    scanf("%p", b);\n'
               "    return (char *)v;\n}")
        diags = check_source(src)
        assert len(diags) == 2
        assert diags[0].pos < diags[1].pos


class TestDirectRoundTrip:
    def test_direct_ptr_int_ptr_is_benign(self):
        # "conversion of a pointer to an integer and back, without
        # intervening arithmetic, is benign"
        src = "char *f(char *p) { return (char *)(int)p; }"
        assert categories(src) == []

    def test_round_trip_through_variable_still_warns(self):
        src = "char *f(char *p) { int v = (int)p; return (char *)v; }"
        assert "int-to-pointer" in categories(src)

    def test_round_trip_with_arithmetic_warns(self):
        src = "char *f(char *p) { return (char *)((int)p + 1); }"
        assert "int-to-pointer" in categories(src)
