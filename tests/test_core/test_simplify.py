"""Tests for the *&e / &*e folding cleanup pass."""

import pytest

from repro.cfront import parse, typecheck, unparse
from repro.cfront import cast as A
from repro.core.simplify import simplify_unit


def roundtrip(source):
    tu = parse(source)
    typecheck(tu)
    simplify_unit(tu)
    return unparse(tu)


class TestSimplify:
    def test_deref_of_addrof_folds(self):
        out = roundtrip("int f(int x) { return *&x; }")
        assert "*" not in out.split("{")[1]

    def test_addrof_of_deref_folds(self):
        out = roundtrip("int *f(int *p) { return &*p; }")
        assert "&" not in out.split("{")[1]

    def test_nested_folds(self):
        out = roundtrip("int f(int x) { return *&*&x; }")
        body = out.split("{")[1]
        assert "*" not in body and "&" not in body

    def test_plain_deref_untouched(self):
        out = roundtrip("int f(int *p) { return *p; }")
        assert "*(p)" in out or "*p" in out

    def test_plain_addrof_untouched(self):
        out = roundtrip("int *f(void) { int x; int *p = &x; return p; }")
        assert "&" in out

    def test_fold_inside_statements(self):
        out = roundtrip("int f(int x) { if (*&x) return 1; "
                        "while (*&x) x--; return *&x; }")
        assert "*&" not in out.replace(" ", "")

    def test_fold_inside_initializers(self):
        out = roundtrip("int f(int x) { int y = *&x; return y; }")
        assert "*&" not in out.replace(" ", "")

    def test_keep_live_between_blocks_fold(self):
        """*(KEEP_LIVE(&e, b)) must NOT fold: the barrier sits between."""
        from repro.api import Toolchain
        result = Toolchain().annotate(
            "char f(char *p, int i) { return p[i - 50]; }")
        text = unparse(result.unit)
        assert "KEEP_LIVE" in text
        assert "*(KEEP_LIVE" in text.replace(" ", "").replace("*(KEEP_LIVE", "*(KEEP_LIVE")

    def test_annotator_output_has_no_bare_detours(self):
        """Whatever the annotator normalized but did not wrap must be
        folded back: no *&( left in the rendered result."""
        from repro.api import Toolchain
        src = ("struct s { int a[4]; int k; };\n"
               "int f(struct s *p, int i) { int local[4]; local[i] = 1; "
               "return local[i] + p->k; }")
        result = Toolchain().annotate(src)
        assert "*&" not in result.text.replace(" ", "").replace("*(&", "*&") \
            or "KEEP_LIVE" in result.text
