"""Tests for optimization (3): the slowly-varying base heuristic."""

import pytest

from repro.cfront import parse, typecheck
from repro.cfront import cast as A
from repro.core.annotate import _slowly_varying_bases


def heuristic_map(source, fn_name=None):
    tu = parse(source)
    typecheck(tu)
    fns = [i for i in tu.items if isinstance(i, A.FuncDef)]
    fn = fns[-1] if fn_name is None else next(f for f in fns if f.name == fn_name)
    return _slowly_varying_bases(fn)


class TestSlowlyVaryingBases:
    def test_canonical_loop_maps_p_to_s(self):
        m = heuristic_map(
            "char *copy(char *s, char *t) { char *p, *q; p = s; q = t; "
            "while (*p++ = *q++) ; return s; }")
        assert m.get("p") == "s"
        assert m.get("q") == "t"

    def test_self_updates_allowed(self):
        m = heuristic_map(
            "int last(int *a, int n) { int *p; p = a; p = p + 1; p += 2; "
            "return *p; }")
        assert m.get("p") == "a"

    def test_two_sources_disqualify(self):
        m = heuristic_map(
            "char *f(char *s, char *t, int c) { char *p; p = s; "
            "if (c) p = t; return p; }")
        assert "p" not in m

    def test_generating_source_disqualifies(self):
        m = heuristic_map(
            "char *get(void);\n"
            "char *f(void) { char *p; p = get(); p++; return p; }")
        assert "p" not in m

    def test_unstable_source_disqualifies(self):
        # s itself is reassigned, so it is not a slowly-varying stand-in.
        m = heuristic_map(
            "char *f(char *a, char *b) { char *s; char *p; s = a; p = s; "
            "p++; s = b; return p; }")
        assert "p" not in m

    def test_parameter_source_is_stable(self):
        m = heuristic_map("char f(char *s) { char *p; p = s; p++; return *p; }")
        assert m.get("p") == "s"

    def test_reassigned_parameter_not_stable(self):
        m = heuristic_map(
            "char f(char *s) { char *p; p = s; p++; s = p; return *p; }")
        assert "p" not in m

    def test_derived_with_offset(self):
        # p = s + 4 still points into s's object (ANSI rule).
        m = heuristic_map(
            "char f(char *s) { char *p; p = s + 4; p++; return *p; }")
        assert m.get("p") == "s"

    def test_self_mapping_never_produced(self):
        m = heuristic_map("char f(char *s) { s++; return *s; }")
        assert m.get("s") != "s"

    def test_nonpointer_assignments_ignored(self):
        m = heuristic_map("int f(int a) { int i; i = a; i++; return i; }")
        assert "i" not in m


class TestHeuristicEffectOnCode:
    def test_heuristic_lets_the_fold_happen(self):
        """The paper's motivation: with base s/t instead of p/q, the
        optimizer can keep indexed addressing."""
        from repro.machine import CompileConfig, VM, compile_source
        from repro.core.annotate import AnnotateOptions
        src = ("int sum(int *s, int n) { int *p; int t = 0; int i; p = s; "
               "for (i = 0; i < n; i++) { t += *p; p++; } return t; }\n"
               "int main(void) { int a[20]; int i; "
               "for (i = 0; i < 20; i++) a[i] = i; return sum(a, 20) & 0xFF; }")
        runs = {}
        for heur in (True, False):
            config = CompileConfig(
                optimize=True, safe=True,
                annotate_options=AnnotateOptions(base_heuristic=heur))
            compiled = compile_source(src, config)
            runs[heur] = VM(compiled.asm).run()
        assert runs[True].exit_code == runs[False].exit_code == 190
        # The heuristic must never cost more than noise (its win shows
        # on the larger workloads; see the ablation benchmarks).
        assert runs[True].cycles <= runs[False].cycles * 1.02 + 4
