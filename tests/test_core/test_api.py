"""Public API tests: Toolchain.annotate / Toolchain.check end to end.

(The module-level annotate_source / check_source shims are gone; these
helpers spell the same calls through the facade.)
"""

import pytest

from repro.api import Toolchain
from repro.core import AnnotateOptions
from repro.cfront import parse, typecheck
from repro.cfront.cpp import preprocess


def annotate_source(source, mode="safe", options=None, run_cpp=False):
    return Toolchain(mode=mode, annotate=options,
                     run_cpp=run_cpp).annotate(source)


def check_source(source, run_cpp=False):
    return Toolchain(run_cpp=run_cpp).check(source)


class TestAnnotateSource:
    def test_returns_text_unit_stats(self):
        result = annotate_source("char *f(char *p) { return p + 1; }")
        assert "KEEP_LIVE" in result.text
        assert result.unit is not None
        assert result.keep_live_count == 1

    def test_original_formatting_preserved(self):
        src = ("/* header comment */\n"
               "int  unrelated ( int z )   { return z; }\n"
               "char *f(char *p) { return p + 1; }\n")
        result = annotate_source(src)
        assert "/* header comment */" in result.text
        assert "int  unrelated ( int z )   { return z; }" in result.text

    def test_runs_cpp_when_asked(self):
        src = "#define T char\nT *f(T *p) { return p + 1; }"
        result = annotate_source(src, run_cpp=True)
        assert "KEEP_LIVE" in result.text

    def test_diagnostics_included(self):
        src = "char *f(int v) { return (char *)v; }"
        result = annotate_source(src)
        assert result.diagnostics
        assert "int-to-pointer" in result.diagnostics[0].category

    def test_mode_flag_overrides_options(self):
        result = annotate_source("char *f(char *p) { return p + 1; }",
                                 mode="checked",
                                 options=AnnotateOptions(mode="safe"))
        assert "GC_same_obj" in result.text

    def test_idempotent_safe_annotation(self):
        """Annotating already-annotated code adds nothing: KEEP_LIVE
        results are copies and generating expressions."""
        src = "char *f(char *p) { return p + 1; }"
        once = annotate_source(src)
        expanded = preprocess("#define KEEP_LIVE(e, y) (e)\n" + once.text)
        # After macro expansion the KEEP_LIVE is gone, so re-annotating
        # the *expanded* text finds the same single site again:
        twice = annotate_source(expanded)
        assert twice.keep_live_count == once.keep_live_count

    def test_render_diagnostics(self):
        src = "char *f(int v) { return (char *)v; }"
        result = annotate_source(src)
        rendered = result.render_diagnostics(src)
        assert "line 1" in rendered


class TestCheckSource:
    def test_clean_source_no_diagnostics(self):
        assert check_source("int f(int a) { return a + 1; }") == []

    def test_finds_issues_without_transforming(self):
        diags = check_source('void f(char **b) { scanf("%p", b); }')
        assert len(diags) == 1

    def test_with_cpp(self):
        src = "#define P(v) ((char *)(v))\nchar *f(int v) { return P(v); }"
        diags = check_source(src, run_cpp=True)
        assert diags


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro
        assert callable(repro.Toolchain)
        assert not hasattr(repro, "annotate_source")   # shim removed
        assert not hasattr(repro, "check_source")
        assert repro.__version__

    def test_annotated_source_repr_fields(self):
        result = annotate_source("char *f(char *p) { return p + 1; }")
        assert hasattr(result, "text")
        assert hasattr(result, "stats")
        assert hasattr(result, "diagnostics")
