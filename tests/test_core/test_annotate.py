"""KEEP_LIVE annotation tests: insertion points, the paper's
optimizations (1)-(4), checked mode, and temporary introduction."""

import pytest

from repro.api import Toolchain
from repro.cfront import parse, typecheck
from repro.cfront.cpp import preprocess
from repro.core import AnnotateOptions


def annotate(source, **opts):
    mode = opts.pop("mode", "safe")
    options = AnnotateOptions(mode=mode, **opts)
    return Toolchain(mode=mode, annotate=options).annotate(source)


def reparses(result):
    """The annotated text must itself be valid C (modulo KEEP_LIVE)."""
    expanded = preprocess("#define KEEP_LIVE(e, y) (e)\n" + result.text)
    typecheck(parse(expanded))
    return True


class TestInsertionPoints:
    def test_pointer_arith_on_assignment_rhs(self):
        r = annotate("void f(char *p) { char *q; q = p + 1; }")
        assert "KEEP_LIVE((p + 1), p)" in r.text
        assert r.stats.keep_lives == 1

    def test_return_value(self):
        r = annotate("char *f(char *p) { return p + 4; }")
        assert "KEEP_LIVE((p + 4), p)" in r.text

    def test_function_argument(self):
        r = annotate("void g(char *x);\nvoid f(char *p) { g(p + 2); }")
        assert "KEEP_LIVE((p + 2), p)" in r.text

    def test_dereference_argument(self):
        r = annotate("char f(char *p) { return *(p + 3); }")
        assert "KEEP_LIVE((p + 3), p)" in r.text

    def test_index_load_wraps_address(self):
        r = annotate("char f(char *p, int i) { return p[i - 1000]; }")
        assert "KEEP_LIVE(&((p)[(i - 1000)]), p)" in r.text
        assert r.text.count("*") >= 2  # the deref survives the splice

    def test_store_through_member_chain(self):
        r = annotate("struct s { int x; };\n"
                     "void f(struct s *sp, int v) { sp->x = v; }")
        assert "KEEP_LIVE(&((sp)->x), sp)" in r.text

    def test_local_initializer(self):
        r = annotate("void f(char *p) { char *q = p + 1; }")
        assert "KEEP_LIVE" in r.text

    def test_compound_pointer_assign(self):
        r = annotate("void f(char *p, int n) { p += n; }")
        assert "(p = KEEP_LIVE((p + n), p))" in r.text

    def test_nonpointer_code_untouched(self):
        src = "int f(int a, int b) { int c[4]; c[0] = a; return c[0] + b; }"
        r = annotate(src)
        assert r.stats.keep_lives == 0
        assert r.text == src

    def test_stack_array_indexing_untouched(self):
        r = annotate("int f(int i) { int a[8]; a[i] = i; return a[i]; }")
        assert r.stats.keep_lives == 0

    def test_all_outputs_reparse(self):
        for src in [
            "char *f(char *p) { return p + 1; }",
            "char f(char *p, int i) { return p[i]; }",
            "struct s { struct s *n; };\nvoid f(struct s *x) { x->n->n = 0; }",
            "void f(char *p) { char *q; q = p; q += 3; *q = 1; }",
        ]:
            assert reparses(annotate(src))


class TestCopySuppression:
    def test_plain_copy_not_wrapped(self):
        r = annotate("void f(char *p) { char *q; q = p; }")
        assert r.stats.keep_lives == 0
        assert r.stats.suppressed_copies >= 1

    def test_suppression_can_be_disabled(self):
        r = annotate("void f(char *p) { char *q; q = p; }",
                     suppress_copies=False)
        assert "KEEP_LIVE(p, p)" in r.text

    def test_load_result_not_wrapped(self):
        r = annotate("char *f(char **pp) { return *pp; }")
        assert r.stats.keep_lives == 0


class TestIncDec:
    def test_postfix_expansion_uses_temp(self):
        r = annotate("char f(char *p) { return *p++; }")
        assert "__gcs_tmp1" in r.text
        assert "KEEP_LIVE((__gcs_tmp1 + 1), __gcs_tmp1)" in r.text

    def test_prefix_expansion_in_place(self):
        r = annotate("void f(char *p) { ++p; *p = 0; }")
        assert "(p = KEEP_LIVE((p + 1), p))" in r.text

    def test_statement_level_postfix_avoids_temp(self):
        r = annotate("void f(char *p) { p++; }")
        assert "__gcs_tmp" not in r.text
        assert "KEEP_LIVE((p + 1), p)" in r.text

    def test_int_incdec_untouched(self):
        r = annotate("void f(int i) { i++; ++i; i--; }")
        assert r.stats.keep_lives == 0

    def test_temp_declarations_inserted(self):
        r = annotate("char f(char *p) { return *p++; }")
        assert "char *__gcs_tmp1;" in r.text

    def test_canonical_string_copy_loop(self):
        """The paper's canonical loop, with the base heuristic giving
        the slowly-varying bases s and t."""
        src = ("char *copy(char *s, char *t) { char *p, *q; p = s; q = t; "
               "while (*p++ = *q++) ; return s; }")
        r = annotate(src)
        assert "KEEP_LIVE((__gcs_tmp1 + 1), s)" in r.text
        assert "KEEP_LIVE((__gcs_tmp2 + 1), t)" in r.text
        assert r.stats.heuristic_replacements == 2

    def test_heuristic_disabled_uses_temp_base(self):
        src = ("char *copy(char *s, char *t) { char *p, *q; p = s; q = t; "
               "while (*p++ = *q++) ; return s; }")
        r = annotate(src, base_heuristic=False)
        assert "KEEP_LIVE((__gcs_tmp1 + 1), __gcs_tmp1)" in r.text


class TestCheckedMode:
    def test_arith_becomes_gc_same_obj(self):
        r = annotate("char *f(char *p) { return p + 1; }", mode="checked")
        assert "GC_same_obj((void *)((p + 1)), (void *)(p))" in r.text
        assert "(char *)" in r.text

    def test_postfix_becomes_gc_post_incr(self):
        r = annotate("char f(char *p) { return *p++; }", mode="checked")
        assert "GC_post_incr(&(p), 1)" in r.text

    def test_prefix_becomes_gc_pre_incr(self):
        r = annotate("void f(int *p) { ++p; *p = 0; }", mode="checked")
        assert "GC_pre_incr(&(p), 4)" in r.text  # scaled by sizeof(int)

    def test_decrement_uses_negative_amount(self):
        r = annotate("void f(int *p) { p--; *p = 0; }", mode="checked")
        assert "GC_post_incr(&(p), -4)" in r.text

    def test_extern_prototypes_injected(self):
        r = annotate("char *f(char *p) { return p + 1; }", mode="checked")
        assert "extern void *GC_same_obj" in r.text

    def test_checked_output_is_plain_ansi_c(self):
        r = annotate("char f(char *p, int i) { return p[i]; }", mode="checked")
        typecheck(parse(r.text))  # no KEEP_LIVE macro needed


class TestCallSafePoints:
    def test_statement_without_call_skipped(self):
        src = ("void f(char *p, int i) { char c; c = p[i + 12345]; }")
        full = annotate(src)
        relaxed = annotate(src, call_safe_points=True)
        assert full.stats.keep_lives == 1
        assert relaxed.stats.keep_lives == 0
        assert relaxed.stats.suppressed_no_call >= 1

    def test_statement_with_call_still_annotated(self):
        src = ("int g(void);\n"
               "void f(char *p) { char c; c = p[g() + 999]; }")
        relaxed = annotate(src, call_safe_points=True)
        assert relaxed.stats.keep_lives >= 1


class TestStats:
    def test_counts_are_consistent(self):
        src = ("char *f(char *p, char *q, int i) {"
               " char *r; r = p + i; r = q; *r = p[i]; return r + 1; }")
        r = annotate(src)
        assert r.stats.keep_lives >= 3
        assert r.stats.suppressed_copies >= 1
