"""Edit-list tests: the paper's insertion/deletion machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.core import EditList
from repro.core.edits import outermost
from repro.cfront.errors import SourceSpan


class _Rep:
    def __init__(self, start, end):
        self.span = SourceSpan(start, end)
        self.node = None


class TestEditList:
    def test_insert(self):
        edits = EditList()
        edits.insert(5, "XY")
        assert edits.apply("hello world") == "helloXY world"

    def test_delete(self):
        edits = EditList()
        edits.delete(5, 11)
        assert edits.apply("hello world") == "hello"

    def test_replace(self):
        edits = EditList()
        edits.replace(0, 5, "goodbye")
        assert edits.apply("hello world") == "goodbye world"

    def test_multiple_edits_applied_in_order(self):
        edits = EditList()
        edits.replace(6, 11, "there")
        edits.insert(0, ">> ")
        assert edits.apply("hello world") == ">> hello there"

    def test_insertion_at_end(self):
        edits = EditList()
        edits.insert(5, "!")
        assert edits.apply("hello") == "hello!"

    def test_overlapping_edits_rejected(self):
        edits = EditList()
        edits.replace(0, 5, "a")
        edits.replace(3, 8, "b")
        with pytest.raises(ValueError):
            edits.apply("hello world")

    def test_adjacent_edits_ok(self):
        edits = EditList()
        edits.replace(0, 3, "A")
        edits.replace(3, 6, "B")
        assert edits.apply("abcdef") == "AB"

    def test_negative_range_rejected(self):
        edits = EditList()
        with pytest.raises(ValueError):
            edits.replace(5, 2, "x")

    def test_empty_edit_list_is_identity(self):
        assert EditList().apply("unchanged") == "unchanged"

    @given(st.text(min_size=1, max_size=40),
           st.data())
    def test_single_replace_property(self, text, data):
        start = data.draw(st.integers(0, len(text)))
        end = data.draw(st.integers(start, len(text)))
        repl = data.draw(st.text(max_size=10))
        edits = EditList()
        edits.replace(start, end, repl)
        out = edits.apply(text)
        assert out == text[:start] + repl + text[end:]

    @given(st.text(min_size=4, max_size=40), st.data())
    def test_disjoint_edits_commute(self, text, data):
        mid = len(text) // 2
        r1 = data.draw(st.text(max_size=5))
        r2 = data.draw(st.text(max_size=5))
        a = EditList()
        a.replace(0, 2, r1)
        a.replace(mid + 1, mid + 2, r2)
        b = EditList()
        b.replace(mid + 1, mid + 2, r2)
        b.replace(0, 2, r1)
        assert a.apply(text) == b.apply(text)


class TestOutermost:
    def test_nested_replacement_dropped(self):
        inner, outer = _Rep(5, 10), _Rep(0, 20)
        assert outermost([inner, outer]) == [outer]

    def test_disjoint_kept(self):
        a, b = _Rep(0, 5), _Rep(10, 15)
        assert set(map(id, outermost([a, b]))) == {id(a), id(b)}

    def test_equal_spans_keep_later(self):
        first, second = _Rep(3, 9), _Rep(3, 9)
        assert outermost([first, second]) == [second]

    def test_chain_of_nesting(self):
        a, b, c = _Rep(2, 4), _Rep(1, 6), _Rep(0, 10)
        assert outermost([a, b, c]) == [c]
