"""The repro.api facade: one options bag, no mutation, shims gone."""

import dataclasses

import pytest

import repro
from repro.api import Mode, Options, Toolchain
from repro.core.annotate import AnnotateOptions

POINTERY = "char *f(char *p) { return p + 1; }"
HELLO = 'int main(void) { printf("hi\\n"); return 7; }'


class TestMode:
    def test_coerce_strings_and_enums(self):
        assert Mode.coerce("safe") is Mode.SAFE
        assert Mode.coerce("CHECKED") is Mode.CHECKED
        assert Mode.coerce(Mode.NONE) is Mode.NONE
        assert Mode.coerce(None) is Mode.SAFE

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown mode"):
            Mode.coerce("fast")


class TestOptions:
    def test_defaults(self):
        opts = Options()
        assert opts.mode is Mode.SAFE
        assert opts.config == "O_safe"
        assert opts.workers == 1

    def test_frozen_and_copy_on_override(self):
        opts = Options()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.workers = 4
        more = opts.with_(workers=4)
        assert more.workers == 4 and opts.workers == 1
        assert opts.with_() is opts

    def test_mode_is_coerced_at_construction(self):
        assert Options(mode="checked").mode is Mode.CHECKED

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            Options(model="cray1")


class TestToolchain:
    def test_annotate_safe_and_checked(self):
        tc = Toolchain()
        assert "KEEP_LIVE" in tc.annotate(POINTERY).text
        assert "GC_same_obj" in tc.annotate(POINTERY, Mode.CHECKED).text

    def test_annotate_mode_none_is_an_error(self):
        with pytest.raises(ValueError, match="Mode.NONE"):
            Toolchain(mode=Mode.NONE).annotate(POINTERY)

    def test_check_flags_pointer_hiding(self):
        diags = Toolchain().check('void f(char **b) { scanf("%p", b); }')
        assert diags and "scanf" in diags[0].message

    def test_run_compiles_and_executes(self):
        result = Toolchain(config="O").run(HELLO)
        assert result.exit_code == 7
        assert result.output == "hi\n"

    def test_options_never_mutated_by_compile(self):
        # The historical bug: compile paths flipped AnnotateOptions.mode
        # on the caller's object.  The facade must copy.
        ann = AnnotateOptions(mode="safe")
        tc = Toolchain(config="g_checked", annotate=ann)
        tc.run(HELLO)
        assert ann.mode == "safe"
        assert tc.options.annotate is ann

    def test_constructor_overrides_compose_with_options(self):
        base = Options(model="p90")
        tc = Toolchain(base, workers=3)
        assert tc.options.model == "p90" and tc.options.workers == 3

    def test_session_installs_and_removes_caches(self, tmp_path):
        from repro.exec import cache as exec_cache
        tc = Toolchain(cache_dir=str(tmp_path / "cc"))
        assert not exec_cache.active_caches()
        with tc.session():
            kinds = {c.kind for c in exec_cache.active_caches()}
            assert kinds == {"compile", "result"}
            tc.run(HELLO)
            assert exec_cache.active_cache("compile").stats.stores >= 1
        assert not exec_cache.active_caches()

    def test_session_without_cache_dir_is_a_noop(self):
        from repro.exec import cache as exec_cache
        with Toolchain().session():
            assert not exec_cache.active_caches()


class TestShimRemoval:
    def test_module_level_shims_are_gone(self):
        import repro.core
        import repro.core.api
        for mod in (repro, repro.core, repro.core.api):
            assert not hasattr(mod, "annotate_source")
            assert not hasattr(mod, "check_source")

    def test_facade_covers_the_old_spellings(self):
        result = Toolchain().annotate(POINTERY)
        assert "KEEP_LIVE" in result.text
        assert Toolchain().check("int f(int a) { return a; }") == []

    def test_package_root_exports_facade(self):
        assert repro.Toolchain is Toolchain
        assert repro.Mode is Mode
        assert repro.Options is Options


class TestRenderDiagnostics:
    def test_empty_diagnostics_render_empty(self):
        src = "int f(int a) { return a; }"
        result = Toolchain().annotate(src)
        assert result.diagnostics == []
        assert result.render_diagnostics(src) == ""

    def test_nonempty_diagnostics_render_lines(self):
        src = "char *f(int x) { return (char *)x; }"
        result = Toolchain().annotate(src)
        if result.diagnostics:  # category depends on checker heuristics
            text = result.render_diagnostics(src)
            assert len(text.splitlines()) == len(result.diagnostics)
