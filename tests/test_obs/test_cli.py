"""CLI coverage: ``python -m repro.obs`` (record / report / trajectory)
and the ``--trace`` / ``--profile`` flags on the main and fuzz CLIs."""

import json

import pytest

from repro.cli import main as repro_main
from repro.obs import runtime
from repro.obs.cli import main as obs_main
from repro.obs.tracer import load_jsonl

PROGRAM = """
struct node { int v; struct node *next; };
struct node *cons(int v, struct node *rest) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    n->v = v;
    n->next = rest;
    return n;
}
int main(void) {
    struct node *list = 0;
    int i, s = 0;
    for (i = 0; i < 50; i++) list = cons(i, list);
    for (; list; list = list->next) s += list->v;
    return s & 0xFF;
}
"""


@pytest.fixture
def prog_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


class TestObsRecord:
    def test_record_source(self, prog_file, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        chrome = tmp_path / "chrome.json"
        summary = tmp_path / "summary.json"
        rc = obs_main(["record", "--source", prog_file, "--config", "g_checked",
                       "--gc-interval", "200", "--out", str(out),
                       "--chrome", str(chrome), "--summary-json", str(summary)])
        assert rc == 0
        events = load_jsonl(str(out))
        names = {e["name"] for e in events}
        assert {"compile", "cfront.cpp", "cfront.lex", "cfront.parse",
                "cfront.typecheck", "compile.annotate", "compile.lower",
                "compile.codegen", "vm.run", "gc.collect",
                "gc.stats"} <= names
        collect = next(e for e in events if e["name"] == "gc.collect")
        assert {"pause_ns", "root_scan_ns", "mark_ns",
                "sweep_ns"} <= set(collect["args"])
        doc = json.loads(chrome.read_text())
        assert doc["otherData"]["schema"] == "repro-obs-trace/1"
        s = json.loads(summary.read_text())
        assert s["schema"] == "repro-obs-summary/1"
        assert s["run"]["config"] == "g_checked"
        assert s["gc"]["collections"] >= 1
        assert s["profile"]["total_cycles"] == s["run"]["cycles"]
        rendered = capsys.readouterr().out
        assert "Compile pipeline" in rendered
        assert "VM hot-spot profile" in rendered

    def test_record_leaves_runtime_disabled(self, prog_file, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert obs_main(["record", "--source", prog_file, "--quiet",
                         "--out", str(out)]) == 0
        assert runtime.tracing_enabled() is False
        assert runtime.profiling_enabled() is False

    def test_workload_and_source_are_exclusive(self, prog_file):
        with pytest.raises(SystemExit):
            obs_main(["record", "--workload", "miniawk",
                      "--source", prog_file])
        with pytest.raises(SystemExit):
            obs_main(["record"])

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            obs_main(["record", "--workload", "nosuch"])


class TestObsReport:
    def test_report_roundtrip(self, prog_file, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        obs_main(["record", "--source", prog_file, "--quiet",
                  "--gc-interval", "200", "--out", str(out)])
        capsys.readouterr()
        assert obs_main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Compile pipeline" in text and "GC:" in text

    def test_report_json(self, prog_file, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        obs_main(["record", "--source", prog_file, "--quiet",
                  "--out", str(out)])
        capsys.readouterr()
        assert obs_main(["report", str(out), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-obs-summary/1"


class TestObsTrajectory:
    def test_trajectory_appends_points(self, tmp_path, capsys):
        out = tmp_path / "BENCH_obs.json"
        for label in ("first", "second"):
            rc = obs_main(["trajectory", "--workload", "miniawk",
                           "--configs", "O,O_safe", "--quiet",
                           "--label", label, "--out", str(out)])
            assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-obs-bench/1"
        assert [p["label"] for p in doc["points"]] == ["first", "second"]
        p = doc["points"][0]
        assert set(p["configs"]) == {"O", "O_safe"}
        cell = p["configs"]["O_safe"]
        assert cell["cycles"] > 0 and cell["wall_s"] > 0
        # Identical runs: the trajectory is deterministic in cycles.
        assert doc["points"][0]["configs"]["O"]["cycles"] == \
               doc["points"][1]["configs"]["O"]["cycles"]

    def test_trajectory_rejects_foreign_schema(self, tmp_path):
        out = tmp_path / "BENCH_obs.json"
        out.write_text('{"schema": "something-else"}')
        with pytest.raises(SystemExit):
            obs_main(["trajectory", "--workload", "miniawk",
                      "--configs", "O", "--quiet", "--out", str(out)])


class TestMainCliFlags:
    def test_cc_trace_flag(self, prog_file, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        rc = repro_main(["cc", "--config", "O_safe", "--trace", str(out),
                         prog_file])
        captured = capsys.readouterr()
        assert rc == (50 * 49 // 2) & 0xFF
        assert f"trace written to {out}" in captured.err
        names = {e["name"] for e in load_jsonl(str(out))}
        assert {"compile", "vm.run"} <= names
        assert runtime.tracing_enabled() is False

    def test_cc_profile_flag(self, prog_file, capsys):
        rc = repro_main(["cc", "--profile", prog_file])
        captured = capsys.readouterr()
        assert "VM hot-spot profile" in captured.err
        assert "cons" in captured.err
        assert runtime.profiling_enabled() is False

    def test_flags_do_not_change_the_run(self, prog_file, capsys):
        plain = repro_main(["cc", prog_file])
        base_err = capsys.readouterr().err
        traced = repro_main(["cc", "--profile", prog_file])
        traced_err = capsys.readouterr().err
        assert plain == traced
        base_line = next(l for l in base_err.splitlines() if "cycles=" in l)
        traced_line = next(l for l in traced_err.splitlines()
                           if "cycles=" in l)
        assert base_line == traced_line


class TestFuzzCliFlags:
    def test_fuzz_trace_flag(self, tmp_path, capsys):
        from repro.fuzz.cli import main as fuzz_main
        out = tmp_path / "fuzz-trace.jsonl"
        rc = fuzz_main(["--seed", "0", "--iters", "1",
                        "--models", "ss10", "--trace", str(out)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "stage wall" in captured.out
        names = {e["name"] for e in load_jsonl(str(out))}
        assert {"fuzz.iteration", "fuzz.campaign", "compile",
                "vm.run"} <= names
        assert runtime.tracing_enabled() is False
