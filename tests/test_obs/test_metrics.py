"""The typed metric registry (tentpole): counters/gauges/histograms,
exact integer percentiles, shard merge, zero-value elision, and the
acceptance gate — deterministic snapshots byte-identical across
``--workers N`` for the same seed."""

import json
import os

import pytest

from repro.fuzz.campaign import run_campaign
from repro.obs import runtime
from repro.obs.metrics import (
    COUNT_BUCKETS, Histogram, MetricsRegistry, SCHEMA, TIME_BUCKETS_NS,
    load_snapshot, metric_key, render_snapshot, split_key,
)

WORKERS = max(2, int(os.environ.get("REPRO_EXEC_WORKERS", "4")))


class TestKeys:
    def test_roundtrip(self):
        key = metric_key("cache.hits", {"tier": "compile", "shard": "3"})
        assert key == "cache.hits{shard=3,tier=compile}"
        assert split_key(key) == ("cache.hits",
                                  {"shard": "3", "tier": "compile"})

    def test_no_labels(self):
        assert metric_key("vm.runs") == "vm.runs"
        assert split_key("vm.runs") == ("vm.runs", {})

    def test_reserved_characters_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="reserved"):
            reg.counter("bad", tier="a,b")


class TestCounter:
    def test_inc_and_elision(self):
        reg = MetricsRegistry()
        c = reg.counter("vm.runs")
        assert c.to_entry() is None  # registered-but-untouched == absent
        assert reg.to_dict() == {}
        c.inc()
        c.inc(9)
        assert reg.to_dict() == {
            "vm.runs": {"type": "counter", "det": True, "value": 10}}

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1) is reg.counter("a", x=1)
        assert reg.counter("a", x=1) is not reg.counter("a", x=2)

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("m")
        with pytest.raises(ValueError, match="not a histogram"):
            reg.histogram("m")


class TestGauge:
    def test_gauges_are_never_det(self):
        reg = MetricsRegistry()
        g = reg.gauge("gc.live_bytes")
        assert g.to_entry() is None
        g.set(4096)
        assert g.to_entry() == {"type": "gauge", "det": False, "value": 4096}
        assert reg.deterministic_snapshot()["metrics"] == {}

    def test_merge_takes_maximum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(5)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.get("g").value == 9
        a.merge(b)  # idempotent for max
        assert a.get("g").value == 9


class TestHistogram:
    def test_bucket_placement_inclusive_upper(self):
        h = Histogram("h", "h", {}, bounds=(10, 100, 1000))
        for v in (10, 11, 100, 5000):
            h.observe(v)
        # 10 lands in [0,10], 11/100 in (10,100], 5000 overflows.
        assert h.counts == [1, 2, 0, 1]
        assert (h.count, h.sum, h.min, h.max) == (4, 5121, 10, 5000)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "h", {}, bounds=(10, 10, 20))

    def test_percentiles_exact_and_deterministic(self):
        a = Histogram("h", "h", {}, bounds=TIME_BUCKETS_NS)
        b = Histogram("h", "h", {}, bounds=TIME_BUCKETS_NS)
        values = [(i * 7919) % 100_000 + 1 for i in range(500)]
        for v in values:
            a.observe(v)
        for v in reversed(values):  # order-independent
            b.observe(v)
        assert a.percentiles() == b.percentiles()
        p = a.percentiles()
        assert p["count"] == 500
        assert a.min <= p["p50"] <= p["p95"] <= p["p99"] <= a.max

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram("h", "h", {}, bounds=(1 << 20,))
        h.observe(5)
        h.observe(7)
        assert h.percentile(50) >= 5
        assert h.percentile(99) <= 7
        assert Histogram("e", "e", {}).percentile(50) is None

    def test_merge_equals_serial(self):
        serial = Histogram("h", "h", {}, bounds=COUNT_BUCKETS)
        parts = [Histogram("h", "h", {}, bounds=COUNT_BUCKETS)
                 for _ in range(3)]
        for i in range(300):
            v = (i * 104729) % 1_000_000
            serial.observe(v)
            parts[i % 3].observe(v)
        merged = Histogram("h", "h", {}, bounds=COUNT_BUCKETS)
        for part in parts:
            merged.merge_entry(part.to_entry())
        assert merged.to_entry() == serial.to_entry()
        assert merged.percentiles() == serial.percentiles()

    def test_merge_rejects_mismatched_bounds(self):
        h = Histogram("h", "h", {}, bounds=(1, 2, 3))
        o = Histogram("h", "h", {}, bounds=(1, 2))
        o.observe(1)
        with pytest.raises(ValueError, match="bounds"):
            h.merge_entry(o.to_entry())

    def test_entry_roundtrip(self):
        h = Histogram("h{x=1}", "h", {"x": "1"}, bounds=(8, 64), det=True)
        for v in (1, 9, 100):
            h.observe(v)
        back = Histogram.from_entry("h{x=1}", h.to_entry())
        assert back.to_entry() == h.to_entry()
        assert back.det is True


class TestRegistrySerialization:
    def _filled(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("vm.instructions").inc(1000)
        reg.counter("exec.tasks", det=False).inc(4)
        reg.gauge("gc.live_bytes").set(2048)
        reg.histogram("gc.pause_ns").observe(150_000)
        reg.histogram("vm.run_cycles", bounds=COUNT_BUCKETS,
                      det=True).observe(2_560_902)
        return reg

    def test_to_dict_sorted_and_det_filtered(self):
        reg = self._filled()
        full = reg.to_dict()
        assert list(full) == sorted(full)
        det = reg.to_dict(det_only=True)
        assert set(det) == {"vm.instructions", "vm.run_cycles"}

    def test_deterministic_snapshot_has_no_seq(self):
        snap = self._filled().deterministic_snapshot()
        assert snap["schema"] == SCHEMA
        assert "seq" not in snap

    def test_registry_merge_from_dict_payload(self):
        a, b = self._filled(), self._filled()
        a.merge(b.to_dict())
        assert a.get("vm.instructions").value == 2000
        assert a.get("gc.pause_ns").count == 2
        # unknown instrument types from a newer writer are skipped
        a.merge({"future.metric": {"type": "summary", "value": 1}})
        assert a.get("future.metric") is None

    def test_jsonl_roundtrip_and_load_snapshot(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        reg = self._filled()
        reg.write_jsonl(path, append=False)
        reg.counter("vm.instructions").inc()
        reg.write_jsonl(path)
        snap = load_snapshot(path)
        assert snap["seq"] == 1  # the latest envelope wins
        assert snap["metrics"]["vm.instructions"]["value"] == 1001
        assert load_snapshot(str(tmp_path / "missing.jsonl")) is None

    def test_flush_appends_jsonl_but_rewrites_prom(self, tmp_path):
        jpath = str(tmp_path / "m.jsonl")
        reg = self._filled()
        reg.out_path = jpath
        reg.flush()
        reg.flush()
        with open(jpath) as fh:
            assert len(fh.readlines()) == 2
        ppath = str(tmp_path / "m.prom")
        reg.out_path = ppath
        reg.flush()
        reg.flush()
        with open(ppath) as fh:
            text = fh.read()
        assert text.count("# TYPE repro_vm_instructions counter") == 1

    def test_prometheus_exposition(self):
        out = self._filled().to_prometheus()
        assert "repro_vm_instructions 1000" in out
        assert "repro_gc_live_bytes 2048" in out
        assert 'repro_gc_pause_ns_bucket{le="+Inf"} 1' in out
        assert "repro_gc_pause_ns_sum 150000" in out
        assert "repro_gc_pause_ns_count 1" in out
        # cumulative buckets end at the total count
        cum = [ln for ln in out.splitlines()
               if ln.startswith("repro_vm_run_cycles_bucket")]
        assert cum[-1].endswith(" 1")

    def test_render_snapshot(self):
        text = render_snapshot(self._filled().snapshot())
        assert "vm.run_cycles" in text
        assert "2560902" in text            # count histograms stay raw
        assert "0.15ms" in text             # _ns histograms render as ms
        assert "vm.instructions" in text


class TestRuntimeLifecycle:
    def test_enable_get_disable(self):
        assert runtime.get_metrics() is None
        reg = runtime.enable_metrics()
        assert runtime.get_metrics() is reg
        assert runtime.metrics_enabled()
        runtime.disable_metrics()
        assert runtime.get_metrics() is None

    def test_reset_clears_metrics(self):
        runtime.enable_metrics()
        runtime.reset()
        assert runtime.get_metrics() is None


class TestShardedByteIdentity:
    """Acceptance: same seed, same deterministic snapshot bytes for
    ``--workers 1`` and ``--workers N``."""

    def _campaign_snapshot(self, workers: int) -> str:
        reg = runtime.set_metrics(MetricsRegistry())
        try:
            result = run_campaign(seed=0, iters=4, models=("ss10",),
                                  stop_after=None, workers=workers)
            assert result.iterations == 4
            assert result.telemetry["metrics"]  # snapshot rode along
            return json.dumps(reg.deterministic_snapshot(), sort_keys=True)
        finally:
            runtime.set_metrics(None)

    def test_serial_vs_sharded_snapshots_identical(self):
        serial = self._campaign_snapshot(1)
        sharded = self._campaign_snapshot(WORKERS)
        assert serial == sharded
        metrics = json.loads(serial)["metrics"]
        # The simulated counters actually moved — this is not an
        # empty-vs-empty comparison.
        assert metrics["vm.instructions"]["value"] > 0
        assert metrics["gc.collections"]["value"] > 0
        assert metrics["fuzz.iterations"]["value"] == 4
        assert metrics["vm.run_cycles"]["count"] > 0
        # ... while wall-time histograms exist only outside the det view.
        assert "vm.run_wall_ns" not in metrics
