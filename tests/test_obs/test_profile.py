"""VM hot-spot profiler: attribution must be *exact* — every simulated
cycle and instruction lands in exactly one function/block cell — and
attaching a profile must never change the simulated counts."""

import pytest

from repro.gc import Collector
from repro.machine import CompileConfig, VM, compile_source
from repro.machine.models import MODELS
from repro.obs import runtime
from repro.obs.vmprof import CHECK_BUILTINS, VMProfile

PROGRAM = """
struct node { int v; struct node *next; };
struct node *cons(int v, struct node *rest) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    n->v = v;
    n->next = rest;
    return n;
}
int total(struct node *list) {
    int s = 0;
    for (; list; list = list->next) s += list->v;
    return s;
}
int main(void) {
    struct node *list = 0;
    int i;
    for (i = 0; i < 30; i++) list = cons(i, list);
    return total(list) & 0xFF;
}
"""


def run_with_profile(config_name="O_safe", model_key="ss10", source=PROGRAM,
                     gc_interval=0):
    config = CompileConfig.named(config_name, MODELS[model_key])
    compiled = compile_source(source, config)
    profile = VMProfile()
    vm = VM(compiled.asm, config.model, collector=Collector(),
            gc_interval=gc_interval, profile=profile)
    result = vm.run()
    return result, profile


class TestAttributionInvariants:
    @pytest.mark.parametrize("config", ("O", "O_safe", "g", "g_checked"))
    def test_totals_are_exact(self, config):
        result, profile = run_with_profile(config)
        assert profile.total_cycles == result.cycles
        assert profile.total_instructions == result.instructions

    def test_blocks_sum_to_functions(self):
        result, profile = run_with_profile()
        for name, (cycles, insts, _calls) in profile.funcs.items():
            bc = sum(c[0] for (f, _b), c in profile.blocks.items() if f == name)
            bi = sum(c[1] for (f, _b), c in profile.blocks.items() if f == name)
            assert bc == cycles, name
            assert bi == insts, name

    def test_call_counts(self):
        result, profile = run_with_profile()
        assert profile.funcs["main"][2] == 1
        assert profile.funcs["cons"][2] == 30
        assert profile.funcs["total"][2] == 1
        assert profile.runs == 1

    def test_counts_identical_with_and_without_profile(self):
        config = CompileConfig.named("O_safe", MODELS["ss10"])
        compiled = compile_source(PROGRAM, config)
        plain = VM(compiled.asm, config.model, collector=Collector(),
                   profile=None).run()
        result, profile = run_with_profile("O_safe")
        assert (plain.cycles, plain.instructions, plain.collections) == \
               (result.cycles, result.instructions, result.collections)
        assert plain.exit_code == result.exit_code

    def test_exact_under_adversarial_collection(self):
        result, profile = run_with_profile("O_safe", gc_interval=1)
        assert result.collections > 0
        assert profile.total_cycles == result.cycles
        assert profile.total_instructions == result.instructions


class TestCheckSites:
    def test_checked_build_records_check_sites(self):
        result, profile = run_with_profile("g_checked")
        assert result.checks > 0
        sites = profile.check_sites(top=0 or 100)
        assert sites, "g_checked build must hit pointer-check builtins"
        for func, block, pc, builtin, count in sites:
            assert builtin in CHECK_BUILTINS
            assert count > 0
        # Site counts add up to the collector's per-kind totals.
        assert sum(c for *_x, c in sites) <= result.checks * 2

    def test_unchecked_build_has_no_check_sites(self):
        _result, profile = run_with_profile("O")
        assert profile.checks == {}


class TestProfileAggregation:
    def test_merge(self):
        _r1, p1 = run_with_profile("O")
        _r2, p2 = run_with_profile("O")
        merged = VMProfile()
        merged.merge(p1)
        merged.merge(p2)
        assert merged.total_cycles == p1.total_cycles + p2.total_cycles
        assert merged.runs == 2
        assert merged.funcs["cons"][2] == 60

    def test_render_and_to_dict(self):
        result, profile = run_with_profile("g_checked")
        text = profile.render_report(top=5)
        assert "top functions" in text and "main" in text
        assert "pointer-check call sites" in text
        d = profile.to_dict(top=3)
        assert d["total_cycles"] == result.cycles
        assert len(d["functions"]) <= 3
        assert all(f["cycles"] >= 0 for f in d["functions"])


class TestSessionProfileWiring:
    def test_vm_picks_up_session_sink(self):
        profile = runtime.enable_profiling()
        config = CompileConfig.named("O", MODELS["ss10"])
        compiled = compile_source(PROGRAM, config)
        result = VM(compiled.asm, config.model, collector=Collector()).run()
        assert profile.total_cycles == result.cycles
        assert profile.runs == 1

    def test_no_sink_by_default(self):
        config = CompileConfig.named("O", MODELS["ss10"])
        compiled = compile_source(PROGRAM, config)
        vm = VM(compiled.asm, config.model, collector=Collector())
        assert vm._profile is None
