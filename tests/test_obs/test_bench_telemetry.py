"""Bench-harness telemetry: per-cell summaries attach only when the
session tracer is on, typed peephole stats flow into the T5 report."""

import pytest

from repro.bench.harness import Harness
from repro.bench.tables import render_postproc_table
from repro.obs import runtime
from repro.postproc.peephole import PeepholeStats


class TestCellTelemetry:
    def test_disabled_by_default(self):
        cell = Harness("ss10").run_cell("miniawk", "O")
        assert cell.telemetry is None

    def test_summary_attached_when_tracing(self):
        runtime.enable_tracing()
        cell = Harness("ss10").run_cell("miniawk", "O_safe")
        runtime.reset()
        t = cell.telemetry
        assert t["schema"] == "repro-obs-summary/1"
        assert t["compile"]["units"] == 1
        assert t["vm"]["runs"] == 1
        assert t["vm"]["cycles"] == cell.cycles

    def test_cells_sliced_per_run(self):
        runtime.enable_tracing()
        harness = Harness("ss10")
        a = harness.run_cell("miniawk", "O")
        b = harness.run_cell("miniawk", "g")
        runtime.reset()
        # Each summary covers only its own cell's events.
        assert a.telemetry["vm"]["cycles"] == a.cycles
        assert b.telemetry["vm"]["cycles"] == b.cycles
        assert a.cycles != b.cycles


class TestPeepholeStats:
    def test_typed_and_reported(self):
        harness = Harness("ss10")
        cells = harness.run_postproc_row("miniawk")
        stats = cells["O_safe_pp"].peephole_stats
        assert isinstance(stats, PeepholeStats)
        assert stats.total > 0
        assert cells["O_safe"].peephole_stats is None
        table = render_postproc_table({"miniawk": cells})
        assert "peephole rewrites" in table
        assert f"({stats.total} total)" in table
