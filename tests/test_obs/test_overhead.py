"""The no-op fast path, guarded structurally: with telemetry disabled
the instrumented subsystems must take their original code paths — no
events, no wrapped closures, no histogram bookkeeping — so the only
residual cost is one attribute test per instrumented site.  A generous
micro-benchmark bound backs that up without being timing-flaky; the
real <2% wall-clock budget on cfrac is enforced by
``benchmarks/check_obs_overhead.py`` in CI."""

import time

from repro.gc import Collector
from repro.machine import CompileConfig, VM, compile_source
from repro.machine.models import MODELS
from repro.obs import runtime
from repro.obs.tracer import NULL_SPAN, Tracer

PROGRAM = """
int main(void) {
    char *p = (char *)GC_malloc(64);
    int i;
    for (i = 0; i < 32; i++) p[i] = (char)i;
    return p[31];
}
"""


class TestStructuralNoOp:
    def test_default_runtime_is_disabled(self):
        assert runtime.tracing_enabled() is False
        assert runtime.profiling_enabled() is False
        assert runtime.session_profile() is None

    def test_vm_closures_not_wrapped_when_disabled(self):
        config = CompileConfig.named("O_safe", MODELS["ss10"])
        compiled = compile_source(PROGRAM, config)
        plain = VM(compiled.asm, config.model, collector=Collector())
        assert plain._profile is None
        profiled = VM(compiled.asm, config.model, collector=Collector(),
                      profile=runtime.enable_profiling())
        runtime.reset()
        # The profiled VM wraps every closure; the plain VM must reuse
        # the unwrapped ones (same count, different functions).
        for name in plain._ops:
            assert len(plain._ops[name]) == len(profiled._ops[name])
        wrapped = [op.__qualname__ for op in profiled._ops["main"]]
        unwrapped = [op.__qualname__ for op in plain._ops["main"]]
        assert all("_wrap_profiled" in q for q in wrapped)
        assert not any("_wrap_profiled" in q for q in unwrapped)

    def test_run_records_no_events_when_disabled(self):
        config = CompileConfig.named("g_checked", MODELS["ss10"])
        compiled = compile_source(PROGRAM, config)
        collector = Collector()
        vm = VM(compiled.asm, config.model, collector=collector,
                gc_interval=50)
        result = vm.run()
        assert result.collections > 0
        assert runtime.get_tracer().events == []
        assert collector.stats.alloc_histogram == {}
        # The always-on GCStats satellites still fill in.
        assert collector.stats.live_bytes == collector.heap.bytes_in_use
        assert collector.stats.gc_pause_ns > 0


class TestMicroOverhead:
    def test_disabled_span_is_cheap(self):
        """A disabled span() is one attribute test plus returning a
        pre-allocated singleton; bound it very generously (5us/call on
        average) so the test never flakes while still catching an
        accidentally-enabled slow path (which costs >20x more)."""
        tr = Tracer(enabled=False)
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            sp = tr.span("x", a=1)
        t1 = time.perf_counter()
        assert sp is NULL_SPAN
        assert (t1 - t0) / n < 5e-6
        assert tr.events == []

    def test_disabled_counter_and_instant_are_cheap(self):
        tr = Tracer(enabled=False)
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            tr.counter("c", 1)
            tr.instant("i")
        t1 = time.perf_counter()
        assert (t1 - t0) / n < 5e-6
        assert tr.events == []
