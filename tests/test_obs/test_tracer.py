"""Tracer core: span nesting/ordering, the JSONL and Chrome trace
schemas (golden-tested with an injected deterministic clock), and the
disabled fast path."""

import json

import pytest

from repro.obs.tracer import (NULL_SPAN, SCHEMA, Span, TraceEvent, Tracer,
                              load_jsonl, _NullSpan)


def fake_clock(step=10):
    """Deterministic ns clock: 0, step, 2*step, ... per call."""
    state = {"t": -step}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


class TestSpanNesting:
    def test_ids_assigned_in_start_order(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("outer"):
            with tr.span("inner_a"):
                pass
            with tr.span("inner_b"):
                pass
        by_name = {e.name: e for e in tr.events}
        assert by_name["outer"].id == 1
        assert by_name["inner_a"].id == 2
        assert by_name["inner_b"].id == 3

    def test_parent_and_depth(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
        by_name = {e.name: e for e in tr.events}
        assert by_name["a"].parent == 0 and by_name["a"].depth == 0
        assert by_name["b"].parent == by_name["a"].id and by_name["b"].depth == 1
        assert by_name["c"].parent == by_name["b"].id and by_name["c"].depth == 2

    def test_events_list_is_end_ordered_sorted_is_start_ordered(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        # Raw list appends on span end: inner finishes first.
        assert [e.name for e in tr.events] == ["inner", "outer"]
        assert [e.name for e in tr.sorted_events()] == ["outer", "inner"]

    def test_durations_cover_children(self):
        tr = Tracer(clock=fake_clock(step=10))
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {e.name: e for e in tr.events}
        assert by_name["inner"].dur > 0
        assert by_name["outer"].dur > by_name["inner"].dur
        assert by_name["outer"].t0 <= by_name["inner"].t0

    def test_set_merges_args(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("s", a=1) as sp:
            sp.set(b=2)
            sp.set(a=3)
        assert tr.events[0].args == {"a": 3, "b": 2}

    def test_exception_unwinds_stack(self):
        tr = Tracer(clock=fake_clock())
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        # Both spans finalized despite the exception; stack is empty.
        assert {e.name for e in tr.events} == {"outer", "inner"}
        assert tr._stack == []
        with tr.span("after"):
            pass
        assert tr.events[-1].name == "after"
        assert tr.events[-1].depth == 0


class TestCountersAndInstants:
    def test_counter_records_value(self):
        tr = Tracer(clock=fake_clock())
        tr.counter("heap.bytes", 4096, number=1)
        e = tr.events[0]
        assert e.kind == "counter" and e.value == 4096
        assert e.args == {"number": 1}

    def test_instant_records_args(self):
        tr = Tracer(clock=fake_clock())
        tr.instant("gc.stats", collections=2)
        e = tr.events[0]
        assert e.kind == "instant" and e.args == {"collections": 2}


class TestDisabledFastPath:
    def test_disabled_span_is_the_null_singleton(self):
        tr = Tracer(enabled=False)
        sp = tr.span("anything", x=1)
        assert sp is NULL_SPAN
        assert isinstance(sp, _NullSpan)
        with sp as inner:
            inner.set(ignored=True)
        assert tr.events == []

    def test_disabled_counter_and_instant_record_nothing(self):
        tr = Tracer(enabled=False)
        tr.counter("c", 1)
        tr.instant("i")
        assert tr.events == []


# Clock reads, step=10: construction (epoch=0), compile start (10),
# parse start (20), parse end (30), compile end (40), counter (50),
# instant (60).  t0 values are relative to the epoch.
GOLDEN_JSONL = [
    {"kind": "meta", "schema": "repro-obs-trace/1", "unit": "ns"},
    {"kind": "span", "name": "compile", "t0": 10, "id": 1, "parent": 0,
     "depth": 0, "dur": 30, "args": {"optimize": True}},
    {"kind": "span", "name": "cfront.parse", "t0": 20, "id": 2, "parent": 1,
     "depth": 1, "dur": 10},
    {"kind": "counter", "name": "gc.live_bytes", "t0": 50, "value": 128},
    {"kind": "instant", "name": "gc.stats", "t0": 60,
     "args": {"collections": 0}},
]


def golden_tracer():
    tr = Tracer(clock=fake_clock(step=10))
    with tr.span("compile", optimize=True):
        with tr.span("cfront.parse"):
            pass
    tr.counter("gc.live_bytes", 128)
    tr.instant("gc.stats", collections=0)
    return tr


class TestJsonlSchema:
    def test_golden_jsonl(self, tmp_path):
        tr = golden_tracer()
        path = tmp_path / "trace.jsonl"
        tr.write_jsonl(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == GOLDEN_JSONL

    def test_load_jsonl_roundtrip(self, tmp_path):
        tr = golden_tracer()
        path = tmp_path / "trace.jsonl"
        tr.write_jsonl(str(path))
        events = load_jsonl(str(path))
        # Meta line excluded; event payloads match to_json output.
        assert events == [e.to_json() for e in tr.sorted_events()]

    def test_schema_constant(self):
        assert SCHEMA == "repro-obs-trace/1"


class TestChromeExport:
    def test_chrome_shape(self, tmp_path):
        tr = golden_tracer()
        doc = tr.to_chrome()
        assert doc["otherData"]["schema"] == SCHEMA
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases == ["X", "X", "C", "i"]
        span = doc["traceEvents"][0]
        assert span["name"] == "compile"
        assert span["ts"] == 0.01 and span["dur"] == 0.03  # ns -> us
        counter = doc["traceEvents"][2]
        assert counter["args"] == {"gc.live_bytes": 128}
        path = tmp_path / "chrome.json"
        tr.write_chrome(str(path))
        assert json.loads(path.read_text()) == doc
