import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def _clean_obs_runtime():
    """Telemetry state is process-wide; never leak it between tests."""
    runtime.reset()
    yield
    runtime.reset()
