"""GC telemetry: pause breakdown spans, heap counters, the always-on
GCStats extensions (live bytes/objects, per-kind check counts, reset),
and the opt-in allocation-size histogram."""

from repro.gc import Collector
from repro.gc.collector import GCStats
from repro.obs.tracer import Tracer


def collector_with_roots(tracer=None):
    gc = Collector(tracer=tracer)
    roots: list[int] = []
    gc.add_root_provider(lambda: roots)
    return gc, roots


def make_chain(gc, length, link_offset=4):
    head = gc.malloc(8)
    node = head
    for _ in range(length - 1):
        nxt = gc.malloc(8)
        gc.memory.store_word(node + link_offset, nxt)
        node = nxt
    return head


class TestCollectSpan:
    def test_traced_collection_has_pause_breakdown(self):
        tracer = Tracer()
        gc, roots = collector_with_roots(tracer)
        roots.append(make_chain(gc, 10))
        make_chain(gc, 5)  # garbage
        gc.collect()
        spans = [e for e in tracer.events if e.name == "gc.collect"]
        assert len(spans) == 1
        args = spans[0].args
        assert args["number"] == 1
        assert args["reclaimed_objects"] == 5
        assert args["live_objects"] == 10
        assert args["live_bytes"] == gc.heap.bytes_in_use
        # The phase breakdown is populated and bounded by the pause.
        assert args["pause_ns"] > 0
        for phase in ("root_scan_ns", "mark_ns", "sweep_ns"):
            assert 0 <= args[phase] <= args["pause_ns"]
        assert args["marked"] >= 10
        assert 0.0 <= args["fragmentation"] <= 1.0

    def test_heap_counters_emitted(self):
        tracer = Tracer()
        gc, roots = collector_with_roots(tracer)
        make_chain(gc, 5)
        gc.collect()
        names = {e.name for e in tracer.events if e.kind == "counter"}
        assert {"gc.live_bytes", "gc.live_objects", "gc.fragmentation",
                "gc.pause_ns"} <= names

    def test_untraced_collection_emits_nothing(self):
        gc, roots = collector_with_roots()  # default disabled tracer
        make_chain(gc, 5)
        gc.collect()
        assert gc.tracer.enabled is False
        assert gc.tracer.events == []

    def test_traced_and_untraced_reclaim_identically(self):
        plain, proots = collector_with_roots()
        traced, troots = collector_with_roots(Tracer())
        for gc, roots in ((plain, proots), (traced, troots)):
            roots.append(make_chain(gc, 12))
            make_chain(gc, 7)
        assert plain.collect() == traced.collect()
        assert plain.heap.objects_in_use == traced.heap.objects_in_use
        assert plain.stats.live_bytes == traced.stats.live_bytes


class TestGCStatsExtensions:
    def test_live_bytes_tracked_without_tracer(self):
        gc, roots = collector_with_roots()
        roots.append(make_chain(gc, 10))
        make_chain(gc, 5)
        gc.collect()
        assert gc.stats.live_objects == 10
        assert gc.stats.live_bytes == gc.heap.bytes_in_use
        assert gc.stats.gc_pause_ns > 0
        assert gc.stats.max_pause_ns > 0
        assert gc.stats.max_pause_ns <= gc.stats.gc_pause_ns

    def test_pause_breakdown_accumulates(self):
        gc, roots = collector_with_roots()
        for _ in range(3):
            make_chain(gc, 5)
            gc.collect()
        s = gc.stats
        assert s.collections == 3
        assert s.root_scan_ns + s.mark_ns + s.sweep_ns <= s.gc_pause_ns

    def test_check_kind_attribution(self):
        gc, _roots = collector_with_roots()
        p = gc.malloc(32)
        gc.same_obj(p, p + 8)
        gc.check_base(p)
        gc.pre_incr(p, 4)
        gc.post_incr(p, 4)
        s = gc.stats
        assert s.same_obj_checks == 1
        assert s.base_checks == 1
        assert s.incr_checks == 2
        assert s.checks_performed == 4

    def test_reset(self):
        gc, roots = collector_with_roots()
        make_chain(gc, 5)
        gc.collect()
        assert gc.stats.collections == 1
        gc.stats.reset()
        assert gc.stats == GCStats()

    def test_alloc_histogram_only_when_traced(self):
        plain, _ = collector_with_roots()
        plain.malloc(24)
        assert plain.stats.alloc_histogram == {}

        traced, _ = collector_with_roots(Tracer())
        traced.malloc(24)          # bucket 5: 16..31 bytes
        traced.malloc(24)
        traced.malloc_atomic(100)  # bucket 7: 64..127 bytes
        hist = traced.stats.alloc_histogram
        assert hist[(24).bit_length()] == 2
        assert hist[(100).bit_length()] == 1
