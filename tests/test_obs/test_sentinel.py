"""The perf-regression sentinel: trajectory validation, noise bounds,
verdicts against seeded histories, and the ``trajectory --check`` /
``top`` / ``sentinel`` CLI surfaces."""

import json

import pytest

from repro.obs import runtime
from repro.obs.cli import main as obs_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.sentinel import (
    TRAJECTORY_SCHEMA, run_sentinel, validate_trajectory, wall_bound,
)

TINY = """
int main(void) {
    char *s = (char *)GC_malloc(16);
    int i, t = 0;
    for (i = 0; i < 10; i++) s[i] = i * 2;
    for (i = 0; i < 10; i++) t += s[i];
    return t;
}
"""


def _fresh_cells(**kwargs) -> dict:
    """One baseline measurement of TINY (no trajectories to gate on)."""
    verdict = run_sentinel(workload="tiny", source=TINY, configs=("O",),
                           repeats=1, trajectories=[], **kwargs)
    assert verdict["ok"]
    return verdict["configs"]


def _write_point_doc(path, cells, workload="tiny", model="ss10",
                     n_points=1) -> str:
    doc = {"schema": TRAJECTORY_SCHEMA,
           "points": [{"date": "2026-01-01", "workload": workload,
                       "model": model, "label": f"seed {i}",
                       "configs": cells} for i in range(n_points)]}
    path.write_text(json.dumps(doc, indent=2))
    return str(path)


class TestValidateTrajectory:
    def test_missing_file(self, tmp_path):
        issues = validate_trajectory(str(tmp_path / "BENCH_nope.json"))
        assert issues and "missing" in issues[0]

    def test_malformed_json(self, tmp_path):
        p = tmp_path / "BENCH_bad.json"
        p.write_text("{not json")
        assert any("malformed" in i for i in validate_trajectory(str(p)))

    def test_wrong_schema(self, tmp_path):
        p = tmp_path / "BENCH_odd.json"
        p.write_text(json.dumps({"schema": "repro-other/9", "points": []}))
        assert any("unexpected schema" in i
                   for i in validate_trajectory(str(p)))

    def test_empty_points_and_empty_list(self, tmp_path):
        p = tmp_path / "BENCH_empty.json"
        p.write_text(json.dumps({"schema": TRAJECTORY_SCHEMA, "points": []}))
        assert any("empty trajectory" in i
                   for i in validate_trajectory(str(p)))
        p.write_text("[]")
        assert any("empty trajectory" in i
                   for i in validate_trajectory(str(p)))

    def test_point_missing_cell_keys(self, tmp_path):
        p = tmp_path / "BENCH_thin.json"
        p.write_text(json.dumps({
            "schema": TRAJECTORY_SCHEMA,
            "points": [{"workload": "w", "model": "m",
                        "configs": {"O": {"cycles": 1}}}]}))
        issues = validate_trajectory(str(p))
        assert any("missing" in i and "wall_s" in i for i in issues)

    def test_record_list_with_unknown_schema(self, tmp_path):
        p = tmp_path / "BENCH_recs.json"
        p.write_text(json.dumps([{"schema": "repro-unknown/1"}]))
        assert any("unknown schema" in i for i in validate_trajectory(str(p)))

    def test_repo_seeds_are_valid(self):
        for path in ("BENCH_obs.json", "BENCH_exec.json", "BENCH_vm2.json"):
            assert validate_trajectory(path) == []


class TestWallBound:
    def test_single_point_history_gets_slack_floor(self):
        # MAD of one point is 0; the slack floor keeps the bound usable.
        assert wall_bound([2.0]) == pytest.approx(3.0)

    def test_mad_dominates_when_larger(self):
        history = [1.0, 1.0, 1.0, 9.0]  # median 1.0, MAD 0.0 -> floor
        assert wall_bound(history) == pytest.approx(1.5)
        history = [0.5, 1.0, 1.5, 2.0, 9.0]  # median 1.5, MAD 0.5
        assert wall_bound(history, wall_slack=0.1, mad_k=4.0) == \
            pytest.approx(1.5 + 2.0)


class TestRunSentinel:
    def test_green_against_matching_history(self, tmp_path):
        cells = _fresh_cells()
        traj = _write_point_doc(tmp_path / "BENCH_tiny.json", cells)
        verdict = run_sentinel(workload="tiny", source=TINY, configs=("O",),
                               repeats=2, trajectories=[traj],
                               wall_slack=50.0)
        assert verdict["schema"] == "repro-obs-sentinel/1"
        assert verdict["counts_ok"] and verdict["ok"]
        kinds = {c["kind"] for c in verdict["checks"]}
        assert {"counts", "wall"} <= kinds
        assert all(c["ok"] for c in verdict["checks"])
        # The fresh measurement ships its metrics snapshot along.
        assert verdict["metrics"]["metrics"]["vm.runs"]["value"] == 2

    def test_count_drift_fails_hard(self, tmp_path):
        cells = json.loads(json.dumps(_fresh_cells()))
        cells["O"]["cycles"] += 1
        traj = _write_point_doc(tmp_path / "BENCH_tiny.json", cells)
        verdict = run_sentinel(workload="tiny", source=TINY, configs=("O",),
                               repeats=1, trajectories=[traj])
        assert not verdict["counts_ok"]
        assert not verdict["ok"]
        bad = [c for c in verdict["checks"]
               if c["kind"] == "counts" and not c["ok"]]
        assert bad and "cycles" in bad[0]["detail"]

    def test_wall_breach_is_advisory_unless_strict(self, tmp_path):
        cells = json.loads(json.dumps(_fresh_cells()))
        cells["O"]["wall_s"] = 1e-07  # unreachable bound
        traj = _write_point_doc(tmp_path / "BENCH_tiny.json", cells)
        kwargs = dict(workload="tiny", source=TINY, configs=("O",),
                      repeats=1, trajectories=[traj])
        advisory = run_sentinel(**kwargs)
        assert advisory["counts_ok"] and not advisory["wall_ok"]
        assert advisory["ok"]  # advisory by default
        strict = run_sentinel(strict_wall=True, **kwargs)
        assert not strict["ok"]

    def test_malformed_trajectory_fails_validation(self, tmp_path):
        p = tmp_path / "BENCH_bad.json"
        p.write_text("{broken")
        verdict = run_sentinel(workload="tiny", source=TINY, configs=("O",),
                               repeats=1, trajectories=[str(p)])
        assert not verdict["ok"]
        assert any(c["kind"] == "validate" and not c["ok"]
                   for c in verdict["checks"])

    def test_append_grows_the_trajectory(self, tmp_path):
        cells = _fresh_cells()
        traj = _write_point_doc(tmp_path / "BENCH_tiny.json", cells)
        verdict = run_sentinel(workload="tiny", source=TINY, configs=("O",),
                               repeats=1, trajectories=[traj], append=True,
                               label="fresh")
        assert verdict["appended"] and verdict["appended_to"] == traj
        doc = json.loads((tmp_path / "BENCH_tiny.json").read_text())
        assert len(doc["points"]) == 2
        assert doc["points"][-1]["label"] == "fresh"

    def test_caller_registry_is_restored(self):
        mine = runtime.set_metrics(MetricsRegistry())
        try:
            mine.counter("caller.marker").inc(7)
            run_sentinel(workload="tiny", source=TINY, configs=("O",),
                         repeats=1, trajectories=[])
            assert runtime.get_metrics() is mine
            # ...and the sentinel's VM runs did not leak into it.
            assert mine.get("vm.runs") is None
            assert mine.get("caller.marker").value == 7
        finally:
            runtime.set_metrics(None)


class TestTrajectoryCheckCLI:
    def test_check_ok(self, tmp_path, capsys):
        cells = _fresh_cells()
        traj = _write_point_doc(tmp_path / "BENCH_tiny.json", cells)
        assert obs_main(["trajectory", "--check", traj]) == 0
        assert "1 file(s) valid" in capsys.readouterr().out

    def test_check_fails_on_malformed(self, tmp_path, capsys):
        p = tmp_path / "BENCH_bad.json"
        p.write_text("{broken")
        assert obs_main(["trajectory", "--check", str(p)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_check_fails_on_empty_trajectory(self, tmp_path, capsys):
        p = tmp_path / "BENCH_hollow.json"
        p.write_text(json.dumps({"schema": TRAJECTORY_SCHEMA, "points": []}))
        assert obs_main(["trajectory", "--check", str(p)]) == 1
        assert "empty trajectory" in capsys.readouterr().err

    def test_check_repo_defaults(self):
        # The committed BENCH_*.json seeds must stay valid (CI runs this
        # exact invocation from the repo root).
        assert obs_main(["trajectory", "--check", "--quiet"]) == 0


class TestTopCLI:
    def test_once_renders_latest_snapshot(self, tmp_path, capsys):
        path = str(tmp_path / "m.jsonl")
        reg = MetricsRegistry()
        reg.counter("vm.runs").inc(3)
        reg.write_jsonl(path, append=False)
        assert obs_main(["top", path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "vm.runs" in out and "live metric(s)" in out

    def test_once_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert obs_main(["top", str(tmp_path / "none.jsonl"),
                         "--once"]) == 1
