"""Telemetry must be observation-only: enabling the tracer and the
profiler may never perturb simulated cycle, instruction, check, or
collection counts — across every build config and machine model."""

import pytest

from repro.gc import Collector
from repro.machine import CompileConfig, VM, compile_source
from repro.machine.models import MODELS
from repro.obs import runtime
from repro.workloads import WORKLOADS, load_workload

CONFIGS = ("O0", "O", "O_safe", "g", "g_checked")

# Small but busy: heap churn (so the threshold collector actually runs),
# pointer arithmetic (checks in the checked configs), and calls.
PROGRAM = """
struct node { int v; struct node *next; };
struct node *cons(int v, struct node *rest) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    n->v = v;
    n->next = rest;
    return n;
}
int sum(struct node *list) {
    int s = 0;
    for (; list; list = list->next) s += list->v;
    return s;
}
int main(void) {
    int round, s = 0;
    for (round = 0; round < 8; round++) {
        struct node *list = 0;
        int i;
        for (i = 0; i < 25; i++) list = cons(i, list);
        s += sum(list);
    }
    return s & 0xFF;
}
"""


def run_once(config_name: str, model_key: str, source: str = PROGRAM,
             stdin: str = "", gc_interval: int = 0):
    config = CompileConfig.named(config_name, MODELS[model_key])
    compiled = compile_source(source, config)
    vm = VM(compiled.asm, config.model, collector=Collector(),
            gc_interval=gc_interval)
    vm.stdin = stdin
    result = vm.run()
    return (result.exit_code, result.cycles, result.instructions,
            result.collections, result.checks)


class TestFullMatrix:
    @pytest.mark.parametrize("model_key", tuple(MODELS))
    @pytest.mark.parametrize("config_name", CONFIGS)
    def test_counts_bit_identical_with_telemetry(self, config_name, model_key):
        baseline = run_once(config_name, model_key, gc_interval=500)
        runtime.enable_tracing()
        runtime.enable_profiling()
        telemetered = run_once(config_name, model_key, gc_interval=500)
        runtime.reset()
        assert telemetered == baseline
        rerun = run_once(config_name, model_key, gc_interval=500)
        assert rerun == baseline

    def test_matrix_exercises_collections_and_checks(self):
        # The program must actually stress what the matrix claims to
        # cover, or the parametrized assertions are vacuous.
        assert run_once("O", "ss10", gc_interval=500)[3] > 0
        assert run_once("g_checked", "ss10")[4] > 0


@pytest.mark.slow
class TestWorkloadDeterminism:
    def test_miniawk_bit_identical_with_telemetry(self):
        source = load_workload("miniawk")
        stdin = WORKLOADS["miniawk"].stdin
        baseline = run_once("O_safe", "ss10", source, stdin)
        runtime.enable_tracing()
        runtime.enable_profiling()
        telemetered = run_once("O_safe", "ss10", source, stdin)
        runtime.reset()
        assert telemetered == baseline
