"""Summary aggregation (``repro-obs-summary/1``) and text rendering,
on synthetic events and on a real recorded run."""

from repro.gc import Collector
from repro.machine import CompileConfig, VM, compile_source
from repro.machine.models import MODELS
from repro.obs import runtime
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry
from repro.obs.report import (SUMMARY_SCHEMA, render_compile_report,
                              render_gc_report, render_percentiles_report,
                              render_text, render_vm_report, summarize)
from repro.obs.tracer import Tracer

PROGRAM = """
int main(void) {
    char *p;
    int i, s = 0;
    for (i = 0; i < 40; i++) {
        p = (char *)GC_malloc(32);
        p[0] = (char)i;
        s += p[0];
    }
    return s & 0xFF;
}
"""


def synthetic_events():
    return [
        {"kind": "span", "name": "compile", "t0": 0, "dur": 1000},
        {"kind": "span", "name": "cfront.parse", "t0": 10, "dur": 200},
        {"kind": "span", "name": "cfront.parse", "t0": 300, "dur": 100},
        {"kind": "span", "name": "opt.local", "t0": 400, "dur": 50,
         "args": {"rewrites": 3, "insts_delta": -2, "changed": True}},
        {"kind": "span", "name": "opt.local", "t0": 500, "dur": 50,
         "args": {"rewrites": 0, "insts_delta": 0, "changed": False}},
        {"kind": "span", "name": "opt.function", "t0": 390, "dur": 200},
        {"kind": "span", "name": "gc.collect", "t0": 600, "dur": 120,
         "args": {"number": 1, "pause_ns": 120, "root_scan_ns": 20,
                  "mark_ns": 40, "sweep_ns": 60, "marked": 7,
                  "reclaimed_objects": 3, "alloc_since_gc": 512,
                  "live_bytes": 2048, "live_objects": 7,
                  "fragmentation": 0.25}},
        {"kind": "span", "name": "gc.collect", "t0": 800, "dur": 80,
         "args": {"number": 2, "pause_ns": 80, "root_scan_ns": 10,
                  "mark_ns": 30, "sweep_ns": 40, "marked": 5,
                  "reclaimed_objects": 2, "alloc_since_gc": 256,
                  "live_bytes": 1024, "live_objects": 5,
                  "fragmentation": 0.5}},
        {"kind": "span", "name": "vm.run", "t0": 550, "dur": 5000,
         "args": {"cycles": 900, "instructions": 800, "collections": 2,
                  "checks": 4}},
        {"kind": "instant", "name": "gc.stats", "t0": 900,
         "args": {"alloc_histogram": {"6": 40}}},
    ]


class TestSummarize:
    def test_schema_and_sections(self):
        s = summarize(synthetic_events())
        assert s["schema"] == SUMMARY_SCHEMA
        assert set(s) >= {"compile", "gc", "vm"}

    def test_compile_aggregation(self):
        s = summarize(synthetic_events())
        comp = s["compile"]
        assert comp["units"] == 1 and comp["total_ns"] == 1000
        assert comp["phases"]["cfront.parse"] == {"ns": 300, "count": 2}
        local = comp["opt_passes"]["local"]
        assert local == {"ns": 100, "runs": 2, "rewrites": 3,
                         "insts_delta": -2, "changed_runs": 1}
        # opt.function is the per-function envelope, not a pass.
        assert "function" not in comp["opt_passes"]

    def test_gc_aggregation(self):
        gc = summarize(synthetic_events())["gc"]
        assert gc["collections"] == 2
        assert gc["pause_ns_total"] == 200
        assert gc["pause_ns_max"] == 120
        assert gc["pause_ns_avg"] == 100
        assert gc["root_scan_ns"] == 30
        assert gc["mark_ns"] == 70
        assert gc["sweep_ns"] == 100
        assert gc["reclaimed_objects"] == 5
        assert gc["live_bytes_last"] == 1024
        assert len(gc["timeline"]) == 2
        assert gc["stats"]["alloc_histogram"] == {"6": 40}

    def test_vm_aggregation(self):
        vm = summarize(synthetic_events())["vm"]
        assert vm == {"runs": 1, "wall_ns": 5000, "cycles": 900,
                      "instructions": 800, "collections": 2, "checks": 4}

    def test_accepts_trace_events_and_dicts(self):
        tr = Tracer()
        with tr.span("compile"):
            pass
        assert summarize(tr.events)["compile"]["units"] == 1
        assert summarize([e.to_json() for e in tr.events]
                         )["compile"]["units"] == 1


class TestPercentiles:
    def test_synthesized_from_spans(self):
        # No metrics registry was active during the run: the percentile
        # histograms are rebuilt from gc.collect / vm.run span args.
        s = summarize(synthetic_events())
        pct = s["percentiles"]
        assert pct["gc.pause_ns"]["count"] == 2
        assert pct["gc.pause_ns"]["max"] == 120
        assert pct["gc.sweep_ns"]["count"] == 2
        assert pct["vm.run_cycles"] == {
            "count": 1, "p50": 900, "p95": 900, "p99": 900, "max": 900}
        assert pct["vm.run_wall_ns"]["max"] == 5000
        assert "metrics" not in s  # nothing was embedded

    def test_metrics_payload_wins_over_synthesis(self):
        reg = MetricsRegistry()
        for v in (100, 200, 300, 400):
            reg.histogram("gc.pause_ns").observe(v)
        reg.histogram("vm.run_cycles", bounds=COUNT_BUCKETS,
                      det=True).observe(2_560_902)
        reg.counter("vm.instructions").inc(1_570_004)
        events = synthetic_events() + [
            {"kind": "instant", "name": "obs.metrics", "t0": 999,
             "args": {"metrics": reg.to_dict()}}]
        s = summarize(events)
        # The embedded payload drives the section — 4 observations, not
        # the 2 gc.collect spans.
        assert s["percentiles"]["gc.pause_ns"]["count"] == 4
        assert s["percentiles"]["vm.run_cycles"]["max"] == 2_560_902
        assert s["metrics"]["vm.instructions"]["value"] == 1_570_004

    def test_registry_argument_drives_section(self):
        reg = MetricsRegistry()
        reg.histogram("exec.task_wall_ns").observe(50_000_000)
        s = summarize([], metrics=reg)
        assert s["percentiles"]["exec.task_wall_ns"]["count"] == 1

    def test_render_percentiles(self):
        s = summarize(synthetic_events())
        text = render_percentiles_report(s)
        assert "latency percentiles" in text
        assert "gc.pause_ns" in text
        assert "vm.run_cycles" in text
        assert "900" in text              # counts render raw
        assert render_percentiles_report({}) == \
            "percentiles: no histogram data recorded"
        # ...and the full text report includes the section.
        assert "latency percentiles" in render_text(s)


class TestRenderText:
    def test_sections_render(self):
        s = summarize(synthetic_events())
        text = render_text(s)
        assert "Compile pipeline" in text
        assert "optimizer passes" in text
        assert "GC: 2 collection(s)" in text
        assert "root-scan" in text
        assert "allocation-size histogram" in text
        assert "VM: 1 run(s)" in text

    def test_empty_trace_renders(self):
        s = summarize([])
        assert "no collections" in render_gc_report(s)
        assert "no runs" in render_vm_report(s)
        assert "0 unit(s)" in render_compile_report(s)


class TestEndToEndSummary:
    def test_real_run_summary(self):
        tracer = runtime.enable_tracing()
        profile = runtime.enable_profiling()
        config = CompileConfig.named("g_checked", MODELS["ss10"])
        compiled = compile_source(PROGRAM, config)
        result = VM(compiled.asm, config.model, collector=Collector(),
                    gc_interval=100).run()
        runtime.reset()
        s = summarize(tracer.events, profile)
        assert s["compile"]["units"] == 1
        assert s["compile"]["phases"]["cfront.parse"]["count"] == 1
        assert s["vm"]["cycles"] == result.cycles
        assert s["gc"]["collections"] == result.collections > 0
        assert s["profile"]["total_cycles"] == result.cycles
        text = render_text(s, profile)
        assert "VM hot-spot profile" in text
