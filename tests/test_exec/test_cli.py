"""CLI surface: ``repro cache stats|clear|verify``, ``repro bench
--workers/--cache-dir``, and ``python -m repro.fuzz --workers``."""

import json

import pytest

from repro.cli import main as repro_main
from repro.fuzz.cli import main as fuzz_main

PROG = "int main(void) { return 3; }"


@pytest.fixture
def prog_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROG)
    return str(path)


@pytest.fixture
def no_env_cache_dir(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


class TestCacheCLI:
    def test_no_cache_dir_is_an_error(self, capsys, no_env_cache_dir):
        assert repro_main(["cache", "stats"]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_cache_dir_from_environment(self, capsys, monkeypatch, cache_root):
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_root)
        assert repro_main(["cache", "stats"]) == 0
        assert cache_root in capsys.readouterr().out

    def test_stats_on_empty_root(self, capsys, cache_root):
        assert repro_main(["cache", "stats", "--cache-dir", cache_root,
                           "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["compile"] == {"entries": 0, "bytes": 0}
        assert report["result"] == {"entries": 0, "bytes": 0}

    def test_cc_populates_then_stats_clear_verify(self, capsys, cache_root,
                                                  prog_file):
        assert repro_main(["cc", prog_file, "--cache-dir", cache_root]) == 3
        err = capsys.readouterr().err
        assert "cache[compile]: 0 hits, 1 misses, 1 stores" in err
        # Second run is a pure hit.
        assert repro_main(["cc", prog_file, "--cache-dir", cache_root]) == 3
        err = capsys.readouterr().err
        assert "cache[compile]: 1 hits, 0 misses, 0 stores" in err

        assert repro_main(["cache", "stats", "--cache-dir", cache_root,
                           "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["compile"]["entries"] == 1
        assert report["compile"]["bytes"] > 0

        assert repro_main(["cache", "verify", "--cache-dir", cache_root]) == 0
        assert "compile: 1/1 ok, 0 corrupt" in capsys.readouterr().out

        assert repro_main(["cache", "clear", "--cache-dir", cache_root]) == 0
        assert "compile: removed 1 entries" in capsys.readouterr().out
        assert repro_main(["cache", "stats", "--cache-dir", cache_root,
                           "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["compile"]["entries"] == 0

    def test_verify_exits_nonzero_on_corruption(self, capsys, cache_root,
                                                prog_file):
        from repro.exec.cache import CompileCache
        repro_main(["cc", prog_file, "--cache-dir", cache_root])
        capsys.readouterr()
        entry, = CompileCache(cache_root + "/compile").entry_paths()
        with open(entry, "r+b") as fh:
            fh.truncate(10)
        assert repro_main(["cache", "verify", "--cache-dir", cache_root,
                           "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["compile"] == {"checked": 1, "ok": 0, "evicted": 1}


class TestBenchCLI:
    def _bench(self, capsys, *extra):
        rc = repro_main(["bench", "--model", "ss10", "--workloads", "tiny",
                         *extra])
        assert rc == 0
        return capsys.readouterr()

    def test_workers_table_is_byte_identical(self, capsys, tiny_workloads):
        serial = self._bench(capsys)
        sharded = self._bench(capsys, "--workers", "2")
        assert sharded.out == serial.out

    def test_cache_warm_rerun_identical_with_hits(self, capsys, tiny_workloads,
                                                  cache_root):
        cold = self._bench(capsys, "--workers", "2",
                           "--cache-dir", cache_root)
        assert "cache[result]: 0 hits" in cold.err
        warm = self._bench(capsys, "--workers", "2",
                           "--cache-dir", cache_root)
        assert warm.out == cold.out
        # Every cell replays from the result tier on the warm run.
        assert "cache[result]: 4 hits, 0 misses" in warm.err


class TestFuzzCLI:
    def test_workers_smoke(self, capsys, no_env_cache_dir):
        rc = fuzz_main(["--seed", "0", "--iters", "2", "--models", "ss10",
                        "--workers", "2", "--quiet"])
        assert rc == 0

    def test_workers_output_matches_serial(self, capsys, cache_root):
        argv = ["--seed", "0", "--iters", "3", "--models", "ss10",
                "--cache-dir", cache_root]
        assert fuzz_main(argv + ["--workers", "1"]) == 0
        serial = capsys.readouterr()
        assert fuzz_main(argv + ["--workers", "2"]) == 0
        sharded = capsys.readouterr()

        def stable(text):
            # Drop the wall-clock stage-attribution line; everything
            # else the campaign prints is deterministic.
            return [ln for ln in text.splitlines()
                    if not ln.startswith("stage wall:")]

        assert stable(sharded.out) == stable(serial.out)
        # The serial (cold) run populated the cache; the sharded re-run
        # compiles nothing — every lookup is a hit.
        assert "15 misses, 15 stores" in serial.err
        assert "42 hits, 0 misses, 0 stores" in sharded.err
