"""GCStats serialization + merge (satellite): collector counters are
process-local, so sharded campaigns must fold worker snapshots into the
parent explicitly — and the fold must reproduce serial aggregates."""

from repro.fuzz.campaign import run_campaign
from repro.gc.collector import GCStats

from .conftest import WORKERS

# The sharded-vs-serial equivalence contract pins exactly the
# deterministic (simulated) counters; wall-clock ns fields are
# observational and may differ run to run.
DETERMINISTIC_FIELDS = (
    "collections", "bytes_allocated", "objects_allocated",
    "objects_reclaimed", "bytes_reclaimed", "checks_performed",
    "same_obj_checks", "incr_checks", "base_checks",
)


def _det(stats: GCStats) -> dict:
    return {name: getattr(stats, name) for name in DETERMINISTIC_FIELDS}


class TestMergeUnit:
    def test_counters_are_additive(self):
        a = GCStats(collections=2, same_obj_checks=10, incr_checks=3,
                    base_checks=1, bytes_allocated=256)
        b = GCStats(collections=1, same_obj_checks=5, incr_checks=7,
                    bytes_allocated=64)
        a.merge(b)
        assert a.collections == 3
        assert a.same_obj_checks == 15
        assert a.incr_checks == 10
        assert a.base_checks == 1
        assert a.bytes_allocated == 320

    def test_max_pause_takes_maximum(self):
        a = GCStats(gc_pause_ns=100, max_pause_ns=60)
        a.merge(GCStats(gc_pause_ns=50, max_pause_ns=45))
        assert a.gc_pause_ns == 150  # total: additive
        assert a.max_pause_ns == 60  # peak: maximum
        a.merge(GCStats(max_pause_ns=90))
        assert a.max_pause_ns == 90

    def test_histogram_merges_keywise(self):
        a = GCStats(alloc_histogram={3: 2, 5: 1})
        a.merge(GCStats(alloc_histogram={3: 4, 7: 9}))
        assert a.alloc_histogram == {3: 6, 5: 1, 7: 9}

    def test_pause_and_sweep_histograms_merge_keywise(self):
        a = GCStats(pause_histogram={14: 2, 16: 1}, sweep_histogram={13: 3})
        a.merge(GCStats(pause_histogram={14: 1, 20: 5},
                        sweep_histogram={13: 1, 15: 2}))
        assert a.pause_histogram == {14: 3, 16: 1, 20: 5}
        assert a.sweep_histogram == {13: 4, 15: 2}

    def test_histogram_merge_accepts_string_buckets(self):
        # JSON round-trips stringify dict keys; merge must re-int them
        # so a worker snapshot that crossed a pipe folds identically.
        a = GCStats(pause_histogram={14: 1})
        a.merge({"pause_histogram": {"14": 2, "17": 1}})
        assert a.pause_histogram == {14: 3, 17: 1}

    def test_dict_roundtrip(self):
        a = GCStats(collections=4, same_obj_checks=11, max_pause_ns=7,
                    alloc_histogram={2: 3})
        d = a.to_dict()
        # The snapshot is picklable-simple: plain ints + one plain dict,
        # exactly what crosses the worker pipe.
        assert d["alloc_histogram"] == {2: 3}
        assert d["alloc_histogram"] is not a.alloc_histogram
        b = GCStats.from_dict(d)
        assert b.to_dict() == d

    def test_empty_histograms_elided_from_dict(self):
        # Zero-value elision: a run that never collected serializes
        # identically whether or not the histogram fields were touched.
        d = GCStats(collections=1).to_dict()
        assert "pause_histogram" not in d
        assert "sweep_histogram" not in d
        assert "alloc_histogram" not in d
        full = GCStats(pause_histogram={14: 1}, sweep_histogram={12: 1},
                       alloc_histogram={3: 1}).to_dict()
        assert full["pause_histogram"] == {14: 1}
        assert full["sweep_histogram"] == {12: 1}
        back = GCStats.from_dict(full)
        assert back.pause_histogram == {14: 1}
        assert back.sweep_histogram == {12: 1}

    def test_merge_accepts_raw_dict(self):
        a = GCStats()
        a.merge({"collections": 2, "same_obj_checks": 3})
        assert a.collections == 2
        assert a.same_obj_checks == 3


class TestShardedAggregates:
    def test_sharded_campaign_reports_serial_gc_totals(self):
        # Regression (satellite fix): before GCStats.merge, a sharded
        # campaign silently dropped every worker's collector counters —
        # the aggregate check accounting only reflected the parent
        # process.  Now the deterministic totals must match exactly.
        kwargs = dict(seed=0, iters=4, models=("ss10",), stop_after=None)
        serial = run_campaign(workers=1, **kwargs)
        sharded = run_campaign(workers=WORKERS, **kwargs)
        assert serial.iterations == sharded.iterations == 4
        assert serial.cells == sharded.cells
        totals = _det(serial.gc_totals)
        assert totals == _det(sharded.gc_totals)
        # The campaign exercised the checked config, so the counters the
        # paper cares about are non-trivially non-zero.
        assert totals["checks_performed"] > 0
        assert totals["same_obj_checks"] > 0
        assert totals["collections"] > 0
        # The pause histogram is maintained on every collect path (its
        # bucket *distribution* is wall-dependent, but every collection
        # lands in exactly one bucket — serial and sharded alike).
        assert (sum(serial.gc_totals.pause_histogram.values())
                == totals["collections"])
        assert (sum(sharded.gc_totals.pause_histogram.values())
                == totals["collections"])
