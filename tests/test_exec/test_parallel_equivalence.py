"""Serial-vs-sharded equivalence: the engine's core promise is that
``--workers N`` changes wall-clock time and nothing else.

Fast tests pin byte-identical reports on a tiny synthetic workload and
short campaigns for serial vs 1-worker vs N-worker runs; the
``slow``-marked tests are the acceptance-criterion runs (full benchmark
matrix, 200-iteration seed-0 campaign)."""

import pytest

from repro.bench.harness import Harness
from repro.bench.report import generate
from repro.fuzz.brokenpass import rebroken_addrfold
from repro.fuzz.campaign import run_campaign
from repro.fuzz.gen import generate_program
from repro.fuzz.oracle import check_program
from repro.obs import runtime as obs_runtime

from .conftest import WORKERS


def _cell_obs(cell):
    """The deterministic observables of one benchmark cell."""
    return (cell.workload, cell.config, cell.model, cell.cycles,
            cell.instructions, cell.code_size, cell.exit_code,
            cell.collections, cell.output, cell.postprocessed)


def _rows_obs(rows):
    return {name: {cfg: _cell_obs(cell) for cfg, cell in row.cells.items()}
            for name, row in rows.items()}


class TestBenchEquivalence:
    def test_serial_one_worker_n_workers_identical(self, tiny_workloads):
        runs = [Harness("ss10").run_all(("tiny",), workers=w)
                for w in (1, 2, WORKERS)]
        expect = _rows_obs(runs[0])
        for rows in runs[1:]:
            assert _rows_obs(rows) == expect

    def test_postproc_rows_identical(self, tiny_workloads):
        serial = Harness("ss10").run_postproc_rows(("tiny",), workers=1)
        sharded = Harness("ss10").run_postproc_rows(("tiny",), workers=WORKERS)
        assert {k: _cell_obs(c) for k, c in serial["tiny"].items()} == \
               {k: _cell_obs(c) for k, c in sharded["tiny"].items()}

    def test_sharded_cells_carry_shard_tagged_telemetry(self, tiny_workloads):
        obs_runtime.enable_tracing()
        try:
            Harness("ss10").run_all(("tiny",), workers=2)
            tracer = obs_runtime.get_tracer()
            cells = [e for e in tracer.events if e.name == "bench.cell"]
            assert len(cells) == 4  # one per config
            assert all("shard" in e.args for e in cells)
            assert {e.args["shard"] for e in cells} == {0, 1}
        finally:
            obs_runtime.reset()


class TestOracleEquivalence:
    def test_report_identical_for_any_worker_count(self):
        source = generate_program(0)
        reports = [check_program(source, models=("ss10", "ss2"), workers=w)
                   for w in (1, WORKERS)]
        a, b = reports
        assert a.describe() == b.describe()
        assert a.runs == b.runs
        assert a.gc_totals.same_obj_checks == b.gc_totals.same_obj_checks
        assert a.gc_totals.collections == b.gc_totals.collections


class TestCampaignEquivalence:
    def test_clean_campaign_report_bytes_identical(self):
        kwargs = dict(seed=0, iters=4, models=("ss10",), stop_after=None)
        serial = run_campaign(workers=1, **kwargs)
        sharded = run_campaign(workers=WORKERS, **kwargs)
        assert serial.report() == sharded.report()
        assert serial.ok and sharded.ok

    def test_stop_after_cut_identical_under_sharding(self):
        # Program seed 3 is the first rebroken-addrfold mismatch, so a
        # serial stop_after=1 run consumes iterations 0..3 and stops.
        # The sharded run *executes* all six iterations, but the merge
        # walks records in iteration order applying the same cut — the
        # report (counts, gc totals, findings) must come out identical.
        kwargs = dict(seed=0, iters=6, models=("ss10",), stop_after=1,
                      progress_every=0)
        with rebroken_addrfold():
            serial = run_campaign(workers=1, **kwargs)
            sharded = run_campaign(workers=WORKERS, **kwargs)
        assert not serial.ok
        assert serial.iterations == sharded.iterations == 4
        assert [f.iteration for f in serial.findings] == [3]
        assert [f.iteration for f in sharded.findings] == [3]
        assert serial.report() == sharded.report()


# -- acceptance-criterion runs (slow lane) ---------------------------------

@pytest.mark.slow
class TestFullMatrixEquivalence:
    def test_full_benchmark_report_bytes_identical(self):
        serial = generate(models=("ss10",), workers=1)
        sharded = generate(models=("ss10",), workers=4)
        assert serial == sharded

    @pytest.mark.fuzz
    def test_200_iteration_campaign_bytes_identical(self):
        kwargs = dict(seed=0, iters=200, models=("ss10",), stop_after=None,
                      progress_every=0)
        serial = run_campaign(workers=1, **kwargs)
        sharded = run_campaign(workers=4, **kwargs)
        assert serial.report() == sharded.report()
