"""Engine mechanics: deterministic sharding, canonical merge, and
crash/timeout containment."""

import os
import time

import pytest

from repro.exec import cache as exec_cache
from repro.exec.engine import (
    NO_RETRY, EngineError, plan_shards, run_sharded,
)
from repro.machine.driver import CompileConfig, compile_source
from repro.obs import runtime as obs_runtime

from .conftest import WORKERS


# -- module-level worker functions (must be picklable by name) -------------

def square(x):
    return x * x


def fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd payload {x}")
    return x


def die_on_three(x):
    if x == 3:
        os._exit(17)  # hard death: no exception, no cleanup
    return x


def sleep_on_one(x):
    if x == 1:
        time.sleep(120)
    return x


def traced_task(x):
    tracer = obs_runtime.get_tracer()
    with tracer.span("test.task", payload=x):
        pass
    return x


def compile_task(source):
    compiled = compile_source(source, CompileConfig.named("O"))
    return compiled.asm.code_size()


class TestShardPlan:
    def test_round_robin_by_index(self):
        plan = plan_shards(list("abcdefg"), 3)
        assert plan.workers == 3
        assert [[t.index for t in s] for s in plan.shards] == [
            [0, 3, 6], [1, 4], [2, 5]]
        assert plan.total == 7

    def test_shard_membership_is_pure_function_of_count(self):
        a = plan_shards(range(20), 4)
        b = plan_shards(range(20), 4)
        assert [[t.index for t in s] for s in a.shards] == \
               [[t.index for t in s] for s in b.shards]

    def test_single_worker_single_shard(self):
        plan = plan_shards(range(5), 1)
        assert len(plan.shards) == 1
        assert [t.index for t in plan.shards[0]] == [0, 1, 2, 3, 4]


class TestMerge:
    def test_inline_results_in_payload_order(self):
        merged = run_sharded([3, 1, 2], square, workers=1)
        assert merged.ok
        assert merged.results == [9, 1, 4]

    def test_parallel_results_in_payload_order(self):
        payloads = list(range(11))
        merged = run_sharded(payloads, square, workers=WORKERS)
        assert merged.ok
        assert merged.results == [x * x for x in payloads]

    def test_parallel_matches_inline(self):
        payloads = list(range(7))
        inline = run_sharded(payloads, square, workers=1)
        parallel = run_sharded(payloads, square, workers=WORKERS)
        assert inline.results == parallel.results

    def test_empty_payloads(self):
        assert run_sharded([], square, workers=WORKERS).results == []


class TestContainment:
    def test_task_exception_poisons_only_that_task_inline(self):
        merged = run_sharded([0, 1, 2, 3], fail_on_odd, workers=1)
        assert not merged.ok
        assert merged.results == [0, None, 2, None]
        assert [f.index for f in merged.task_failures] == [1, 3]
        assert "ValueError" in merged.task_failures[0].error

    def test_task_exception_poisons_only_that_task_parallel(self):
        merged = run_sharded([0, 1, 2, 3], fail_on_odd, workers=2)
        assert merged.results == [0, None, 2, None]
        assert [f.index for f in merged.task_failures] == [1, 3]
        assert not merged.shard_failures

    def test_raise_on_failure(self):
        merged = run_sharded([1], fail_on_odd, workers=1)
        with pytest.raises(EngineError, match="odd payload 1"):
            merged.raise_on_failure()

    def test_worker_death_quarantines_the_culprit_task(self):
        # Payload 3 kills every worker that runs it.  The engine retries
        # the lost tasks, attributes the deaths to index 3, quarantines
        # it after the second kill, and contains the pinned rerun's death
        # as a task failure — the innocent co-shard tasks all recover.
        merged = run_sharded(list(range(8)), die_on_three, workers=2)
        assert merged.results[0::2] == [0, 2, 4, 6]
        assert merged.results[1] == 1
        assert merged.results[3] is None
        assert merged.results[5] == 5 and merged.results[7] == 7
        assert not merged.shard_failures
        assert [f.index for f in merged.task_failures] == [3]
        failure = merged.task_failures[0]
        assert failure.shard == 1  # home shard, for deterministic reports
        assert "poison task" in failure.error
        assert merged.worker_deaths >= 2
        assert merged.quarantined == [3]
        with pytest.raises(EngineError, match="poison task"):
            merged.raise_on_failure()

    def test_no_retry_policy_keeps_legacy_shard_loss(self):
        # NO_RETRY restores the pre-resilience contract: a worker death
        # loses the whole remainder of its shard.
        merged = run_sharded(list(range(8)), die_on_three, workers=2,
                             policy=NO_RETRY)
        assert merged.results[0::2] == [0, 2, 4, 6]
        assert merged.results[1] == 1
        assert merged.results[3] is None
        assert len(merged.shard_failures) == 1
        failure = merged.shard_failures[0]
        assert failure.shard == 1
        assert failure.reason == "worker died"
        assert failure.lost_indices == [3, 5, 7]
        with pytest.raises(EngineError, match="worker died"):
            merged.raise_on_failure()

    def test_timeout_poisons_unfinished_shards(self):
        merged = run_sharded(list(range(4)), sleep_on_one, workers=2,
                             timeout=2.0)
        assert merged.results[0::2] == [0, 2]
        assert any(f.reason == "timed out" for f in merged.shard_failures)
        lost = [i for f in merged.shard_failures for i in f.lost_indices]
        assert 1 in lost or 3 in lost


class TestTelemetryMerge:
    def test_worker_spans_come_home_shard_tagged(self):
        obs_runtime.enable_tracing()
        try:
            merged = run_sharded(list(range(6)), traced_task, workers=2)
            assert merged.ok
            tracer = obs_runtime.get_tracer()
            tagged = [e for e in tracer.events
                      if e.name == "test.task" and "shard" in e.args]
            assert len(tagged) == 6
            assert {e.args["shard"] for e in tagged} == {0, 1}
            # Shard-tagged payloads cover every task exactly once.
            assert sorted(e.args["payload"] for e in tagged) == list(range(6))
            # Span ids were re-based: no duplicate ids in the merged stream.
            ids = [e.id for e in tracer.events if e.kind == "span" and e.id]
            assert len(ids) == len(set(ids))
        finally:
            obs_runtime.reset()

    def test_disabled_tracer_collects_nothing(self):
        merged = run_sharded(list(range(4)), traced_task, workers=2)
        assert merged.ok
        assert obs_runtime.get_tracer().events == []


class TestCacheStatsMerge:
    def test_worker_cache_counters_merge_into_parent(self, cache_root):
        sources = [f"int main(void) {{ return {n}; }}" for n in range(6)]
        cache = exec_cache.CompileCache(cache_root)
        with exec_cache.cache_context(cache):
            cold = run_sharded(sources, compile_task, workers=2)
            assert cold.ok
            assert cache.stats.misses == 6
            assert cache.stats.stores == 6
            assert cache.stats.hits == 0
            warm = run_sharded(sources, compile_task, workers=2)
            assert warm.results == cold.results
            assert cache.stats.hits == 6
