"""Content-addressed cache mechanics: roundtrip fidelity, the key
invalidation matrix, corruption containment, and maintenance ops."""

import os

import pytest

from repro.exec import cache as exec_cache
from repro.exec.cache import (
    CODE_VERSION, CacheStats, CompileCache, ResultCache, cache_context,
    config_fingerprint, open_caches, salt_context,
)
from repro.fuzz.brokenpass import rebroken_addrfold
from repro.machine.driver import (
    CompileConfig, compile_cache_key, compile_source,
)
from repro.machine.models import MODELS
from repro.machine.vm import VM

from .conftest import TINY

SRC_A = "int main(void) { return 7; }"
SRC_B = "int main(void) { return 8; }"


def _only_entry(cache):
    paths = list(cache.entry_paths())
    assert len(paths) == 1
    return paths[0]


class TestRoundtrip:
    def test_miss_store_hit(self, cache_root):
        cache = CompileCache(cache_root)
        config = CompileConfig.named("O")
        with cache_context(cache):
            first = compile_source(SRC_A, config)
            assert (cache.stats.misses, cache.stats.stores) == (1, 1)
            second = compile_source(SRC_A, config)
        assert cache.stats.hits == 1
        # The hit is a fresh unpickled program, not an alias ...
        assert second is not first
        # ... with an identical instruction stream.
        assert second.asm.render() == first.asm.render()
        assert second.keep_lives == first.keep_lives

    def test_hit_executes_identically(self, cache_root):
        cache = CompileCache(cache_root)
        config = CompileConfig.named("g_checked")
        with cache_context(cache):
            cold = compile_source(TINY, config)
            warm = compile_source(TINY, config)
        runs = []
        for compiled in (cold, warm):
            vm = VM(compiled.asm, config.model)
            runs.append(vm.run())
        a, b = runs
        assert (a.exit_code, a.cycles, a.instructions, a.output) == \
               (b.exit_code, b.cycles, b.instructions, b.output)

    def test_no_cache_installed_is_transparent(self):
        assert exec_cache.active_cache("compile") is None
        compiled = compile_source(SRC_A, CompileConfig.named("O"))
        assert compiled.asm.code_size() > 0
        assert compile_cache_key(SRC_A, CompileConfig.named("O")) is None


class TestKeyInvalidation:
    """Mutating any key component must produce a different address."""

    def key(self, cache, source=SRC_A, config=None):
        return cache.key_for(source, config or CompileConfig.named("O"))

    def test_source_changes_key(self, cache_root):
        cache = CompileCache(cache_root)
        assert self.key(cache, SRC_A) != self.key(cache, SRC_B)

    @pytest.mark.parametrize("name", ("O0", "O_safe", "g", "g_checked"))
    def test_named_config_changes_key(self, cache_root, name):
        cache = CompileCache(cache_root)
        assert self.key(cache, config=CompileConfig.named(name)) != \
               self.key(cache, config=CompileConfig.named("O"))

    def test_single_flag_changes_key(self, cache_root):
        cache = CompileCache(cache_root)
        base = CompileConfig.named("O")
        for mutated in (
                CompileConfig(optimize=True, safe=True),
                CompileConfig(optimize=True, checked=True),
                CompileConfig(optimize=True, naive_keep_live=True),
                CompileConfig(optimize=True, run_cpp=False)):
            assert self.key(cache, config=mutated) != self.key(cache, config=base)

    def test_pass_list_changes_key(self, cache_root):
        cache = CompileCache(cache_root)
        base = CompileConfig.named("O")
        dropped = CompileConfig(optimize=True, passes=base.passes[:-1])
        reordered = CompileConfig(
            optimize=True, passes=tuple(reversed(base.passes)))
        keys = {self.key(cache, config=c) for c in (base, dropped, reordered)}
        assert len(keys) == 3

    def test_model_changes_key(self, cache_root):
        cache = CompileCache(cache_root)
        keys = {self.key(cache, config=CompileConfig.named("O", MODELS[m]))
                for m in ("ss2", "ss10", "p90")}
        assert len(keys) == 3

    def test_code_version_salt_changes_key(self, cache_root):
        v1 = CompileCache(cache_root, salt=CODE_VERSION)
        v2 = CompileCache(cache_root, salt="repro-exec-cache/999")
        assert self.key(v1) != self.key(v2)

    def test_salt_context_changes_key_and_restores(self, cache_root):
        cache = CompileCache(cache_root)
        outside = self.key(cache)
        with salt_context("experiment-a"):
            inside = self.key(cache)
            with salt_context("experiment-b"):
                nested = self.key(cache)
        assert len({outside, inside, nested}) == 3
        assert self.key(cache) == outside

    def test_rebroken_addrfold_pushes_salt(self, cache_root):
        # The test hook swaps a pass implementation without changing any
        # key component; without its salt a warm cache would serve the
        # *fixed* code and mask the planted bug.
        cache = CompileCache(cache_root)
        clean = self.key(cache)
        with rebroken_addrfold():
            assert self.key(cache) != clean
        assert self.key(cache) == clean

    def test_salted_compiles_do_not_collide(self, cache_root):
        cache = CompileCache(cache_root)
        config = CompileConfig.named("O")
        with cache_context(cache):
            compile_source(SRC_A, config)
            with rebroken_addrfold():
                compile_source(SRC_A, config)
        assert cache.entry_count() == 2
        assert cache.stats.hits == 0

    def test_uncacheable_sources(self, cache_root):
        cache = CompileCache(cache_root)
        assert cache.key_for('#include "lib.h"\nint main(void){return 0;}',
                             CompileConfig.named("O")) is None
        with_dirs = CompileConfig.named("O")
        with_dirs.include_dirs = ["/tmp/headers"]
        assert config_fingerprint(with_dirs) is None
        assert cache.key_for(SRC_A, with_dirs) is None


class TestResultCacheKeys:
    def test_each_run_parameter_changes_key(self, cache_root):
        cache = ResultCache(cache_root)
        config = CompileConfig.named("O")
        base = cache.key_for(SRC_A, config)
        variants = [
            cache.key_for(SRC_A, config, stdin="x"),
            cache.key_for(SRC_A, config, gc_interval=1),
            cache.key_for(SRC_A, config, poison=True),
            cache.key_for(SRC_A, config, postprocessed=True),
            cache.key_for(SRC_A, config, entry="helper"),
            cache.key_for(SRC_A, config, max_instructions=1000),
        ]
        assert base not in variants
        assert len(set(variants)) == len(variants)

    def test_tiers_never_share_addresses(self, cache_root):
        # Same root, same inputs: the "kind" component keeps a compiled
        # program from ever being served as an executed cell.
        config = CompileConfig.named("O")
        assert CompileCache(cache_root).key_for(SRC_A, config) != \
               ResultCache(cache_root).key_for(SRC_A, config)


class TestCorruption:
    def _populate(self, cache_root):
        cache = CompileCache(cache_root)
        config = CompileConfig.named("O")
        with cache_context(cache):
            compile_source(SRC_A, config)
        return cache, config

    def _corrupt(self, path, mutate):
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(mutate(blob))

    @pytest.mark.parametrize("mutate", [
        lambda b: b[:len(b) // 2],                      # truncation
        lambda b: b"XXXXXXXX" + b[8:],                  # bad magic
        lambda b: b[:-4] + bytes(4),                    # flipped payload
        lambda b: b[:8] + bytes(32) + b[40:],           # bad digest
        lambda b: b[:40] + b"not-a-pickle",             # undecodable payload
    ])
    def test_corrupt_entry_evicted_and_recompiled(self, cache_root, mutate):
        cache, config = self._populate(cache_root)
        path = _only_entry(cache)
        self._corrupt(path, mutate)
        with cache_context(cache):
            compiled = compile_source(SRC_A, config)
        assert compiled.asm.code_size() > 0
        assert cache.stats.corrupt_evicted >= 1
        assert cache.stats.hits == 0
        # The recompile re-stored a good entry under the same address.
        assert os.path.exists(path)
        key = cache.key_for(SRC_A, config)
        assert cache.get(key) is not None

    def test_verify_reports_and_evicts(self, cache_root):
        cache, config = self._populate(cache_root)
        with cache_context(cache):
            compile_source(SRC_B, config)
        assert cache.entry_count() == 2
        self._corrupt(sorted(cache.entry_paths())[0], lambda b: b[:10])
        report = cache.verify()
        assert report == {"checked": 2, "ok": 1, "evicted": 1}
        assert cache.entry_count() == 1
        assert cache.verify() == {"checked": 1, "ok": 1, "evicted": 0}

    def test_clear(self, cache_root):
        cache, _ = self._populate(cache_root)
        assert cache.entry_count() == 1
        assert cache.total_bytes() > 0
        assert cache.clear() == 1
        assert cache.entry_count() == 0
        assert cache.stats.cleared == 1


class TestStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate() == 0.75
        assert CacheStats().hit_rate() == 0.0

    def test_merge_accepts_stats_and_dicts(self):
        stats = CacheStats(hits=1, misses=2, stores=2)
        stats.merge(CacheStats(hits=4, corrupt_evicted=1))
        stats.merge({"hits": 1, "misses": 1, "stores": 0,
                     "corrupt_evicted": 0, "cleared": 3})
        assert stats.to_dict() == {"hits": 6, "misses": 3, "stores": 2,
                                   "corrupt_evicted": 1, "cleared": 3,
                                   "breaker_trips": 0, "write_errors": 0}


class TestOpenCaches:
    def test_two_tiers_under_one_root(self, cache_root):
        compile_cache, result_cache = open_caches(cache_root)
        assert compile_cache.kind == "compile"
        assert result_cache.kind == "result"
        assert compile_cache.root == os.path.join(
            os.path.abspath(cache_root), "compile")
        assert result_cache.root == os.path.join(
            os.path.abspath(cache_root), "result")
