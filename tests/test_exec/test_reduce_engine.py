"""Reducer-through-engine (satellite): delta-debugging probes route
through the execution engine pinned to ``workers=1``, and reduction
under a warm compile cache minimizes to the same program as cold."""

from repro.exec.cache import CompileCache, cache_context
from repro.fuzz.brokenpass import rebroken_addrfold
from repro.fuzz.oracle import check_program, mismatch_predicate
from repro.fuzz.reduce import ReduceStats, reduce_source
from repro.obs import runtime as obs_runtime

from .conftest import MISCOMPILE


def _reduce_once(pred):
    stats = ReduceStats()
    minimized = reduce_source(MISCOMPILE, pred, stats=stats)
    return minimized, stats


class TestReduceThroughEngine:
    def test_probes_run_inline_through_the_engine(self):
        # Reduction is a sequential search — every probe depends on the
        # previous answer — so the predicate must pin workers=1 even
        # when built inside a parallel campaign.  The engine span's
        # ``inline`` flag records which path ran.
        with rebroken_addrfold():
            report = check_program(MISCOMPILE, models=("ss10",))
            assert not report.ok, report.describe()
            pred = mismatch_predicate(report.mismatches[0].signature())
            obs_runtime.enable_tracing()
            try:
                assert pred(MISCOMPILE)
                tracer = obs_runtime.get_tracer()
                spans = [e for e in tracer.events
                         if e.name == "oracle.run_sharded"]
                assert spans, "probes bypassed the engine"
                assert all(e.args["inline"] and e.args["workers"] == 1
                           for e in spans)
            finally:
                obs_runtime.reset()

    def test_warm_cache_reduces_to_same_program_as_cold(self, cache_root):
        with rebroken_addrfold():
            report = check_program(MISCOMPILE, models=("ss10",))
            pred = mismatch_predicate(report.mismatches[0].signature())
            cold_min, cold_stats = _reduce_once(pred)  # no cache at all
            cache = CompileCache(cache_root)
            with cache_context(cache):
                populate_min, _ = _reduce_once(pred)   # fills the cache
                stores = cache.stats.stores
                assert stores > 0
                warm_min, warm_stats = _reduce_once(pred)  # serves from it
        assert cold_min == populate_min == warm_min
        assert cold_stats.tests == warm_stats.tests
        # The warm pass re-probes the same candidate sequence, so it is
        # (almost) all hits and stores (almost) nothing new.
        assert cache.stats.hits > 0
        assert cache.stats.stores == stores
        # The minimized program still reproduces, and is actually small.
        with rebroken_addrfold():
            assert pred(warm_min)
        assert len(warm_min.splitlines()) < len(MISCOMPILE.splitlines())
