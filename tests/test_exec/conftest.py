"""Shared fixtures for the execution-engine / cache suite.

``REPRO_EXEC_WORKERS`` (CI matrix knob) overrides the worker count the
equivalence tests exercise; the default of 4 matches the acceptance
criterion's serial-vs-4-worker comparison.
"""

import os

import pytest

import repro.bench.harness as harness_mod
from repro.exec import cache as exec_cache
from repro.workloads import WorkloadSpec

WORKERS = max(2, int(os.environ.get("REPRO_EXEC_WORKERS", "4")))

TINY = """
int main(void) {
    char *s = (char *)GC_malloc(16);
    int i, t = 0;
    for (i = 0; i < 10; i++) s[i] = i * 2;
    for (i = 0; i < 10; i++) t += s[i];
    return t;
}
"""

# A known miscompile reproducer under the re-broken addrfold pass (the
# x + (x - c) in-place aliasing shape; same source the reducer suite
# pins).
MISCOMPILE = """
int pad1(int *p) { return p[0]; }
int main(void) {
    int stk[3][3];
    int *a; int *b;
    int i, j, x, y, acc;
    a = (int *)GC_malloc(16 * sizeof(int));
    for (i = 0; i < 16; i++) a[i] = (i * 7 + 3) & 0xFF;
    for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) stk[i][j] = i + j;
    acc = 0;
    acc = (acc + a[5]) & 0xFFFF;
    b = (int *)GC_malloc(8 * sizeof(int));
    for (j = 0; j < 8; j++) b[j] = j * 3;
    acc = (acc + stk[2][1] + b[4]) & 0xFFFF;
    x = a[7];
    y = x + (x - 1000);
    acc = (acc + y) & 0xFFFF;
    acc = (acc + pad1(a)) & 0xFFFF;
    printf("%d\\n", acc);
    return acc & 0xFF;
}
"""


@pytest.fixture
def tiny_workloads(monkeypatch):
    """Replace the real workload set with one tiny synthetic program so
    harness-level tests stay fast.  Engine workers fork from this
    process, so they inherit the patched module state."""
    monkeypatch.setattr(harness_mod, "WORKLOADS",
                        {"tiny": WorkloadSpec("tiny", "tiny.c", "synthetic")})
    monkeypatch.setattr(harness_mod, "load_workload", lambda name: TINY)


@pytest.fixture
def cache_root(tmp_path):
    return str(tmp_path / "cache")


@pytest.fixture
def installed_caches(cache_root):
    """Both cache tiers installed process-wide for the test's duration."""
    compile_cache, result_cache = exec_cache.open_caches(cache_root)
    with exec_cache.cache_context(compile_cache, result_cache):
        yield compile_cache, result_cache


@pytest.fixture(autouse=True)
def _no_leaked_caches():
    yield
    assert not exec_cache.active_caches(), "test leaked installed caches"
