"""Property test (satellite): for a corpus of generated fuzz programs,
a cache roundtrip is observationally identical to a direct compile.

"Identical" is checked at two levels for every program:

* static — the rendered instruction stream (the program's fingerprint)
  of the unpickled hit equals the direct compile's, byte for byte;
* dynamic — executing both on the VM yields the same cycles,
  instructions, collections, exit code, and output.
"""

import pytest

from repro.exec.cache import CompileCache, cache_context
from repro.fuzz.gen import GenOptions, generate_program
from repro.machine.driver import CompileConfig, compile_source
from repro.machine.vm import VM

N_PROGRAMS = 50
# Rotate configs across seeds so the corpus covers the whole build
# matrix without compiling every (program, config) pair.
CONFIG_CYCLE = ("O", "O0", "O_safe", "g", "g_checked")

# Keep the corpus cheap: the property is about cache fidelity, not
# generator coverage, so small programs carry the same evidence.
GEN = GenOptions()
GEN.min_statements = 4
GEN.max_statements = 8


def _run(compiled, model):
    vm = VM(compiled.asm, model, max_instructions=5_000_000)
    r = vm.run()
    return (r.cycles, r.instructions, r.collections, r.exit_code, r.output)


@pytest.mark.parametrize("seed", range(N_PROGRAMS))
def test_cache_roundtrip_preserves_fingerprint_and_counts(seed, cache_root):
    source = generate_program(seed, GEN)
    config = CompileConfig.named(CONFIG_CYCLE[seed % len(CONFIG_CYCLE)])
    direct = compile_source(source, config)
    cache = CompileCache(cache_root)
    with cache_context(cache):
        stored = compile_source(source, config)     # miss + store
        roundtripped = compile_source(source, config)  # hit
    assert cache.stats.to_dict()["hits"] == 1, "corpus program not cacheable"
    assert roundtripped is not stored
    assert stored.asm.render() == direct.asm.render()
    assert roundtripped.asm.render() == direct.asm.render()
    assert _run(roundtripped, config.model) == _run(direct, config.model)
