"""Lowering tests: IR structure and storage decisions."""

import pytest

from repro.cfront import parse, typecheck
from repro.machine.ir import IRFunc, basic_blocks
from repro.machine.lower import LowerError, Lowerer, lower_unit


def lower(source, debug=False):
    tu = parse(source)
    syms = typecheck(tu)
    return lower_unit(tu, syms, debug=debug)


def fn_of(source, name, debug=False):
    return lower(source, debug).functions[name]


class TestStorageDecisions:
    def test_scalar_local_in_register(self):
        fn = fn_of("int f(void) { int x = 1; return x; }", "f")
        assert not fn.slots  # no frame traffic

    def test_address_taken_local_in_memory(self):
        fn = fn_of("int f(void) { int x = 1; int *p = &x; return *p; }", "f")
        assert any("x" in name for name in fn.slots)

    def test_array_local_in_memory(self):
        fn = fn_of("int f(void) { int a[4]; a[0] = 1; return a[0]; }", "f")
        assert fn.slots

    def test_struct_local_in_memory(self):
        fn = fn_of("struct s { int v; };\n"
                   "int f(void) { struct s x; x.v = 2; return x.v; }", "f")
        assert fn.slots

    def test_indexing_pointer_param_does_not_force_memory(self):
        # &p[i] reads p's value; p itself stays in a register.
        fn = fn_of("int f(int *p, int i) { return p[i]; }", "f")
        assert not any("p" in name for name in fn.slots)

    def test_debug_mode_forces_all_to_memory(self):
        fn = fn_of("int f(int a) { int x = a; return x; }", "f", debug=True)
        names = list(fn.slots)
        assert any("a" in n for n in names)
        assert any("x" in n for n in names)


class TestFrameLayout:
    def test_slots_have_distinct_offsets(self):
        fn = fn_of("int f(void) { int a[4]; char b[10]; int *p = &a[0]; "
                   "return b[0] + *p; }", "f")
        fn.layout_frame()
        offsets = [s.offset for s in fn.slots.values()]
        assert len(set(offsets)) == len(offsets)

    def test_slots_are_aligned(self):
        fn = fn_of("int f(void) { char c; int x; int *p = &x; char *q = &c; "
                   "return *p + *q; }", "f", debug=True)
        fn.layout_frame()
        for slot in fn.slots.values():
            assert slot.offset % slot.align == 0

    def test_frame_size_rounded(self):
        fn = fn_of("int f(void) { int a[3]; a[0] = 1; return a[0]; }", "f")
        assert fn.layout_frame() % 8 == 0


class TestControlFlowShape:
    def test_while_has_loop_structure(self):
        fn = fn_of("int f(int n) { while (n) n--; return n; }", "f")
        blocks = basic_blocks(fn)
        assert len(blocks) >= 3
        labels = [i.symbol for i in fn.insts if i.op == "label"]
        targets = [i.symbol for i in fn.insts if i.op in ("jmp", "bz", "bnz")]
        assert set(targets) <= set(labels)

    def test_logical_and_short_circuits(self):
        src = ("int hit = 0;\nint bump(void) { hit = 1; return 1; }\n"
               "int main(void) { int r = 0 && bump(); return hit * 10 + r; }")
        from repro.machine import CompileConfig, VM, compile_source
        compiled = compile_source(src, CompileConfig())
        assert VM(compiled.asm).run().exit_code == 0  # bump never ran

    def test_logical_or_short_circuits(self):
        src = ("int hit = 0;\nint bump(void) { hit = 1; return 1; }\n"
               "int main(void) { int r = 1 || bump(); return hit * 10 + r; }")
        from repro.machine import CompileConfig, VM, compile_source
        compiled = compile_source(src, CompileConfig())
        assert VM(compiled.asm).run().exit_code == 1

    def test_conditional_evaluates_one_arm(self):
        src = ("int hit = 0;\nint bump(void) { hit++; return 5; }\n"
               "int main(void) { int r = 1 ? 3 : bump(); return hit * 10 + r; }")
        from repro.machine import CompileConfig, VM, compile_source
        compiled = compile_source(src, CompileConfig())
        assert VM(compiled.asm).run().exit_code == 3


class TestStringsAndGlobals:
    def test_string_literals_interned(self):
        ir = lower('char *a = "same"; char *b = "same"; char *c = "diff";')
        strings = [g for g in ir.globals.values() if g.name.startswith("__str")]
        assert len(strings) == 2

    def test_global_scalar_init_encoding(self):
        ir = lower("int x = 0x11223344;")
        assert ir.globals["x"].init_bytes == bytes([0x44, 0x33, 0x22, 0x11])

    def test_global_array_init_encoding(self):
        ir = lower("short a[3] = {1, 2, 3};")
        assert ir.globals["a"].init_bytes == bytes([1, 0, 2, 0, 3, 0])

    def test_global_char_array_string_init(self):
        ir = lower('char s[8] = "hi";')
        assert ir.globals["s"].init_bytes.startswith(b"hi\0")

    def test_global_struct_init(self):
        ir = lower("struct p { char t; int v; };\nstruct p g = {7, 300};")
        raw = ir.globals["g"].init_bytes
        assert raw[0] == 7 and int.from_bytes(raw[4:8], "little") == 300


class TestErrors:
    def test_float_unsupported(self):
        with pytest.raises(LowerError):
            lower("int f(void) { return 1.5 > 1.0; }")

    def test_too_many_params(self):
        params = ", ".join(f"int a{i}" for i in range(8))
        with pytest.raises(LowerError):
            lower(f"int f({params}) {{ return 0; }}")

    def test_break_outside_loop(self):
        with pytest.raises(LowerError):
            lower("int f(void) { break; return 0; }")

    def test_address_of_register_impossible(self):
        # The address-taken prepass promotes to memory, so this should
        # actually lower fine — regression guard.
        fn = fn_of("int f(void) { int x; int *p = &x; *p = 3; return x; }", "f")
        assert fn.slots


class TestStaticLocals:
    def _run(self, src, config="O"):
        from repro.machine import CompileConfig, VM, compile_source
        compiled = compile_source(src, CompileConfig.named(config))
        return VM(compiled.asm).run().exit_code

    def test_static_persists_across_calls(self):
        src = ("int counter(void) { static int n = 0; n++; return n; }\n"
               "int main(void) { counter(); counter(); return counter(); }")
        assert self._run(src) == 3
        assert self._run(src, "g") == 3

    def test_static_initializer(self):
        src = ("int get(void) { static int v = 77; return v; }\n"
               "int main(void) { return get(); }")
        assert self._run(src) == 77

    def test_static_array(self):
        src = ("int nth(int i) { static int t[4] = {10, 20, 30, 40}; "
               "return t[i]; }\n"
               "int main(void) { return nth(2); }")
        assert self._run(src) == 30

    def test_statics_in_different_functions_are_distinct(self):
        src = ("int a(void) { static int n = 0; n += 1; return n; }\n"
               "int b(void) { static int n = 0; n += 10; return n; }\n"
               "int main(void) { a(); a(); b(); return a() + b(); }")
        assert self._run(src) == 3 + 20

    def test_static_is_a_gc_root(self):
        from repro.gc import Collector
        from repro.machine import CompileConfig, VM, compile_source
        src = ("char *stash(char *p) { static char *kept; "
               "if (p) kept = p; return kept; }\n"
               "int main(void) { int i; char *s = (char *)GC_malloc(8); "
               "s[0] = 55; stash(s); s = 0; "
               "for (i = 0; i < 3000; i++) GC_malloc(64); "
               "return stash(0)[0]; }")
        compiled = compile_source(src, CompileConfig.named("g"))
        gc = Collector()
        gc.heap.poison_byte = 0xDD
        result = VM(compiled.asm, collector=gc).run()
        assert result.exit_code == 55
        assert result.collections >= 1
