"""Register allocation tests: intervals, call-crossing, spilling."""

import pytest

from repro.cfront import parse, typecheck
from repro.machine.lower import lower_unit
from repro.machine.models import MachineModel, PENTIUM_90, SPARC_10
from repro.machine.opt import optimize
from repro.machine.regalloc import allocate, build_intervals


def lowered(source, fn_name, opt=True):
    tu = parse(source)
    syms = typecheck(tu)
    fn = lower_unit(tu, syms).functions[fn_name]
    if opt:
        optimize(fn)
    return fn


class TestIntervals:
    def test_param_starts_before_body(self):
        fn = lowered("int f(int a) { return a + 1; }", "f")
        intervals, _ = build_intervals(fn)
        assert intervals[fn.params[0]].start == -1

    def test_loop_extends_liveness(self):
        fn = lowered("int f(int n) { int i, s = 0; "
                     "for (i = 0; i < n; i++) s = s + i; return s; }", "f")
        intervals, _ = build_intervals(fn)
        # The accumulator must stay live across the back edge: its
        # interval covers the whole loop.
        label_positions = [2 * i for i, inst in enumerate(fn.insts)
                           if inst.op == "label"]
        s_like = [iv for iv in intervals.values()
                  if iv.start < min(label_positions) and
                  iv.end > max(label_positions)]
        assert s_like, "no interval spans the loop"

    def test_call_crossing_flag(self):
        fn = lowered("int g(void);\n"
                     "int f(int a) { int x = a + 1; g(); return x; }", "f")
        intervals, calls = build_intervals(fn)
        assert calls
        crossing = [iv for iv in intervals.values() if iv.crosses_call]
        assert crossing


class TestAllocation:
    def test_no_spills_for_small_function(self):
        fn = lowered("int f(int a, int b) { return a * b + a - b; }", "f")
        alloc = allocate(fn, SPARC_10)
        assert alloc.spill_count == 0

    def test_call_crossing_gets_callee_saved(self):
        fn = lowered("int g(void);\n"
                     "int f(int a) { int x = a + 7; g(); return x; }", "f")
        alloc = allocate(fn, SPARC_10)
        crossing = [iv for iv in alloc.intervals.values()
                    if iv.crosses_call and iv.reg is not None]
        assert crossing
        assert all(iv.reg.startswith("s") for iv in crossing)

    def test_pressure_forces_spills_on_pentium(self):
        # 12 simultaneously-live values cannot fit in 6 registers.
        decls = "; ".join(f"int v{i} = a + {i}" for i in range(12))
        uses = " + ".join(f"v{i}" for i in range(12))
        fn = lowered(f"int f(int a) {{ {decls}; return {uses}; }}", "f")
        p90_alloc = allocate(fn, PENTIUM_90)
        assert p90_alloc.spill_count > 0

    def test_same_function_fits_on_sparc(self):
        decls = "; ".join(f"int v{i} = a + {i}" for i in range(12))
        uses = " + ".join(f"v{i}" for i in range(12))
        fn = lowered(f"int f(int a) {{ {decls}; return {uses}; }}", "f")
        ss_alloc = allocate(fn, SPARC_10)
        assert ss_alloc.spill_count == 0

    def test_every_live_vreg_gets_location(self):
        fn = lowered("int f(int a, int b) { int c = a * b; "
                     "return c + a + b; }", "f")
        alloc = allocate(fn, SPARC_10)
        for iv in alloc.intervals.values():
            assert iv.reg is not None or iv.spill_slot is not None

    def test_overlapping_intervals_get_distinct_registers(self):
        fn = lowered("int f(int a, int b, int c) { return a*b + b*c + a*c; }",
                     "f")
        alloc = allocate(fn, SPARC_10)
        ivs = sorted((iv for iv in alloc.intervals.values()
                      if iv.reg is not None), key=lambda iv: iv.start)
        for i, one in enumerate(ivs):
            for other in ivs[i + 1:]:
                overlap = one.start < other.end and other.start < one.end
                if overlap and one.reg == other.reg:
                    raise AssertionError(
                        f"{one.vreg} and {other.vreg} share {one.reg} "
                        f"({one.start}-{one.end} vs {other.start}-{other.end})")

    def test_keep_hint_coalesces(self):
        from repro.core.annotate import Annotator, AnnotateOptions
        tu = parse("char *f(char *p, int i) { char *q; q = p + i; return q; }")
        typecheck(tu)
        Annotator(tu, AnnotateOptions()).run()
        syms = typecheck(tu)
        fn = lower_unit(tu, syms).functions["f"]
        optimize(fn)
        alloc = allocate(fn, SPARC_10)
        keeps = [inst for inst in fn.insts if inst.op == "keep"]
        assert keeps
        for keep in keeps:
            src_iv = alloc.intervals[keep.args[0]]
            dst_iv = alloc.intervals.get(keep.dst)
            if dst_iv is not None and dst_iv.reg and src_iv.reg:
                assert dst_iv.reg == src_iv.reg  # the gcc "0" constraint


class TestSpilledExecution:
    def test_spilled_code_still_correct(self):
        from repro.machine import CompileConfig, VM, compile_source
        decls = "; ".join(f"int v{i} = a + {i}" for i in range(14))
        uses = " + ".join(f"v{i}" for i in range(14))
        src = (f"int f(int a) {{ {decls}; return {uses}; }}\n"
               f"int main(void) {{ return f(1) & 0xFF; }}")
        expected = (sum(1 + i for i in range(14))) & 0xFF
        for model in (SPARC_10, PENTIUM_90):
            compiled = compile_source(src, CompileConfig(model=model))
            assert VM(compiled.asm, model).run().exit_code == expected

    def test_spill_cost_visible_in_cycles(self):
        from repro.machine import CompileConfig, VM, compile_source
        decls = "; ".join(f"int v{i} = a + {i}" for i in range(14))
        uses = " + ".join(f"v{i}" for i in range(14))
        src = (f"int f(int a) {{ {decls}; return {uses}; }}\n"
               f"int main(void) {{ int i, s = 0; "
               f"for (i = 0; i < 50; i++) s += f(i); return 0; }}")
        ss = compile_source(src, CompileConfig(model=SPARC_10))
        p90 = compile_source(src, CompileConfig(model=PENTIUM_90))
        r_ss = VM(ss.asm, SPARC_10).run()
        r_p90 = VM(p90.asm, PENTIUM_90).run()
        assert r_p90.instructions > r_ss.instructions  # spill traffic
