"""Machine instruction model tests: register accounting and rendering."""

import pytest

from repro.machine.asm import ARG_REGS, MFunc, MInst, MProgram


class TestRegisterAccounting:
    def test_alu_reads_and_writes(self):
        inst = MInst("add", rd="t0", rs1="t1", rs2="t2")
        assert set(inst.registers_read()) == {"t1", "t2"}
        assert inst.register_written() == "t0"

    def test_alu_immediate_form(self):
        inst = MInst("add", rd="t0", rs1="sp", imm=-16)
        assert inst.registers_read() == ["sp"]

    def test_store_reads_value_and_address(self):
        inst = MInst("st", rd="t0", rs1="t1", rs2="t2")
        assert set(inst.registers_read()) == {"t0", "t1", "t2"}
        assert inst.register_written() is None

    def test_load_writes_destination(self):
        inst = MInst("ld", rd="t0", rs1="t1", imm=4)
        assert inst.register_written() == "t0"
        assert inst.registers_read() == ["t1"]

    def test_call_reads_argument_registers(self):
        inst = MInst("call", symbol="f", nargs=3)
        assert set(inst.registers_read()) == set(ARG_REGS[:3])

    def test_ret_reads_return_value(self):
        assert "rv" in MInst("ret").registers_read()

    def test_keepsafe_reads_both(self):
        inst = MInst("keepsafe", rs1="t0", rs2="s1")
        assert set(inst.registers_read()) == {"t0", "s1"}
        assert inst.register_written() is None

    def test_label_touches_nothing(self):
        inst = MInst("label", symbol="L")
        assert inst.registers_read() == []
        assert inst.register_written() is None


class TestRendering:
    @pytest.mark.parametrize("inst,expected", [
        (MInst("li", rd="t0", imm=42), "li t0, 42"),
        (MInst("la", rd="t0", symbol="g"), "la t0, g"),
        (MInst("mov", rd="t0", rs1="t1"), "mov t0, t1"),
        (MInst("add", rd="t0", rs1="t1", rs2="t2"), "add t0, t1, t2"),
        (MInst("sub", rd="sp", rs1="sp", imm=16), "sub sp, sp, 16"),
        (MInst("ld", rd="t0", rs1="t1", rs2="t2"), "ldw t0, [t1+t2]"),
        (MInst("ld", rd="t0", rs1="fp", imm=-8, width=1), "ldb t0, [fp+-8]"),
        (MInst("ld", rd="t0", rs1="fp", imm=0, width=2, signed=False),
         "ldhu t0, [fp+0]"),
        (MInst("st", rd="t0", rs1="t1", imm=4), "stw t0, [t1+4]"),
        (MInst("jmp", symbol="L"), "jmp L"),
        (MInst("bz", rs1="t0", symbol="L"), "bz t0, L"),
        (MInst("call", symbol="f", nargs=2), "call f, 2"),
        (MInst("ret"), "ret"),
        (MInst("keepsafe", rs1="t0", rs2="t1"), "!keepsafe t0, t1"),
    ])
    def test_render(self, inst, expected):
        assert inst.render().strip() == expected

    def test_label_renders_without_indent(self):
        assert MInst("label", symbol="L0").render() == "L0:"


class TestCodeSize:
    def test_labels_and_markers_excluded(self):
        fn = MFunc("f", [
            MInst("label", symbol="f"),
            MInst("li", rd="t0", imm=1),
            MInst("keepsafe", rs1="t0", rs2="t0"),
            MInst("nop"),
            MInst("ret"),
        ])
        assert fn.code_size() == 2

    def test_program_size_sums_functions(self):
        prog = MProgram(functions={
            "a": MFunc("a", [MInst("ret")]),
            "b": MFunc("b", [MInst("li", rd="t0", imm=0), MInst("ret")]),
        })
        assert prog.code_size() == 3

    def test_render_round_trips_visually(self):
        fn = MFunc("f", [MInst("li", rd="t0", imm=1), MInst("ret")])
        text = fn.render()
        assert text.splitlines()[0].startswith("f:")
        assert "li t0, 1" in text
