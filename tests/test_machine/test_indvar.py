"""Induction-variable strength reduction tests."""

import pytest

from repro.cfront import parse, typecheck
from repro.machine import CompileConfig, VM, compile_source
from repro.machine.lower import lower_unit
from repro.machine.opt import indvar, optimize

IV_PASSES = ("local", "licm", "strength", "addrfold", "indvar", "deadcode")


def lowered(source, name):
    tu = parse(source)
    syms = typecheck(tu)
    return lower_unit(tu, syms).functions[name]


class TestPatternMatching:
    SRC = ("int sum(int *a, int n) { int i, t = 0; "
           "for (i = 0; i < n; i++) t += a[i]; return t; }")

    def test_walking_pointer_created(self):
        fn = lowered(self.SRC, "sum")
        optimize(fn, IV_PASSES)
        hints = [i.dst.hint for i in fn.insts if i.dst is not None]
        assert "indvar" in hints

    def test_scaled_index_removed_from_loop(self):
        fn = lowered(self.SRC, "sum")
        optimize(fn, IV_PASSES)
        label_idx = next(i for i, inst in enumerate(fn.insts) if inst.op == "label")
        loop_ops = [(i.op, i.subop) for i in fn.insts[label_idx:]]
        assert ("bin", "shl") not in loop_ops
        assert ("bin", "mul") not in loop_ops

    def test_no_rewrite_without_the_pass(self):
        fn = lowered(self.SRC, "sum")
        optimize(fn)  # default pipeline
        hints = [i.dst.hint for i in fn.insts if i.dst is not None]
        assert "indvar" not in hints

    def test_not_applied_when_index_escapes(self):
        # t2 (= &a[i]) used after the loop: unsafe to rewrite.
        src = ("int *f(int *a, int n) { int i; int *last = a; "
               "for (i = 0; i < n; i++) last = &a[i]; return last; }")
        fn = lowered(src, "f")
        before = sum(1 for i in fn.insts if i.op == "bin" and i.subop in ("shl", "mul"))
        indvar.run(fn)
        # The pattern whose result escapes must be left alone; the pass
        # may still be a no-op entirely.
        for inst in fn.insts:
            if inst.dst is not None and inst.dst.hint == "indvar":
                raise AssertionError("escaping address was strength-reduced")

    def test_not_applied_to_non_constant_step(self):
        src = ("int f(int *a, int n, int s) { int i, t = 0; "
               "for (i = 0; i < n; i = i + s) t += a[i]; return t; }")
        fn = lowered(src, "f")
        indvar.run(fn)
        hints = [i.dst.hint for i in fn.insts if i.dst is not None]
        assert "indvar" not in hints


class TestSemanticsPreserved:
    @pytest.mark.parametrize("src,expected", [
        ("int main(void) { int a[12]; int i, t = 0; "
         "for (i = 0; i < 12; i++) a[i] = i + 1; "
         "for (i = 0; i < 12; i++) t += a[i]; return t; }", 78),
        ("int main(void) { int a[8]; int i; "
         "for (i = 0; i < 8; i++) a[i] = i; "
         "{ int t = 0; for (i = 2; i < 8; i = i + 2) t += a[i]; return t; } }",
         2 + 4 + 6),
        ("int main(void) { short a[10]; int i, t = 0; "
         "for (i = 0; i < 10; i++) a[i] = i * 3; "
         "for (i = 0; i < 10; i++) t += a[i]; return t & 0xFF; }", 135),
    ])
    def test_results_match_default_pipeline(self, src, expected):
        for passes in (None, IV_PASSES):
            config = CompileConfig(passes=passes) if passes else CompileConfig()
            compiled = compile_source(src, config)
            assert VM(compiled.asm).run().exit_code == expected

    def test_gc_safe_with_interior_pointers(self):
        """The walking pointer is interior; the default collector keeps
        the array alive through it even under async collections."""
        from repro.gc import Collector
        src = ("int main(void) { int *a = (int *)GC_malloc(64); int i, t = 0; "
               "for (i = 0; i < 16; i++) a[i] = i; "
               "for (i = 0; i < 16; i++) t += a[i]; return t; }")
        compiled = compile_source(src, CompileConfig(passes=IV_PASSES))
        gc = Collector()
        gc.heap.poison_byte = 0xDD
        vm = VM(compiled.asm, collector=gc, gc_interval=1)
        assert vm.run().exit_code == 120

    def test_annotated_code_unaffected(self):
        src = ("int sum(int *a, int n) { int i, t = 0; "
               "for (i = 0; i < n; i++) t += a[i]; return t; }\n"
               "int main(void) { int b[10]; int i; "
               "for (i = 0; i < 10; i++) b[i] = i; return sum(b, 10); }")
        config = CompileConfig(optimize=True, safe=True, passes=IV_PASSES)
        compiled = compile_source(src, config)
        assert VM(compiled.asm).run().exit_code == 45
