"""Assembly text round-trip tests: render -> parse -> identical
execution, so the postprocessor can run as a standalone text filter,
like the paper's."""

import pytest

from repro.machine import CompileConfig, VM, compile_source
from repro.machine.asm import MInst
from repro.machine.asmparse import (
    AsmParseError, parse_instruction, parse_program_text, round_trip,
)
from repro.workloads import WORKLOADS, load_workload


class TestInstructionRoundTrip:
    @pytest.mark.parametrize("inst", [
        MInst("li", rd="t0", imm=-42),
        MInst("la", rd="t1", symbol="__str0"),
        MInst("mov", rd="t0", rs1="a0"),
        MInst("add", rd="t0", rs1="t1", rs2="t2"),
        MInst("sub", rd="sp", rs1="sp", imm=24),
        MInst("slt", rd="t0", rs1="t1", rs2="t2"),
        MInst("neg", rd="t0", rs1="t0"),
        MInst("sext8", rd="t0", rs1="t1"),
        MInst("ld", rd="t0", rs1="fp", imm=-8),
        MInst("ld", rd="t0", rs1="t1", rs2="t2", width=1),
        MInst("ld", rd="t0", rs1="t1", imm=0, width=2, signed=False),
        MInst("st", rd="t0", rs1="fp", imm=-12, width=1),
        MInst("jmp", symbol=".L0"),
        MInst("bz", rs1="t0", symbol=".L1"),
        MInst("bnz", rs1="t0", symbol=".L1"),
        MInst("call", symbol="printf", nargs=3),
        MInst("callr", rs1="t5", nargs=1),
        MInst("ret"),
        MInst("keepsafe", rs1="t0", rs2="s1"),
        MInst("nop"),
        MInst("label", symbol=".here"),
    ])
    def test_render_parse_render_fixpoint(self, inst):
        text = inst.render()
        parsed = parse_instruction(text)
        assert parsed.render() == text

    def test_bad_mnemonic_raises(self):
        with pytest.raises(AsmParseError):
            parse_instruction("frobnicate t0, t1", 3)

    def test_bad_memory_operand_raises(self):
        with pytest.raises(AsmParseError):
            parse_instruction("ldw t0, (t1)", 1)

    def test_code_before_header_raises(self):
        with pytest.raises(AsmParseError):
            parse_program_text("    ret\n")


class TestProgramRoundTrip:
    SOURCES = [
        "int main(void) { return 41; }",
        ("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
         "int main(void) { return fib(10); }"),
        ("int main(void) { char *p = (char *)GC_malloc(16); int i; "
         "for (i = 0; i < 10; i++) p[i] = i; return p[7]; }"),
    ]

    @pytest.mark.parametrize("source", SOURCES)
    @pytest.mark.parametrize("config_name", ("O", "O_safe", "g"))
    def test_round_trip_executes_identically(self, source, config_name):
        config = CompileConfig.named(config_name)
        compiled = compile_source(source, config)
        expected = VM(compiled.asm, config.model).run()
        reparsed = round_trip(compiled.asm)
        got = VM(reparsed, config.model).run()
        assert got.exit_code == expected.exit_code
        assert got.instructions == expected.instructions
        assert got.cycles == expected.cycles

    def test_workload_round_trips(self):
        config = CompileConfig.named("O_safe")
        compiled = compile_source(load_workload("cordtest"), config)
        expected = VM(compiled.asm, config.model).run()
        reparsed = round_trip(compiled.asm)
        got = VM(reparsed, config.model).run()
        assert got.exit_code == expected.exit_code

    def test_standalone_postprocess_pipeline(self):
        """The paper's usage: compiler | postprocessor | assembler, as
        three text stages."""
        from repro.postproc import postprocess
        source = ("int sum(int *a, int n) { int i, t = 0; "
                  "for (i = 0; i < n; i++) t += a[i]; return t; }\n"
                  "int main(void) { int b[16]; int i; "
                  "for (i = 0; i < 16; i++) b[i] = i; return sum(b, 16); }")
        config = CompileConfig.named("O_safe")
        compiled = compile_source(source, config)
        baseline = VM(compiled.asm, config.model).run()

        text = compiled.asm.render()            # stage 1: compiler output
        prog = parse_program_text(text)          # stage 2: parse
        prog.globals = dict(compiled.asm.globals)
        stats = postprocess(prog)                #          postprocess
        final = VM(prog, config.model).run()     # stage 3: run
        assert final.exit_code == baseline.exit_code == 120
        assert final.cycles <= baseline.cycles
