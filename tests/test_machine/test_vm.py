"""VM tests: execution mechanics, builtins, GC integration, limits."""

import pytest

from repro.gc import Collector, GCCheckError
from repro.machine import CompileConfig, VM, VMError, compile_source
from repro.machine.models import PENTIUM_90, SPARC_10, SPARCSTATION_2


def build(source, config=None):
    config = config or CompileConfig()
    compiled = compile_source(source, config)
    return compiled


class TestExecution:
    def test_exit_code_is_signed(self):
        compiled = build("int main(void) { return -3; }")
        assert VM(compiled.asm).run().exit_code == -3

    def test_instruction_and_cycle_counting(self):
        compiled = build("int main(void) { return 1 + 2; }")
        r = VM(compiled.asm).run()
        assert r.instructions > 0
        assert r.cycles >= r.instructions  # every inst costs >= 1 (markers 0)

    def test_cost_models_differ(self):
        src = ("int main(void) { int a[64]; int i, s = 0; "
               "for (i = 0; i < 64; i++) a[i] = i; "
               "for (i = 0; i < 64; i++) s += a[i] * 3; return 0; }")
        runs = {}
        for model in (SPARCSTATION_2, SPARC_10):
            compiled = build(src, CompileConfig(model=model))
            runs[model.name] = VM(compiled.asm, model).run()
        # Same instruction stream, different cycles (loads/muls dearer on SS2).
        assert runs["SPARCstation 2"].cycles > runs["SPARCstation 10"].cycles

    def test_undefined_function_raises(self):
        compiled = build("int main(void) { nosuchthing(); return 0; }")
        with pytest.raises(VMError):
            VM(compiled.asm).run()

    def test_instruction_budget(self):
        compiled = build("int main(void) { while (1) ; return 0; }")
        vm = VM(compiled.asm, max_instructions=10_000)
        with pytest.raises(VMError):
            vm.run()

    def test_load_fault_reported(self):
        compiled = build("int main(void) { int *p = 0; return *p; }")
        with pytest.raises(VMError, match="load fault"):
            VM(compiled.asm).run()

    def test_exit_builtin_stops_immediately(self):
        compiled = build('int main(void) { exit(9); return 1; }')
        assert VM(compiled.asm).run().exit_code == 9

    def test_abort_raises(self):
        compiled = build("int main(void) { abort(); return 0; }")
        with pytest.raises(VMError, match="abort"):
            VM(compiled.asm).run()


class TestGlobals:
    def test_global_initializers_linked(self):
        src = ('int counter = 5;\nchar *greeting = "hey";\n'
               "int main(void) { return counter + greeting[0]; }")
        compiled = build(src)
        assert VM(compiled.asm).run().exit_code == 5 + ord("h")

    def test_global_array_with_relocated_strings(self):
        src = ('char *names[2] = {"ab", "cd"};\n'
               "int main(void) { return names[1][0]; }")
        compiled = build(src)
        assert VM(compiled.asm).run().exit_code == ord("c")

    def test_globals_are_gc_roots(self):
        src = """
        char *keep;
        int main(void) {
            int i;
            keep = (char *)GC_malloc(32);
            keep[0] = 77;
            for (i = 0; i < 3000; i++) GC_malloc(64);
            return keep[0];
        }
        """
        compiled = build(src)
        gc = Collector()
        gc.heap.poison_byte = 0xDD
        vm = VM(compiled.asm, collector=gc)
        r = vm.run()
        assert r.exit_code == 77
        assert r.collections >= 1


class TestGCIntegration:
    def test_stack_locals_are_roots(self):
        src = """
        int main(void) {
            char *s = (char *)GC_malloc(16);
            int i;
            s[5] = 42;
            for (i = 0; i < 3000; i++) GC_malloc(64);
            return s[5];
        }
        """
        compiled = build(src, CompileConfig.named("g"))  # s in the frame
        gc = Collector()
        gc.heap.poison_byte = 0xDD
        r = VM(compiled.asm, collector=gc).run()
        assert r.exit_code == 42

    def test_register_locals_are_roots(self):
        src = """
        int churn(void) { int i; for (i = 0; i < 2000; i++) GC_malloc(64); return 0; }
        int main(void) {
            char *s = (char *)GC_malloc(16);
            s[5] = 43;
            churn();
            return s[5];
        }
        """
        compiled = build(src, CompileConfig.named("O"))
        gc = Collector()
        gc.heap.poison_byte = 0xDD
        r = VM(compiled.asm, collector=gc).run()
        assert r.exit_code == 43

    def test_gc_interval_forces_collections(self):
        compiled = build("int main(void) { return 0; }")
        r = VM(compiled.asm, gc_interval=5).run()
        assert r.collections > 0

    def test_checked_violation_surfaces_as_gccheckerror(self):
        src = ("int main(void) { char *p = (char *)GC_malloc(8); "
               "char *q; q = p - 1; return q == 0; }")
        compiled = build(src, CompileConfig.named("g_checked"))
        with pytest.raises(GCCheckError):
            VM(compiled.asm).run()


class TestBuiltinCoverage:
    def test_rand_is_deterministic(self):
        src = ("int main(void) { srand(7); return rand() == rand() ? 1 : 0; }")
        compiled = build(src)
        a = VM(compiled.asm).run().exit_code
        b = VM(compiled.asm).run().exit_code
        assert a == b == 0

    def test_abs(self):
        compiled = build("int main(void) { return abs(-7) + abs(7); }")
        assert VM(compiled.asm).run().exit_code == 14

    def test_calloc_zeroes(self):
        src = ("int main(void) { int *p = (int *)calloc(4, 4); "
               "return p[0] + p[3]; }")
        compiled = build(src)
        assert VM(compiled.asm).run().exit_code == 0

    def test_realloc_preserves(self):
        src = """
        int main(void) {
            int *p = (int *)GC_malloc(8);
            p[0] = 11; p[1] = 22;
            p = (int *)GC_realloc(p, 64);
            return p[0] + p[1];
        }
        """
        compiled = build(src)
        assert VM(compiled.asm).run().exit_code == 33

    def test_strchr(self):
        src = ('int main(void) { char *s = "hello"; char *e = strchr(s, 108); '
               "return e - s; }")
        compiled = build(src)
        assert VM(compiled.asm).run().exit_code == 2

    def test_gc_base_builtin(self):
        src = ("int main(void) { char *p = (char *)GC_malloc(32); "
               "return (char *)GC_base(p + 7) == p; }")
        compiled = build(src)
        assert VM(compiled.asm).run().exit_code == 1


class TestExtendedLibrary:
    def _run(self, src):
        compiled = build(src)
        return VM(compiled.asm).run()

    def test_sprintf(self):
        r = self._run('int main(void) { char b[32]; sprintf(b, "%d-%s", 7, "x"); '
                      'return strcmp(b, "7-x") == 0; }')
        assert r.exit_code == 1

    def test_strncpy_pads_and_limits(self):
        r = self._run('int main(void) { char b[8]; strncpy(b, "ab", 5); '
                      "return b[1] == 'b' && b[2] == 0 && b[4] == 0; }")
        assert r.exit_code == 1

    def test_strstr_found_and_missing(self):
        r = self._run('int main(void) { char *h = "needle in hay"; '
                      'return (strstr(h, "in") == h + 7) '
                      '&& (strstr(h, "zz") == 0); }')
        assert r.exit_code == 1

    def test_ctype_family(self):
        r = self._run("int main(void) { return isdigit('3') + isalpha('z') * 2 "
                      "+ isspace('\\t') * 4 + isalnum('_') * 8; }")
        assert r.exit_code == 1 + 2 + 4

    def test_case_conversion(self):
        r = self._run("int main(void) { return toupper('m') == 'M' "
                      "&& tolower('M') == 'm' && toupper('3') == '3'; }")
        assert r.exit_code == 1
