"""Machine cost model tests."""

import pytest

from repro.machine.models import (
    MODELS, MachineModel, PENTIUM_90, SPARC_10, SPARCSTATION_2,
)


class TestModels:
    def test_registry_contains_all_three_machines(self):
        assert set(MODELS) == {"ss2", "ss10", "p90"}

    def test_pentium_is_register_starved(self):
        # The paper's Analysis hinges on this contrast.
        assert PENTIUM_90.num_regs < SPARCSTATION_2.num_regs
        assert PENTIUM_90.num_regs < SPARC_10.num_regs

    def test_ss2_memory_is_slower_than_ss10(self):
        assert SPARCSTATION_2.load_cycles > SPARC_10.load_cycles
        assert SPARCSTATION_2.store_cycles > SPARC_10.store_cycles

    def test_markers_and_labels_are_free(self):
        for model in MODELS.values():
            assert model.cycles_for("keepsafe") == 0
            assert model.cycles_for("label") == 0
            assert model.cycles_for("nop") == 0

    def test_every_real_op_costs_at_least_one(self):
        for model in MODELS.values():
            for op in ("add", "ld", "st", "mul", "div", "jmp", "call", "ret",
                       "mov", "li", "slt"):
                assert model.cycles_for(op) >= 1, (model.name, op)

    def test_taken_branch_extra(self):
        assert (SPARCSTATION_2.cycles_for("bz", taken=True)
                > SPARCSTATION_2.cycles_for("bz", taken=False))
        assert (SPARC_10.cycles_for("bz", taken=True)
                == SPARC_10.cycles_for("bz", taken=False))

    def test_multiplies_slowest_on_ss2(self):
        assert SPARCSTATION_2.mul_cycles > SPARC_10.mul_cycles

    def test_models_are_frozen(self):
        with pytest.raises(Exception):
            SPARC_10.load_cycles = 99  # type: ignore[misc]

    def test_check_cost_positive_everywhere(self):
        for model in MODELS.values():
            assert model.builtin_check_cycles > 0
