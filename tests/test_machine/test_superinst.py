"""Superinstruction tests: plan selection, persisted profiles, and the
bit-identity guarantees fusion must uphold."""

import json

import pytest

from repro.exec.cache import ResultCache
from repro.machine import CompileConfig, VM, compile_source
from repro.machine.models import MODELS
from repro.machine.superinst import (
    SuperinstPlan, load_pgo, plan_from_pgo, plan_from_profile, save_pgo,
)
from repro.machine.vm import VMError
from repro.obs.vmprof import PGO_SCHEMA, VMProfile

# Two hot loops (a leaf kernel called in a loop) — enough structure for
# real fusion: self-looping inner blocks, calls that must not fuse, and
# branches as early exits.
PROGRAM = """
int work(int n) {
    int i;
    int acc = 0;
    for (i = 0; i < n; i++) acc = (acc + i * 3) & 0xFFFF;
    return acc;
}
int main(void) {
    int k;
    int r = 0;
    for (k = 0; k < 40; k++) r = (r + work(200) + k) & 0xFFFF;
    printf("%d\\n", r);
    return r & 0xFF;
}
"""


def run_key(result):
    """Everything observable about a run."""
    return (result.exit_code, result.instructions, result.cycles,
            result.output, result.collections, result.checks)


def profiled_plan(config_name="O", model_key="ss10"):
    """Compile PROGRAM, profile one run, return (compiled, plan)."""
    model = MODELS[model_key]
    compiled = compile_source(PROGRAM, CompileConfig.named(config_name, model))
    profile = VMProfile()
    VM(compiled.asm, model, profile=profile).run()
    return compiled, plan_from_profile(profile)


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        _, plan = profiled_plan()
        compiled, _ = profiled_plan()
        profile = VMProfile(tag="t")
        VM(compiled.asm, MODELS["ss10"], profile=profile).run()
        doc = profile.to_pgo()
        assert doc["schema"] == PGO_SCHEMA
        path = str(tmp_path / "p.pgo.json")
        save_pgo(doc, path)
        loaded = load_pgo(path)
        assert loaded == doc
        assert plan_from_pgo(loaded) == plan_from_pgo(doc)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something-else/9"}))
        with pytest.raises(ValueError, match="not a repro-vmprof-pgo/1"):
            load_pgo(str(path))

    def test_save_rejects_wrong_schema(self, tmp_path):
        with pytest.raises(ValueError, match="refusing"):
            save_pgo({"schema": "nope"}, str(tmp_path / "x.json"))


class TestPlan:
    def test_selection_is_deterministic(self):
        _, plan_a = profiled_plan()
        _, plan_b = profiled_plan()
        assert plan_a.blocks == plan_b.blocks
        assert plan_a.digest() == plan_b.digest()

    def test_digest_tracks_block_set(self):
        a = SuperinstPlan(frozenset({("f", "entry")}))
        b = SuperinstPlan(frozenset({("f", "entry"), ("g", ".L1")}))
        assert a.digest() != b.digest()
        assert a.digest().startswith("pgo-")

    def test_empty_plan_is_falsy(self):
        assert not SuperinstPlan(frozenset())
        assert SuperinstPlan(frozenset({("f", "entry")}))

    def test_min_share_floor_drops_cold_blocks(self):
        doc = {
            "schema": PGO_SCHEMA, "tag": "", "runs": 1,
            "total_cycles": 1000, "total_instructions": 1000,
            "blocks": [
                {"function": "hot", "block": "entry", "cycles": 990,
                 "instructions": 990},
                {"function": "cold", "block": "entry", "cycles": 1,
                 "instructions": 1},
            ],
        }
        plan = plan_from_pgo(doc, min_share=0.01)
        assert ("hot", "entry") in plan.blocks
        assert ("cold", "entry") not in plan.blocks


class TestBitIdentity:
    @pytest.mark.parametrize("model_key", ("ss2", "ss10", "p90"))
    def test_fused_run_is_bit_identical(self, model_key):
        model = MODELS[model_key]
        compiled = compile_source(PROGRAM, CompileConfig.named("O", model))
        _, plan = profiled_plan(model_key=model_key)
        base = VM(compiled.asm, model).run()
        fused_vm = VM(compiled.asm, model, superinst=plan)
        fused = fused_vm.run()
        assert fused_vm.superinst_stats is not None
        assert fused_vm.superinst_stats.runs > 0
        assert run_key(fused) == run_key(base)

    def test_profiler_invariants_hold_under_fusion(self):
        compiled, plan = profiled_plan()
        profile = VMProfile()
        result = VM(compiled.asm, MODELS["ss10"], superinst=plan,
                    profile=profile).run()
        assert profile.total_cycles == result.cycles
        assert profile.total_instructions == result.instructions

    def test_gc_interval_disables_fusion(self):
        # The async-collection trigger must see every instruction
        # boundary; fusion batches counter updates, so it turns off.
        compiled, plan = profiled_plan()
        vm = VM(compiled.asm, MODELS["ss10"], superinst=plan, gc_interval=64)
        base = VM(compiled.asm, MODELS["ss10"], gc_interval=64).run()
        fused = vm.run()
        assert vm.superinst_stats is None
        assert run_key(fused) == run_key(base)

    @pytest.mark.parametrize("budget", (10, 997, 12345))
    def test_budget_raise_is_equivalent(self, budget):
        compiled, plan = profiled_plan()
        model = MODELS["ss10"]

        def run_with(superinst):
            vm = VM(compiled.asm, model, superinst=superinst,
                    max_instructions=budget)
            try:
                vm.run()
            except VMError as exc:
                return str(exc), vm._st[0]
            return None, vm._st[0]

        base_err, base_count = run_with(None)
        fused_err, fused_count = run_with(plan)
        assert base_err is not None, "budget chosen too large for the test"
        assert fused_err == base_err
        assert fused_count == base_count == budget + 1


class TestCacheSalting:
    def test_pgo_and_sink_salt_result_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = CompileConfig.named("O")
        _, plan = profiled_plan()
        plain = cache.key_for(PROGRAM, config)
        pgod = cache.key_for(PROGRAM, config, pgo=plan.digest())
        sunk = cache.key_for(PROGRAM, config, sink=True)
        both = cache.key_for(PROGRAM, config, pgo=plan.digest(), sink=True)
        assert len({plain, pgod, sunk, both}) == 4

    def test_default_knobs_leave_keys_unchanged(self, tmp_path):
        # pgo=None / sink=False must address the same entry as a caller
        # that never heard of either knob.
        cache = ResultCache(str(tmp_path))
        config = CompileConfig.named("O")
        assert (cache.key_for(PROGRAM, config)
                == cache.key_for(PROGRAM, config, pgo=None, sink=False))

    def test_different_plans_different_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = CompileConfig.named("O")
        a = SuperinstPlan(frozenset({("work", "entry")}))
        b = SuperinstPlan(frozenset({("main", "entry")}))
        assert (cache.key_for(PROGRAM, config, pgo=a.digest())
                != cache.key_for(PROGRAM, config, pgo=b.digest()))
