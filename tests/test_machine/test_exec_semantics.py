"""Differential execution tests: every C snippet must compute the same
result under all four build configurations (optimizer on/off, annotation
on/off) — the strongest end-to-end correctness check for the compiler.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import CompileConfig, VM, compile_source

ALL_CONFIGS = ("O", "O_safe", "g", "g_checked")


def run_all(source, stdin="", configs=ALL_CONFIGS):
    results = {}
    for name in configs:
        config = CompileConfig.named(name)
        compiled = compile_source(source, config)
        vm = VM(compiled.asm, config.model)
        vm.stdin = stdin
        results[name] = vm.run()
    codes = {r.exit_code for r in results.values()}
    outputs = {r.output for r in results.values()}
    assert len(codes) == 1, f"exit codes disagree: { {k: v.exit_code for k, v in results.items()} }"
    assert len(outputs) == 1, "outputs disagree"
    return results["O"]


CASES = [
    # (source, expected exit code)
    ("int main(void) { return 7; }", 7),
    ("int main(void) { return 10 - 3 * 2; }", 4),
    ("int main(void) { return (20 / 3) % 4; }", 2),
    ("int main(void) { return -5 / 2 == -2; }", 1),  # C truncating division
    ("int main(void) { return -7 % 3 == -1; }", 1),
    ("int main(void) { return 1 << 4 | 3; }", 19),
    ("int main(void) { return (0xF0 >> 2) & 0x3C; }", 0x3C),
    ("int main(void) { return ~0 & 0xFF; }", 0xFF),
    ("int main(void) { return !0 + !5; }", 1),
    ("int main(void) { return 3 > 2 && 2 > 3 || 1; }", 1),
    ("int main(void) { int x = 0; return x++ + x++; }", 1),
    ("int main(void) { int x = 0; ++x; ++x; return x + x; }", 4),
    ("int main(void) { int x = 10; x += 5; x -= 3; x *= 2; return x; }", 24),
    ("int main(void) { int x = 1; return x ? 10 : 20; }", 10),
    ("int main(void) { int i, s = 0; for (i = 0; i < 10; i++) s += i; return s; }", 45),
    ("int main(void) { int i = 0, s = 0; while (i < 5) { s += i; i++; } return s; }", 10),
    ("int main(void) { int i = 0; do i++; while (i < 7); return i; }", 7),
    ("int main(void) { int i, s = 0; for (i = 0; i < 10; i++) { if (i == 3) continue; if (i == 7) break; s += i; } return s; }", 18),
    ("int main(void) { int s = 0, i; for (i = 0; i < 4; i++) switch (i) { case 0: s += 1; break; case 2: s += 10; break; default: s += 100; } return s; }", 211),
    ("int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }\nint main(void) { return f(11); }", 89),
    ("int main(void) { int a[5]; int i; for (i = 0; i < 5; i++) a[i] = i * i; return a[4] - a[2]; }", 12),
    ("int main(void) { int a[3] = {5, 6, 7}; return a[0] + a[2]; }", 12),
    ("int main(void) { char s[] = \"hello\"; return s[1]; }", ord('e')),
    ("int main(void) { int x = 5; int *p = &x; *p = 9; return x; }", 9),
    ("void set(int *p, int v) { *p = v; }\nint main(void) { int x; set(&x, 33); return x; }", 33),
    ("int main(void) { int a[4] = {1,2,3,4}; int *p = a; p++; p += 2; return *p; }", 4),
    ("int main(void) { int a[4] = {1,2,3,4}; return &a[3] - &a[0]; }", 3),
    ("struct pt { int x; int y; };\nint main(void) { struct pt p; p.x = 3; p.y = 4; return p.x * p.y; }", 12),
    ("struct pt { int x; int y; };\nint main(void) { struct pt p, q; p.x = 1; p.y = 2; q = p; return q.y; }", 2),
    ("struct pt { int x; int y; };\nint get(struct pt *p) { return p->x + p->y; }\nint main(void) { struct pt p; p.x = 30; p.y = 12; return get(&p); }", 42),
    ("int main(void) { return sizeof(int) + sizeof(char) + sizeof(char *); }", 9),
    ("struct s { char c; int i; };\nint main(void) { return sizeof(struct s); }", 8),
    ("int add(int a, int b) { return a + b; }\nint apply(int (*f)(int, int), int x, int y) { return f(x, y); }\nint main(void) { return apply(add, 20, 22); }", 42),
    ("int g = 100;\nint main(void) { g += 11; return g; }", 111),
    ("int tab[4] = {2, 4, 6, 8};\nint main(void) { return tab[1] + tab[3]; }", 12),
    ("int main(void) { char c = 200; return c < 0; }", 1),  # char is signed
    ("int main(void) { unsigned char c = 200; return c > 0; }", 1),
    ("int main(void) { short h = 70000; return h == 4464; }", 1),  # truncation
    ("int main(void) { int x = 5; { int x = 7; } return x; }", 5),
    ("int main(void) { goto end; return 1; end: return 2; }", 2),
    ("int main(void) { return (1, 2, 3); }", 3),
    ("char *id(char *p) { return p; }\nint main(void) { char *s = \"ab\"; return id(s)[1]; }", ord('b')),
    ("int main(void) { char *p = (char *)GC_malloc(10); p[3] = 42; return p[3] + p[4]; }", 42),
    ("int main(void) { unsigned int a = 0xFFFFFFFF; return a > 10; }", 1),
    ("int main(void) { return 2[\"abc\"]; }", ord('c')),
]


@pytest.mark.parametrize("source,expected", CASES,
                         ids=[f"case{i}" for i in range(len(CASES))])
def test_snippet_all_configs(source, expected):
    result = run_all(source)
    assert result.exit_code == expected


class TestStringsAndIO:
    def test_printf_formats(self):
        r = run_all('int main(void) { printf("%d %u %x %c %s%%\\n", -5, 7, 255, 65, "ok"); return 0; }')
        assert r.output == "-5 7 ff A ok%\n"

    def test_puts_and_putchar(self):
        r = run_all('int main(void) { puts("line"); putchar(33); return 0; }')
        assert r.output == "line\n!"

    def test_getchar_reads_stdin(self):
        r = run_all("int main(void) { int c, n = 0; while ((c = getchar()) >= 0) n++; return n; }",
                    stdin="abc\n")
        assert r.exit_code == 4

    def test_string_builtins(self):
        src = """
        int main(void) {
            char buf[32];
            strcpy(buf, "hello");
            strcat(buf, " world");
            if (strcmp(buf, "hello world") != 0) return 1;
            if (strlen(buf) != 11) return 2;
            if (strncmp(buf, "hello!", 5) != 0) return 3;
            return 0;
        }"""
        assert run_all(src).exit_code == 0

    def test_mem_builtins(self):
        src = """
        int main(void) {
            char a[8]; char b[8]; int i;
            memset(a, 7, 8);
            memcpy(b, a, 8);
            for (i = 0; i < 8; i++) if (b[i] != 7) return 1;
            return 0;
        }"""
        assert run_all(src).exit_code == 0

    def test_atoi(self):
        assert run_all('int main(void) { return atoi("  -42x") == -42; }').exit_code == 1


class TestDifferentialArithmetic:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000),
           st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    def test_binary_ops_match_python(self, a, b, op):
        source = f"int main(void) {{ return ({a} {op} {b}) == ({a} {op} {b}); }}"
        # compute in python
        expected = {"+" : a + b, "-": a - b, "*": a * b,
                    "&": a & b, "|": a | b, "^": a ^ b}[op]
        src2 = f"int main(void) {{ int r = {a} {op} ({b}); return r == ({expected}); }}"
        assert run_all(src2, configs=("O", "g")).exit_code == 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(-500, 500), st.integers(1, 40))
    def test_division_truncates_like_c(self, a, b):
        q, r = int(a / b), a - int(a / b) * b
        src = (f"int main(void) {{ return ({a} / {b} == {q}) "
               f"&& ({a} % {b} == {r}); }}")
        assert run_all(src, configs=("O", "g")).exit_code == 1

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=12))
    def test_array_sum_matches(self, values):
        n = len(values)
        init = ", ".join(map(str, values))
        total = sum(values) & 0xFF  # exit codes are bytes on real systems;
        src = (f"int main(void) {{ int a[{n}] = {{{init}}}; int i, s = 0; "
               f"for (i = 0; i < {n}; i++) s += a[i]; "
               f"return (s & 0xFF) == {total}; }}")
        assert run_all(src, configs=("O", "g")).exit_code == 1


CASES_2 = [
    # Nested structs and arrays of structs.
    ("struct in { int a; int b; };\nstruct out { struct in pair; int tag; };\n"
     "int main(void) { struct out o; o.pair.a = 3; o.pair.b = 4; o.tag = 5; "
     "return o.pair.a * o.pair.b + o.tag; }", 17),
    ("struct pt { int x; int y; };\n"
     "int main(void) { struct pt grid[3]; int i; "
     "for (i = 0; i < 3; i++) { grid[i].x = i; grid[i].y = i * 2; } "
     "return grid[2].x + grid[2].y; }", 6),
    ("struct pt { int x; };\n"
     "int main(void) { struct pt a; struct pt *p = &a; "
     "p->x = 9; return (*p).x; }", 9),
    # Pointer to pointer.
    ("int main(void) { int v = 5; int *p = &v; int **pp = &p; "
     "**pp = 8; return v; }", 8),
    ("void set(int **out, int *target) { *out = target; }\n"
     "int main(void) { int a = 3, b = 7; int *p = &a; "
     "set(&p, &b); return *p; }", 7),
    # Unsigned wraparound and shifts.
    ("int main(void) { unsigned int u = 0; u--; return u > 1000; }", 1),
    ("int main(void) { unsigned int u = 0x80000000; return (u >> 31) == 1; }", 1),
    ("int main(void) { int s = -8; return s >> 1 == -4; }", 1),
    # Comma in for, multiple declarators, shadowing.
    ("int main(void) { int i, j, s = 0; "
     "for (i = 0, j = 10; i < j; i++, j--) s++; return s; }", 5),
    ("int x = 1;\nint f(void) { int x = 2; { int x = 3; } return x; }\n"
     "int main(void) { return f() * 10 + x; }", 21),
    # Switch fallthrough.
    ("int main(void) { int s = 0, i; for (i = 0; i < 3; i++) "
     "switch (i) { case 0: s += 1; case 1: s += 10; break; case 2: s += 100; } "
     "return s; }", 121),
    # do-while with break and continue semantics.
    ("int main(void) { int i = 0, s = 0; "
     "do { i++; if (i == 3) continue; if (i == 6) break; s += i; } while (1); "
     "return s; }", 1 + 2 + 4 + 5),
    # String walking and pointer comparison.
    ("int main(void) { char *s = \"abcdef\"; char *e = s; "
     "while (*e) e++; return e - s; }", 6),
    ("int main(void) { char *a = \"xy\"; char *b = a; return a == b; }", 1),
    # sizeof expressions and arrays.
    ("int main(void) { int a[6]; return sizeof(a) / sizeof(a[0]); }", 6),
    ("struct s { char c[3]; short h; };\n"
     "int main(void) { return sizeof(struct s); }", 6),
    # Function pointer tables.
    ("int add1(int x) { return x + 1; }\nint dbl(int x) { return x * 2; }\n"
     "int main(void) { int (*ops[2])(int); int s = 0; int i; "
     "ops[0] = add1; ops[1] = dbl; "
     "for (i = 0; i < 2; i++) s += ops[i](10); return s; }", 31),
    # Recursion with arrays on the stack.
    ("int sum_to(int n) { int local[2]; local[0] = n; "
     "if (n == 0) return 0; return local[0] + sum_to(n - 1); }\n"
     "int main(void) { return sum_to(10); }", 55),
    # Ternary chains and assignment results.
    ("int main(void) { int a = 5, b; b = (a = a + 1); return a + b; }", 12),
    ("int main(void) { int x = 7; return x > 10 ? 1 : x > 5 ? 2 : 3; }", 2),
    # Global struct with pointers, modified through functions.
    ("struct box { int *slot; };\nstruct box g;\n"
     "void fill(int *p) { g.slot = p; }\n"
     "int main(void) { int v = 44; fill(&v); return *g.slot; }", 44),
    # Character arithmetic.
    ("int main(void) { char c = 'a'; c = c + 2; return c == 'c'; }", 1),
    # Negative modulo chain (C semantics).
    ("int main(void) { return (-13 % 5) + 10; }", 7),
    # Empty function body and void returns.
    ("void nothing(void) { }\nint main(void) { nothing(); return 6; }", 6),
]


@pytest.mark.parametrize("source,expected", CASES_2,
                         ids=[f"extra{i}" for i in range(len(CASES_2))])
def test_snippet_all_configs_extra(source, expected):
    result = run_all(source)
    assert result.exit_code == expected
