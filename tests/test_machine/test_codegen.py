"""Code generation tests: addressing-mode folding, KEEP_LIVE barriers,
prologue/epilogue discipline, frame layout."""

import pytest

from repro.machine import CompileConfig, VM, compile_source
from repro.machine.asm import MInst


def asm_for(source, fn_name, config=None):
    compiled = compile_source(source, config or CompileConfig())
    return compiled.asm.functions[fn_name]


def ops(mfunc):
    return [i.op for i in mfunc.insts]


class TestAddressingModeFolding:
    def test_index_load_folds_to_reg_reg(self):
        mf = asm_for("int f(int *a, int i) { return a[i]; }", "f")
        loads = [i for i in mf.insts if i.op == "ld" and i.rd != "fp"]
        # The data load uses [reg+reg]; no separate add survives.
        data_loads = [i for i in loads if i.rs2 is not None]
        assert data_loads, mf.render()

    def test_constant_offset_folds_to_imm(self):
        mf = asm_for("struct s { int a; int b; };\n"
                     "int f(struct s *p) { return p->b; }", "f")
        assert any(i.op == "ld" and i.imm == 4 for i in mf.insts), mf.render()

    def test_keep_live_blocks_the_fold(self):
        safe = asm_for("int f(int *a, int i) { return a[i]; }", "f",
                       CompileConfig.named("O_safe"))
        # The load happens through the KEEP_LIVE result: [reg+0].
        marker_idx = next(i for i, inst in enumerate(safe.insts)
                          if inst.op == "keepsafe")
        load = next(inst for inst in safe.insts[marker_idx:]
                    if inst.op == "ld")
        assert load.rs2 is None and (load.imm or 0) == 0

    def test_unsafe_baseline_has_no_markers(self):
        mf = asm_for("int f(int *a, int i) { return a[i]; }", "f")
        assert "keepsafe" not in ops(mf)

    def test_safe_code_size_grows(self):
        src = "int f(int *a, int i) { return a[i] + a[i + 1]; }"
        base = asm_for(src, "f")
        safe = asm_for(src, "f", CompileConfig.named("O_safe"))
        assert safe.code_size() > base.code_size()

    def test_fold_rejected_when_address_reused(self):
        # The address is used twice: the add must stay materialized.
        src = ("int f(int *a, int i) { int *p = &a[i]; return *p + *p; }")
        mf = asm_for(src, "f")
        vm_src = src + "\nint main(void) { int b[4] = {1,2,3,4}; return f(b, 2); }"
        compiled = compile_source(vm_src, CompileConfig())
        assert VM(compiled.asm).run().exit_code == 6


class TestPrologueEpilogue:
    def test_frame_setup_and_teardown(self):
        mf = asm_for("int f(int a) { int big[10]; big[0] = a; return big[0]; }", "f")
        assert mf.insts[0].op == "st" and mf.insts[0].rd == "fp"
        assert mf.frame_size >= 40
        rets = [i for i, inst in enumerate(mf.insts) if inst.op == "ret"]
        assert rets
        # sp restored before every ret
        for r in rets:
            window = mf.insts[max(0, r - 4):r]
            assert any(i.op == "mov" and i.rd == "sp" for i in window)

    def test_callee_saved_registers_saved_and_restored(self):
        mf = asm_for("int g(void);\nint f(int a) { int x = a * 3; g(); return x; }",
                     "f")
        s_regs = {i.rd for i in mf.insts if i.op == "st" and i.rd
                  and i.rd.startswith("s")}
        assert s_regs, "call-crossing value did not use callee-saved reg"
        restored = {i.rd for i in mf.insts if i.op == "ld" and i.rd
                    and i.rd.startswith("s")}
        assert s_regs <= restored

    def test_arguments_arrive_in_arg_registers(self):
        mf = asm_for("int g(int a, int b, int c);\n"
                     "int f(void) { return g(1, 2, 3); }", "f")
        call_idx = next(i for i, inst in enumerate(mf.insts) if inst.op == "call")
        assert mf.insts[call_idx].nargs == 3
        setup = mf.insts[:call_idx]
        written = {i.rd for i in setup if i.rd}
        assert {"a0", "a1", "a2"} <= written

    def test_nested_calls_preserve_frame(self):
        src = """
        int leaf(int x) { return x + 1; }
        int mid(int x) { return leaf(x) + leaf(x + 1); }
        int main(void) { return mid(10) + mid(20); }
        """
        compiled = compile_source(src, CompileConfig())
        assert VM(compiled.asm).run().exit_code == (11 + 12) + (21 + 22)

    def test_deep_recursion_uses_stack(self):
        src = ("int down(int n) { if (n == 0) return 0; "
               "return down(n - 1) + 1; }\n"
               "int main(void) { return down(200); }")
        compiled = compile_source(src, CompileConfig())
        assert VM(compiled.asm).run().exit_code == 200


class TestKeepLiveCodegen:
    def test_keepsafe_marker_carries_base(self):
        safe = asm_for("char f(char *p, int i) { return p[i + 900]; }", "f",
                       CompileConfig.named("O_safe"))
        markers = [i for i in safe.insts if i.op == "keepsafe"]
        assert markers and all(m.rs1 and m.rs2 for m in markers)

    def test_markers_are_zero_cost(self):
        from repro.machine.models import SPARC_10
        assert SPARC_10.cycles_for("keepsafe") == 0

    def test_markers_excluded_from_code_size(self):
        src = "char f(char *p, int i) { return p[i + 900]; }"
        safe = asm_for(src, "f", CompileConfig.named("O_safe"))
        rendered_count = sum(1 for i in safe.insts
                             if i.op not in ("label", "keepsafe", "nop"))
        assert safe.code_size() == rendered_count


class TestDebugMode:
    def test_debug_locals_in_memory(self):
        mf = asm_for("int f(int a) { int x = a + 1; return x * 2; }", "f",
                     CompileConfig.named("g"))
        # x lives in the frame: its address is materialized (add .., fp,
        # off) and every assignment stores / every use loads through it.
        frame_addrs = [i for i in mf.insts
                       if i.op == "add" and i.rs1 == "fp" and i.imm is not None]
        assert len(frame_addrs) >= 3  # a stored; x stored; x loaded
        assert any(i.op == "st" for i in mf.insts)
        assert any(i.op == "ld" and i.rd != "fp" for i in mf.insts)

    def test_debug_code_is_bigger_and_slower(self):
        src = ("int f(int a) { int x = a; int i; "
               "for (i = 0; i < 10; i++) x += i; return x; }\n"
               "int main(void) { return f(5); }")
        o = compile_source(src, CompileConfig.named("O"))
        g = compile_source(src, CompileConfig.named("g"))
        assert g.asm.code_size() > o.asm.code_size()
        ro = VM(o.asm).run()
        rg = VM(g.asm).run()
        assert ro.exit_code == rg.exit_code == 50
        assert rg.cycles > ro.cycles
