"""Compilation driver tests: the build-matrix configurations."""

import pytest

from repro.core.annotate import AnnotateOptions
from repro.machine import CompileConfig, VM, compile_source, run_source
from repro.machine.models import PENTIUM_90, SPARC_10

SRC = ("char *walk(char *p, int n) { while (n--) p++; return p; }\n"
       "int main(void) { char *b = (char *)GC_malloc(16); "
       "b[5] = 9; return *walk(b, 5); }")


class TestNamedConfigs:
    def test_all_four_names(self):
        for name in ("O", "O_safe", "g", "g_checked"):
            config = CompileConfig.named(name)
            assert isinstance(config, CompileConfig)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            CompileConfig.named("Ofast")

    def test_o_is_unsafe_baseline(self):
        config = CompileConfig.named("O")
        assert config.optimize and not config.safe and not config.checked

    def test_g_checked_implies_no_optimizer(self):
        config = CompileConfig.named("g_checked")
        assert not config.optimize and config.checked

    def test_model_threading(self):
        config = CompileConfig.named("O", PENTIUM_90)
        assert config.model is PENTIUM_90


class TestCompileSource:
    def test_keep_live_count_reported(self):
        compiled = compile_source(SRC, CompileConfig.named("O_safe"))
        assert compiled.keep_lives >= 1
        baseline = compile_source(SRC, CompileConfig.named("O"))
        assert baseline.keep_lives == 0

    def test_render_asm(self):
        compiled = compile_source(SRC, CompileConfig.named("O"))
        text = compiled.render_asm()
        assert "walk:" in text and "main:" in text

    def test_code_size_property(self):
        compiled = compile_source(SRC, CompileConfig.named("O"))
        assert compiled.code_size == compiled.asm.code_size()

    def test_cpp_runs_by_default(self):
        src = "#define N 4\nint main(void) { return N; }"
        compiled = compile_source(src, CompileConfig())
        assert VM(compiled.asm).run().exit_code == 4

    def test_cpp_can_be_disabled(self):
        config = CompileConfig(run_cpp=False)
        src = "int main(void) { return 4; }"
        compiled = compile_source(src, config)
        assert VM(compiled.asm).run().exit_code == 4

    def test_annotate_options_respected(self):
        config = CompileConfig(
            optimize=True, safe=True,
            annotate_options=AnnotateOptions(suppress_copies=False))
        richer = compile_source(SRC, config)
        plain = compile_source(SRC, CompileConfig.named("O_safe"))
        assert richer.keep_lives >= plain.keep_lives


class TestRunSource:
    def test_one_shot(self):
        result = run_source(SRC, CompileConfig.named("O"))
        assert result.exit_code == 9

    def test_stdin_plumbing(self):
        src = ("int main(void) { return getchar(); }")
        result = run_source(src, stdin="A")
        assert result.exit_code == ord("A")

    def test_gc_interval_plumbing(self):
        result = run_source(SRC, CompileConfig.named("O_safe"), gc_interval=3)
        assert result.exit_code == 9
        assert result.collections > 0

    def test_max_instructions_plumbing(self):
        from repro.machine import VMError
        with pytest.raises(VMError):
            run_source("int main(void) { for (;;) ; }", max_instructions=5_000)
