"""Optimizer pass tests on the IR."""

import pytest

from repro.cfront import parse, typecheck
from repro.machine.ir import Inst, IRFunc, Vreg, basic_blocks
from repro.machine.lower import lower_unit
from repro.machine.opt import addrfold, deadcode, licm, local, optimize, strength
from repro.machine.opt.local import eval_bin, eval_un


def lower(source, fn_name):
    tu = parse(source)
    syms = typecheck(tu)
    return lower_unit(tu, syms).functions[fn_name]


def ops_of(fn):
    return [i.op for i in fn.insts]


def bin_subops(fn):
    return [i.subop for i in fn.insts if i.op == "bin"]


class TestEvalHelpers:
    @pytest.mark.parametrize("subop,a,b,expected", [
        ("add", 7, 3, 10),
        ("sub", 3, 7, 0xFFFFFFFC),
        ("mul", 0xFFFF, 0xFFFF, (0xFFFF * 0xFFFF) & 0xFFFFFFFF),
        ("div", 0xFFFFFFFB, 2, 0xFFFFFFFE),       # -5 / 2 == -2
        ("mod", 0xFFFFFFF9, 3, 0xFFFFFFFF),       # -7 % 3 == -1
        ("shl", 1, 33, 2),                        # shift amount masked to 5 bits
        ("shr", 0x80000000, 1, 0xC0000000),       # arithmetic shift
        ("lt", 0xFFFFFFFF, 0, 1),                 # signed compare: -1 < 0
        ("ult", 0xFFFFFFFF, 0, 0),                # unsigned compare
        ("eq", 5, 5, 1),
    ])
    def test_eval_bin(self, subop, a, b, expected):
        assert eval_bin(subop, a, b) == expected

    def test_division_by_zero_unfoldable(self):
        assert eval_bin("div", 1, 0) is None
        assert eval_bin("mod", 1, 0) is None

    @pytest.mark.parametrize("subop,a,expected", [
        ("neg", 5, 0xFFFFFFFB),
        ("bnot", 0, 0xFFFFFFFF),
        ("not", 0, 1),
        ("sext8", 0xFF, 0xFFFFFFFF),
        ("zext8", 0xFF, 0xFF),
        ("sext16", 0x8000, 0xFFFF8000),
    ])
    def test_eval_un(self, subop, a, expected):
        assert eval_un(subop, a) == expected


class TestLocalPass:
    def test_constant_folding(self):
        fn = lower("int f(void) { return 3 + 4 * 5; }", "f")
        local.run(fn)
        deadcode.run(fn)
        consts = [i.imm for i in fn.insts if i.op == "const"]
        assert 23 in consts
        assert "bin" not in ops_of(fn)

    def test_copy_propagation(self):
        fn = lower("int f(int a) { int b = a; int c = b; return c + c; }", "f")
        local.run(fn)
        deadcode.run(fn)
        # The adds should operate directly on the parameter.
        add = next(i for i in fn.insts if i.op == "bin" and i.subop == "add")
        assert add.args[0] == add.args[1] == fn.params[0]

    def test_cse_of_repeated_expression(self):
        fn = lower("int f(int a, int b) { return (a * b) + (a * b); }", "f")
        local.run(fn)
        deadcode.run(fn)
        assert bin_subops(fn).count("mul") == 1

    def test_cse_respects_redefinition(self):
        fn = lower("int f(int a, int b) { int x = a * b; a = a + 1; "
                   "return x + a * b; }", "f")
        optimize(fn)
        assert bin_subops(fn).count("mul") == 2

    def test_algebraic_add_zero(self):
        fn = lower("int f(int a) { return a + 0; }", "f")
        local.run(fn)
        deadcode.run(fn)
        assert "bin" not in ops_of(fn)

    def test_algebraic_mul_one(self):
        fn = lower("int f(int a) { return a * 1; }", "f")
        local.run(fn)
        deadcode.run(fn)
        assert "mul" not in bin_subops(fn)

    def test_keep_is_opaque_to_cse(self):
        # Two KEEP_LIVEs of the same expression must not be merged.
        from repro.core.annotate import Annotator, AnnotateOptions
        from repro.cfront.typecheck import typecheck as tc
        tu = parse("char *f(char *p) { char *a; char *b; "
                   "a = p + 2; b = p + 2; return a; }")
        tc(tu)
        Annotator(tu, AnnotateOptions()).run()
        syms = tc(tu)
        fn = lower_unit(tu, syms).functions["f"]
        optimize(fn)
        assert sum(1 for i in fn.insts if i.op == "keep") == 2


class TestStrengthReduction:
    def test_mul_by_power_of_two_becomes_shift(self):
        fn = lower("int f(int *a, int i) { return a[i]; }", "f")
        local.run(fn)
        strength.run(fn)
        assert "shl" in bin_subops(fn)
        assert "mul" not in bin_subops(fn)

    def test_mul_by_non_power_kept(self):
        fn = lower("int f(int a) { return a * 12; }", "f")
        strength.run(fn)
        assert "mul" in bin_subops(fn)

    def test_signed_div_not_reduced(self):
        fn = lower("int f(int a) { return a / 4; }", "f")
        strength.run(fn)
        assert "div" in bin_subops(fn)


class TestLICM:
    def test_constant_hoisted_out_of_loop(self):
        fn = lower("int f(int n) { int i, s = 0; "
                   "for (i = 0; i < n; i++) s += 12345; return s; }", "f")
        licm.run(fn)
        label_idx = next(i for i, inst in enumerate(fn.insts)
                         if inst.op == "label")
        big_const_idx = next(i for i, inst in enumerate(fn.insts)
                             if inst.op == "const" and inst.imm == 12345)
        assert big_const_idx < label_idx

    def test_hoisting_preserves_results(self):
        from repro.machine import CompileConfig, VM, compile_source
        src = ("int main(void) { int i, s = 0; "
               "for (i = 0; i < 50; i++) s += i * 3 + 7; return s & 0xFF; }")
        with_licm = compile_source(src, CompileConfig(passes=("local", "licm",
                                                              "strength",
                                                              "deadcode")))
        without = compile_source(src, CompileConfig(passes=("local", "deadcode")))
        r1 = VM(with_licm.asm).run()
        r2 = VM(without.asm).run()
        assert r1.exit_code == r2.exit_code
        assert r1.instructions < r2.instructions  # hoisting paid off


class TestDeadCode:
    def test_unused_computation_removed(self):
        fn = lower("int f(int a) { int unused = a * 99; return a; }", "f")
        deadcode.run(fn)
        assert "mul" not in bin_subops(fn)

    def test_chain_of_dead_code_removed(self):
        fn = lower("int f(int a) { int x = a + 1; int y = x * 2; "
                   "int z = y - 3; return a; }", "f")
        deadcode.run(fn)
        assert "bin" not in ops_of(fn)

    def test_calls_never_removed(self):
        fn = lower("int g(void);\nint f(void) { int unused = g(); return 0; }", "f")
        deadcode.run(fn)
        assert "call" in ops_of(fn)

    def test_keep_never_removed(self):
        fn = IRFunc("t")
        v = fn.new_vreg()
        b = fn.new_vreg()
        k = fn.new_vreg()
        fn.emit(Inst("const", dst=v, imm=1))
        fn.emit(Inst("const", dst=b, imm=2))
        fn.emit(Inst("keep", dst=k, args=(v, b)))
        fn.emit(Inst("ret"))
        deadcode.run(fn)
        assert "keep" in ops_of(fn)


class TestAddrFold:
    SRC = ("int helper(int x) { return x; }\n"
           "char f(char *p, int i) { helper(1); return p[i - 1000]; }")

    def test_reassociation_happens(self):
        fn = lower(self.SRC, "f")
        optimize(fn)
        # Find sub feeding from the pointer parameter.
        subs = [i for i in fn.insts if i.op == "bin" and i.subop == "sub"]
        assert any(fn.params[0] in s.args for s in subs), fn

    def test_dead_pointer_overwritten_in_place(self):
        fn = lower(self.SRC, "f")
        optimize(fn)
        p = fn.params[0]
        # The paper's literal p = p - 1000: p is both dst and source.
        assert any(i.op == "bin" and i.dst == p and p in i.args
                   for i in fn.insts)

    def test_small_constants_left_for_addressing_mode(self):
        fn = lower("int helper(int x) { return x; }\n"
                   "char f(char *p, int i) { helper(1); return p[i + 4]; }", "f")
        optimize(fn)
        # i + 4 must NOT be reassociated: +4 folds into the load.
        p = fn.params[0]
        assert not any(i.op == "bin" and i.dst == p and p in i.args
                       for i in fn.insts)

    def test_semantics_preserved(self):
        from repro.machine import CompileConfig, VM, compile_source
        src = ("char f(char *p, int i) { return p[i - 3]; }\n"
               "int main(void) { char a[10]; int k; "
               "for (k = 0; k < 10; k++) a[k] = 50 + k; return f(a, 8); }")
        for passes in [("local", "deadcode"),
                       ("local", "licm", "strength", "addrfold", "deadcode")]:
            compiled = compile_source(src, CompileConfig(passes=passes))
            assert VM(compiled.asm).run().exit_code == 55


class TestAddrFoldAliasRegression:
    """Pins PR 1's in-place aliasing fix: ``x + (x - c)``, where the
    index operand of the reassociated add *is* the base, must not be
    rewritten in place (``x = x - c; x + x``) — that clobbers the value
    the final add still reads.  Previously covered only indirectly by
    benchmark parity."""

    ALIAS = "int f(int *a) { int x = a[0]; return x + (x - 1000); }"

    def test_base_register_not_clobbered(self):
        fn = lower(self.ALIAS, "f")
        optimize(fn)
        x = next(i.dst for i in fn.insts if i.op == "load")
        # The loaded value must stay single-assignment: the buggy
        # in-place variant redefined it (x = sub(x, c)).
        assert not any(i.dst == x for i in fn.insts
                       if i.op != "load"), fn.insts

    def test_no_self_add_from_reassociation(self):
        fn = lower(self.ALIAS, "f")
        optimize(fn)
        # The miscompile's signature: the rewritten add reads the same
        # (adjusted) register twice, computing 2*(x-c) instead of 2x-c.
        assert not any(i.op == "bin" and i.subop == "add"
                       and len(i.args) == 2 and i.args[0] == i.args[1]
                       for i in fn.insts if i.text == "reassoc"), fn.insts

    def test_alias_semantics_across_pipelines(self):
        from repro.machine import CompileConfig, VM, compile_source
        src = ("int main(void) { int *a = (int *)GC_malloc(4 * sizeof(int)); "
               "int x, y; a[0] = 4242; x = a[0]; y = x + (x - 1000); "
               "return y & 0xFF; }")
        expected = (4242 + 4242 - 1000) & 0xFF
        for passes in [("local", "deadcode"),
                       ("local", "licm", "strength", "addrfold", "deadcode")]:
            compiled = compile_source(src, CompileConfig(passes=passes))
            assert VM(compiled.asm).run().exit_code == expected

    def test_intervening_read_blocks_in_place_rewrite(self):
        # The second half of the fix: even with distinct index and base,
        # a read of the base between the adjustment point and the add
        # makes the in-place overwrite unsound.
        from repro.machine import CompileConfig, VM, compile_source
        full = ("int f(int *p, int i) { int t = p[0]; return p[i - 8] + t; }\n"
                "int main(void) { int a[12]; int k; "
                "for (k = 0; k < 12; k++) a[k] = k + 30; "
                "return f(a, 11) & 0xFF; }")
        for passes in [("local", "deadcode"),
                       ("local", "licm", "strength", "addrfold", "deadcode")]:
            compiled = compile_source(full, CompileConfig(passes=passes))
            assert VM(compiled.asm).run().exit_code == (33 + 30) & 0xFF


class TestPipeline:
    def test_optimize_reaches_fixpoint(self):
        fn = lower("int f(int a) { int b = a + 0; int c = b * 1; "
                   "return c + 2 * 3; }", "f")
        optimize(fn)
        snapshot = [repr(i) for i in fn.insts]
        optimize(fn)
        assert snapshot == [repr(i) for i in fn.insts]

    def test_optimized_code_is_smaller(self):
        fn = lower("int f(int a) { int t1 = a * 2; int t2 = a * 2; "
                   "int dead = t1 + 99; return t1 + t2; }", "f")
        before = len(fn.insts)
        optimize(fn)
        assert len(fn.insts) < before
