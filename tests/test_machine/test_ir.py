"""IR data structure tests."""

import pytest

from repro.machine.ir import (
    FrameSlot, GlobalVar, Inst, IRFunc, IRProgram, Vreg, basic_blocks,
)


class TestIRFunc:
    def test_vregs_are_unique(self):
        fn = IRFunc("f")
        regs = [fn.new_vreg() for _ in range(100)]
        assert len({r.id for r in regs}) == 100

    def test_labels_are_unique_and_namespaced(self):
        fn = IRFunc("myfunc")
        labels = [fn.new_label() for _ in range(10)]
        assert len(set(labels)) == 10
        assert all("myfunc" in l for l in labels)

    def test_labels_map(self):
        fn = IRFunc("f")
        fn.emit(Inst("const", dst=fn.new_vreg(), imm=1))
        fn.emit(Inst("label", symbol="L1"))
        fn.emit(Inst("label", symbol="L2"))
        assert fn.labels() == {"L1": 1, "L2": 2}

    def test_frame_layout_no_overlap(self):
        fn = IRFunc("f")
        fn.add_slot("a", 4)
        fn.add_slot("b", 10, align=1)
        fn.add_slot("c", 4)
        size = fn.layout_frame()
        slots = sorted(fn.slots.values(), key=lambda s: s.offset)
        for lo, hi in zip(slots, slots[1:]):
            assert lo.offset + lo.size <= hi.offset
        assert size % 8 == 0
        assert size >= 18

    def test_frame_respects_alignment(self):
        fn = IRFunc("f")
        fn.add_slot("c", 1, align=1)
        fn.add_slot("w", 4, align=4)
        fn.layout_frame()
        assert fn.slots["w"].offset % 4 == 0


class TestInst:
    def test_uses_and_replace(self):
        a, b, c = Vreg(0), Vreg(1), Vreg(2)
        inst = Inst("bin", dst=c, subop="add", args=(a, b))
        assert inst.uses() == (a, b)
        inst.replace_args({a: c})
        assert inst.args == (c, b)

    def test_repr_is_readable(self):
        inst = Inst("bin", dst=Vreg(3), subop="add", args=(Vreg(1), Vreg(2)))
        text = repr(inst)
        assert "add" in text and "%3" in text


class TestBasicBlocks:
    def _fn(self, ops):
        fn = IRFunc("f")
        for op, sym in ops:
            v = fn.new_vreg() if op == "const" else None
            fn.emit(Inst(op, dst=v, imm=0 if op == "const" else None,
                         symbol=sym, args=(Vreg(99),) if op in ("bz", "bnz") else ()))
        return fn

    def test_straight_line(self):
        fn = self._fn([("const", ""), ("const", ""), ("ret", "")])
        assert len(basic_blocks(fn)) == 1

    def test_branch_creates_blocks(self):
        fn = self._fn([
            ("const", ""),
            ("bz", "L"),
            ("const", ""),
            ("label", "L"),
            ("ret", ""),
        ])
        blocks = basic_blocks(fn)
        assert [b[0] for b in blocks] == [0, 2, 3]

    def test_back_edge(self):
        fn = self._fn([
            ("label", "top"),
            ("const", ""),
            ("bnz", "top"),
            ("ret", ""),
        ])
        blocks = basic_blocks(fn)
        assert len(blocks) == 2

    def test_every_instruction_in_exactly_one_block(self):
        fn = self._fn([
            ("const", ""), ("bz", "A"), ("const", ""), ("jmp", "B"),
            ("label", "A"), ("const", ""), ("label", "B"), ("ret", ""),
        ])
        blocks = basic_blocks(fn)
        flat = [i for b in blocks for i in b]
        assert sorted(flat) == list(range(len(fn.insts)))
        assert len(set(flat)) == len(flat)


class TestIRProgram:
    def test_string_interning_deduplicates(self):
        prog = IRProgram()
        s1 = prog.intern_string("hello")
        s2 = prog.intern_string("hello")
        s3 = prog.intern_string("world")
        assert s1 == s2 != s3
        assert prog.globals[s1].init_bytes == b"hello\0"

    def test_interned_strings_nul_terminated(self):
        prog = IRProgram()
        sym = prog.intern_string("")
        assert prog.globals[sym].init_bytes == b"\0"
