"""Peephole postprocessor tests: the three paper patterns and their
safety constraints."""

import pytest

from repro.machine import CompileConfig, VM, compile_source
from repro.machine.asm import MFunc, MInst
from repro.postproc import PeepholeStats, postprocess, postprocess_function


def mk(insts):
    return MFunc("t", list(insts))


def ops(fn):
    return [i.op for i in fn.insts]


class TestPattern1FoldLoad:
    def test_add_load_fuses(self):
        fn = mk([
            MInst("add", rd="t2", rs1="t0", rs2="t1"),
            MInst("ld", rd="rv", rs1="t2", imm=0),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.loads_folded == 1
        load = next(i for i in fn.insts if i.op == "ld")
        assert load.rs1 == "t0" and load.rs2 == "t1"
        assert "add" not in ops(fn)

    def test_li_add_load_fuses_to_immediate(self):
        fn = mk([
            MInst("add", rd="t2", rs1="t0", imm=8),
            MInst("ld", rd="rv", rs1="t2", imm=0),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.loads_folded == 1
        load = next(i for i in fn.insts if i.op == "ld")
        assert load.rs1 == "t0" and load.imm == 8

    def test_store_fuses_too(self):
        fn = mk([
            MInst("add", rd="t2", rs1="t0", rs2="t1"),
            MInst("st", rd="t3", rs1="t2", imm=0),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.loads_folded == 1

    def test_rejected_when_z_still_live(self):
        fn = mk([
            MInst("add", rd="t2", rs1="t0", rs2="t1"),
            MInst("ld", rd="t3", rs1="t2", imm=0),
            MInst("mov", rd="rv", rs1="t2"),  # t2 used again
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.loads_folded == 0

    def test_rejected_when_input_redefined_between(self):
        fn = mk([
            MInst("add", rd="t2", rs1="t0", rs2="t1"),
            MInst("li", rd="t0", imm=0),       # clobbers x
            MInst("ld", rd="rv", rs1="t2", imm=0),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.loads_folded == 0

    def test_rejected_when_z_is_keep_live_base(self):
        # "The transformation could not apply if z were originally
        # mentioned as the second argument of a KEEP_LIVE."
        fn = mk([
            MInst("add", rd="t2", rs1="t0", rs2="t1"),
            MInst("keepsafe", rs1="t3", rs2="t2"),
            MInst("ld", rd="rv", rs1="t2", imm=0),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.loads_folded == 0

    def test_fold_through_keepsafe_marker(self):
        # z is a KEEP_LIVE *result* (rs1): folding is allowed.
        fn = mk([
            MInst("add", rd="t2", rs1="t0", rs2="t1"),
            MInst("keepsafe", rs1="t2", rs2="t0"),
            MInst("ld", rd="rv", rs1="t2", imm=0),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.loads_folded == 1


class TestPattern2MoveElimination:
    def test_simple_copy_eliminated(self):
        fn = mk([
            MInst("li", rd="t0", imm=5),
            MInst("mov", rd="t1", rs1="t0"),
            MInst("add", rd="rv", rs1="t1", rs2="t1"),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.moves_eliminated == 1
        add = next(i for i in fn.insts if i.op == "add")
        assert add.rs1 == add.rs2 == "t0"

    def test_rejected_when_source_redefined_while_copy_live(self):
        fn = mk([
            MInst("li", rd="t0", imm=5),
            MInst("mov", rd="t1", rs1="t0"),
            MInst("li", rd="t0", imm=9),      # x changes
            MInst("add", rd="rv", rs1="t1", rs2="t1"),  # t1 still needed
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.moves_eliminated == 0

    def test_self_move_dropped(self):
        fn = mk([
            MInst("mov", rd="t0", rs1="t0"),
            MInst("ret"),
        ])
        postprocess_function(fn)
        assert "mov" not in ops(fn)

    def test_copy_into_special_register_kept(self):
        fn = mk([
            MInst("li", rd="t0", imm=1),
            MInst("mov", rd="a0", rs1="t0"),
            MInst("call", symbol="g", nargs=1),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.moves_eliminated == 0

    def test_keep_live_base_copy_kept(self):
        fn = mk([
            MInst("li", rd="t0", imm=1),
            MInst("mov", rd="t1", rs1="t0"),
            MInst("keepsafe", rs1="t2", rs2="t1"),
            MInst("ld", rd="rv", rs1="t1", imm=0),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.moves_eliminated == 0


class TestPattern3RetargetAdd:
    def test_add_then_move_combines(self):
        fn = mk([
            MInst("add", rd="t2", rs1="t0", rs2="t1"),
            MInst("mov", rd="s0", rs1="t2"),
            MInst("st", rd="s0", rs1="fp", imm=-8),
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.adds_retargeted + stats.moves_eliminated >= 1
        assert sum(1 for i in fn.insts if i.op == "mov") == 0

    def test_rejected_when_w_used_in_between(self):
        fn = mk([
            MInst("add", rd="t2", rs1="t0", rs2="t1"),
            MInst("st", rd="s0", rs1="fp", imm=-4),  # reads w
            MInst("mov", rd="s0", rs1="t2"),
            MInst("st", rd="s0", rs1="fp", imm=-8),
            MInst("st", rd="t2", rs1="fp", imm=-12),  # t2 live after mov
            MInst("ret"),
        ])
        stats = postprocess_function(fn)
        assert stats.adds_retargeted == 0


class TestEndToEnd:
    WORKLOAD = """
    int sum(int *a, int n) {
        int i, t = 0;
        for (i = 0; i < n; i++) t += a[i];
        return t;
    }
    int main(void) {
        int a[32]; int i;
        for (i = 0; i < 32; i++) a[i] = i;
        return sum(a, 32) & 0xFF;
    }
    """

    @pytest.mark.parametrize("config_name", ("O", "O_safe", "g", "g_checked"))
    def test_postprocessing_preserves_semantics(self, config_name):
        config = CompileConfig.named(config_name)
        baseline = compile_source(self.WORKLOAD, config)
        expected = VM(baseline.asm, config.model).run().exit_code

        processed = compile_source(self.WORKLOAD, config)
        postprocess(processed.asm)
        assert VM(processed.asm, config.model).run().exit_code == expected

    def test_recovers_safe_mode_overhead(self):
        config_o = CompileConfig.named("O")
        config_s = CompileConfig.named("O_safe")
        base = compile_source(self.WORKLOAD, config_o)
        safe = compile_source(self.WORKLOAD, config_s)
        safe_pp = compile_source(self.WORKLOAD, config_s)
        stats = postprocess(safe_pp.asm)
        r_base = VM(base.asm).run()
        r_safe = VM(safe.asm).run()
        r_pp = VM(safe_pp.asm).run()
        assert r_base.exit_code == r_safe.exit_code == r_pp.exit_code
        assert stats.total > 0
        assert r_pp.cycles <= r_safe.cycles

    def test_never_slows_down_optimized_code(self):
        config = CompileConfig.named("O")
        plain = compile_source(self.WORKLOAD, config)
        processed = compile_source(self.WORKLOAD, config)
        postprocess(processed.asm)
        r_plain = VM(plain.asm).run()
        r_proc = VM(processed.asm).run()
        assert r_proc.cycles <= r_plain.cycles
        assert processed.asm.code_size() <= plain.asm.code_size()

    def test_idempotent(self):
        config = CompileConfig.named("O_safe")
        compiled = compile_source(self.WORKLOAD, config)
        postprocess(compiled.asm)
        snapshot = compiled.asm.render()
        again = postprocess(compiled.asm)
        assert again.total == 0
        assert compiled.asm.render() == snapshot
