"""Allocation-sinking tests: the escape analysis' safety line and the
GC-visible payoff (fewer collections, same answer)."""

import pytest

from repro.gc.collector import Collector
from repro.machine import CompileConfig, VM, compile_source
from repro.postproc import SinkStats, sink_program
from repro.postproc.sink import MAX_SINK_BYTES

# A hot loop burning through short-lived 32-byte scratch buffers: the
# canonical sinkable shape (fill, reduce, dead before the next round).
SINKABLE = """
int kernel(int seed) {
    int k;
    int acc = seed;
    int *buf = (int *) GC_malloc(8 * sizeof(int));
    for (k = 0; k < 8; k++) buf[k] = (seed + k * 3) & 0xFF;
    for (k = 0; k < 8; k++) acc = (acc + buf[k]) & 0xFFFF;
    return acc;
}
int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 4000; i++) acc = (acc + kernel(i)) & 0xFFFF;
    printf("%d\\n", acc);
    return acc & 0xFF;
}
"""


def run(program, **vm_kwargs):
    return VM(program.asm, **vm_kwargs).run()


def compile_pair(source, config_name="O"):
    """(baseline, sunk, stats) for one source at one config."""
    config = CompileConfig.named(config_name)
    base = compile_source(source, config)
    sunk = compile_source(source, config)
    stats = sink_program(sunk.asm)
    return base, sunk, stats


class TestSinks:
    def test_scratch_buffer_sinks_at_O(self):
        base, sunk, stats = compile_pair(SINKABLE)
        assert stats.sunk >= 1
        r0, r1 = run(base), run(sunk)
        assert (r0.exit_code, r0.output) == (r1.exit_code, r1.output)
        # The whole point: the allocation volume is gone, so the
        # collector never triggers.
        assert r1.collections < r0.collections
        assert r1.cycles < r0.cycles

    def test_alias_through_cast_still_sinks(self):
        source = SINKABLE.replace(
            "for (k = 0; k < 8; k++) acc = (acc + buf[k]) & 0xFFFF;",
            "{ int *alias = (int *) buf; "
            "for (k = 0; k < 8; k++) acc = (acc + alias[k]) & 0xFFFF; }")
        base, sunk, stats = compile_pair(source)
        assert stats.sunk >= 1
        r0, r1 = run(base), run(sunk)
        assert (r0.exit_code, r0.output) == (r1.exit_code, r1.output)

    def test_discarded_result_sinks(self):
        # `GC_malloc(24);` as a bare statement: codegen still captures
        # rv into a temp, so this is a sink (not a dead-result delete) —
        # but the allocation must still vanish from the heap's view.
        source = """
        int main(void) {
            int i;
            for (i = 0; i < 100; i++) GC_malloc(24);
            return 7;
        }
        """
        base, sunk, stats = compile_pair(source)
        assert stats.total >= 1
        r0, r1 = run(base), run(sunk)
        assert r0.exit_code == r1.exit_code == 7

    def test_dead_allocation_is_eliminated(self):
        # The degenerate rewrite: rv dead straight after the call, no
        # capture at all.  Codegen never emits this shape (a bare call
        # still moves rv into a temp), so build it directly.
        from repro.machine.asm import FP, MFunc, MInst, MProgram, RV, SP
        from repro.postproc import sink_function
        fn = MFunc("main", [
            MInst("st", rd=FP, rs1=SP, imm=-4),
            MInst("mov", rd=FP, rs1=SP),
            MInst("sub", rd=SP, rs1=SP, imm=8),
            MInst("li", rd="a0", imm=24),
            MInst("call", symbol="GC_malloc", nargs=1),
            MInst("li", rd=RV, imm=7),
            MInst("mov", rd=SP, rs1=FP),
            MInst("ld", rd=FP, rs1=FP, imm=-4),
            MInst("ret"),
        ], frame_size=8)
        stats = sink_function(fn)
        assert stats.eliminated == 1
        assert not any(i.op == "call" for i in fn.insts)
        prog = MProgram({"main": fn}, {})
        assert VM(prog).run().exit_code == 7

    def test_semantics_survive_adversarial_collector(self):
        # Forced collections land on *different* instruction boundaries
        # once counts change, and reclaimed objects are poisoned: if
        # sinking ever freed something still reachable, or broke a
        # root, the answers would diverge.
        config = CompileConfig.named("O")
        base = compile_source(SINKABLE, config)
        sunk = compile_source(SINKABLE, config)
        stats = sink_program(sunk.asm)
        assert stats.sunk >= 1
        results = []
        for program in (base, sunk):
            gc = Collector()
            gc.heap.poison_byte = 0xDD
            vm = VM(program.asm, collector=gc, gc_interval=997)
            results.append(vm.run())
        assert results[0].exit_code == results[1].exit_code
        assert results[0].output == results[1].output


class TestBlocked:
    def expect_blocked(self, source, *reasons, config_name="O"):
        _, _, stats = compile_pair(source, config_name)
        assert stats.sunk == 0 and stats.eliminated == 0, \
            f"expected no rewrite, got {stats}"
        assert any(r in stats.blocked for r in reasons), \
            f"expected a block reason in {reasons}, got {stats.blocked}"

    def test_escape_by_return_blocks(self):
        self.expect_blocked("""
        int *make(void) {
            int *p = (int *) GC_malloc(16);
            p[0] = 5;
            return p;
        }
        int main(void) { return make()[0]; }
        """, "moved-to-special")

    def test_escape_to_global_blocks(self):
        self.expect_blocked("""
        int *g;
        int main(void) {
            int *p = (int *) GC_malloc(16);
            p[0] = 9;
            g = p;
            return g[0];
        }
        """, "stored-as-value")

    def test_escape_by_call_argument_blocks(self):
        self.expect_blocked("""
        int reduce(int *p) { return p[0] + p[1]; }
        int main(void) {
            int *p = (int *) GC_malloc(16);
            p[0] = 3; p[1] = 4;
            return reduce(p);
        }
        """, "passed-to-call", "moved-to-special")  # caught at `mov a0, p`

    def test_live_across_collection_point_blocks(self):
        # The buffer survives a call that may allocate (and therefore
        # collect): were it sunk, its frame slot could be reused while
        # the old pointer is still live.  The collection point must be
        # a compiled callee — a *directly* sinkable churn allocation
        # would itself be sunk, removing the call and (soundly)
        # unblocking the candidate.
        source = """
        int churn(int n) {
            int *q = (int *) GC_malloc(64);
            q[0] = n;
            return q[0];
        }
        int main(void) {
            int i;
            int acc = 0;
            for (i = 0; i < 50; i++) {
                int *p = (int *) GC_malloc(16);
                p[0] = i;
                acc = (acc + churn(i)) & 0xFF;
                acc = (acc + p[0]) & 0xFF;
            }
            return acc;
        }
        """
        base, sunk, stats = compile_pair(source)
        assert "live-across-call" in stats.blocked
        # p's allocation must still be a real heap call in main.
        assert any(i.op == "call" and i.symbol == "GC_malloc"
                   for i in sunk.asm.functions["main"].insts)
        r0, r1 = run(base), run(sunk)
        assert (r0.exit_code, r0.output) == (r1.exit_code, r1.output)

    def test_branch_on_pointer_blocks(self):
        self.expect_blocked("""
        int main(void) {
            int *p = (int *) GC_malloc(16);
            if (p) p[0] = 1;
            return p[0];
        }
        """, "branch-on-pointer")

    def test_oversized_allocation_stays_on_heap(self):
        big = MAX_SINK_BYTES * 2
        source = SINKABLE.replace("GC_malloc(8 * sizeof(int))",
                                  f"GC_malloc({big})")
        _, _, stats = compile_pair(source)
        assert stats.sunk == 0
        assert "size" in stats.blocked

    def test_keepsafe_blocks_in_safe_build(self):
        # O_safe's KEEP_LIVE markers assert registers stay recognizable
        # heap references — the pass must leave those builds alone.
        _, _, stats = compile_pair(SINKABLE, "O_safe")
        assert stats.sunk == 0 and stats.eliminated == 0
        assert "keepsafe" in stats.blocked

    @pytest.mark.parametrize("config_name", ("O", "O0", "O_safe", "g",
                                             "g_checked"))
    def test_never_changes_the_answer(self, config_name):
        base, sunk, _ = compile_pair(SINKABLE, config_name)
        r0, r1 = run(base), run(sunk)
        assert (r0.exit_code, r0.output) == (r1.exit_code, r1.output)


class TestStats:
    def test_merge_accumulates(self):
        a = SinkStats(sunk=1, eliminated=2, bytes_sunk=40, candidates=4,
                      blocked={"size": 1})
        b = SinkStats(sunk=2, eliminated=0, bytes_sunk=24, candidates=3,
                      blocked={"size": 2, "keepsafe": 1})
        a.merge(b)
        assert a.sunk == 3 and a.eliminated == 2
        assert a.bytes_sunk == 64 and a.candidates == 7
        assert a.blocked == {"size": 3, "keepsafe": 1}
        assert a.total == 5

    def test_sink_is_idempotent(self):
        config = CompileConfig.named("O")
        compiled = compile_source(SINKABLE, config)
        first = sink_program(compiled.asm)
        assert first.sunk >= 1
        snapshot = compiled.asm.render()
        again = sink_program(compiled.asm)
        assert again.sunk == 0 and again.eliminated == 0
        assert compiled.asm.render() == snapshot
