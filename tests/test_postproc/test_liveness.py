"""Machine-level liveness analysis tests."""

import pytest

from repro.machine.asm import MFunc, MInst
from repro.postproc.liveness import Liveness, basic_blocks


def mk(insts):
    return MFunc("t", list(insts))


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        fn = mk([MInst("li", rd="t0", imm=1), MInst("mov", rd="t1", rs1="t0"),
                 MInst("ret")])
        assert len(basic_blocks(fn.insts)) == 1

    def test_branch_splits(self):
        fn = mk([
            MInst("bz", rs1="t0", symbol="L"),
            MInst("li", rd="t1", imm=1),
            MInst("label", symbol="L"),
            MInst("ret"),
        ])
        assert len(basic_blocks(fn.insts)) == 3


class TestLiveness:
    def test_dead_after_last_use(self):
        fn = mk([
            MInst("li", rd="t0", imm=1),          # 0
            MInst("add", rd="t1", rs1="t0", rs2="t0"),  # 1: last use of t0
            MInst("mov", rd="rv", rs1="t1"),      # 2
            MInst("ret"),                          # 3
        ])
        live = Liveness(fn)
        assert live.dead_after(1, "t0")
        assert not live.dead_after(0, "t0")
        assert not live.dead_after(1, "t1")
        assert live.dead_after(2, "t1")

    def test_liveness_across_branch(self):
        fn = mk([
            MInst("li", rd="t0", imm=1),           # 0
            MInst("bz", rs1="t1", symbol="L"),     # 1
            MInst("mov", rd="rv", rs1="t0"),       # 2: uses t0
            MInst("label", symbol="L"),            # 3
            MInst("mov", rd="rv", rs1="t0"),       # 4: uses t0 too
            MInst("ret"),                          # 5
        ])
        live = Liveness(fn)
        assert not live.dead_after(1, "t0")  # live into both successors
        assert live.dead_after(4, "t0")

    def test_loop_keeps_value_live(self):
        fn = mk([
            MInst("li", rd="t0", imm=10),          # 0
            MInst("label", symbol="top"),          # 1
            MInst("sub", rd="t0", rs1="t0", imm=1),  # 2
            MInst("bnz", rs1="t0", symbol="top"),  # 3
            MInst("ret"),                          # 4
        ])
        live = Liveness(fn)
        assert not live.dead_after(2, "t0")  # read by bnz and next iteration

    def test_call_clobbers_caller_saved(self):
        fn = mk([
            MInst("li", rd="t0", imm=1),          # 0
            MInst("call", symbol="g", nargs=0),    # 1: t0 clobbered
            MInst("mov", rd="rv", rs1="s0"),       # 2
            MInst("ret"),                          # 3
        ])
        live = Liveness(fn)
        assert live.dead_after(0, "t0")  # dead: the call kills it

    def test_call_arguments_are_read(self):
        fn = mk([
            MInst("mov", rd="a0", rs1="s0"),       # 0
            MInst("call", symbol="g", nargs=1),    # 1 reads a0
            MInst("ret"),
        ])
        live = Liveness(fn)
        assert not live.dead_after(0, "a0")

    def test_store_reads_value_register(self):
        fn = mk([
            MInst("li", rd="t0", imm=7),           # 0
            MInst("st", rd="t0", rs1="fp", imm=-4),  # 1: reads t0
            MInst("ret"),
        ])
        live = Liveness(fn)
        assert not live.dead_after(0, "t0")
        assert live.dead_after(1, "t0")

    def test_keepsafe_reads_both_operands(self):
        fn = mk([
            MInst("li", rd="t0", imm=1),
            MInst("li", rd="t1", imm=2),
            MInst("keepsafe", rs1="t0", rs2="t1"),
            MInst("ret"),
        ])
        live = Liveness(fn)
        assert not live.dead_after(1, "t0")
        assert not live.dead_after(1, "t1")
