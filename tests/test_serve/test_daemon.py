"""The daemon end to end: concurrent clients, byte-identity vs the
serial Toolchain, typed error envelopes, control plane."""

import threading

import pytest

from repro.api import envelopes
from repro.api.build import dumps_canonical
from repro.serve import Client, ServeConfig, ServeError, start_in_thread
from repro.serve.jobs import run_job
from repro.serve.quota import TENANT_BUDGET, TENANT_INFLIGHT

POINTERY = "char *f(char *p) { return p + 1; }"
TINY = """
int main(void) {
    char *s = (char *)GC_malloc(16);
    int i, t = 0;
    for (i = 0; i < 10; i++) s[i] = i * 2;
    for (i = 0; i < 10; i++) t += s[i];
    return t;
}
"""


class TestRoundTrips:
    def test_annotate_matches_cli_envelope(self, daemon, tmp_path):
        from repro.exec import cache as exec_cache
        with Client(port=daemon.port) as client:
            served = client.annotate(POINTERY)
        with exec_cache.cache_context(
                *exec_cache.open_caches(str(tmp_path / "ref"))):
            serial = run_job("annotate", {"source": POINTERY},
                             ServeConfig().defaults())
        assert dumps_canonical(served) == dumps_canonical(serial)
        assert served["schema"] == envelopes.ANNOTATE
        assert "KEEP_LIVE" in served["text"]

    def test_run_executes_the_program(self, daemon):
        with Client(port=daemon.port) as client:
            doc = client.run(TINY)
        assert doc["schema"] == envelopes.RUN
        assert doc["exit_code"] == sum(i * 2 for i in range(10))

    def test_check_reports_diagnostics(self, daemon):
        with Client(port=daemon.port) as client:
            doc = client.check("char *f(int v) { return (char *)v; }")
        assert doc["schema"] == envelopes.CHECK
        assert not doc["ok"] and doc["count"] == 1

    def test_job_failure_is_a_typed_envelope(self, daemon):
        with Client(port=daemon.port) as client:
            with pytest.raises(ServeError) as err:
                client.run("int main( {")          # parse error
        assert err.value.code == "job_failed"

    def test_unknown_method_is_typed(self, daemon):
        with Client(port=daemon.port) as client:
            with pytest.raises(ServeError) as err:
                client.call("frobnicate", {})
        assert err.value.code == "unknown_method"


class TestConcurrentByteIdentity:
    def test_eight_clients_match_serial(self, daemon, tmp_path):
        """8 threads, distinct tenants, same job — every served
        envelope must equal the serial Toolchain bytes."""
        from repro.exec import cache as exec_cache
        with exec_cache.cache_context(
                *exec_cache.open_caches(str(tmp_path / "ref"))):
            want = dumps_canonical(run_job(
                "annotate", {"source": POINTERY}, ServeConfig().defaults()))
        results: list = [None] * 8

        def worker(k: int) -> None:
            with Client(port=daemon.port, tenant=f"t{k}") as client:
                results[k] = dumps_canonical(client.annotate(POINTERY))

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert all(r == want for r in results)


class TestQuotaEnvelopes:
    def test_budget_exhaustion_is_typed(self, tmp_path):
        config = ServeConfig(port=0, tenant_jobs=2,
                             cache_dir=str(tmp_path / "cache"))
        with start_in_thread(config) as handle:
            with Client(port=handle.port, tenant="ci") as client:
                client.check("int f(int a) { return a; }")
                client.check("int f(int a) { return a; }")
                with pytest.raises(ServeError) as err:
                    client.check("int f(int a) { return a; }")
        assert err.value.code == "quota_exceeded"
        assert err.value.reason == TENANT_BUDGET
        assert err.value.envelope["schema"] == envelopes.SERVE_ERROR

    def test_inflight_rejection_reason_label(self, tmp_path):
        # max_queue_depth=0 rejects everything at the door.
        config = ServeConfig(port=0, max_queue_depth=0,
                             cache_dir=str(tmp_path / "cache"))
        with start_in_thread(config) as handle:
            with Client(port=handle.port) as client:
                with pytest.raises(ServeError) as err:
                    client.check("int f(int a) { return a; }")
                assert err.value.code == "admission_rejected"
                assert err.value.reason == "queue_full"
                # the control plane still answers when saturated
                health = client.health()
        assert health["admission"]["rejections"] == {"queue_full": 1}

    def test_inflight_cap_needs_concurrency(self, tmp_path):
        """A tenant above max_inflight gets tenant_inflight; serial
        requests release before the next admit, so drive the queue with
        a stalled scheduler via a tiny batch and many async clients."""
        config = ServeConfig(port=0, tenant_inflight=1, batch_size=1,
                             cache_dir=str(tmp_path / "cache"))
        errors: list = []
        with start_in_thread(config) as handle:
            def worker() -> None:
                try:
                    with Client(port=handle.port, tenant="one") as client:
                        client.fuzz(seed=0, iters=1)
                except ServeError as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(180)
        assert all(e.reason == TENANT_INFLIGHT for e in errors)
        # at least one of the four concurrent jobs must have queued
        # behind the inflight=1 cap
        assert errors, "expected at least one tenant_inflight rejection"


class TestControlPlane:
    def test_health_envelope(self, daemon):
        with Client(port=daemon.port) as client:
            doc = client.health()
        assert doc["schema"] == envelopes.SERVE_HEALTH
        assert set(doc["methods"]) >= {"annotate", "check", "run",
                                       "bench", "fuzz"}

    def test_metrics_snapshot_has_serve_series(self, daemon):
        with Client(port=daemon.port) as client:
            client.check("int f(int a) { return a; }")
            snap = client.metrics_snapshot()
        assert snap["schema"] == envelopes.OBS_METRICS
        names = set(snap["metrics"])
        assert any(n.startswith("serve.requests") for n in names)
        assert any(n.startswith("serve.request_ns") for n in names)

    def test_shutdown_via_rpc(self, tmp_path):
        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        handle = start_in_thread(config)
        with Client(port=handle.port) as client:
            client.shutdown()
        handle.thread.join(30)
        assert not handle.thread.is_alive()
