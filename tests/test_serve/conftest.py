"""Shared fixtures for the serve daemon suite.

Every test must leave the process untouched: no installed caches, no
fault plan, no swapped metrics registry (the autouse fixture asserts
it) — a leaked daemon would poison every test after it.
"""

import pytest

from repro.exec import cache as exec_cache
from repro.obs import runtime as obs_runtime
from repro.resil import inject
from repro.serve import ServeConfig, start_in_thread

@pytest.fixture(autouse=True)
def _no_leaked_state():
    before = obs_runtime.get_metrics()
    yield
    assert not exec_cache.active_caches(), "test leaked installed caches"
    assert inject.active_plan() is None, "test leaked a fault plan"
    assert obs_runtime.get_metrics() is before, \
        "test leaked a swapped metrics registry"


@pytest.fixture
def daemon(tmp_path):
    """One warm daemon on an ephemeral port, torn down hard."""
    config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
    with start_in_thread(config) as handle:
        yield handle
