"""The deterministic load generator: tape determinism, byte-identity
under concurrency, and the faulted replay gate (a scaled-down version
of what benchmarks/check_serve.py and the CI serve-smoke job run)."""

import pytest

from repro.api import envelopes
from repro.serve.load import LoadSpec, build_traffic, run_load
from repro.serve.daemon import ServeConfig

TINY_SPEC = LoadSpec(seed=0, clients=2, jobs=4, fuzz_iters=1,
                     bench_workloads=(), max_statements=6)


class TestTape:
    def test_tape_is_a_pure_function_of_the_spec(self):
        assert build_traffic(TINY_SPEC) == build_traffic(TINY_SPEC)

    def test_different_seeds_differ(self):
        other = LoadSpec(seed=1, clients=2, jobs=4, fuzz_iters=1,
                         bench_workloads=(), max_statements=6)
        assert build_traffic(TINY_SPEC) != build_traffic(other)

    def test_tape_length_and_shape(self):
        tape = build_traffic(TINY_SPEC)
        assert len(tape) == 4
        for entry in tape:
            assert entry["method"] in ("annotate", "check", "run",
                                       "bench", "fuzz")


@pytest.mark.slow
class TestRunLoad:
    def test_served_bytes_match_serial(self, tmp_path):
        config = ServeConfig(cache_dir=str(tmp_path / "cache"))
        report = run_load(config, TINY_SPEC, check=True)
        assert report["schema"] == envelopes.SERVE_LOAD
        assert report["ok"]
        assert report["byte_identity"]["checked"]
        assert report["byte_identity"]["ok"]
        assert report["byte_identity"]["mismatches"] == []
        overall = report["latency"]["request_ns"]["overall"]
        assert overall["count"] == 4 and overall["p99"] >= overall["p50"]

    def test_faulted_replay_is_byte_identical(self, tmp_path):
        config = ServeConfig(cache_dir=str(tmp_path / "cache"), workers=2)
        report = run_load(
            config, TINY_SPEC, check=False,
            faults="worker_crash@shard1,cache_corrupt@1-2,pipe_drop@0.05")
        assert report["ok"]
        assert report["chaos"]["identical"]

    def test_slo_gate_fails_on_impossible_target(self, tmp_path):
        config = ServeConfig(cache_dir=str(tmp_path / "cache"))
        report = run_load(config, TINY_SPEC, check=False,
                          slo_p99_ms=0.000001)
        assert not report["ok"]
        assert not report["slo"]["ok"]
