"""Admission control: queue caps, per-tenant inflight, lifetime budgets."""

from repro.serve.quota import (
    AdmissionController, QUEUE_FULL, TENANT_BUDGET, TENANT_INFLIGHT,
    TenantQuota,
)


class TestAdmission:
    def test_admits_within_limits(self):
        ac = AdmissionController(max_queue_depth=4,
                                 default_quota=TenantQuota(max_inflight=2))
        assert ac.admit("a") is None
        assert ac.admit("a") is None

    def test_tenant_inflight_cap(self):
        ac = AdmissionController(max_queue_depth=64,
                                 default_quota=TenantQuota(max_inflight=2))
        assert ac.admit("a") is None
        assert ac.admit("a") is None
        assert ac.admit("a") == TENANT_INFLIGHT
        # another tenant is unaffected — isolation, not a global cap
        assert ac.admit("b") is None

    def test_release_frees_a_slot(self):
        ac = AdmissionController(max_queue_depth=64,
                                 default_quota=TenantQuota(max_inflight=1))
        assert ac.admit("a") is None
        assert ac.admit("a") == TENANT_INFLIGHT
        ac.release("a")
        assert ac.admit("a") is None

    def test_queue_full_beats_tenant_reasons(self):
        ac = AdmissionController(max_queue_depth=1,
                                 default_quota=TenantQuota(max_inflight=1))
        assert ac.admit("a") is None
        assert ac.admit("b") == QUEUE_FULL

    def test_lifetime_budget_is_not_released(self):
        quota = TenantQuota(max_inflight=8, max_jobs=2)
        ac = AdmissionController(max_queue_depth=64, default_quota=quota)
        assert ac.admit("a") is None
        ac.release("a")
        assert ac.admit("a") is None
        ac.release("a")
        # budget is lifetime: releasing does not refund it
        assert ac.admit("a") == TENANT_BUDGET

    def test_per_tenant_override(self):
        ac = AdmissionController(
            max_queue_depth=64,
            default_quota=TenantQuota(max_inflight=8),
            quotas={"small": TenantQuota(max_inflight=1)})
        assert ac.admit("small") is None
        assert ac.admit("small") == TENANT_INFLIGHT
        assert ac.admit("big") is None
        assert ac.admit("big") is None

    def test_snapshot_reports_counts(self):
        ac = AdmissionController(max_queue_depth=64,
                                 default_quota=TenantQuota(max_inflight=8))
        ac.admit("a")
        ac.admit("a")
        ac.admit("b")
        snap = ac.snapshot()
        assert snap["tenants"]["a"]["inflight"] == 2
        assert snap["tenants"]["b"]["inflight"] == 1
        assert snap["queued"] == 3
        assert snap["admitted"] == 3
        assert snap["rejections"] == {}
