"""The envelope registry: the one place schema literals live."""

import pytest

from repro.api import envelopes


class TestRegistry:
    def test_every_constant_is_registered(self):
        for schema, entry in envelopes.REGISTRY.items():
            assert schema == f"repro-{entry.name}/{entry.version}"
            assert entry.producer

    def test_make_round_trips_through_validate(self):
        for schema in envelopes.REGISTRY:
            doc = envelopes.make(schema, {"x": 1})
            entry = envelopes.validate(doc)
            assert entry.schema == schema
            assert doc["x"] == 1

    def test_short_name_and_full_schema_agree(self):
        assert envelopes.schema_of("check") == envelopes.CHECK
        assert envelopes.schema_of(envelopes.CHECK) == envelopes.CHECK

    def test_make_refuses_conflicting_schema_key(self):
        with pytest.raises(envelopes.EnvelopeError, match="relabel"):
            envelopes.make("check", {"schema": "repro-run/1"})

    def test_make_accepts_matching_schema_key(self):
        doc = envelopes.make("check", {"schema": envelopes.CHECK, "ok": True})
        assert doc["schema"] == envelopes.CHECK

    def test_known_catalog_entries(self):
        # The wire constants the daemon and clients pin on.
        assert envelopes.SERVE_REQUEST == "repro-serve-request/1"
        assert envelopes.SERVE_RESPONSE == "repro-serve-response/1"
        assert envelopes.SERVE_ERROR == "repro-serve-error/1"
        assert envelopes.EXEC_CACHE == "repro-exec-cache/2"

    def test_registry_table_renders_every_schema(self):
        table = envelopes.registry_table()
        for schema in envelopes.REGISTRY:
            assert schema in table


class TestValidate:
    def test_rejects_non_dict(self):
        with pytest.raises(envelopes.EnvelopeError, match="JSON object"):
            envelopes.validate([1, 2])

    def test_rejects_missing_schema(self):
        with pytest.raises(envelopes.EnvelopeError, match="schema"):
            envelopes.validate({"ok": True})

    def test_rejects_unknown_name(self):
        with pytest.raises(envelopes.EnvelopeError, match="unknown"):
            envelopes.validate({"schema": "repro-nonesuch/1"})

    def test_rejects_unregistered_version_of_known_name(self):
        with pytest.raises(envelopes.EnvelopeError, match="version"):
            envelopes.validate({"schema": "repro-check/99"})


class TestProducersImportTheRegistry:
    """Schema literals must not drift from their producer modules."""

    def test_obs_constants_come_from_registry(self):
        from repro.obs import metrics, report, sentinel, tracer, vmprof
        assert tracer.SCHEMA is envelopes.OBS_TRACE
        assert report.SUMMARY_SCHEMA is envelopes.OBS_SUMMARY
        assert metrics.SCHEMA is envelopes.OBS_METRICS
        assert vmprof.PGO_SCHEMA is envelopes.VMPROF_PGO
        assert sentinel.SCHEMA is envelopes.OBS_SENTINEL
        assert sentinel.TRAJECTORY_SCHEMA is envelopes.OBS_BENCH
        assert sentinel.EXEC_SCHEMA is envelopes.EXEC_BENCH
        assert sentinel.VM2_SCHEMA is envelopes.VM2_BENCH

    def test_cache_code_version_comes_from_registry(self):
        from repro.exec import cache as exec_cache
        from repro.resil import cli as resil_cli
        assert exec_cache.CODE_VERSION is envelopes.EXEC_CACHE
        assert resil_cli.CHAOS_SCHEMA is envelopes.CHAOS
