"""Property-based frontend round-trip testing.

Hypothesis builds random (well-typed) expressions and statements from
combinators; parse -> unparse -> parse must reach a fixpoint, and the
re-parsed tree must typecheck.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import parse, typecheck, unparse

_INT_LEAVES = st.sampled_from(["i", "j", "42", "0", "'x'", "a[1]", "v.x", "sp->y"])
_PTR_LEAVES = st.sampled_from(["p", "q", "a", "&i", '"str"', "sp->link"])

_INT_BIN = st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^",
                            "<<", ">>", "<", ">", "==", "!=", "&&", "||"])
_INT_UN = st.sampled_from(["-", "~", "!"])


@st.composite
def int_expr(draw, depth=3):
    if depth == 0:
        return draw(_INT_LEAVES)
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(_INT_LEAVES)
    if kind == 1:
        op = draw(_INT_BIN)
        # Avoid random division by zero in later VM-based reuse.
        left = draw(int_expr(depth - 1))
        right = draw(int_expr(depth - 1)) if op not in ("/", "%") else "7"
        return f"({left} {op} {right})"
    if kind == 2:
        return f"({draw(_INT_UN)}{draw(int_expr(depth - 1))})"
    if kind == 3:
        return (f"({draw(int_expr(depth - 1))} ? {draw(int_expr(depth - 1))}"
                f" : {draw(int_expr(depth - 1))})")
    return f"(sizeof({draw(_PTR_LEAVES)}))"


@st.composite
def statement(draw, depth=2):
    kind = draw(st.integers(0, 5))
    if kind == 0 or depth == 0:
        return f"i = {draw(int_expr(2))};"
    if kind == 1:
        return (f"if ({draw(int_expr(1))}) {{ {draw(statement(depth - 1))} }} "
                f"else {{ {draw(statement(depth - 1))} }}")
    if kind == 2:
        return (f"for (j = 0; j < 3; j++) {{ {draw(statement(depth - 1))} }}")
    if kind == 3:
        return f"while (j > 0) {{ j--; {draw(statement(depth - 1))} }}"
    if kind == 4:
        return f"a[{draw(int_expr(1))} % 4] = {draw(int_expr(1))};"
    return f"p = q + ({draw(int_expr(1))} % 4);"


def wrap(body):
    return f"""
struct s {{ int x; int y; struct s *link; }};
int probe(char *p, char *q, struct s *sp)
{{
    int i = 0;
    int j = 2;
    int a[4];
    struct s v;
    v.x = 1;
    a[0] = a[1] = a[2] = a[3] = 0;
    {body}
    return i + j + a[0];
}}
"""


class TestExpressionRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(int_expr())
    def test_expression_fixpoint(self, expr):
        source = wrap(f"i = {expr};")
        tu = parse(source)
        typecheck(tu)
        once = unparse(tu)
        tu2 = parse(once)
        typecheck(tu2)
        assert unparse(tu2) == once

    @settings(max_examples=60, deadline=None)
    @given(statement())
    def test_statement_fixpoint(self, stmt):
        source = wrap(stmt)
        tu = parse(source)
        typecheck(tu)
        once = unparse(tu)
        tu2 = parse(once)
        typecheck(tu2)
        assert unparse(tu2) == once

    @settings(max_examples=40, deadline=None)
    @given(st.lists(statement(), min_size=1, max_size=5))
    def test_annotation_of_random_programs_reparses(self, stmts):
        from repro.api import Toolchain
        from repro.cfront.cpp import preprocess
        source = wrap("\n    ".join(stmts))
        result = Toolchain().annotate(source)
        expanded = preprocess("#define KEEP_LIVE(e, y) (e)\n" + result.text)
        typecheck(parse(expanded))
