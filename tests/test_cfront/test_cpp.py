"""Mini-preprocessor tests."""

import pytest

from repro.cfront.cpp import CppError, Preprocessor, preprocess


def clean(text):
    return " ".join(text.split())


class TestObjectMacros:
    def test_simple_define(self):
        assert clean(preprocess("#define N 10\nint a[N];")) == "int a[10];"

    def test_redefinition_wins(self):
        out = preprocess("#define N 1\n#define N 2\nN")
        assert clean(out) == "2"

    def test_undef(self):
        out = preprocess("#define N 1\n#undef N\nN")
        assert clean(out) == "N"

    def test_chained_expansion(self):
        out = preprocess("#define A B\n#define B 7\nA")
        assert clean(out) == "7"

    def test_no_expansion_inside_strings(self):
        out = preprocess('#define N 10\nchar *s = "N";')
        assert '"N"' in out

    def test_no_expansion_inside_comments_kept(self):
        out = preprocess("#define N 10\nx // N stays\n")
        assert "// N stays" in out

    def test_recursive_macro_detected(self):
        with pytest.raises(CppError):
            preprocess("#define A A B\nA")


class TestFunctionMacros:
    def test_basic_substitution(self):
        out = preprocess("#define SQR(x) ((x) * (x))\nSQR(3)")
        assert clean(out) == "((3) * (3))"

    def test_two_parameters(self):
        out = preprocess("#define MAX(a, b) ((a) > (b) ? (a) : (b))\nMAX(x, y+1)")
        assert clean(out) == "((x) > (y+1) ? (x) : (y+1))"

    def test_nested_parens_in_argument(self):
        out = preprocess("#define ID(x) x\nID(f(a, b))")
        assert clean(out) == "f(a, b)"

    def test_name_without_call_not_expanded(self):
        out = preprocess("#define F(x) x\nint F;")
        assert clean(out) == "int F;"

    def test_wrong_arity_raises(self):
        with pytest.raises(CppError):
            preprocess("#define F(a, b) a b\nF(1)")

    def test_line_continuation(self):
        out = preprocess("#define LONG(a) \\\n  ((a) + 1)\nLONG(2)")
        assert clean(out) == "((2) + 1)"


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define YES 1\n#ifdef YES\nx\n#endif")
        assert clean(out) == "x"

    def test_ifdef_not_taken(self):
        out = preprocess("#ifdef NO\nx\n#endif\ny")
        assert clean(out) == "y"

    def test_ifndef(self):
        out = preprocess("#ifndef NO\nx\n#endif")
        assert clean(out) == "x"

    def test_else_branch(self):
        out = preprocess("#ifdef NO\na\n#else\nb\n#endif")
        assert clean(out) == "b"

    def test_elif_chain(self):
        out = preprocess("#define B 1\n#if defined(A)\na\n#elif defined(B)\nb\n"
                         "#else\nc\n#endif")
        assert clean(out) == "b"

    def test_if_arithmetic(self):
        out = preprocess("#define N 5\n#if N > 3\nbig\n#endif")
        assert clean(out) == "big"

    def test_nested_conditionals(self):
        out = preprocess("#define A 1\n#ifdef A\n#ifdef B\nx\n#else\ny\n#endif\n#endif")
        assert clean(out) == "y"

    def test_defines_inside_untaken_branch_ignored(self):
        out = preprocess("#ifdef NO\n#define N 1\n#endif\nN")
        assert clean(out) == "N"

    def test_unterminated_if_raises(self):
        with pytest.raises(CppError):
            preprocess("#ifdef A\nx")

    def test_error_directive(self):
        with pytest.raises(CppError):
            preprocess("#error nope")


class TestIncludes:
    def test_include_from_directory(self, tmp_path):
        (tmp_path / "defs.h").write_text("#define FROM_HEADER 42\n")
        out = preprocess('#include "defs.h"\nFROM_HEADER',
                         include_dirs=[str(tmp_path)])
        assert "42" in out

    def test_missing_include_raises(self):
        with pytest.raises(CppError):
            preprocess('#include "nothere.h"')

    def test_predefined_macros(self):
        pp = Preprocessor(predefined={"GAWK_BUG": "1"})
        out = pp.preprocess("#ifdef GAWK_BUG\nbug\n#endif")
        assert clean(out) == "bug"
