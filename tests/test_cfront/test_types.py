"""C type model tests: sizes, alignment, layout, decay, heap-pointer
classification."""

import pytest
from hypothesis import given, strategies as st

from repro.cfront.ctypes import (
    Array, CHAR, DOUBLE, FLOAT, Function, INT, IntType, LONG, Pointer, SHORT,
    Struct, UINT, VOID, VOID_PTR, WORD_SIZE, may_hold_heap_pointer,
)


class TestScalarSizes:
    def test_ilp32_sizes(self):
        assert CHAR.size == 1
        assert SHORT.size == 2
        assert INT.size == 4
        assert LONG.size == 4
        assert Pointer(VOID).size == WORD_SIZE == 4

    def test_float_sizes(self):
        assert FLOAT.size == 4 and DOUBLE.size == 8

    def test_alignment_matches_size_for_scalars(self):
        for t in (CHAR, SHORT, INT, LONG):
            assert t.align == t.size

    def test_void_is_incomplete(self):
        assert VOID.size == 0 and VOID.is_void

    def test_signedness_str(self):
        assert str(IntType("int", signed=False)) == "unsigned int"
        assert str(INT) == "int"


class TestArrays:
    def test_size_is_element_times_length(self):
        assert Array(INT, 10).size == 40

    def test_incomplete_array(self):
        assert Array(INT, None).size == 0

    def test_alignment_follows_element(self):
        assert Array(CHAR, 100).align == 1
        assert Array(INT, 3).align == 4

    def test_decay(self):
        decayed = Array(INT, 5).decay()
        assert isinstance(decayed, Pointer) and decayed.target == INT

    def test_function_decay(self):
        fn = Function(INT, (INT,))
        assert isinstance(fn.decay(), Pointer)

    def test_scalar_decay_is_identity(self):
        assert INT.decay() is INT


class TestStructLayout:
    def make(self, *members):
        s = Struct("test")
        s.define(list(members))
        return s

    def test_packing_with_alignment_holes(self):
        s = self.make(("a", CHAR), ("b", INT), ("c", CHAR))
        assert s.field("a").offset == 0
        assert s.field("b").offset == 4
        assert s.field("c").offset == 8
        assert s.size == 12

    def test_no_holes_when_sorted(self):
        s = self.make(("a", INT), ("b", SHORT), ("c", SHORT))
        assert s.size == 8

    def test_nested_struct_field(self):
        inner = self.make(("x", INT), ("y", INT))
        outer = Struct("outer")
        outer.define([("hdr", CHAR), ("pt", inner)])
        assert outer.field("pt").offset == 4
        assert outer.size == 12

    def test_union_layout(self):
        u = Struct("u", is_union=True)
        u.define([("i", INT), ("c", Array(CHAR, 7))])
        assert u.field("i").offset == 0 and u.field("c").offset == 0
        assert u.size == 8  # rounded up to int alignment

    def test_struct_identity_is_nominal(self):
        a = self.make(("x", INT))
        b = self.make(("x", INT))
        assert a != b and a == a

    def test_unknown_field_is_none(self):
        assert self.make(("x", INT)).field("nope") is None


class TestHeapPointerClassification:
    def test_pointer_may_hold(self):
        assert may_hold_heap_pointer(VOID_PTR)

    def test_int_may_not(self):
        assert not may_hold_heap_pointer(INT)

    def test_array_of_pointers(self):
        assert may_hold_heap_pointer(Array(Pointer(CHAR), 4))

    def test_struct_with_pointer_field(self):
        s = Struct("s")
        s.define([("n", INT), ("next", Pointer(VOID))])
        assert may_hold_heap_pointer(s)

    def test_struct_without_pointers(self):
        s = Struct("s")
        s.define([("a", INT), ("b", Array(CHAR, 8))])
        assert not may_hold_heap_pointer(s)


class TestCompatibility:
    def test_arithmetic_compatible(self):
        assert INT.compatible(CHAR) and CHAR.compatible(UINT)

    def test_pointers_loosely_compatible(self):
        assert Pointer(INT).compatible(VOID_PTR)

    def test_pointer_int_not_compatible(self):
        assert not Pointer(INT).compatible(INT)


class TestProperties:
    @given(st.lists(st.sampled_from([CHAR, SHORT, INT, Pointer(VOID)]),
                    min_size=1, max_size=8))
    def test_struct_fields_never_overlap(self, types):
        s = Struct("p")
        s.define([(f"f{i}", t) for i, t in enumerate(types)])
        spans = sorted((f.offset, f.offset + f.ctype.size) for f in s.fields)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(st.lists(st.sampled_from([CHAR, SHORT, INT, Pointer(VOID)]),
                    min_size=1, max_size=8))
    def test_struct_size_multiple_of_alignment(self, types):
        s = Struct("p")
        s.define([(f"f{i}", t) for i, t in enumerate(types)])
        assert s.size % s.align == 0
        assert s.size >= sum(t.size for t in types)

    @given(st.lists(st.sampled_from([CHAR, SHORT, INT, Pointer(VOID)]),
                    min_size=1, max_size=8))
    def test_fields_are_aligned(self, types):
        s = Struct("p")
        s.define([(f"f{i}", t) for i, t in enumerate(types)])
        for f in s.fields:
            assert f.offset % f.ctype.align == 0
