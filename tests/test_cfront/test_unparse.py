"""Unparser tests: round-trip stability and declaration rendering."""

import pytest

from repro.cfront import parse, typecheck, unparse, unparse_type
from repro.cfront.ctypes import Array, CHAR, Function, INT, Pointer

CORPUS = [
    "int x;",
    "char *strcpy2(char *s, char *t) { while (*s++ = *t++) ; return s; }",
    "struct node { int v; struct node *next; };\nint len(struct node *n) "
    "{ int k = 0; for (; n; n = n->next) k++; return k; }",
    "typedef struct pair { char *k; int v; } pair;\npair *mk(void) { return 0; }",
    "int g[3] = {1, 2, 3};\nchar *msg = \"hi\\n\";",
    "int f(int n) { switch (n) { case 1: return 2; default: break; } return 0; }",
    "int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }",
    "void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }",
    "int apply(int (*fn)(int), int x) { return fn(x); }",
    "void loops(void) { int i; do i = 0; while (0); for (i = 0; i < 3; i++) continue; }",
    "void lbl(void) { goto end; end: ; }",
    "union u { int i; char c[4]; };\nunion u uu;",
]


class TestRoundTrip:
    @pytest.mark.parametrize("source", CORPUS)
    def test_unparse_reparses(self, source):
        tu = parse(source)
        typecheck(tu)
        text = unparse(tu)
        tu2 = parse(text)
        typecheck(tu2)

    @pytest.mark.parametrize("source", CORPUS)
    def test_fixpoint_after_one_round(self, source):
        """unparse(parse(unparse(x))) == unparse(x): the renderer is a
        normal form."""
        first = unparse(parse(source))
        second = unparse(parse(first))
        assert first == second


class TestTypeRendering:
    def test_simple(self):
        assert unparse_type(INT) == "int"

    def test_pointer(self):
        assert unparse_type(Pointer(CHAR)) == "char *"

    def test_array(self):
        assert unparse_type(Array(INT, 4)) == "int [4]"

    def test_pointer_to_array_parenthesized(self):
        rendered = unparse_type(Pointer(Array(INT, 4)))
        assert rendered == "int (*)[4]"

    def test_function_pointer(self):
        fn = Function(INT, (INT, Pointer(CHAR)))
        rendered = unparse_type(Pointer(fn))
        assert rendered == "int (*)(int, char *)"

    def test_function_returning_pointer(self):
        fn = Function(Pointer(CHAR), ())
        assert unparse_type(fn) == "char *(void)"


class TestDetails:
    def test_string_escapes_render(self):
        tu = parse(r'char *s = "a\n\t\"\\";')
        text = unparse(tu)
        assert r'"a\n\t\"\\"' in text

    def test_struct_definition_renders_once(self):
        tu = parse("struct s { int a; };\nstruct s x;")
        text = unparse(tu)
        assert text.count("{ int a; }") == 1

    def test_keep_live_renders(self):
        from repro.api import Toolchain
        result = Toolchain().annotate("char *f(char *p) { return p + 1; }")
        assert "KEEP_LIVE((p + 1), p)" in unparse(result.unit)

    def test_checked_renders_with_casts(self):
        from repro.api import Toolchain
        result = Toolchain().annotate("char *f(char *p) { return p + 1; }",
                                      mode="checked")
        text = unparse(result.unit)
        assert "GC_same_obj((void *)((p + 1)), (void *)(p))" in text
        assert "(char *)" in text
