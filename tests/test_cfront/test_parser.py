"""Parser unit tests: declarations, declarators, expressions, statements."""

import pytest

from repro.cfront import (
    Array, Function, INT, ParseError, Pointer, Struct, parse, parse_expression,
)
from repro.cfront import cast as A


def first_decl(source):
    tu = parse(source)
    for item in tu.items:
        if isinstance(item, A.Decl) and item.declarators:
            return item.declarators[0]
    raise AssertionError("no declarator")


def only_func(source):
    tu = parse(source)
    return next(i for i in tu.items if isinstance(i, A.FuncDef))


class TestDeclarations:
    def test_simple_int(self):
        d = first_decl("int x;")
        assert d.name == "x" and d.ctype == INT

    def test_pointer(self):
        d = first_decl("char *p;")
        assert isinstance(d.ctype, Pointer)

    def test_pointer_to_pointer(self):
        d = first_decl("int **pp;")
        assert isinstance(d.ctype.target, Pointer)

    def test_array(self):
        d = first_decl("int a[10];")
        assert isinstance(d.ctype, Array) and d.ctype.length == 10

    def test_array_of_pointers(self):
        d = first_decl("char *names[4];")
        assert isinstance(d.ctype, Array)
        assert isinstance(d.ctype.element, Pointer)

    def test_array_size_constant_expression(self):
        d = first_decl("int a[4 * 2 + 1];")
        assert d.ctype.length == 9

    def test_array_sized_by_initializer(self):
        d = first_decl("int a[] = {1, 2, 3};")
        assert d.ctype.length == 3

    def test_char_array_sized_by_string(self):
        d = first_decl('char s[] = "abc";')
        assert d.ctype.length == 4

    def test_function_pointer(self):
        d = first_decl("int (*fn)(int, char *);")
        assert isinstance(d.ctype, Pointer)
        assert isinstance(d.ctype.target, Function)
        assert len(d.ctype.target.params) == 2

    def test_multiple_declarators_share_base(self):
        tu = parse("int x, *p, a[3];")
        decl = tu.items[0]
        types = [d.ctype for d in decl.declarators]
        assert types[0] == INT
        assert isinstance(types[1], Pointer)
        assert isinstance(types[2], Array)

    def test_unsigned_combination(self):
        d = first_decl("unsigned long v;")
        assert not d.ctype.signed

    def test_prototype_varargs(self):
        d = first_decl("int printf(char *fmt, ...);")
        assert isinstance(d.ctype, Function) and d.ctype.varargs

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse("int x")

    def test_bad_specifier_combination_raises(self):
        with pytest.raises(ParseError):
            parse("long char x;")


class TestStructsEnumsTypedefs:
    def test_struct_definition_and_layout(self):
        tu = parse("struct s { char c; int i; short h; };")
        struct = tu.items[0].base_type
        assert isinstance(struct, Struct)
        assert struct.field("c").offset == 0
        assert struct.field("i").offset == 4  # aligned past the char
        assert struct.field("h").offset == 8
        assert struct.size == 12  # rounded to int alignment

    def test_union_overlays_fields(self):
        tu = parse("union u { int i; char c[8]; };")
        union = tu.items[0].base_type
        assert union.size == 8
        assert union.field("i").offset == union.field("c").offset == 0

    def test_self_referential_struct(self):
        tu = parse("struct node { int v; struct node *next; };")
        struct = tu.items[0].base_type
        assert struct.field("next").ctype.target is struct

    def test_forward_tag_reference(self):
        tu = parse("struct b; struct a { struct b *link; }; struct b { int x; };")
        a = tu.items[1].base_type
        b = tu.items[2].base_type
        assert a.field("link").ctype.target is b

    def test_typedef_and_use(self):
        tu = parse("typedef int myint; myint x;")
        assert tu.items[1].declarators[0].ctype == INT

    def test_typedef_struct_combo(self):
        tu = parse("typedef struct p { int x; } p_t; p_t v;")
        assert isinstance(tu.items[1].declarators[0].ctype, Struct)

    def test_typedef_is_scoped(self):
        # Inner typedef must not leak out of the function.
        tu = parse("void f(void) { typedef int T; T x; } int T;")
        assert tu.items[1].declarators[0].ctype == INT

    def test_enum_constants(self):
        tu = parse("enum e { A, B = 10, C }; int x[C];")
        assert tu.items[1].declarators[0].ctype.length == 11

    def test_duplicate_struct_field_raises(self):
        with pytest.raises(ValueError):
            parse("struct s { int a; int a; };")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.right, A.Binary) and e.right.op == "*"

    def test_left_associativity(self):
        e = parse_expression("1 - 2 - 3")
        assert e.op == "-" and isinstance(e.left, A.Binary)

    def test_assignment_right_associative(self):
        e = parse_expression("a = b = c")
        assert isinstance(e, A.Assign) and isinstance(e.value, A.Assign)

    def test_conditional(self):
        e = parse_expression("a ? b : c ? d : e")
        assert isinstance(e, A.Cond) and isinstance(e.otherwise, A.Cond)

    def test_unary_chain(self):
        e = parse_expression("!*&x")
        assert e.op == "!" and e.operand.op == "*" and e.operand.operand.op == "&"

    def test_postfix_chain(self):
        e = parse_expression("a[1][2]")
        assert isinstance(e, A.Index) and isinstance(e.base, A.Index)

    def test_member_access(self):
        e = parse_expression("p->next->value")
        assert isinstance(e, A.Member) and e.arrow
        assert isinstance(e.base, A.Member)

    def test_call_with_args(self):
        e = parse_expression("f(a, b + 1, g())")
        assert isinstance(e, A.Call) and len(e.args) == 3

    def test_comma_expression(self):
        e = parse_expression("a, b, c")
        assert isinstance(e, A.Comma) and len(e.items) == 3

    def test_compound_assignment_ops(self):
        for op in ("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="):
            e = parse_expression(f"a {op} 1")
            assert isinstance(e, A.Assign) and e.op == op

    def test_sizeof_type_vs_expr(self):
        assert isinstance(parse_expression("sizeof(int)"), A.SizeofType)
        assert isinstance(parse_expression("sizeof(x)"), A.SizeofExpr)

    def test_cast(self):
        e = parse_expression("(char *)p")
        assert isinstance(e, A.Cast) and isinstance(e.to_type, Pointer)

    def test_cast_vs_parenthesized_expr(self):
        e = parse_expression("(x)(y)")  # call of x with arg y, not a cast
        assert isinstance(e, A.Call)

    def test_pre_and_post_increment(self):
        assert isinstance(parse_expression("++x"), A.Unary)
        assert isinstance(parse_expression("x++"), A.Postfix)

    def test_spans_cover_expression_text(self):
        source = "  a + b  "
        e = parse_expression(source)
        assert source[e.span.start:e.span.end] == "a + b"


class TestStatements:
    def test_if_else_binds_to_nearest(self):
        fn = only_func("void f(int x) { if (x) if (x) x = 1; else x = 2; }")
        outer = fn.body.items[0]
        assert outer.otherwise is None
        assert outer.then.otherwise is not None

    def test_for_with_declaration(self):
        fn = only_func("void f(void) { for (int i = 0; i < 3; i++) ; }")
        assert isinstance(fn.body.items[0].init, A.Decl)

    def test_for_all_parts_optional(self):
        fn = only_func("void f(void) { for (;;) break; }")
        loop = fn.body.items[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_do_while(self):
        fn = only_func("void f(int x) { do x--; while (x); }")
        assert isinstance(fn.body.items[0], A.DoWhile)

    def test_switch_with_cases(self):
        fn = only_func("""
            int f(int x) {
                switch (x) { case 1: return 10; case 2: case 3: return 20;
                             default: return 0; }
            }""")
        assert isinstance(fn.body.items[0], A.Switch)

    def test_goto_and_label(self):
        fn = only_func("void f(void) { goto done; done: ; }")
        assert isinstance(fn.body.items[0], A.Goto)
        assert isinstance(fn.body.items[1], A.Label)

    def test_nested_blocks_scope(self):
        fn = only_func("void f(void) { int x; { int x; x = 1; } x = 2; }")
        assert isinstance(fn.body.items[1], A.Block)

    def test_empty_statement(self):
        fn = only_func("void f(void) { ; }")
        assert fn.body.items[0].expr is None


class TestFunctions:
    def test_definition_vs_prototype(self):
        tu = parse("int f(void); int f(void) { return 1; }")
        assert isinstance(tu.items[0], A.Decl)
        assert isinstance(tu.items[1], A.FuncDef)

    def test_parameters_decay(self):
        fn = only_func("int f(int a[10], int g(int)) { return 0; }")
        assert isinstance(fn.params[0].ctype, Pointer)
        assert isinstance(fn.params[1].ctype, Pointer)

    def test_void_param_list_means_empty(self):
        fn = only_func("int f(void) { return 0; }")
        assert fn.params == []

    def test_static_storage(self):
        fn = only_func("static int f(void) { return 0; }")
        assert fn.storage == "static"
