"""Typechecker tests: expression typing, lvalue-ness, conversions."""

import pytest

from repro.cfront import (
    Array, INT, Pointer, TypeError_, parse, typecheck,
)
from repro.cfront import cast as A


def typed_expr(body, decls="char *p; char *q; int i; int a[4]; "
                           "struct s { int x; struct s *next; } v; struct s *sp;"):
    source = f"struct s;\n{decls}\nvoid probe(void) {{ (void)({body}); }}"
    # simpler: wrap in an expression statement
    source = f"{decls}\nint probe(void) {{ return 0; }}\n" \
             f"void probe2(void) {{ {body}; }}"
    tu = parse(source)
    typecheck(tu)
    fn = [i for i in tu.items if isinstance(i, A.FuncDef)][-1]
    stmt = fn.body.items[0]
    return stmt.expr


class TestExpressionTypes:
    def test_int_literal(self):
        assert typed_expr("42").ctype == INT

    def test_char_literal_is_int(self):
        assert typed_expr("'a'").ctype == INT

    def test_string_literal_is_char_array(self):
        e = typed_expr('"abc"')
        assert isinstance(e.ctype, Array) and e.ctype.length == 4

    def test_pointer_plus_int(self):
        e = typed_expr("p + i")
        assert isinstance(e.ctype, Pointer)

    def test_int_plus_pointer(self):
        e = typed_expr("i + p")
        assert isinstance(e.ctype, Pointer)

    def test_pointer_difference_is_int(self):
        assert typed_expr("p - q").ctype.is_integer

    def test_deref_yields_target(self):
        e = typed_expr("*p")
        assert e.ctype.size == 1  # char

    def test_address_of(self):
        e = typed_expr("&i")
        assert isinstance(e.ctype, Pointer) and e.ctype.target == INT

    def test_index_yields_element(self):
        assert typed_expr("a[2]").ctype == INT

    def test_reversed_index_spelling(self):
        assert typed_expr("2[a]").ctype == INT

    def test_member_arrow(self):
        e = typed_expr("sp->next")
        assert isinstance(e.ctype, Pointer)

    def test_member_dot(self):
        assert typed_expr("v.x").ctype == INT

    def test_comparison_is_int(self):
        assert typed_expr("p == q").ctype == INT

    def test_assignment_type_is_target(self):
        e = typed_expr("p = q")
        assert isinstance(e.ctype, Pointer)

    def test_conditional_prefers_pointer(self):
        e = typed_expr("i ? p : 0")
        assert isinstance(e.ctype, Pointer)

    def test_comma_takes_last(self):
        assert typed_expr("p, i").ctype == INT

    def test_sizeof_is_integer(self):
        assert typed_expr("sizeof(p)").ctype.is_integer

    def test_promotions_small_ints(self):
        assert typed_expr("'a' + 'b'").ctype == INT

    def test_implicit_function_declaration(self):
        e = typed_expr("mystery(1, 2)")
        assert e.ctype == INT


class TestLvalues:
    def test_variable_is_lvalue(self):
        assert typed_expr("i").is_lvalue

    def test_deref_is_lvalue(self):
        assert typed_expr("*p").is_lvalue

    def test_index_is_lvalue(self):
        assert typed_expr("a[0]").is_lvalue

    def test_member_is_lvalue(self):
        assert typed_expr("sp->x").is_lvalue

    def test_sum_is_not_lvalue(self):
        assert not typed_expr("i + 1").is_lvalue

    def test_assign_to_non_lvalue_raises(self):
        with pytest.raises(TypeError_):
            typed_expr("(i + 1) = 2")

    def test_address_of_rvalue_raises(self):
        with pytest.raises(TypeError_):
            typed_expr("&(i + 1)")


class TestErrors:
    def test_deref_non_pointer_raises(self):
        with pytest.raises(TypeError_):
            typed_expr("*i")

    def test_member_of_non_struct_raises(self):
        with pytest.raises(TypeError_):
            typed_expr("i.x")

    def test_unknown_field_raises(self):
        with pytest.raises(TypeError_):
            typed_expr("v.nope")

    def test_call_non_function_raises(self):
        with pytest.raises(TypeError_):
            typed_expr("i(3)")

    def test_index_non_pointer_raises(self):
        with pytest.raises(TypeError_):
            typed_expr("i[i]")


class TestFunctionBodies:
    def test_params_visible_in_body(self):
        tu = parse("int f(int a, int b) { return a + b; }")
        typecheck(tu)

    def test_locals_shadow_globals(self):
        tu = parse("char *x; int f(void) { int x; return x; }")
        typecheck(tu)
        fn = tu.items[1]
        ret = fn.body.items[1]
        assert ret.value.ctype == INT

    def test_function_pointer_call(self):
        tu = parse("int apply(int (*fn)(int), int x) { return fn(x); }")
        typecheck(tu)
