"""Lexer unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cfront import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_identifier_vs_keyword(self):
        toks = tokenize("int foo")
        assert toks[0].kind == "keyword" and toks[0].text == "int"
        assert toks[1].kind == "ident" and toks[1].text == "foo"

    def test_identifier_with_underscores_and_digits(self):
        tok = tokenize("_x9_y")[0]
        assert tok.kind == "ident" and tok.text == "_x9_y"

    def test_all_keywords_recognized(self):
        for kw in ("while", "struct", "sizeof", "typedef", "return"):
            assert tokenize(kw)[0].kind == "keyword"

    def test_positions_track_source_offsets(self):
        toks = tokenize("ab + cd")
        assert toks[0].pos == 0
        assert toks[1].pos == 3
        assert toks[2].pos == 5
        assert toks[2].end == 7


class TestNumbers:
    def test_decimal(self):
        assert tokenize("12345")[0].value == 12345

    def test_hex(self):
        assert tokenize("0x1F")[0].value == 31

    def test_octal(self):
        assert tokenize("0755")[0].value == 493

    def test_zero_is_not_octal_error(self):
        assert tokenize("0")[0].value == 0

    def test_integer_suffixes_consumed(self):
        toks = tokenize("10UL 7u 3L")
        assert [t.value for t in toks[:3]] == [10, 7, 3]

    def test_float_literal(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == "float" and tok.value == 3.25

    def test_float_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0


class TestStringsAndChars:
    def test_simple_string(self):
        assert tokenize('"hello"')[0].value == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\n\t\\\""')[0].value == 'a\n\t\\"'

    def test_hex_escape(self):
        assert tokenize(r'"\x41"')[0].value == "A"

    def test_octal_escape(self):
        assert tokenize(r'"\101"')[0].value == "A"

    def test_adjacent_string_concatenation(self):
        assert tokenize('"foo" "bar"')[0].value == "foobar"

    def test_char_literal(self):
        tok = tokenize("'a'")[0]
        assert tok.kind == "char" and tok.value == 97

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == 10

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_multichar_char_literal_raises(self):
        with pytest.raises(LexError):
            tokenize("'ab'")


class TestOperators:
    def test_longest_match(self):
        assert texts("a >>= b") == ["a", ">>=", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a -- b") == ["a", "--", "b"]

    def test_ellipsis(self):
        assert "..." in texts("f(int, ...)")

    def test_every_single_char_operator(self):
        for op in "+-*/%=<>!~&|^?:;,.()[]{}":
            assert texts(f"a {op} b" if op not in "([{" else f"a {op}")[1] == op


class TestTrivia:
    def test_line_comment(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_hash_lines_skipped(self):
        assert texts("#pragma weird\nx") == ["x"]

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_decimal_integers_roundtrip(self, n):
        assert tokenize(str(n))[0].value == n

    @given(st.from_regex(r"[A-Za-z_][A-Za-z_0-9]{0,20}", fullmatch=True))
    def test_identifiers_roundtrip(self, name):
        tok = tokenize(name)[0]
        assert tok.text == name

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                          exclude_characters='"\\'),
                   max_size=30))
    def test_plain_strings_roundtrip(self, body):
        assert tokenize(f'"{body}"')[0].value == body

    @given(st.lists(st.sampled_from(["x", "42", "+", "*", "(", ")", "if", '"s"']),
                    max_size=12))
    def test_token_count_matches_input(self, parts):
        source = " ".join(parts)
        toks = tokenize(source)
        strings = [p for p in parts if p == '"s"']
        # Adjacent string literals concatenate; everything else is 1:1.
        assert len(toks) <= len(parts) + 1
