"""Shared fixtures for the fault-injection / resilience suite.

Worker functions live at module scope so forked engine workers can
resolve them; every test must leave the process-wide fault plan and
default policy untouched (the autouse fixture asserts it).
"""

import pytest

import repro.bench.harness as harness_mod
from repro.exec import cache as exec_cache
from repro.exec import engine
from repro.resil import inject
from repro.workloads import WorkloadSpec

TINY = """
int main(void) {
    char *s = (char *)GC_malloc(16);
    int i, t = 0;
    for (i = 0; i < 10; i++) s[i] = i * 2;
    for (i = 0; i < 10; i++) t += s[i];
    return t;
}
"""


@pytest.fixture(autouse=True)
def _no_leaked_state():
    yield
    assert inject.active_plan() is None, "test leaked an installed fault plan"
    assert engine.default_policy() == engine.ResilPolicy(), \
        "test leaked a modified default policy"
    assert not exec_cache.active_caches(), "test leaked installed caches"


@pytest.fixture
def tiny_workloads(monkeypatch):
    """One tiny synthetic workload so bench-level identity tests stay
    fast; forked engine workers inherit the patched module state."""
    monkeypatch.setattr(harness_mod, "WORKLOADS",
                        {"tiny": WorkloadSpec("tiny", "tiny.c", "synthetic")})
    monkeypatch.setattr(harness_mod, "load_workload", lambda name: TINY)
