"""``repro chaos`` end to end: byte-identity gate, JSON envelope, and
spec-error handling."""

import json

from repro.cli import main as repro_main


class TestChaosCommand:
    def test_bench_suite_is_identical_under_faults(self, tiny_workloads,
                                                   capsys):
        rc = repro_main(["chaos", "--seed", "0", "--workers", "2",
                         "--suite", "bench", "--workloads", "tiny",
                         "--task-timeout", "10"])
        out = capsys.readouterr()
        assert rc == 0
        assert "identical" in out.out
        assert "chaos: OK" in out.err

    def test_json_envelope(self, tiny_workloads, capsys):
        rc = repro_main(["chaos", "--seed", "0", "--workers", "2",
                         "--suite", "bench", "--workloads", "tiny",
                         "--task-timeout", "10", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        report = json.loads(out)
        assert report["schema"] == "repro-chaos/1"
        assert report["ok"] is True
        assert report["suites"]["bench"]["identical"] is True
        # The default plan fired: recovery was actually exercised.
        assert report["resil"]["worker_deaths"] >= 1
        corrupted = sum(t["corrupt_evicted"] for t in report["cache"].values())
        assert corrupted >= 1
        assert [f["kind"] for f in report["faults"]["faults"]] == [
            "worker_crash", "cache_corrupt", "pipe_drop", "slow_worker"]

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        rc = repro_main(["chaos", "--faults", "bogus@zzz"])
        assert rc == 2
        assert "expected kind@target" in capsys.readouterr().err
