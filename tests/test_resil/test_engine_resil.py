"""Engine recovery under injected faults: retries, quarantine, pipe
loss, hangs, and the serial-fallback last resort.

Every test asserts the headline property first — the merged results are
exactly what the fault-free run produces — and only then inspects the
recovery accounting.
"""

import pytest

from repro.exec.engine import (
    NO_RETRY, EngineError, ResilPolicy, default_policy, policy_context,
    run_sharded, set_default_policy,
)
from repro.obs import runtime as obs_runtime
from repro.resil import inject, parse_faults

WORKERS = 2
PAYLOADS = list(range(8))
CLEAN = [x * x for x in PAYLOADS]


# -- module-level worker functions (must be picklable by name) -------------

def square(x):
    return x * x


class TestCrashRecovery:
    def test_worker_crash_is_retried_to_full_results(self):
        plan = parse_faults("worker_crash@shard1", seed=0)
        with inject.plan_context(plan):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS)
        assert merged.ok
        assert merged.results == CLEAN
        assert merged.worker_deaths == 1
        assert merged.retries >= 1
        assert merged.rounds == 2
        assert not merged.degraded

    def test_crash_after_quota_loses_only_the_tail(self):
        # The shard-1 worker reports 3 tasks before dying; only the
        # remainder needs the retry round.
        plan = parse_faults("worker_crash@shard1:3", seed=0)
        with inject.plan_context(plan):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS)
        assert merged.results == CLEAN
        assert merged.retries == 1  # exactly one lost task (index 7)

    def test_results_byte_identical_to_fault_free_run(self):
        reference = run_sharded(PAYLOADS, square, workers=WORKERS)
        plan = parse_faults("worker_crash@shard0,slow_worker@shard1:1x",
                            seed=0)
        with inject.plan_context(plan):
            faulted = run_sharded(PAYLOADS, square, workers=WORKERS)
        assert faulted.results == reference.results
        assert repr(faulted.results) == repr(reference.results)

    def test_no_retry_policy_turns_crash_into_shard_loss(self):
        plan = parse_faults("worker_crash@shard1", seed=0)
        with inject.plan_context(plan):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS,
                                 policy=NO_RETRY)
        assert not merged.ok
        assert [f.reason for f in merged.shard_failures] == ["worker died"]
        with pytest.raises(EngineError, match="worker died"):
            merged.raise_on_failure()


class TestPoisonQuarantine:
    def test_poison_task_quarantined_after_two_pool_deaths(self):
        plan = parse_faults("poison@task4", seed=0)
        with inject.plan_context(plan):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS)
        # Every innocent task recovered; only the poison task failed.
        assert merged.results == [x * x if x != 4 else None for x in PAYLOADS]
        assert merged.quarantined == [4]
        assert [f.index for f in merged.task_failures] == [4]
        failure = merged.task_failures[0]
        assert failure.shard == 4 % WORKERS  # home shard
        assert "poison task" in failure.error
        # Two pool deaths trigger quarantine; the contained pinned rerun
        # is the third.
        assert merged.worker_deaths == 3
        assert not merged.shard_failures

    def test_quarantine_emits_telemetry_instant(self):
        plan = parse_faults("poison@task4", seed=0)
        obs_runtime.enable_tracing()
        try:
            with inject.plan_context(plan):
                run_sharded(PAYLOADS, square, workers=WORKERS)
            names = [e.name for e in obs_runtime.get_tracer().events]
        finally:
            obs_runtime.reset()
        assert "resil.quarantine" in names
        assert "resil.retry" in names
        assert "resil.worker_lost" in names

    def test_obs_summary_gains_resil_section_only_under_faults(self):
        from repro.obs.report import render_text, summarize
        plan = parse_faults("worker_crash@shard1", seed=0)
        obs_runtime.enable_tracing()
        try:
            with inject.plan_context(plan):
                run_sharded(PAYLOADS, square, workers=WORKERS)
            events = [e.to_json()
                      for e in obs_runtime.get_tracer().sorted_events()]
        finally:
            obs_runtime.reset()
        summary = summarize(events)
        assert summary["resil"]["worker_deaths"] == 1
        assert summary["resil"]["retries"] >= 1
        assert "resilience:" in render_text(summary)
        # Fault-free traces keep their exact pre-resilience shape.
        assert "resil" not in summarize([])


class TestPipeFaults:
    def test_total_pipe_drop_falls_back_to_serial(self):
        # Every pool message is dropped: retries cannot help, so the
        # engine must degrade to pinned serial workers — which the plan
        # spares — and still produce full results.
        plan = parse_faults("pipe_drop@1.0", seed=0)
        with inject.plan_context(plan):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS)
        assert merged.ok
        assert merged.results == CLEAN
        assert merged.degraded

    def test_partial_pipe_drop_recovers(self):
        plan = parse_faults("pipe_drop@0.4", seed=3)
        with inject.plan_context(plan):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS)
        assert merged.ok
        assert merged.results == CLEAN

    def test_pipe_garbage_recovers(self):
        plan = parse_faults("pipe_garbage@0.5", seed=1)
        with inject.plan_context(plan):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS)
        assert merged.ok
        assert merged.results == CLEAN
        assert merged.worker_deaths >= 1  # a garbled pipe kills its worker


class TestHangs:
    def test_task_hang_caught_by_task_timeout(self):
        plan = parse_faults("task_hang@shard0:30s", seed=0)
        with inject.plan_context(plan), policy_context(task_timeout=0.5):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS)
        assert merged.ok
        assert merged.results == CLEAN
        assert merged.worker_deaths >= 1

    def test_run_timeout_still_hard_stops(self):
        # The run-level deadline keeps its classic contract: no retries,
        # unfinished shards report "timed out".
        plan = parse_faults("task_hang@shard0:30s", seed=0)
        with inject.plan_context(plan):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS,
                                 timeout=1.0)
        assert not merged.ok
        assert any(f.reason == "timed out" for f in merged.shard_failures)


class TestPolicy:
    def test_policy_context_restores_default(self):
        before = default_policy()
        with policy_context(task_timeout=0.25, max_rounds=5) as p:
            assert p.task_timeout == 0.25 and p.max_rounds == 5
            assert default_policy() is p
        assert default_policy() == before

    def test_set_default_policy_roundtrip(self):
        before = default_policy()
        try:
            set_default_policy(NO_RETRY)
            assert default_policy() == NO_RETRY
        finally:
            set_default_policy(before)

    def test_policy_is_frozen(self):
        with pytest.raises(Exception):
            ResilPolicy().max_rounds = 9

    def test_resil_summary_shape(self):
        plan = parse_faults("worker_crash@shard1", seed=0)
        with inject.plan_context(plan):
            merged = run_sharded(PAYLOADS, square, workers=WORKERS)
        summary = merged.resil_summary()
        assert summary == {"retries": merged.retries,
                           "worker_deaths": merged.worker_deaths,
                           "quarantined": merged.quarantined,
                           "degraded": merged.degraded,
                           "rounds": merged.rounds}


class TestNoPlanIsInert:
    def test_hooks_are_noops_without_a_plan(self):
        assert inject.active_plan() is None
        inject.on_task_start(0)
        inject.on_task_reported(5)
        inject.compile_checkpoint()
        assert inject.filter_cache_read("compile", b"blob") == b"blob"
        inject.check_cache_write("compile")

    def test_parent_process_never_crashes(self):
        # Worker seams are pinned to forked children; in the parent
        # (shard unset) an armed crash must not fire.
        plan = parse_faults("worker_crash@shard0,poison@task0", seed=0)
        with inject.plan_context(plan):
            inject.on_task_start(0)   # would os._exit in a worker
            inject.on_task_reported(99)
        assert True  # still alive
