"""Cache circuit breaker and write tolerance — a rotten cache directory
must degrade throughput, never correctness."""

import pytest

from repro.exec.cache import CompileCache
from repro.obs import runtime as obs_runtime
from repro.resil import inject, parse_faults


@pytest.fixture
def cache(tmp_path):
    return CompileCache(str(tmp_path / "compile"))


def _store(cache, n):
    keys = []
    for i in range(n):
        key = "%064x" % (i + 1)
        cache.put(key, {"value": i})
        keys.append(key)
    return keys


def _rot(cache, key):
    path = cache._path(key)
    with open(path, "r+b") as fh:
        fh.seek(12)
        fh.write(b"\xff\xff\xff\xff")


class TestBreaker:
    def test_trips_after_threshold_consecutive_corrupt_reads(self, cache, capsys):
        keys = _store(cache, 4)
        for key in keys[:3]:
            _rot(cache, key)
        for key in keys[:2]:
            assert cache.get(key) is None
            assert not cache.breaker_open
        assert cache.get(keys[2]) is None  # third strike
        assert cache.breaker_open
        assert cache.stats.breaker_trips == 1
        assert "circuit breaker open" in capsys.readouterr().err

    def test_open_breaker_bypasses_the_tier(self, cache, capsys):
        keys = _store(cache, 3)
        for key in keys:
            _rot(cache, key)
            cache.get(key)
        assert cache.breaker_open
        capsys.readouterr()
        # Every lookup is now a recorded miss with no disk IO; stores
        # are skipped — and an intact entry on disk stays unread.
        good_key = "%064x" % 99
        cache.put(good_key, {"value": 99})
        assert cache.stats.stores == 3  # the put was skipped
        misses = cache.stats.misses
        assert cache.get(good_key) is None
        assert cache.stats.misses == misses + 1
        assert capsys.readouterr().err == ""  # warning printed only once

    def test_hit_resets_the_corrupt_streak(self, cache):
        keys = _store(cache, 4)
        _rot(cache, keys[0])
        _rot(cache, keys[1])
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is None
        assert cache.get(keys[2]) == {"value": 2}  # streak broken
        _rot(cache, keys[3])
        assert cache.get(keys[3]) is None
        assert not cache.breaker_open  # 2 + 1, never 3 consecutive

    def test_reset_breaker_rearms_the_tier(self, cache):
        keys = _store(cache, 3)
        for key in keys:
            _rot(cache, key)
            cache.get(key)
        assert cache.breaker_open
        cache.reset_breaker()
        assert not cache.breaker_open
        key = "%064x" % 50
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"

    def test_trip_emits_telemetry_instant(self, cache):
        keys = _store(cache, 3)
        obs_runtime.enable_tracing()
        try:
            for key in keys:
                _rot(cache, key)
                cache.get(key)
            names = [e.name for e in obs_runtime.get_tracer().events]
        finally:
            obs_runtime.reset()
        assert "cache.breaker_trip" in names


class TestInjectedFaults:
    def test_cache_corrupt_plan_trips_the_breaker(self, cache):
        keys = _store(cache, 5)
        # Reads 1-3 in this process hand back corrupted bytes.
        plan = parse_faults("cache_corrupt@1-3", seed=0)
        with inject.plan_context(plan):
            for key in keys[:3]:
                assert cache.get(key) is None
            assert cache.breaker_open
        # The entries themselves were evicted (checksum failed), which
        # is exactly what on-disk rot would do.
        assert cache.stats.corrupt_evicted == 3

    def test_enospc_plan_is_tolerated(self, cache):
        plan = parse_faults("cache_enospc@1-2", seed=0)
        with inject.plan_context(plan):
            cache.put("%064x" % 1, "a")   # fails, swallowed
            cache.put("%064x" % 2, "b")   # fails, swallowed
            cache.put("%064x" % 3, "c")   # disk is "back"
        assert cache.stats.write_errors == 2
        assert cache.stats.stores == 1
        assert cache.get("%064x" % 3) == "c"

    def test_write_error_never_raises(self, cache, monkeypatch):
        import tempfile as _tempfile
        def boom(*a, **k):
            raise OSError(28, "no space left on device")
        monkeypatch.setattr(_tempfile, "mkstemp", boom)
        cache.put("%064x" % 1, "value")  # must not raise
        assert cache.stats.write_errors == 1

    def test_stats_dict_carries_resilience_counters(self, cache):
        d = cache.stats.to_dict()
        assert "breaker_trips" in d and "write_errors" in d
