"""Fault-plan grammar: parsing, decision purity, and spec errors."""

import pytest

from repro.resil.plan import (
    DEFAULT_HANG_S, SLOW_UNIT_S, Fault, FaultSpecError, parse_fault,
    parse_faults,
)


class TestGrammar:
    def test_worker_crash_default_after(self):
        f = parse_fault("worker_crash@shard2")
        assert f == Fault("worker_crash", shard=2, after=1)

    def test_worker_crash_explicit_after(self):
        f = parse_fault("worker_crash@shard0:3")
        assert (f.shard, f.after) == (0, 3)

    def test_poison_with_and_without_task_prefix(self):
        assert parse_fault("poison@task7").task == 7
        assert parse_fault("poison@7").task == 7

    def test_task_hang_default_delay(self):
        f = parse_fault("task_hang@shard1")
        assert f.delay_s == DEFAULT_HANG_S

    def test_slow_worker_factor_units(self):
        f = parse_fault("slow_worker@shard1:5x")
        assert f.delay_s == pytest.approx(5 * SLOW_UNIT_S)

    def test_slow_worker_literal_seconds(self):
        assert parse_fault("slow_worker@shard0:0.25s").delay_s == 0.25

    def test_compile_seam_kinds(self):
        assert parse_fault("compile_hang@shard0:2s").kind == "compile_hang"
        assert parse_fault("compile_slow@shard0:2x").kind == "compile_slow"

    def test_pipe_probabilities(self):
        assert parse_fault("pipe_drop@0.1").prob == 0.1
        assert parse_fault("pipe_garbage@1.0").prob == 1.0

    def test_cache_ranges(self):
        f = parse_fault("cache_corrupt@3")
        assert (f.start, f.end) == (3, 3)
        f = parse_fault("cache_enospc@2-5")
        assert (f.start, f.end) == (2, 5)

    def test_issue_example_spec_parses(self):
        plan = parse_faults("worker_crash@shard2,cache_corrupt@3,"
                            "pipe_drop@0.1,slow_worker@shard1:5x", seed=0)
        assert [f.kind for f in plan.faults] == [
            "worker_crash", "cache_corrupt", "pipe_drop", "slow_worker"]

    def test_describe_round_trips_through_parser(self):
        spec = ("worker_crash@shard2:1,poison@task4,task_hang@shard0:30.0s,"
                "pipe_drop@0.1,cache_corrupt@2-4")
        plan = parse_faults(spec, seed=3)
        again = parse_faults(plan.describe(), seed=3)
        assert again.faults == plan.faults


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "bogus@shard1",            # unknown kind
        "worker_crash",            # no @target
        "worker_crash@2",          # missing shard prefix
        "worker_crash@shardx",     # bad shard number
        "poison@taskx",            # bad task index
        "slow_worker@shard1",      # missing factor
        "slow_worker@shard1:fast", # bad delay
        "pipe_drop@1.5",           # probability outside [0, 1]
        "pipe_drop@many",          # not a float
        "cache_corrupt@0",         # range must be 1-based
        "cache_corrupt@5-2",       # inverted range
        "",                        # empty spec
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            parse_faults(bad, seed=0)

    def test_fault_spec_error_is_value_error(self):
        assert issubclass(FaultSpecError, ValueError)


class TestDecisions:
    def test_crash_armed_only_at_attempt_zero(self):
        plan = parse_faults("worker_crash@shard1:2", seed=0)
        assert plan.crash_after(1, 0) == 2
        assert plan.crash_after(1, 1) is None
        assert plan.crash_after(0, 0) is None

    def test_crash_takes_min_over_matching_clauses(self):
        plan = parse_faults("worker_crash@shard0:5,worker_crash@shard0:2",
                            seed=0)
        assert plan.crash_after(0, 0) == 2

    def test_poison_armed_on_every_attempt(self):
        plan = parse_faults("poison@task4", seed=0)
        assert plan.poison_tasks() == frozenset({4})

    def test_slow_applies_to_every_task_hang_only_first(self):
        plan = parse_faults("slow_worker@shard0:2x,task_hang@shard0:1s",
                            seed=0)
        first = plan.task_delay(0, 0, started=1)
        later = plan.task_delay(0, 0, started=2)
        assert first == pytest.approx(2 * SLOW_UNIT_S + 1.0)
        assert later == pytest.approx(2 * SLOW_UNIT_S)
        assert plan.task_delay(0, 1, started=1) == 0.0  # retries run clean

    def test_compile_seam_is_separate(self):
        plan = parse_faults("compile_slow@shard0:3x", seed=0)
        assert plan.task_delay(0, 0, 1, seam="task") == 0.0
        assert plan.task_delay(0, 0, 1, seam="compile") == \
            pytest.approx(3 * SLOW_UNIT_S)

    def test_pipe_action_is_deterministic_in_context(self):
        plan = parse_faults("pipe_drop@0.5", seed=7)
        fates = [plan.pipe_action(0, 0, n) for n in range(32)]
        assert fates == [plan.pipe_action(0, 0, n) for n in range(32)]
        assert "drop" in fates and None in fates  # p=0.5 hits both ways

    def test_pipe_action_varies_with_seed(self):
        a = parse_faults("pipe_drop@0.5", seed=0)
        b = parse_faults("pipe_drop@0.5", seed=1)
        assert [a.pipe_action(0, 0, n) for n in range(64)] != \
               [b.pipe_action(0, 0, n) for n in range(64)]

    def test_pinned_workers_are_spared_pipe_faults(self):
        plan = parse_faults("pipe_drop@1.0", seed=0)
        assert plan.pipe_action(0, 0, 1) == "drop"
        assert plan.pipe_action(-1, -1, 1) is None

    def test_cache_read_write_ranges_are_one_based(self):
        plan = parse_faults("cache_corrupt@2-3,cache_enospc@1", seed=0)
        assert [plan.corrupt_read(n) for n in (1, 2, 3, 4)] == \
            [False, True, True, False]
        assert plan.fail_write(1) and not plan.fail_write(2)

    def test_to_json_shape(self):
        plan = parse_faults("worker_crash@shard2,cache_corrupt@3", seed=5)
        j = plan.to_json()
        assert j["seed"] == 5
        assert j["faults"][0] == {"kind": "worker_crash", "shard": 2,
                                  "after": 1}
        assert j["faults"][1] == {"kind": "cache_corrupt", "reads": [3, 3]}
