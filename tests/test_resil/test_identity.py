"""The headline property: any single recoverable fault leaves the
merged reports byte-identical to the fault-free run.

This is the paper-shaped guarantee the chaos CLI gates on — every task
is a pure function of its payload and the engine merges in canonical
order, so recovery (retries, reassignment, serial fallback) must be
invisible in the output bytes.
"""

import pytest

from repro.api import Toolchain
from repro.bench.tables import render_slowdown_table
from repro.exec.engine import policy_context
from repro.resil import inject, parse_faults

#: Single faults the engine must absorb without a trace in the output.
#: (poison is excluded by design: a task that kills every worker that
#: runs it is a *contained failure*, not a recoverable one.)
RECOVERABLE = [
    "worker_crash@shard1",
    "worker_crash@shard0:2",
    "slow_worker@shard0:2x",
    "task_hang@shard1:0.3s",
    "compile_slow@shard1:2x",
    "pipe_drop@0.3",
    "pipe_garbage@0.3",
    "pipe_drop@1.0",            # forces the serial-fallback path
    "cache_corrupt@1-4",
    "cache_enospc@1-3",
]


def _bench_bytes(workers: int) -> str:
    rows = Toolchain(model="ss10", workers=workers).bench(("tiny",))
    return render_slowdown_table(rows, "t2_ss10", "tiny matrix")


class TestBenchIdentity:
    @pytest.mark.parametrize("spec", RECOVERABLE)
    def test_single_fault_bench_is_byte_identical(self, spec, tiny_workloads):
        reference = _bench_bytes(workers=2)
        plan = parse_faults(spec, seed=0)
        with inject.plan_context(plan), policy_context(task_timeout=5.0):
            faulted = _bench_bytes(workers=2)
        assert faulted == reference

    def test_fault_free_runs_are_stable(self, tiny_workloads):
        assert _bench_bytes(workers=2) == _bench_bytes(workers=2)


class TestFuzzIdentity:
    @pytest.mark.slow
    @pytest.mark.parametrize("spec", [
        "worker_crash@shard1",
        "pipe_drop@0.5",
        "cache_corrupt@1-3",
    ])
    def test_single_fault_campaign_is_byte_identical(self, spec):
        tc = Toolchain(workers=2)
        reference = tc.fuzz(seed=0, iters=4, models=("ss10",)).report()
        plan = parse_faults(spec, seed=0)
        with inject.plan_context(plan), policy_context(task_timeout=10.0):
            faulted = tc.fuzz(seed=0, iters=4, models=("ss10",)).report()
        assert faulted == reference
