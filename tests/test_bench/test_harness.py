"""Bench harness tests, run against a tiny synthetic workload so they
stay fast (the real workloads are exercised by benchmarks/ and the
integration suite)."""

import pytest

import repro.bench.harness as harness_mod
from repro.bench.harness import Harness, WorkloadRow
from repro.workloads import WorkloadSpec

TINY = """
int main(void) {
    char *s = (char *)GC_malloc(16);
    int i, t = 0;
    for (i = 0; i < 10; i++) s[i] = i * 2;
    for (i = 0; i < 10; i++) t += s[i];
    return t;
}
"""


@pytest.fixture
def tiny_harness(monkeypatch):
    monkeypatch.setattr(harness_mod, "WORKLOADS",
                        {"tiny": WorkloadSpec("tiny", "tiny.c", "synthetic")})
    monkeypatch.setattr(harness_mod, "load_workload", lambda name: TINY)
    return Harness("ss10")


class TestHarness:
    def test_run_cell_populates_fields(self, tiny_harness):
        cell = tiny_harness.run_cell("tiny", "O")
        assert cell.exit_code == 90
        assert cell.cycles > 0 and cell.instructions > 0
        assert cell.code_size > 0
        assert cell.config == "O" and cell.model == "ss10"

    def test_cells_are_cached(self, tiny_harness):
        first = tiny_harness.run_cell("tiny", "O")
        second = tiny_harness.run_cell("tiny", "O")
        assert first is second

    def test_postprocessed_cell_cached_separately(self, tiny_harness):
        plain = tiny_harness.run_cell("tiny", "O_safe")
        pp = tiny_harness.run_cell("tiny", "O_safe", postprocessed=True)
        assert plain is not pp
        assert pp.peephole_stats is not None

    def test_run_workload_builds_row(self, tiny_harness):
        row = tiny_harness.run_workload("tiny")
        assert set(row.cells) == {"O", "O_safe", "g", "g_checked"}
        assert row.baseline.config == "O"

    def test_slowdown_pct(self, tiny_harness):
        row = tiny_harness.run_workload("tiny")
        assert row.slowdown_pct("O") == 0.0
        assert row.slowdown_pct("g_checked") > row.slowdown_pct("g")

    def test_verify_consistent_raises_on_disagreement(self):
        from repro.bench.harness import CellResult
        row = WorkloadRow("w", "ss10")
        row.cells["O"] = CellResult("w", "O", "ss10", 1, 1, 1, 0, 0, "")
        row.cells["g"] = CellResult("w", "g", "ss10", 1, 1, 1, 5, 0, "")
        with pytest.raises(AssertionError):
            row.verify_consistent()

    def test_postproc_row(self, tiny_harness):
        cells = tiny_harness.run_postproc_row("tiny")
        assert set(cells) == {"O", "O_safe", "O_safe_pp"}
        assert cells["O_safe_pp"].cycles <= cells["O_safe"].cycles
