"""Table rendering tests with synthetic results (no workload runs)."""

import pytest

from repro.bench.harness import CellResult, WorkloadRow
from repro.bench.tables import (
    PAPER, PAPER_NAMES, render_postproc_table, render_size_table,
    render_slowdown_table,
)


def make_row(name, cycles_by_config, size_by_config=None):
    row = WorkloadRow(name, "ss10")
    sizes = size_by_config or {c: 100 for c in cycles_by_config}
    for config, cycles in cycles_by_config.items():
        row.cells[config] = CellResult(
            workload=name, config=config, model="ss10", cycles=cycles,
            instructions=cycles, code_size=sizes[config], exit_code=0,
            collections=0, output="")
    return row


@pytest.fixture
def rows():
    return {
        "cordtest": make_row("cordtest",
                             {"O": 1000, "O_safe": 1090, "g": 1560, "g_checked": 6000},
                             {"O": 100, "O_safe": 109, "g": 169, "g_checked": 230}),
        "cfrac": make_row("cfrac",
                          {"O": 2000, "O_safe": 2160, "g": 2800, "g_checked": 8000},
                          {"O": 200, "O_safe": 212, "g": 280, "g_checked": 400}),
    }


class TestPaperData:
    def test_every_workload_has_reference_rows(self):
        for table in ("t1_ss2", "t2_ss10", "t3_p90", "t4_size"):
            assert set(PAPER[table]) == {"cordtest", "cfrac", "miniawk", "minips"}

    def test_paper_values_match_published_ranges(self):
        # Spot-check the transcription against the paper's text.
        assert PAPER["t1_ss2"]["cordtest"] == {"O_safe": 9, "g": 54, "g_checked": 514}
        assert PAPER["t3_p90"]["minips"]["g_checked"] == 279
        assert PAPER["t5_postproc"]["cordtest"] == {"time": 4, "size": 3}

    def test_absent_cells_marked_none(self):
        # cfrac's -g and checked cells are absent in the paper
        # ("<needs modifications due to inlining>" / "<fails>").
        assert PAPER["t1_ss2"]["cfrac"]["g"] is None
        assert PAPER["t2_ss10"]["miniawk"]["g_checked"] is None

    def test_name_mapping(self):
        assert PAPER_NAMES["miniawk"] == "gawk"
        assert PAPER_NAMES["minips"] == "gs"


class TestRendering:
    def test_slowdown_table_contains_measured_values(self, rows):
        text = render_slowdown_table(rows, "t2_ss10", "T2")
        assert "T2" in text
        assert "9.0%" in text  # cordtest safe: (1090-1000)/1000
        assert "500.0%" in text  # cordtest checked

    def test_slowdown_table_shows_paper_reference(self, rows):
        text = render_slowdown_table(rows, "t2_ss10", "T2")
        assert "9% /" in text  # paper value alongside

    def test_absent_paper_cells_render_dash(self, rows):
        text = render_slowdown_table(rows, "t2_ss10", "T2")
        assert "- /" in text

    def test_size_table(self, rows):
        text = render_size_table(rows)
        assert "code expansion" in text
        assert "9.0%" in text  # cordtest safe size growth

    def test_postproc_table(self):
        cells = {
            "cordtest": {
                "O": CellResult("cordtest", "O", "ss10", 1000, 1, 100, 0, 0, ""),
                "O_safe": CellResult("cordtest", "O_safe", "ss10", 1090, 1, 109, 0, 0, ""),
                "O_safe_pp": CellResult("cordtest", "O_safe", "ss10", 1030, 1,
                                        103, 0, 0, "", postprocessed=True),
            }
        }
        text = render_postproc_table(cells)
        assert "3.0%" in text  # residual time
        assert "postprocessor" in text

    def test_rows_use_paper_names(self, rows):
        rows["miniawk"] = make_row(
            "miniawk", {"O": 100, "O_safe": 105, "g": 140, "g_checked": 300})
        text = render_slowdown_table(rows, "t2_ss10", "T2")
        assert "gawk" in text
