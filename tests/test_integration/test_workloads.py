"""Workload integration tests: every benchmark program computes a
consistent, expected answer under the full build matrix, and the paper's
qualitative orderings hold."""

import pytest

from repro.machine import CompileConfig, VM, compile_source
from repro.workloads import WORKLOAD_NAMES, WORKLOADS, load_workload

pytestmark = pytest.mark.slow  # full build-matrix runs of real workloads

EXPECTED_OUTPUT_MARKS = {
    "cordtest": "cordtest: checksum=",
    "cfrac": "cfrac: check=",
    "miniawk": "miniawk: lines=80",
    "minips": "minips: checksum=",
}


def run(workload, config_name, postprocessed=False):
    source = load_workload(workload)
    config = CompileConfig.named(config_name)
    compiled = compile_source(source, config)
    if postprocessed:
        from repro.postproc import postprocess
        postprocess(compiled.asm)
    vm = VM(compiled.asm, config.model)
    vm.stdin = WORKLOADS[workload].stdin
    return vm.run(), compiled


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
class TestWorkloadConsistency:
    def test_all_configs_same_answer(self, workload):
        results = {}
        for name in ("O", "O_safe", "g", "g_checked"):
            result, _ = run(workload, name)
            results[name] = result
        codes = {r.exit_code for r in results.values()}
        outputs = {r.output for r in results.values()}
        assert len(codes) == 1, {k: v.exit_code for k, v in results.items()}
        assert len(outputs) == 1

    def test_expected_output_marker(self, workload):
        result, _ = run(workload, "O")
        assert EXPECTED_OUTPUT_MARKS[workload] in result.output

    def test_postprocessed_same_answer(self, workload):
        base, _ = run(workload, "O")
        pp, _ = run(workload, "O_safe", postprocessed=True)
        assert pp.exit_code == base.exit_code

    def test_slowdown_ordering(self, workload):
        """The qualitative result of every table: O <= safe < g < checked."""
        cycles = {}
        for name in ("O", "O_safe", "g", "g_checked"):
            result, _ = run(workload, name)
            cycles[name] = result.cycles
        assert cycles["O"] <= cycles["O_safe"] < cycles["g"] < cycles["g_checked"]

    def test_code_size_ordering(self, workload):
        sizes = {}
        for name in ("O", "O_safe", "g", "g_checked"):
            _, compiled = run(workload, name)
            sizes[name] = compiled.asm.code_size()
        assert sizes["O"] <= sizes["O_safe"] < sizes["g"] < sizes["g_checked"]

    def test_workload_is_allocation_intensive(self, workload):
        """The paper chose these because they are 'very pointer and
        allocation intensive' — ensure ours actually allocate."""
        result, _ = run(workload, "O")
        config = CompileConfig.named("O")
        compiled = compile_source(load_workload(workload), config)
        from repro.gc import Collector
        gc = Collector()
        vm = VM(compiled.asm, config.model, collector=gc)
        vm.stdin = WORKLOADS[workload].stdin
        vm.run()
        assert gc.stats.objects_allocated > 100
