"""Integration test for the paper's headline scenario (experiment A2):
the optimizer disguises a pointer, an asynchronous collection reclaims
the object mid-expression, and KEEP_LIVE (or -g) prevents it.
"""

import pytest

from repro.gc import Collector
from repro.machine import CompileConfig, VM, compile_source

SOURCE = """
int helper(int x) { return x + 1; }
char read_it(char *p, int i)
{
    helper(12345);
    return p[i - 1000];
}
int main(void)
{
    char *s;
    int i;
    s = (char *) GC_malloc(64);
    for (i = 0; i < 64; i++) s[i] = 'A' + (i % 26);
    return read_it(s, 1003);
}
"""
EXPECTED = ord("D")


def run(config_name, gc_interval=0, poison=0xDD):
    config = CompileConfig.named(config_name)
    compiled = compile_source(SOURCE, config)
    gc = Collector()
    gc.heap.poison_byte = poison
    vm = VM(compiled.asm, config.model, collector=gc, gc_interval=gc_interval)
    return vm.run(), compiled


class TestDisguisedPointer:
    def test_optimizer_produces_the_disguise(self):
        _, compiled = run("O")
        asm = compiled.asm.functions["read_it"].render()
        # p is overwritten in place by p - 1000 (register reuse).
        assert "sub s" in asm or "sub t" in asm

    def test_correct_without_collections(self):
        result, _ = run("O", gc_interval=0)
        assert result.exit_code == EXPECTED

    def test_unsafe_build_corrupted_under_async_gc(self):
        result, _ = run("O", gc_interval=1)
        assert result.exit_code != EXPECTED
        assert result.exit_code == -(256 - 0xDD)  # sign-extended poison

    def test_keep_live_restores_safety(self):
        result, compiled = run("O_safe", gc_interval=1)
        assert result.exit_code == EXPECTED
        asm = compiled.asm.functions["read_it"].render()
        assert "keepsafe" in asm

    def test_debuggable_build_is_safe(self):
        result, _ = run("g", gc_interval=1)
        assert result.exit_code == EXPECTED

    def test_checked_build_is_safe_and_checks(self):
        result, _ = run("g_checked", gc_interval=1)
        assert result.exit_code == EXPECTED
        assert result.checks > 0

    def test_safe_build_survives_every_interval(self):
        # Not just interval 1: any async schedule must be safe.
        for interval in (1, 2, 3, 7, 13):
            result, _ = run("O_safe", gc_interval=interval)
            assert result.exit_code == EXPECTED, f"failed at interval {interval}"

    def test_annotation_is_minimal(self):
        _, compiled = run("O_safe")
        # Exactly two sites qualify: the p[i-1000] read in read_it and
        # the s[i] store through the heap pointer in main's fill loop.
        assert compiled.keep_lives == 2
