"""Every example script must run to completion (they carry their own
assertions).  cord_strings is exercised by the benchmarks already and
omitted here for runtime."""

import os
import runpy
import sys

import pytest

_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "gc_safety_demo.py",
    "checker_demo.py",
    "collector_tour.py",
    "extensions_demo.py",
    "source_checking.py",
    "postproc_tour.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    path = os.path.abspath(os.path.join(_EXAMPLES, script))
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_gc_safety_demo_shows_corruption(capsys, monkeypatch):
    path = os.path.abspath(os.path.join(_EXAMPLES, "gc_safety_demo.py"))
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "CORRUPTED" in out
    assert out.count("OK") >= 3


def test_checker_demo_reports_diagnosis(capsys, monkeypatch):
    path = os.path.abspath(os.path.join(_EXAMPLES, "checker_demo.py"))
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "CHECKER:" in out
