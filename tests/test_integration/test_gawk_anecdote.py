"""Experiment A1: the gawk anecdote.

"It ran correctly without checking.  With checking enabled, it
immediately and correctly detected a pointer arithmetic error which was
also an array access error."  The bug: representing an array as a
pointer to one element before the beginning of its memory.
"""

import pytest

from repro.gc import Collector, GCCheckError
from repro.machine import CompileConfig, VM, compile_source
from repro.workloads import WORKLOADS, load_workload


def run(defines, config_name):
    source = load_workload("miniawk", defines=defines)
    config = CompileConfig.named(config_name)
    compiled = compile_source(source, config)
    vm = VM(compiled.asm, config.model)
    vm.stdin = WORKLOADS["miniawk"].stdin
    return vm.run()


class TestGawkAnecdote:
    def test_clean_build_passes_checking(self):
        result = run(None, "g_checked")
        assert "miniawk: lines=80" in result.output

    def test_buggy_build_runs_correctly_unchecked(self):
        # The bug "works" under a non-moving allocator — which is
        # exactly why such bugs survive in the wild.
        clean = run(None, "O")
        buggy = run({"GAWK_BUG": "1"}, "O")
        assert buggy.exit_code == clean.exit_code
        assert buggy.output == clean.output

    def test_checker_detects_the_bug_immediately(self):
        with pytest.raises(GCCheckError, match="outside its object|crossed"):
            run({"GAWK_BUG": "1"}, "g_checked")

    def test_bug_detected_before_any_output(self):
        # "immediately": the very first field split trips the check,
        # before the report is printed.
        source = load_workload("miniawk", defines={"GAWK_BUG": "1"})
        config = CompileConfig.named("g_checked")
        compiled = compile_source(source, config)
        vm = VM(compiled.asm, config.model)
        vm.stdin = WORKLOADS["miniawk"].stdin
        with pytest.raises(GCCheckError):
            vm.run()
        assert "miniawk:" not in "".join(vm.output)

    def test_safe_mode_does_not_reject_the_bug(self):
        # GC-safety annotation keeps the base live but does not check;
        # only the debugging mode diagnoses (paper's division of labor).
        result = run({"GAWK_BUG": "1"}, "O_safe")
        assert result.exit_code == run(None, "O").exit_code
