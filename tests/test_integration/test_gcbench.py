"""GCBench (auxiliary workload): the classic Boehm collector benchmark
as an end-to-end stress test — long-lived data must survive heavy
short-lived churn in every configuration."""

import pytest

from repro.gc import Collector
from repro.machine import CompileConfig, VM, compile_source
from repro.workloads import AUX_WORKLOADS, load_workload

pytestmark = pytest.mark.slow  # heavy allocation-churn stress runs


def run(config_name, threshold=16 * 1024, gc_interval=0):
    source = load_workload("gcbench")
    config = CompileConfig.named(config_name)
    compiled = compile_source(source, config)
    gc = Collector(initial_threshold=threshold)
    gc.heap.poison_byte = 0xDD
    vm = VM(compiled.asm, config.model, collector=gc, gc_interval=gc_interval)
    result = vm.run()
    return result, gc


class TestGCBench:
    def test_registered_as_auxiliary(self):
        assert "gcbench" in AUX_WORKLOADS

    @pytest.mark.parametrize("config", ("O", "O_safe", "g", "g_checked"))
    def test_all_configs_pass_self_checks(self, config):
        result, gc = run(config)
        assert result.exit_code == 0, result.output
        assert "nodes=1763" in result.output

    def test_collections_actually_happen(self):
        result, gc = run("O", threshold=8 * 1024)
        assert result.collections >= 1
        assert gc.stats.objects_reclaimed > 500  # short-lived trees died

    def test_long_lived_data_survives_aggressive_gc(self):
        result, _ = run("O_safe", threshold=4 * 1024, gc_interval=50)
        assert result.exit_code == 0

    def test_heap_stays_bounded(self):
        _, gc = run("O", threshold=8 * 1024)
        # Live set is the long-lived tree (255 nodes) + array + slack;
        # without reclamation the 1763 nodes would all persist.
        assert gc.heap.objects_in_use < 1200
