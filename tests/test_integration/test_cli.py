"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main

DEMO = """\
char *bump(char *p) { return p + 1; }
int main(void) {
    char *s = (char *)GC_malloc(8);
    s[0] = 60;
    return *bump(s) + s[0];
}
"""

BAD = "char *f(int v) { return (char *)v; }\n"


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.c"
    path.write_text(BAD)
    return str(path)


class TestAnnotateCommand:
    def test_safe_mode(self, demo_file, capsys):
        assert main(["annotate", demo_file]) == 0
        out = capsys.readouterr().out
        assert "KEEP_LIVE((p + 1), p)" in out

    def test_checked_mode(self, demo_file, capsys):
        assert main(["annotate", "--mode", "checked", demo_file]) == 0
        out = capsys.readouterr().out
        assert "GC_same_obj" in out

    def test_stats_flag(self, demo_file, capsys):
        assert main(["annotate", "--stats", demo_file]) == 0
        err = capsys.readouterr().err
        assert "keep_lives" in err

    def test_option_flags_change_output(self, demo_file, capsys):
        main(["annotate", demo_file])
        normal = capsys.readouterr().out
        main(["annotate", "--no-copy-suppression", demo_file])
        verbose = capsys.readouterr().out
        assert verbose.count("KEEP_LIVE") > normal.count("KEEP_LIVE")

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.c"
        path.write_text("int main( {")
        assert main(["annotate", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCheckCommand:
    def test_clean_file_exit_zero(self, demo_file, capsys):
        assert main(["check", demo_file]) == 0

    def test_diagnostics_exit_one(self, bad_file, capsys):
        assert main(["check", bad_file]) == 1
        assert "int-to-pointer" in capsys.readouterr().out


class TestCcCommand:
    def test_compile_and_run(self, demo_file, capsys):
        rc = main(["cc", demo_file])
        captured = capsys.readouterr()
        assert rc == 60  # *bump(s) is the zeroed s[1]; + s[0]
        assert "exit=60" in captured.err

    def test_all_configs(self, demo_file, capsys):
        codes = set()
        for config in ("O", "O_safe", "g", "g_checked"):
            codes.add(main(["cc", "--config", config, demo_file]))
            capsys.readouterr()
        assert codes == {60}

    def test_dump_asm(self, demo_file, capsys):
        assert main(["cc", "--dump-asm", "--config", "O_safe", demo_file]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "keepsafe" in out

    def test_postproc_flag(self, demo_file, capsys):
        rc = main(["cc", "--config", "O_safe", "--postproc", demo_file])
        captured = capsys.readouterr()
        assert rc == 60
        assert "postprocessor" in captured.err

    def test_gc_interval_and_poison(self, demo_file, capsys):
        rc = main(["cc", "--config", "O_safe", "--gc-interval", "1",
                   "--poison", demo_file])
        capsys.readouterr()
        assert rc == 60  # safe code survives constant collection

    def test_checked_violation_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bug.c"
        path.write_text(
            "int main(void) { char *p = (char *)GC_malloc(8); "
            "char *q; q = p - 1; return q != 0; }")
        rc = main(["cc", "--config", "g_checked", str(path)])
        captured = capsys.readouterr()
        assert rc == 3
        assert "pointer check failed" in captured.err

    def test_stdin_file(self, tmp_path, capsys):
        src = tmp_path / "cat.c"
        src.write_text("int main(void) { int c, n = 0; "
                       "while ((c = getchar()) >= 0) n++; return n; }")
        data = tmp_path / "input.txt"
        data.write_text("12345")
        rc = main(["cc", "--stdin", str(data), str(src)])
        capsys.readouterr()
        assert rc == 5

    def test_missing_file(self, capsys):
        assert main(["cc", "/nonexistent/x.c"]) == 2


class TestBenchCommand:
    def test_bench_single_workload(self, capsys):
        rc = main(["bench", "--model", "ss10", "--workloads", "miniawk"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SPARCstation 10" in out
        assert "gawk" in out  # paper-name mapping
        assert "paper / measured" in out
