"""The central safety property, tested end to end:

For any program in the corpus, the KEEP_LIVE-annotated optimized build
must compute the same answer as the unannotated build — with and without
asynchronous collections and poisoning — and must *stay* correct under
collection schedules where the heap is actively reclaimed.
"""

import pytest

from repro.gc import Collector
from repro.machine import CompileConfig, VM, compile_source

CORPUS = [
    # Linked list build + traversal with garbage churn.
    """
    struct node { int v; struct node *next; };
    struct node *cons(int v, struct node *rest) {
        struct node *n = (struct node *)GC_malloc(sizeof(struct node));
        n->v = v;
        n->next = rest;
        return n;
    }
    int main(void) {
        struct node *list = 0;
        int i, s = 0;
        for (i = 0; i < 40; i++) list = cons(i, list);
        for (; list; list = list->next) s += list->v;
        return s & 0xFF;
    }
    """,
    # String building with interior pointer walking.
    """
    int main(void) {
        char *buf = (char *)GC_malloc(64);
        char *p = buf;
        int i, s = 0;
        for (i = 0; i < 60; i++) *p++ = 'a' + (i % 26);
        *p = 0;
        for (p = buf; *p; p++) s += *p - 'a';
        return s & 0xFF;
    }
    """,
    # Pointer arithmetic with offsets in both directions.
    """
    int main(void) {
        int *a = (int *)GC_malloc(40);
        int *mid = a + 5;
        int i, s = 0;
        for (i = 0; i < 10; i++) a[i] = i * 3;
        s += mid[-2] + mid[2] + *(mid - 1) + *(mid + 1);
        return s & 0xFF;
    }
    """,
    # Nested heap structures reached through chains.
    """
    struct inner { int data[4]; };
    struct outer { struct inner *in; int tag; };
    int main(void) {
        struct outer *o = (struct outer *)GC_malloc(sizeof(struct outer));
        int i, s = 0;
        o->in = (struct inner *)GC_malloc(sizeof(struct inner));
        o->tag = 5;
        for (i = 0; i < 4; i++) o->in->data[i] = i + 10;
        for (i = 0; i < 4; i++) s += o->in->data[i];
        return (s + o->tag) & 0xFF;
    }
    """,
    # realloc-style growth under pressure.
    """
    int main(void) {
        int *v = (int *)GC_malloc(4 * sizeof(int));
        int cap = 4, n = 0, i, s = 0;
        for (i = 0; i < 50; i++) {
            if (n == cap) {
                cap = cap * 2;
                v = (int *)GC_realloc(v, cap * sizeof(int));
            }
            v[n++] = i;
        }
        for (i = 0; i < n; i++) s += v[i];
        return s & 0xFF;
    }
    """,
]


def run(source, config_name, gc_interval=0):
    config = CompileConfig.named(config_name)
    compiled = compile_source(source, config)
    gc = Collector()
    gc.heap.poison_byte = 0xDD
    vm = VM(compiled.asm, config.model, collector=gc, gc_interval=gc_interval)
    return vm.run()


@pytest.mark.parametrize("source", CORPUS, ids=[f"prog{i}" for i in range(len(CORPUS))])
class TestAnnotatedEquivalence:
    def test_all_configs_agree_without_gc(self, source):
        codes = {name: run(source, name).exit_code
                 for name in ("O", "O_safe", "g", "g_checked")}
        assert len(set(codes.values())) == 1, codes

    def test_safe_build_correct_under_async_gc(self, source):
        expected = run(source, "O").exit_code
        for interval in (1, 17):
            got = run(source, "O_safe", gc_interval=interval)
            assert got.exit_code == expected, f"interval {interval}"

    def test_debug_build_correct_under_async_gc(self, source):
        expected = run(source, "O").exit_code
        got = run(source, "g", gc_interval=13)
        assert got.exit_code == expected

    def test_checked_build_correct_under_async_gc(self, source):
        expected = run(source, "O").exit_code
        got = run(source, "g_checked", gc_interval=29)
        assert got.exit_code == expected

    def test_postprocessed_safe_build_correct_under_async_gc(self, source):
        from repro.postproc import postprocess
        expected = run(source, "O").exit_code
        config = CompileConfig.named("O_safe")
        compiled = compile_source(source, config)
        postprocess(compiled.asm)
        gc = Collector()
        gc.heap.poison_byte = 0xDD
        vm = VM(compiled.asm, config.model, collector=gc, gc_interval=11)
        assert vm.run().exit_code == expected
