"""Tests for the paper's Extensions section: a collector mode where
interior pointers are valid only from the stack/registers, the matching
program discipline ("stores only pointers to the base of an object in
the heap or in statically allocated variables"), and the dynamic checks
verifying it."""

import pytest

from repro.api import Toolchain
from repro.core import AnnotateOptions
from repro.gc import Collector, GCCheckError
from repro.machine import CompileConfig, VM, compile_source

# Disciplined program: heap/static stores hold base pointers only;
# interior pointers stay in locals.
GOOD = """
struct node { char *text; struct node *next; };
int main(void) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    char *buf = (char *)GC_malloc(32);
    char *cursor;
    int i;
    for (i = 0; i < 31; i++) buf[i] = 'a' + (i % 26);
    buf[31] = 0;
    n->text = buf;                 /* base pointer into the heap: OK */
    for (cursor = buf; *cursor; cursor++) ;  /* interior, but a local */
    for (i = 0; i < 3000; i++) GC_malloc(64);
    return n->text[30];
}
"""

# Undisciplined: stores an interior pointer into the heap.
BAD = """
struct node { char *text; struct node *next; };
int main(void) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    char *buf = (char *)GC_malloc(32);
    int i;
    for (i = 0; i < 31; i++) buf[i] = 'a' + (i % 26);
    buf[31] = 0;
    n->text = buf + 5;             /* interior pointer into the heap! */
    buf = 0;
    for (i = 0; i < 3000; i++) GC_malloc(64);
    return n->text[0];
}
"""


def run(source, config_name, interior_from_roots_only=False,
        check_base_stores=False, poison=True):
    config = CompileConfig.named(config_name)
    if check_base_stores:
        options = config.annotate_options or AnnotateOptions()
        options.check_base_stores = True
        config.annotate_options = options
    compiled = compile_source(source, config)
    gc = Collector(interior_from_roots_only=interior_from_roots_only)
    if poison:
        gc.heap.poison_byte = 0xDD
    vm = VM(compiled.asm, config.model, collector=gc)
    return vm.run()


class TestExtensionsCollectorMode:
    def test_disciplined_program_safe_in_base_only_mode(self):
        result = run(GOOD, "g", interior_from_roots_only=True)
        assert result.exit_code == ord("a") + (30 % 26)

    def test_disciplined_program_safe_in_default_mode(self):
        result = run(GOOD, "g")
        assert result.exit_code == ord("a") + (30 % 26)

    def test_undisciplined_program_fine_in_default_mode(self):
        # With full interior-pointer recognition the sloppy store works.
        result = run(BAD, "g")
        assert result.exit_code == ord("f")

    def test_undisciplined_program_breaks_in_base_only_mode(self):
        # The heap-resident interior pointer is not recognized; the
        # buffer is collected and the read is poisoned.
        result = run(BAD, "g", interior_from_roots_only=True)
        assert result.exit_code != ord("f")


class TestBaseStoreChecking:
    def test_annotation_inserts_checks(self):
        result = Toolchain(
            mode="checked",
            annotate=AnnotateOptions(mode="checked", check_base_stores=True),
        ).annotate(GOOD)
        assert "GC_check_base" in result.text
        assert result.stats.base_store_checks >= 1

    def test_local_stores_not_checked(self):
        src = "void f(char *p) { char *q; q = p + 3; *q = 0; }"
        result = Toolchain(
            mode="checked",
            annotate=AnnotateOptions(mode="checked", check_base_stores=True),
        ).annotate(src)
        assert result.stats.base_store_checks == 0

    def test_disciplined_program_passes_checks(self):
        result = run(GOOD, "g_checked", check_base_stores=True)
        assert result.exit_code == ord("a") + (30 % 26)
        assert result.checks > 0

    def test_undisciplined_program_diagnosed(self):
        with pytest.raises(GCCheckError, match="interior pointer"):
            run(BAD, "g_checked", check_base_stores=True)

    def test_null_stores_pass(self):
        src = ("struct n { char *p; };\n"
               "int main(void) { struct n *x = (struct n *)GC_malloc(8); "
               "x->p = 0; return x->p == 0; }")
        result = run(src, "g_checked", check_base_stores=True)
        assert result.exit_code == 1

    def test_static_store_checked(self):
        src = ("char *stash;\n"
               "int main(void) { char *b = (char *)GC_malloc(16); "
               "stash = b + 2; return 0; }")
        with pytest.raises(GCCheckError):
            run(src, "g_checked", check_base_stores=True)
