"""Property-based differential testing: hypothesis generates small
pointer-manipulating C programs; every build configuration must agree,
and the safe build must stay correct under asynchronous collections with
poisoning.  This is the randomized version of the paper's correctness
argument.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gc import Collector
from repro.machine import CompileConfig, VM, compile_source

# The seeded generator in repro.fuzz supersedes this for campaigns; the
# hypothesis version stays as a shrinking-capable property test.
pytestmark = [pytest.mark.slow, pytest.mark.fuzz]

# ---------------------------------------------------------------------------
# A tiny structured program generator.  Programs allocate a heap int
# array, fill it, then run a sequence of pointer/arithmetic statements
# over it, and return a checksum.  Every construct is defined behavior.
# ---------------------------------------------------------------------------

N = 16  # heap array length

_expr_leaf = st.sampled_from(["i", "acc", "3", "7", "n"])

_binops = st.sampled_from(["+", "-", "*"])


@st.composite
def _int_expr(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(_expr_leaf)
    op = draw(_binops)
    left = draw(_int_expr(depth - 1))
    right = draw(_int_expr(depth - 1))
    return f"({left} {op} {right})"


@st.composite
def _statement(draw):
    kind = draw(st.sampled_from(
        ["acc_load", "acc_arith", "store", "ptr_walk", "ptr_offset_read",
         "cond", "alloc_churn"]))
    idx = draw(st.integers(0, N - 1))
    if kind == "acc_load":
        return f"acc += a[{idx}];"
    if kind == "acc_arith":
        expr = draw(_int_expr())
        return f"acc = (acc + {expr}) & 0xFFFF;"
    if kind == "store":
        expr = draw(_int_expr())
        return f"a[{idx}] = ({expr}) & 0xFF;"
    if kind == "ptr_walk":
        steps = draw(st.integers(1, N - 1))
        return (f"{{ int *p = a; int k; for (k = 0; k < {steps}; k++) p++; "
                f"acc += *p; }}")
    if kind == "ptr_offset_read":
        off = draw(st.integers(0, N - 1))
        return f"{{ int *p = a + {off}; acc += *p; }}"
    if kind == "cond":
        expr = draw(_int_expr(1))
        return f"if (({expr}) > 0) acc += a[{idx}]; else acc -= a[{idx}];"
    return "GC_malloc(48);"  # garbage churn to give collections work


@st.composite
def program(draw):
    body = "\n        ".join(draw(st.lists(_statement(), min_size=2, max_size=8)))
    return f"""
    int main(void) {{
        int *a = (int *)GC_malloc({N} * sizeof(int));
        int i, n = {N}, acc = 0;
        for (i = 0; i < n; i++) a[i] = i * 2 + 1;
        {body}
        return acc & 0xFF;
    }}
    """


def run(source, config_name, gc_interval=0):
    config = CompileConfig.named(config_name)
    compiled = compile_source(source, config)
    gc = Collector()
    gc.heap.poison_byte = 0xDD
    vm = VM(compiled.asm, config.model, collector=gc,
            gc_interval=gc_interval, max_instructions=2_000_000)
    return vm.run().exit_code


class TestRandomPrograms:
    @settings(max_examples=25, deadline=None)
    @given(program())
    def test_configs_agree(self, source):
        expected = run(source, "O")
        assert run(source, "g") == expected
        assert run(source, "O_safe") == expected

    @settings(max_examples=25, deadline=None)
    @given(program())
    def test_safe_build_survives_async_collections(self, source):
        expected = run(source, "O")
        assert run(source, "O_safe", gc_interval=7) == expected

    @settings(max_examples=10, deadline=None)
    @given(program())
    def test_debug_build_survives_async_collections(self, source):
        expected = run(source, "O")
        assert run(source, "g", gc_interval=23) == expected
