"""Regression-corpus replay: every minimized finding checked into
``corpus/`` runs through the full five-config differential oracle —
all three machine models for the plain matrix, ``gc_interval=1`` with
heap poisoning for the adversarial re-runs.

Any future optimizer or GC change that re-breaks a corpus program fails
here, permanently.
"""

from pathlib import Path

import pytest

from repro.fuzz import check_program

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.c"))


def test_corpus_is_nonempty():
    assert len(CORPUS) >= 4


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_program_survives_five_config_oracle(path):
    report = check_program(path.read_text(), adv_interval=1)
    assert report.ok, f"{path.name}:\n{report.describe()}"
    assert report.reference.status == "ok"
