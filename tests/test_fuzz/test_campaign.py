"""Campaign orchestration and the ``python -m repro.fuzz`` CLI."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.fuzz import run_campaign
from repro.fuzz.brokenpass import rebroken_addrfold

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestCampaign:
    @pytest.mark.fuzz
    def test_small_campaign_is_clean(self):
        result = run_campaign(seed=0, iters=4, models=("ss10",))
        assert result.ok
        assert result.iterations == 4
        # 5 plain (ref counted) + 4 adversarial + 3 sink + 2 sink-adv
        assert result.cells == 4 * 14

    @pytest.mark.fuzz
    @pytest.mark.slow
    def test_rebroken_campaign_finds_reduces_and_persists(self, tmp_path):
        with rebroken_addrfold():
            result = run_campaign(seed=0, iters=40, models=("ss10",),
                                  reduce=True, out_dir=str(tmp_path),
                                  stop_after=1)
        assert not result.ok, "no finding in 40 iterations with a broken pass"
        finding = result.findings[0]
        assert finding.reduced is not None
        assert finding.reduce_stats.lines_after < finding.reduce_stats.lines_before
        written = sorted(p.name for p in tmp_path.iterdir())
        stem = f"finding-{finding.seed}-{finding.iteration}"
        assert f"{stem}.c" in written
        assert f"{stem}.min.c" in written
        assert f"{stem}.txt" in written

    def test_campaign_is_deterministic(self):
        a = run_campaign(seed=5, iters=2, models=("ss10",))
        b = run_campaign(seed=5, iters=2, models=("ss10",))
        assert (a.iterations, a.cells, a.ok) == (b.iterations, b.cells, b.ok)


class TestCLI:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.fuzz", *args],
            capture_output=True, text=True,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"})

    @pytest.mark.fuzz
    @pytest.mark.slow
    def test_clean_campaign_exits_zero(self):
        proc = self.run_cli("--seed", "0", "--iters", "2", "--models", "ss10")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "zero differential mismatches" in proc.stdout

    @pytest.mark.fuzz
    @pytest.mark.slow
    def test_rebroken_campaign_exits_nonzero(self):
        proc = self.run_cli("--seed", "0", "--iters", "40", "--models", "ss10",
                            "--rebreak-addrfold")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "MISMATCH" in proc.stdout

    @pytest.mark.fuzz
    @pytest.mark.slow
    def test_replay_of_corpus_file_is_clean(self):
        corpus = Path(__file__).parent / "corpus" / "addrfold_alias.c"
        proc = self.run_cli("--replay", str(corpus), "--models", "ss10")
        assert proc.returncode == 0, proc.stdout + proc.stderr
