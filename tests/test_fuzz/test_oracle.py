"""Differential-oracle semantics: agreement, detection, predicate."""

import pytest

from repro.fuzz import (ADVERSARIAL_CONFIGS, ALL_CONFIGS, check_program,
                        compile_and_run, mismatch_predicate)
from repro.fuzz.brokenpass import rebroken_addrfold

ALIAS_SRC = """
int main(void) {
    int *a = (int *)GC_malloc(4 * sizeof(int));
    int x, y;
    a[0] = 4242;
    x = a[0];
    y = x + (x - 1000);
    printf("%d\\n", y);
    return y & 0xFF;
}
"""

CLEAN_SRC = """
int main(void) {
    int *a = (int *)GC_malloc(8 * sizeof(int));
    int i, acc = 0;
    for (i = 0; i < 8; i++) a[i] = i * 3;
    for (i = 0; i < 8; i++) acc = (acc + a[i]) & 0xFFFF;
    printf("%d\\n", acc);
    return acc & 0xFF;
}
"""


class TestMatrix:
    def test_five_configs(self):
        assert ALL_CONFIGS == ("O0", "O", "O_safe", "g", "g_checked")
        assert "O" not in ADVERSARIAL_CONFIGS  # the unsafe column

    def test_clean_program_agrees_everywhere(self):
        report = check_program(CLEAN_SRC)
        assert report.ok, report.describe()
        # 5 configs x 3 models plain (reference counted once) + 4
        # adversarial + 3 sink + 2 sink-adversarial cells on the
        # primary model.
        assert report.runs == 24

    def test_compile_error_is_an_outcome(self):
        out = compile_and_run("int main(void { return 0; }", "O")
        assert out.status == "compile-error"

    def test_runtime_fault_is_an_outcome(self):
        out = compile_and_run(
            "int main(void) { int x = 1; return x / (x - 1); }", "g")
        assert out.status == "fault"


class TestDetection:
    def test_rebroken_addrfold_caught(self):
        with rebroken_addrfold():
            report = check_program(ALIAS_SRC, models=("ss10",))
        assert not report.ok
        assert any(m.config == "O" and m.kind == "plain"
                   for m in report.mismatches), report.describe()

    def test_fix_holds_without_hook(self):
        report = check_program(ALIAS_SRC)
        assert report.ok, report.describe()

    def test_predicate_narrowly_rechecks_signature(self):
        with rebroken_addrfold():
            report = check_program(ALIAS_SRC, models=("ss10",))
            pred = mismatch_predicate(report.mismatches[0].signature())
            assert pred(ALIAS_SRC)
            assert not pred(CLEAN_SRC)
        # Outside the hook the mismatch is gone.
        assert not mismatch_predicate(("plain", "O", "ss10"))(ALIAS_SRC)

    def test_predicate_rejects_uncompilable(self):
        pred = mismatch_predicate(("plain", "O", "ss10"))
        # A compile error in the *tested* config while the reference
        # still builds is itself a divergence; a broken reference is not
        # a reproducer for a plain signature.
        assert not pred("int main(void { return 0; }")
