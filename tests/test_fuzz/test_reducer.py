"""Reducer behavior on synthetic predicates and on a real miscompile."""

import pytest

from repro.fuzz import ReduceStats, mismatch_predicate, reduce_source
from repro.fuzz.brokenpass import rebroken_addrfold
from repro.fuzz.oracle import check_program


def count_lines(text):
    return len([ln for ln in text.splitlines() if ln.strip()])


class TestSyntheticPredicates:
    def test_reduces_to_single_needed_line(self):
        source = "\n".join(f"line{i}" for i in range(64)) + "\nNEEDLE\n"
        stats = ReduceStats()
        result = reduce_source(source, lambda s: "NEEDLE" in s, stats=stats)
        assert result == "NEEDLE\n"
        assert stats.lines_before == 65
        assert stats.lines_after == 1

    def test_keeps_interdependent_pair(self):
        source = "a\nb\nc\nd\ne\n"
        pred = lambda s: "b" in s and "d" in s
        result = reduce_source(source, pred)
        assert sorted(result.split()) == ["b", "d"]

    def test_rejects_non_reproducer(self):
        with pytest.raises(ValueError):
            reduce_source("a\nb\n", lambda s: False)

    def test_respects_test_budget(self):
        calls = []

        def pred(s):
            calls.append(s)
            return "x0" in s

        source = "\n".join(f"x{i}" for i in range(40)) + "\n"
        reduce_source(source, pred, max_tests=10)
        assert len(calls) <= 12  # initial check + budgeted tests


class TestRealMiscompile:
    @pytest.mark.fuzz
    def test_rebroken_addrfold_shrinks_to_small_reproducer(self):
        # The acceptance-criterion scenario: an intentionally re-broken
        # addrfold must reduce to a handful of lines that still
        # reproduce the mismatch.
        source = """
int pad1(int *p) { return p[0]; }
int main(void) {
    int stk[3][3];
    int *a; int *b;
    int i, j, x, y, acc;
    a = (int *)GC_malloc(16 * sizeof(int));
    for (i = 0; i < 16; i++) a[i] = (i * 7 + 3) & 0xFF;
    for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) stk[i][j] = i + j;
    acc = 0;
    acc = (acc + a[5]) & 0xFFFF;
    b = (int *)GC_malloc(8 * sizeof(int));
    for (j = 0; j < 8; j++) b[j] = j * 3;
    acc = (acc + stk[2][1] + b[4]) & 0xFFFF;
    x = a[7];
    y = x + (x - 1000);
    acc = (acc + y) & 0xFFFF;
    acc = (acc + pad1(a)) & 0xFFFF;
    printf("%d\\n", acc);
    return acc & 0xFF;
}
"""
        with rebroken_addrfold():
            report = check_program(source, models=("ss10",))
            assert not report.ok, "hook failed to re-break the compiler"
            stats = ReduceStats()
            pred = mismatch_predicate(report.mismatches[0].signature())
            reduced = reduce_source(source, pred, stats=stats)
            assert pred(reduced)
        assert count_lines(reduced) <= 15, reduced
        # The alias site must survive reduction — it is the bug.
        assert "(x - 1000)" in reduced
        # And the fixed compiler must be clean on the reproducer.
        assert check_program(reduced, models=("ss10",)).ok
