"""Generator invariants: determinism, variety, and defined behavior."""

import pytest

from repro.fuzz import GenOptions, generate_program
from repro.fuzz.oracle import compile_and_run


class TestDeterminism:
    def test_same_seed_same_program(self):
        assert generate_program(42) == generate_program(42)

    def test_different_seeds_differ(self):
        programs = {generate_program(s) for s in range(10)}
        assert len(programs) == 10

    def test_options_respected(self):
        opts = GenOptions(min_statements=3, max_statements=3)
        src = generate_program(7, opts)
        assert src == generate_program(7, GenOptions(min_statements=3,
                                                     max_statements=3))


class TestStructure:
    def test_one_statement_per_line(self):
        # The reducer works at line granularity; compound statements
        # must therefore be single lines (balanced braces per line
        # outside the function scaffolding).
        src = generate_program(3)
        for line in src.splitlines():
            stripped = line.strip()
            if stripped.startswith("{"):
                assert stripped.count("{") == stripped.count("}"), line

    def test_disguise_shapes_appear(self):
        corpus = "\n".join(generate_program(s) for s in range(30))
        assert "(x + (x - " in corpus        # PR 1 alias shape
        assert "a[x - " in corpus            # paper's p[i - C] shape
        assert "GC_malloc(" in corpus
        assert "(char *)" in corpus

    def test_struct_and_helpers_appear(self):
        corpus = "\n".join(generate_program(s) for s in range(30))
        assert "struct S" in corpus
        assert "int hf0(" in corpus


class TestDefinedBehavior:
    @pytest.mark.parametrize("seed", range(8))
    def test_reference_build_runs_clean(self, seed):
        out = compile_and_run(generate_program(seed), "g")
        assert out.status == "ok", out.describe()

    @pytest.mark.parametrize("seed", range(4))
    def test_checked_build_passes_source_safety(self, seed):
        # g_checked turns every pointer expression into a runtime
        # GC_same_obj check; a generator emitting out-of-object source
        # arithmetic would die here.
        out = compile_and_run(generate_program(seed), "g_checked")
        assert out.status == "ok", out.describe()
