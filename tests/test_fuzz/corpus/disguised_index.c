/* The paper's motivating shape: a[x - C] reassociates into a pointer
 * below the object (a - C) that exists in a register while no
 * recognizable pointer does.  Every config must agree, and the safe
 * configs must survive a collection between the adjustment and use. */
int main(void) {
    int *a = (int *)GC_malloc(32 * sizeof(int));
    int i, x, acc = 0;
    for (i = 0; i < 32; i++) a[i] = (i * 7 + 3) & 0xFF;
    x = 29;
    acc = (acc + a[x - 17]) & 0xFFFF;
    x = 17;
    acc = (acc + a[x - 17]) & 0xFFFF;
    printf("%d\n", acc);
    return acc & 0xFF;
}
