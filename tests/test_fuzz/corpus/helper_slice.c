/* Interior-pointer function arguments: a helper receives a + 6 (an
 * interior pointer is the only reference crossing the call) and itself
 * performs disguise-prone p[n - c] arithmetic. */
int hf0(int *p, int n) {
    int j, s = 0;
    for (j = 0; j < n; j++) s = (s + p[j] * 3) & 0xFFFF;
    if (n > 4) s = (s + p[n - 4]) & 0xFFFF;
    return s;
}
int main(void) {
    int *a = (int *)GC_malloc(20 * sizeof(int));
    int i, acc = 0;
    for (i = 0; i < 20; i++) a[i] = (i * 9 + 2) & 0xFF;
    acc = (acc + hf0(a + 6, 14)) & 0xFFFF;
    GC_malloc(80);
    acc = (acc + hf0(a, 20)) & 0xFFFF;
    printf("%d\n", acc);
    return acc & 0xFF;
}
