/* PR 1 regression: addrfold's in-place reassociation must not clobber
 * the base register when the index operand aliases it.  Pre-fix, -O
 * compiled x + (x - 1000) to 2*(x - 1000) instead of 2*x - 1000. */
int main(void) {
    int *a = (int *)GC_malloc(4 * sizeof(int));
    int x, y;
    a[0] = 4242;
    x = a[0];
    y = x + (x - 1000);
    printf("%d\n", y);
    return y & 0xFF;
}
