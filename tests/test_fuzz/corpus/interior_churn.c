/* Interior pointers + allocation churn: with gc_interval=1 and heap
 * poisoning, a premature reclaim of the array while only the interior
 * pointer p survives would corrupt the checksum. */
int main(void) {
    int *a = (int *)GC_malloc(24 * sizeof(int));
    char *cp;
    int i, j, acc = 0;
    for (i = 0; i < 24; i++) a[i] = (i * 5 + 11) & 0xFF;
    cp = (char *)a;
    { int *p = a + 9; acc = (acc + p[-4] + p[10]) & 0xFFFF; }
    GC_malloc(64);
    GC_malloc(96);
    { int *p = a; for (j = 0; j < 13; j++) p++; acc = (acc + *p) & 0xFFFF; }
    acc = (acc + cp[21]) & 0xFFFF;
    printf("%d\n", acc);
    return acc & 0xFF;
}
