/* Linked structs on the collected heap: only the head is a root; the
 * chain must survive adversarial collections while dropped garbage
 * (the re-assigned b) is reclaimed and poisoned. */
struct S { int val; int pad[3]; struct S *next; };
int main(void) {
    struct S *head; struct S *tail;
    int *b;
    int j, acc = 0;
    head = (struct S *)GC_malloc(sizeof(struct S));
    head->val = 7; tail = head;
    tail->next = (struct S *)GC_malloc(sizeof(struct S));
    tail = tail->next; tail->val = 40;
    tail->next = (struct S *)GC_malloc(sizeof(struct S));
    tail = tail->next; tail->val = 3; tail->next = 0;
    head->pad[1] = 19; head->next->pad[2] = 23;
    b = (int *)GC_malloc(16 * sizeof(int));
    for (j = 0; j < 16; j++) b[j] = j;
    b = (int *)GC_malloc(8 * sizeof(int));
    for (j = 0; j < 8; j++) b[j] = j * 3;
    { struct S *s = head; while (s) { acc = (acc + s->val) & 0xFFFF; s = s->next; } }
    acc = (acc + head->pad[1] + head->next->pad[2] + b[5]) & 0xFFFF;
    printf("%d\n", acc);
    return acc & 0xFF;
}
