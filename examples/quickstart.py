#!/usr/bin/env python3
"""Quickstart: annotate C source for GC-safety and for pointer checking.

This is the paper's preprocessor behind the toolchain facade:

    tc = Toolchain()
    result = tc.annotate(c_source)                   # KEEP_LIVE
    result = tc.annotate(c_source, Mode.CHECKED)     # GC_same_obj
    diags  = tc.check(c_source)                      # source safety

Run:  python examples/quickstart.py
"""

from repro.api import Mode, Toolchain

SOURCE = """\
struct node { int value; struct node *next; };

/* The canonical string-copying loop from the paper. */
char *copy_string(char *s, char *t)
{
    char *p, *q;
    p = s; q = t;
    while (*p++ = *q++) ;
    return s;
}

/* The paper's opening example: a final use of p[i-1000]. */
char final_use(char *p, int i)
{
    return p[i - 1000];
}

int sum(struct node *head)
{
    int total = 0;
    struct node *n;
    for (n = head; n != 0; n = n->next)
        total += n->value;
    return total;
}
"""

BAD_SOURCE = """\
char *disguise(int cookie) {
    return (char *) cookie;               /* int -> pointer */
}
void hide(char **box, char *p) {
    scanf("%p", box);                      /* pointer input */
}
"""


def main() -> None:
    tc = Toolchain()
    print("=" * 72)
    print("GC-safety mode: every pointer expression that is stored,")
    print("dereferenced, passed or returned becomes KEEP_LIVE(e, BASE(e)).")
    print("=" * 72)
    safe = tc.annotate(SOURCE)
    print(safe.text)
    print(f"--> {safe.stats.keep_lives} KEEP_LIVE calls inserted, "
          f"{safe.stats.suppressed_copies} suppressed as plain copies, "
          f"{safe.stats.heuristic_replacements} bases replaced by "
          f"slowly-varying equivalents")

    print()
    print("=" * 72)
    print("Checking (debugging) mode: the same insertion points get real")
    print("GC_same_obj / GC_post_incr calls that verify the arithmetic.")
    print("=" * 72)
    checked = tc.annotate(SOURCE, Mode.CHECKED)
    print(checked.text)

    print()
    print("=" * 72)
    print("Source-safety diagnostics (paper's 'Source Checking'):")
    print("=" * 72)
    for diag in tc.check(BAD_SOURCE):
        print("  " + diag.render(BAD_SOURCE))


if __name__ == "__main__":
    main()
