#!/usr/bin/env python3
"""Run a whole C program — the cord string package — through the full
pipeline under every configuration of the paper's build matrix, and
print the measured slowdowns (one row of tables T1/T2/T3).

Run:  python examples/cord_strings.py [ss2|ss10|p90]
"""

import sys

from repro.machine import CompileConfig, VM, compile_source
from repro.machine.models import MODELS
from repro.postproc import postprocess
from repro.workloads import load_workload


def main() -> None:
    model_key = sys.argv[1] if len(sys.argv) > 1 else "ss10"
    model = MODELS[model_key]
    source = load_workload("cordtest")

    results = {}
    for name in ("O", "O_safe", "g", "g_checked"):
        config = CompileConfig.named(name, model)
        compiled = compile_source(source, config)
        vm = VM(compiled.asm, model)
        run = vm.run()
        results[name] = (run, compiled.asm.code_size())

    # And the postprocessed safe build (table T5's row).
    config = CompileConfig.named("O_safe", model)
    compiled = compile_source(source, config)
    stats = postprocess(compiled.asm)
    vm = VM(compiled.asm, model)
    results["O_safe+pp"] = (vm.run(), compiled.asm.code_size())

    base_run, base_size = results["O"]
    print(f"cordtest on the {model.name} model "
          f"({base_run.instructions} baseline instructions)")
    print(f"{'config':12s} {'cycles':>10s} {'slowdown':>9s} "
          f"{'code':>6s} {'growth':>7s}  output")
    for name, (run, size) in results.items():
        slow = 100.0 * (run.cycles - base_run.cycles) / base_run.cycles
        grow = 100.0 * (size - base_size) / base_size
        print(f"{name:12s} {run.cycles:10d} {slow:8.1f}% "
              f"{size:6d} {grow:6.1f}%  {run.output.strip()}")
        assert run.exit_code == base_run.exit_code, "configs disagree!"
    print(f"peephole transformations applied: {stats}")


if __name__ == "__main__":
    main()
