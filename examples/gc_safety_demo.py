#!/usr/bin/env python3
"""The paper's headline failure, reproduced end to end.

"a conventional C compiler may replace a final reference p[i-1000] to
the heap character pointer p by the sequence p = p - 1000; ... p[i]...
If a garbage collection is triggered between the replacement of p, and
the reference to p[i], there may be no recognizable pointer to the
object referenced by p.  Thus such code is not GC-safe."

We compile the same program three ways and run each with a collection
forced before every instruction (the asynchronous-collector threat
model) and with reclaimed objects poisoned:

* -O           : the optimizer disguises the pointer; the object is
                 collected mid-expression and the read is corrupted.
* -O safe      : KEEP_LIVE keeps the base live; correct.
* -g           : fully debuggable code is GC-safe; correct.

Run:  python examples/gc_safety_demo.py
"""

from repro.api import Toolchain

SOURCE = """\
int helper(int x) { return x + 1; }

char read_it(char *p, int i)
{
    helper(12345);          /* recycles the argument registers */
    return p[i - 1000];     /* the paper's final-reference pattern */
}

int main(void)
{
    char *s;
    int i;
    s = (char *) GC_malloc(64);
    for (i = 0; i < 64; i++) s[i] = 'A' + (i % 26);
    return read_it(s, 1003);   /* s[3] == 'D' == 68 */
}
"""

EXPECTED = ord("D")


def run(config_name: str, gc_every_instruction: bool) -> int:
    # poison=True makes any use-after-collect visible in the result.
    tc = Toolchain(config=config_name, poison=True,
                   gc_interval=1 if gc_every_instruction else 0)
    return tc.run(SOURCE).exit_code


def main() -> None:
    compiled = Toolchain(config="O").compile(SOURCE)
    print("Optimized code for read_it — note the disguising rewrite")
    print("(p is overwritten by p-1000 before the load):\n")
    print(compiled.asm.functions["read_it"].render())
    print()

    rows = [
        ("-O, no collections", run("O", False)),
        ("-O, async collections", run("O", True)),
        ("-O safe (KEEP_LIVE), async collections", run("O_safe", True)),
        ("-g (debuggable), async collections", run("g", True)),
    ]
    print(f"{'configuration':45s} {'result':>8s}  verdict")
    for name, code in rows:
        verdict = "OK" if code == EXPECTED else "CORRUPTED (object was collected!)"
        print(f"{name:45s} {code:8d}  {verdict}")

    assert rows[0][1] == EXPECTED
    assert rows[1][1] != EXPECTED, "expected the unsafe build to fail"
    assert rows[2][1] == EXPECTED and rows[3][1] == EXPECTED


if __name__ == "__main__":
    main()
