#!/usr/bin/env python3
"""A tour of the conservative collector substrate used by the checker.

Shows the machinery the paper's measurements rely on: page-based
allocation with one extra byte per object, the height-2 page table
behind GC_base, interior-pointer recognition, conservative root
scanning, and the GC_same_obj check.

Run:  python examples/collector_tour.py
"""

from repro.gc import Collector, GCCheckError, round_size


def main() -> None:
    gc = Collector()

    print("-- allocation and size rounding ('at least one extra byte') --")
    for request in (1, 7, 8, 24, 100):
        print(f"  request {request:4d} bytes -> stored as {round_size(request)} bytes")

    print("\n-- GC_base maps any interior address to its object --")
    obj = gc.malloc(100)
    for probe in (obj, obj + 1, obj + 50, obj + 99):
        print(f"  GC_base(0x{probe:08x}) = 0x{gc.base(probe):08x}")
    print(f"  GC_base of one-past-last-usable: "
          f"{gc.base(obj + round_size(100)) and hex(gc.base(obj + round_size(100)))}")

    print("\n-- conservative roots: any register-looking value keeps objects --")
    roots: list[int] = []
    gc.add_root_provider(lambda: roots)
    chain = gc.malloc(8)
    node = chain
    for _ in range(9):
        nxt = gc.malloc(8)
        gc.memory.store_word(node + 4, nxt)
        node = nxt
    roots.append(chain + 3)  # an interior pointer is enough
    before = gc.heap.objects_in_use
    gc.collect()
    print(f"  10-node chain rooted by interior pointer: "
          f"{before} -> {gc.heap.objects_in_use} objects (all survive)")
    roots.clear()
    reclaimed = gc.collect()
    print(f"  after dropping the root: {reclaimed} objects reclaimed")

    print("\n-- GC_same_obj: the checking primitive --")
    p = gc.malloc(16)
    print(f"  same_obj(p+8, p)  -> ok (returns 0x{gc.same_obj(p + 8, p):08x})")
    gc.same_obj(p + 16, p)
    print("  same_obj(p+16, p) -> ok (one past the end: the extra byte)")
    try:
        gc.same_obj(p - 1, p)
    except GCCheckError as exc:
        print(f"  same_obj(p-1, p)  -> {exc}")

    print("\n-- collector statistics --")
    print(f"  {gc.stats}")


if __name__ == "__main__":
    main()
