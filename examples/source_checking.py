#!/usr/bin/env python3
"""A gallery of pointer-hiding idioms and what the source checker says.

The paper's input-program assumptions: no integers converted to heap
pointers (with benign exceptions), and no pointers hidden from the
collector through files or raw memory copies.  The checker flags the
violations and stays quiet on the benign cases.

Run:  python examples/source_checking.py
"""

from repro.api import Toolchain

check_source = Toolchain().check

GALLERY = [
    ("int cast to pointer (disguise)", """
char *decode(int handle) {
    return (char *)handle;
}
"""),
    ("small-integer sentinel (benign)", """
char *sentinel(void) {
    return (char *)1;   /* never dereferenced */
}
"""),
    ("pointer -> int -> pointer round trip", """
char *launder(char *p) {
    int bits = (int)p;
    return (char *)bits;
}
"""),
    ("hash on pointer value (benign: stays an int)", """
int hash_ptr(void *p) {
    return ((int)p >> 3) % 1024;
}
"""),
    ("unrelated struct pointer cast", """
struct widget { char *name; int id; };
struct gadget { int id; char *name; };
struct gadget *convert(struct widget *w) {
    return (struct gadget *)w;
}
"""),
    ("common-header cast (benign idiom)", """
struct header { int tag; };
struct object { int tag; char *payload; };
struct header *as_header(struct object *o) {
    return (struct header *)o;
}
"""),
    ("scanf %%p pointer input", """
void read_pointer(char **slot) {
    scanf("%p", slot);
}
"""),
    ("memcpy into pointer-bearing struct", """
struct cell { struct cell *next; int v; };
void raw_copy(struct cell *dst, struct cell *src) {
    memcpy(dst, src, sizeof(struct cell));
}
"""),
    ("memcpy of plain bytes (benign)", """
void copy_text(char *dst, char *src, int n) {
    memcpy(dst, src, n);
}
"""),
]


def main() -> None:
    for title, source in GALLERY:
        diags = check_source(source)
        verdict = "clean" if not diags else "; ".join(
            d.render(source) for d in diags)
        marker = "  " if not diags else "!!"
        print(f"{marker} {title:45s} -> {verdict}")


if __name__ == "__main__":
    main()
