#!/usr/bin/env python3
"""The gawk anecdote: the pointer-arithmetic checker catches a real bug.

"With checking enabled, it immediately and correctly detected a pointer
arithmetic error which was also an array access error."  The bug family
is the one-before-the-beginning array idiom — "to represent an array as
a pointer to one element before the beginning of the array's memory.
This fails in a garbage collected system."

Our miniawk workload carries that bug behind -DGAWK_BUG.  Compiled
normally it *appears* to work (the classic reason such bugs survive);
compiled in checking mode, GC_same_obj flags the arithmetic at its
source the moment it executes.

Run:  python examples/checker_demo.py
"""

from repro.gc import Collector, GCCheckError
from repro.machine import CompileConfig, VM, compile_source
from repro.workloads import WORKLOADS, load_workload


def run(source: str, config_name: str) -> str:
    config = CompileConfig.named(config_name)
    compiled = compile_source(source, config)
    vm = VM(compiled.asm, config.model)
    vm.stdin = WORKLOADS["miniawk"].stdin
    try:
        result = vm.run()
        return f"exit={result.exit_code}: {result.output.splitlines()[0]}"
    except GCCheckError as exc:
        return f"CHECKER: {exc}"


def main() -> None:
    clean = load_workload("miniawk")
    buggy = load_workload("miniawk", defines={"GAWK_BUG": "1"})

    print("clean miniawk, -O          :", run(clean, "O"))
    print("clean miniawk, -g checked  :", run(clean, "g_checked"))
    print()
    print("buggy miniawk, -O          :", run(buggy, "O"),
          "   <- bug goes unnoticed, like gawk under malloc")
    print("buggy miniawk, -g checked  :")
    print("   ", run(buggy, "g_checked"))
    print()
    print("The checker pinpoints the out-of-object arithmetic immediately,")
    print("exactly as the paper reports for gawk 2.11.")


if __name__ == "__main__":
    main()
