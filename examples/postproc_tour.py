#!/usr/bin/env python3
"""The peephole postprocessor at work, instruction by instruction.

Compiles a hot loop three ways and prints the assembly so the paper's
story is visible in the code itself:

* -O:       the add folds into the load's addressing mode;
* -O safe:  KEEP_LIVE pins the address in a register — the fold is
            blocked, an extra add runs every iteration;
* -O safe + postprocessor: pattern (1) re-fuses the add into the load,
  with the KEEP_LIVE bases respected.

Run:  python examples/postproc_tour.py
"""

from repro.machine import CompileConfig, VM, compile_source
from repro.postproc import postprocess

SOURCE = """\
int sum(int *a, int n)
{
    int i, t = 0;
    for (i = 0; i < n; i++)
        t += a[i];
    return t;
}

int main(void)
{
    int *a = (int *) GC_malloc(64 * sizeof(int));
    int i;
    for (i = 0; i < 64; i++) a[i] = i;
    return sum(a, 64) & 0xFF;
}
"""


def show(title, compiled, result):
    print("=" * 64)
    print(f"{title}   [{result.cycles} cycles, "
          f"{compiled.asm.code_size()} instructions static]")
    print("=" * 64)
    print(compiled.asm.functions["sum"].render())
    print()


def main() -> None:
    base_cfg = CompileConfig.named("O")
    base = compile_source(SOURCE, base_cfg)
    r_base = VM(base.asm).run()
    show("-O (unsafe baseline)", base, r_base)

    safe_cfg = CompileConfig.named("O_safe")
    safe = compile_source(SOURCE, safe_cfg)
    r_safe = VM(safe.asm).run()
    show("-O safe (KEEP_LIVE barriers)", safe, r_safe)

    pp = compile_source(SOURCE, safe_cfg)
    stats = postprocess(pp.asm)
    r_pp = VM(pp.asm).run()
    show("-O safe + postprocessor", pp, r_pp)

    assert r_base.exit_code == r_safe.exit_code == r_pp.exit_code
    b = r_base.cycles
    print(f"overhead: safe +{100*(r_safe.cycles-b)/b:.1f}%  ->  "
          f"postprocessed +{100*(r_pp.cycles-b)/b:.1f}%")
    print(f"transformations: {stats}")


if __name__ == "__main__":
    main()
