#!/usr/bin/env python3
"""The paper's Extensions section, demonstrated.

"It is possible to extend this approach to a collector which considers
interior pointers as valid only if they originate from the stack or
registers ...  This requires asserting that the client program stores
only pointers to the base of an object in the heap or in statically
allocated variables.  It would again be possible to insert dynamic
checks to verify this."

Three runs of a program that stores an *interior* pointer into the heap:

1. default collector           -> works (interior pointers recognized);
2. base-only collector         -> the buffer is collected: corruption;
3. base-only + dynamic checks  -> GC_check_base diagnoses the store.

Run:  python examples/extensions_demo.py
"""

from repro.core import AnnotateOptions
from repro.gc import Collector, GCCheckError
from repro.machine import CompileConfig, VM, compile_source

SOURCE = """\
struct node { char *text; };
int main(void) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    char *buf = (char *)GC_malloc(32);
    int i;
    for (i = 0; i < 31; i++) buf[i] = 'a' + (i % 26);
    buf[31] = 0;
    n->text = buf + 5;      /* INTERIOR pointer stored into the heap */
    buf = 0;
    for (i = 0; i < 3000; i++) GC_malloc(64);   /* trigger collections */
    return n->text[0];      /* expect 'f' */
}
"""


def run(interior_from_roots_only, check_base_stores):
    config = CompileConfig.named("g_checked" if check_base_stores else "g")
    if check_base_stores:
        config.annotate_options = AnnotateOptions(mode="checked",
                                                  check_base_stores=True)
    compiled = compile_source(SOURCE, config)
    gc = Collector(interior_from_roots_only=interior_from_roots_only)
    gc.heap.poison_byte = 0xDD
    vm = VM(compiled.asm, config.model, collector=gc)
    try:
        result = vm.run()
        ok = result.exit_code == ord("f")
        return f"returned {result.exit_code} ({'correct' if ok else 'CORRUPTED'})"
    except GCCheckError as exc:
        return f"DIAGNOSED: {exc}"


def main() -> None:
    print("program stores buf+5 (an interior pointer) into a heap object\n")
    print(f"{'default collector:':42s}",
          run(interior_from_roots_only=False, check_base_stores=False))
    print(f"{'base-only collector (Extensions mode):':42s}",
          run(interior_from_roots_only=True, check_base_stores=False))
    print(f"{'base-only + GC_check_base annotation:':42s}",
          run(interior_from_roots_only=True, check_base_stores=True))


if __name__ == "__main__":
    main()
