"""Command-line interface — the paper's tools as commands.

    python -m repro annotate [--mode safe|checked] file.c
        The preprocessor: print the annotated source.

    python -m repro check file.c
        Source-safety diagnostics only.

    python -m repro cc [--config O0|O|O_safe|g|g_checked] [--model ss2|ss10|p90]
                       [--postproc] [--sink] [--pgo FILE] [--gc-interval N]
                       [--stdin FILE] [--dump-asm] file.c
        Compile and execute on the simulated machine; print the program
        output and a run summary.  ``--sink`` runs the escape-analysis
        allocation-sinking pass; ``--pgo`` fuses hot blocks from a
        repro-vmprof-pgo/1 profile into superinstructions.

    python -m repro bench [--model ss10] [--workloads w1,w2,...]
                          [--workers N] [--cache-dir DIR]
                          [--pgo FILE] [--sink]
        Print the slowdown table for one machine model; ``--workers``
        shards the cells across processes (byte-identical table).
        ``--pgo`` replays a persisted profile deterministically
        (observable counts stay bit-identical to the unfused run).

    python -m repro cache stats|clear|verify [--cache-dir DIR]
        Inspect / wipe / checksum-verify the content-addressed caches.

    python -m repro chaos [--seed N] [--faults SPEC] [--workers N]
        Run the bench/fuzz matrix under a deterministic fault plan and
        assert the reports are byte-identical to the fault-free run.

    python -m repro serve [start|load|call ...]
        The multi-tenant toolchain daemon (and its deterministic load
        generator) — every job answers with the same envelope bytes
        the commands above print under ``--json``; see docs/SERVE.md.

The commands are thin shells over :class:`repro.api.Toolchain` — one
options bag, one facade; anything a command does is equally scriptable.
Report-emitting subcommands share one flag trio (``--json`` /
``--metrics-out`` / ``--workers``, :mod:`repro.cliutil`) and
machine-readable outputs carry a ``{"schema": "repro-<name>/<v>"}``
envelope from the registry of record, :mod:`repro.api.envelopes`
(rendered in docs/ARCHITECTURE.md); the JSON bytes are built by
:mod:`repro.api.build`, the same builders the serve daemon answers
with.

Every subcommand also accepts the telemetry flags ``--trace FILE``
(write a JSONL trace of compile-pipeline spans, GC pauses, and VM runs;
load in ``python -m repro.obs report`` or convert for chrome://tracing),
``--profile`` (print the VM hot-spot table to stderr on exit), and
``--metrics-out FILE`` (write a ``repro-obs-metrics/1`` snapshot of the
run's counters/gauges/latency histograms — watch live with
``python -m repro.obs top FILE``); ``cc`` and ``bench`` accept
``--cache-dir DIR`` to memoize compiles and executed benchmark cells
across invocations.
"""

from __future__ import annotations

import argparse
import sys

from .api import Toolchain
from .api.build import (
    annotate_envelope, bench_envelope, check_envelope, dumps_canonical,
    run_envelope,
)
from .cfront.errors import CFrontError
from .core.annotate import AnnotateOptions
from .exec import cache as exec_cache
from .exec.cli import add_cache_parser, resolve_cache_dir
from .gc.collector import GCCheckError
from .machine.models import MODELS
from .machine.vm import VMError
from .obs import runtime as obs_runtime
from .cliutil import add_cache_flags, add_obs_flags, add_report_flags
from .postproc import postprocess
from .resil.cli import add_chaos_parser
from .serve.cli import add_serve_parser


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as fh:
        return fh.read()


def cmd_annotate(args: argparse.Namespace) -> int:
    source = _read(args.file)
    options = AnnotateOptions(
        mode=args.mode,
        suppress_copies=not args.no_copy_suppression,
        expand_incdec=not args.no_incdec,
        base_heuristic=not args.no_heuristic,
        call_safe_points=args.call_safe_points,
    )
    tc = Toolchain(mode=args.mode, run_cpp=not args.no_cpp, annotate=options)
    result = tc.annotate(source)
    if args.json:
        print(dumps_canonical(annotate_envelope(source, args.mode, result)))
        return 0
    if args.warnings:
        for diag in result.diagnostics:
            print(diag.render(source), file=sys.stderr)
    print(result.text, end="" if result.text.endswith("\n") else "\n")
    if args.stats:
        print(f"! {result.stats}", file=sys.stderr)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    source = _read(args.file)
    diags = Toolchain(run_cpp=not args.no_cpp).check(source)
    if args.json:
        print(dumps_canonical(check_envelope(source, diags)))
        return 1 if diags else 0
    for diag in diags:
        print(diag.render(source))
    return 1 if diags else 0


def cmd_cc(args: argparse.Namespace) -> int:
    source = _read(args.file)
    tc = Toolchain(config=args.config, model=args.model,
                   gc_interval=args.gc_interval, poison=args.poison,
                   pgo=args.pgo)
    compiled = tc.compile(source)
    if args.postproc:
        stats = postprocess(compiled.asm)
        print(f"! postprocessor: {stats}", file=sys.stderr)
    if args.sink:
        # Applied here (not via Options.sink) so the stats reach stderr
        # and --dump-asm shows the rewritten code.
        from .postproc import sink_program
        sstats = sink_program(compiled.asm)
        print(f"! sink: {sstats}", file=sys.stderr)
    if args.dump_asm:
        print(compiled.asm.render())
        return 0
    try:
        result = tc.execute(compiled,
                            stdin=_read(args.stdin) if args.stdin else "")
    except GCCheckError as exc:
        print(f"! pointer check failed: {exc}", file=sys.stderr)
        return 3
    if args.json:
        print(dumps_canonical(run_envelope(
            result, compiled.asm.code_size(), args.config, args.model)))
        return result.exit_code & 0xFF
    sys.stdout.write(result.output)
    print(f"! exit={result.exit_code} instructions={result.instructions} "
          f"cycles={result.cycles} collections={result.collections} "
          f"code_size={compiled.asm.code_size()}", file=sys.stderr)
    return result.exit_code & 0xFF


def cmd_bench(args: argparse.Namespace) -> int:
    tc = Toolchain(model=args.model, workers=args.workers,
                   pgo=args.pgo, sink=args.sink)
    workloads = tuple(args.workloads.split(",")) if args.workloads else None
    rows = tc.bench(workloads)
    envelope = bench_envelope(rows, args.model)
    if args.json:
        print(dumps_canonical(envelope))
        return 0
    print(envelope["table"])
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simple Garbage-Collector-Safety (Boehm, PLDI 1996) tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("annotate", help="annotate C source (the preprocessor)")
    p.add_argument("file")
    p.add_argument("--mode", choices=("safe", "checked"), default="safe")
    p.add_argument("--no-cpp", action="store_true")
    p.add_argument("--no-copy-suppression", action="store_true")
    p.add_argument("--no-incdec", action="store_true")
    p.add_argument("--no-heuristic", action="store_true")
    p.add_argument("--call-safe-points", action="store_true")
    p.add_argument("--warnings", action="store_true")
    p.add_argument("--stats", action="store_true")
    add_report_flags(p, json_schema="repro-annotate/1")
    add_obs_flags(p)
    p.set_defaults(fn=cmd_annotate)

    p = sub.add_parser("check", help="source-safety diagnostics")
    p.add_argument("file")
    p.add_argument("--no-cpp", action="store_true")
    add_report_flags(p, json_schema="repro-check/1")
    add_obs_flags(p)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("cc", help="compile and run on the simulated machine")
    p.add_argument("file")
    p.add_argument("--config", choices=("O0", "O", "O_safe", "g", "g_checked"),
                   default="O")
    p.add_argument("--model", choices=tuple(MODELS), default="ss10")
    p.add_argument("--postproc", action="store_true")
    p.add_argument("--sink", action="store_true",
                   help="run the escape-analysis allocation-sinking pass")
    p.add_argument("--pgo", default=None, metavar="FILE",
                   help="fuse hot blocks from a repro-vmprof-pgo/1 profile")
    p.add_argument("--gc-interval", type=int, default=0)
    p.add_argument("--poison", action="store_true")
    p.add_argument("--stdin")
    p.add_argument("--dump-asm", action="store_true")
    add_report_flags(p, json_schema="repro-run/1")
    add_obs_flags(p)
    add_cache_flags(p)
    p.set_defaults(fn=cmd_cc)

    p = sub.add_parser("bench", help="print one slowdown table")
    p.add_argument("--model", choices=tuple(MODELS), default="ss10")
    p.add_argument("--workloads", default="")
    p.add_argument("--sink", action="store_true",
                   help="run the escape-analysis allocation-sinking pass "
                        "on every cell")
    p.add_argument("--pgo", default=None, metavar="FILE",
                   help="replay a repro-vmprof-pgo/1 profile: fuse its "
                        "hot blocks into superinstructions")
    add_report_flags(p, json_schema="repro-bench/1")
    add_obs_flags(p)
    add_cache_flags(p)
    p.set_defaults(fn=cmd_bench)

    add_cache_parser(sub)
    add_chaos_parser(sub)
    add_serve_parser(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_file = getattr(args, "trace", None)
    profile_on = getattr(args, "profile", False)
    # chaos resets the obs runtime internally (two-phase run), so it
    # wires --metrics-out itself in cmd_chaos.
    metrics_out = (getattr(args, "metrics_out", None)
                   if args.command not in ("chaos", "serve") else None)
    # cache manages tiers explicitly; chaos and serve own their roots
    cache_dir = (resolve_cache_dir(getattr(args, "cache_dir", None))
                 if args.command not in ("cache", "chaos", "serve")
                 else None)
    caches = ()
    if cache_dir:
        caches = exec_cache.open_caches(cache_dir)
        for cache in caches:
            exec_cache.install_cache(cache)
    if trace_file:
        obs_runtime.enable_tracing()
    if profile_on:
        obs_runtime.enable_profiling()
    if metrics_out:
        obs_runtime.enable_metrics(out=metrics_out)
    try:
        return args.fn(args)
    except (CFrontError, VMError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if trace_file:
            obs_runtime.get_tracer().write_jsonl(trace_file)
            print(f"! trace written to {trace_file}", file=sys.stderr)
        profile = obs_runtime.session_profile()
        if profile_on and profile is not None and profile.funcs:
            print(profile.render_report(), file=sys.stderr)
        if metrics_out:
            metrics = obs_runtime.get_metrics()
            if metrics is not None:
                metrics.flush()
                print(f"! metrics written to {metrics_out}", file=sys.stderr)
            obs_runtime.disable_metrics()
        if trace_file or profile_on:
            obs_runtime.reset()
        for cache in caches:
            s = cache.stats
            print(f"! cache[{cache.kind}]: {s.hits} hits, {s.misses} misses, "
                  f"{s.stores} stores, {s.corrupt_evicted} evicted",
                  file=sys.stderr)
        if caches:
            exec_cache.uninstall_cache()


if __name__ == "__main__":
    sys.exit(main())
