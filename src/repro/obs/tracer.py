"""Structured tracing: the core event model of the telemetry layer.

A :class:`Tracer` records three event kinds —

* **span** — a named, nested duration (``with tracer.span("compile.parse")``),
* **counter** — a named sample of a numeric series at a point in time,
* **instant** — a named point event with attributes,

into an in-memory list that serializes to JSON-Lines (one event per
line, schema below) or to the Chrome trace-event format understood by
``chrome://tracing`` / Perfetto.

Design constraints (the layer is wired through every hot subsystem):

* **Zero dependencies** — stdlib only; importable from the GC, the VM,
  and the C frontend without creating an import cycle.
* **No-op fast path** — a disabled tracer must cost almost nothing.
  ``span()`` on a disabled tracer returns a pre-allocated null context
  manager (no event object, no clock read, no allocation); ``counter``
  and ``instant`` return after one attribute test.  Code with per-call
  work beyond that (e.g. the GC's phase timing) must guard on
  ``tracer.enabled`` and keep its original path when False.
* **Observation only** — events carry wall-clock nanoseconds and never
  feed back into simulated cycle/instruction accounting, so telemetry
  can never perturb benchmark numbers (a test asserts this).

JSONL schema (``repro-obs-trace/1``) — first line is a meta header::

    {"kind": "meta", "schema": "repro-obs-trace/1", "unit": "ns"}
    {"kind": "span", "name": ..., "id": N, "parent": N|0, "depth": D,
     "t0": ns, "dur": ns, "args": {...}}
    {"kind": "counter", "name": ..., "t0": ns, "value": number, "args": {...}}
    {"kind": "instant", "name": ..., "t0": ns, "args": {...}}

``t0`` is nanoseconds since the tracer's epoch (its construction).
Span ids are 1-based in emission order of the span *start*; ``parent``
is 0 for root spans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, TextIO

from . import clock as _clock_mod
from ..api import envelopes

SCHEMA = envelopes.OBS_TRACE


@dataclass
class TraceEvent:
    kind: str  # "span" | "counter" | "instant"
    name: str
    t0: int  # ns since tracer epoch
    dur: int = 0  # ns; spans only
    id: int = 0  # spans only, 1-based
    parent: int = 0  # enclosing span id, 0 = root
    depth: int = 0  # nesting depth, 0 = root
    value: float | int | None = None  # counters only
    args: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        d: dict[str, Any] = {"kind": self.kind, "name": self.name, "t0": self.t0}
        if self.kind == "span":
            d.update(id=self.id, parent=self.parent, depth=self.depth,
                     dur=self.dur)
        if self.value is not None:
            d["value"] = self.value
        if self.args:
            d["args"] = self.args
        return d


class _NullSpan:
    """Reusable do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A live span: context manager that finalizes duration on exit."""

    __slots__ = ("_tracer", "event")

    def __init__(self, tracer: "Tracer", event: TraceEvent):
        self._tracer = tracer
        self.event = event

    def set(self, **attrs) -> None:
        """Attach attributes to the span (merged into ``args``)."""
        self.event.args.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._end_span(self)
        return False


class Tracer:
    """Records structured events; see the module docstring for schema."""

    def __init__(self, enabled: bool = True,
                 clock: Callable[[], int] | None = None):
        self.enabled = enabled
        # Default to the process-wide injectable ns clock (obs.clock) so
        # tracer timestamps and metric histograms share one source.
        self._clock = clock if clock is not None else _clock_mod.get_clock()
        self._epoch = self._clock()
        self.events: list[TraceEvent] = []
        self._stack: list[TraceEvent] = []
        self._next_id = 1

    # -- clock -------------------------------------------------------------

    def now(self) -> int:
        """Nanoseconds since this tracer's epoch."""
        return self._clock() - self._epoch

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **args) -> Span | _NullSpan:
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        event = TraceEvent(
            "span", name, self.now(), id=self._next_id,
            parent=parent.id if parent is not None else 0,
            depth=len(self._stack), args=args)
        self._next_id += 1
        self._stack.append(event)
        return Span(self, event)

    def _end_span(self, span: Span) -> None:
        event = span.event
        event.dur = self.now() - event.t0
        # Unwind to this span (tolerates a missed inner __exit__ during
        # exception propagation: inner spans are finalized with the
        # duration they had accumulated).
        while self._stack:
            top = self._stack.pop()
            if top is event:
                break
        self.events.append(event)

    def counter(self, name: str, value: float | int, **args) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent("counter", name, self.now(),
                                      value=value, args=args))

    def instant(self, name: str, **args) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent("instant", name, self.now(), args=args))

    def absorb(self, events: Iterable[dict[str, Any]],
               shard: int | None = None) -> None:
        """Merge a foreign event stream (e.g. an engine worker's) into
        this tracer as shard-tagged events.

        Span ids are re-based past this tracer's counter so the merged
        stream keeps unique ids and intact parent links; ``t0`` values
        stay relative to the *worker's* epoch (shard timelines overlap
        by construction — the ``shard`` arg disambiguates).
        """
        if not self.enabled:
            return
        offset = self._next_id
        max_id = 0
        for d in events:
            eid = int(d.get("id", 0))
            max_id = max(max_id, eid)
            args = dict(d.get("args", {}))
            if shard is not None:
                args["shard"] = shard
            parent = int(d.get("parent", 0))
            self.events.append(TraceEvent(
                d.get("kind", "instant"), d.get("name", ""),
                int(d.get("t0", 0)), dur=int(d.get("dur", 0)),
                id=eid + offset if eid else 0,
                parent=parent + offset if parent else 0,
                depth=int(d.get("depth", 0)),
                value=d.get("value"), args=args))
        self._next_id += max_id

    # -- export ------------------------------------------------------------

    def sorted_events(self) -> list[TraceEvent]:
        """Events in start-time order (spans append on *end*, so the raw
        list is end-ordered; reports want begin-ordered)."""
        return sorted(self.events, key=lambda e: (e.t0, e.id))

    def write_jsonl(self, out: TextIO | str) -> None:
        if isinstance(out, str):
            with open(out, "w") as fh:
                self.write_jsonl(fh)
            return
        out.write(json.dumps({"kind": "meta", "schema": SCHEMA,
                              "unit": "ns"}) + "\n")
        for event in self.sorted_events():
            out.write(json.dumps(event.to_json()) + "\n")

    def to_chrome(self) -> dict[str, Any]:
        """Chrome trace-event JSON (``chrome://tracing`` "Load").

        Spans become complete ("X") events, counters become "C" events,
        instants become "i" events; timestamps are microseconds.
        """
        trace_events: list[dict[str, Any]] = []
        for e in self.sorted_events():
            base = {"name": e.name, "pid": 1, "tid": 1, "ts": e.t0 / 1000.0}
            if e.kind == "span":
                trace_events.append({**base, "ph": "X", "dur": e.dur / 1000.0,
                                     "args": e.args})
            elif e.kind == "counter":
                trace_events.append({**base, "ph": "C",
                                     "args": {e.name: e.value}})
            else:
                trace_events.append({**base, "ph": "i", "s": "t",
                                     "args": e.args})
        return {"traceEvents": trace_events, "displayTimeUnit": "ms",
                "otherData": {"schema": SCHEMA}}

    def write_chrome(self, out: TextIO | str) -> None:
        if isinstance(out, str):
            with open(out, "w") as fh:
                self.write_chrome(fh)
            return
        json.dump(self.to_chrome(), out)


def load_jsonl(source: TextIO | str | Iterable[str]) -> list[dict[str, Any]]:
    """Read a JSONL trace back into event dicts (meta line excluded)."""
    if isinstance(source, str):
        with open(source) as fh:
            return load_jsonl(fh)
    events = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        if d.get("kind") != "meta":
            events.append(d)
    return events
