"""Trace summarization and report rendering.

Consumes events either live (``Tracer.events``) or from a JSONL file
(``tracer.load_jsonl``) and produces:

* a JSON-ready summary dict (``summarize``) — compile-phase wall times,
  per-optimizer-pass totals (time, rewrites, IR-size delta), GC pause
  totals/timeline, VM run totals;
* a human-readable text report (``render_text``) — the compile-pipeline
  table, the GC pause report with per-collection root-scan/mark/sweep
  breakdown, and (when a profile is supplied) the VM hot-spot table.

The summary schema is ``repro-obs-summary/1``.
"""

from __future__ import annotations

from typing import Any, Iterable

from . import metrics as metrics_mod
from ..api import envelopes
from .metrics import Histogram, MetricsRegistry
from .tracer import TraceEvent
from .vmprof import VMProfile

SUMMARY_SCHEMA = envelopes.OBS_SUMMARY

# Pipeline phases in execution order (span names).
COMPILE_PHASES = (
    "cfront.cpp", "cfront.lex", "cfront.parse", "cfront.typecheck",
    "compile.annotate", "compile.lower", "compile.codegen",
)

# Histogram metrics surfaced in the percentile section, in render order.
PERCENTILE_METRICS = (
    "gc.pause_ns", "gc.root_scan_ns", "gc.mark_ns", "gc.sweep_ns",
    "vm.run_cycles", "vm.run_wall_ns",
    "exec.task_wall_ns", "exec.queue_wait_ns",
)

# Span name -> (metric name, args key or None for the span duration):
# used to synthesize percentile histograms from a plain trace when the
# run had no metrics registry active.
_SPAN_HISTOGRAMS = (
    ("gc.collect", "gc.pause_ns", "pause_ns"),
    ("gc.collect", "gc.root_scan_ns", "root_scan_ns"),
    ("gc.collect", "gc.mark_ns", "mark_ns"),
    ("gc.collect", "gc.sweep_ns", "sweep_ns"),
    ("vm.run", "vm.run_wall_ns", None),
    ("vm.run", "vm.run_cycles", "cycles"),
    ("exec.task", "exec.task_wall_ns", None),
)


def _as_dict(event: TraceEvent | dict[str, Any]) -> dict[str, Any]:
    if isinstance(event, dict):
        return event
    return event.to_json()


def summarize(events: Iterable[TraceEvent | dict[str, Any]],
              profile: VMProfile | None = None,
              top: int = 10,
              metrics: "MetricsRegistry | dict[str, Any] | None" = None,
              ) -> dict[str, Any]:
    """Aggregate a trace into the ``repro-obs-summary/1`` dict.

    ``metrics`` (a registry or its ``to_dict`` payload) adds a
    ``metrics`` section and drives the ``percentiles`` section; without
    one, percentile histograms are synthesized from the trace's
    ``gc.collect`` / ``vm.run`` / ``exec.task`` spans, so old traces
    still get a percentile section.
    """
    evs = [_as_dict(e) for e in events]
    metrics_payload: dict[str, Any] | None = None

    phases: dict[str, dict[str, int]] = {}
    opt_passes: dict[str, dict[str, int]] = {}
    compiles = 0
    compile_ns = 0
    gc_timeline: list[dict[str, Any]] = []
    gc = {"collections": 0, "pause_ns_total": 0, "pause_ns_max": 0,
          "root_scan_ns": 0, "mark_ns": 0, "sweep_ns": 0,
          "live_bytes_last": 0, "live_objects_last": 0,
          "fragmentation_last": 0.0, "reclaimed_objects": 0}
    vm = {"runs": 0, "wall_ns": 0, "cycles": 0, "instructions": 0,
          "collections": 0, "checks": 0}
    gc_stats: dict[str, Any] = {}
    # Per-tier compile/result cache counters (cache.* instants).
    cache: dict[str, dict[str, int]] = {}
    # Engine recovery counters (resil.* + cache breaker instants).
    resil = {"retries": 0, "worker_deaths": 0, "quarantined": 0,
             "dropped_messages": 0, "degraded": False,
             "breaker_trips": 0, "cache_write_errors": 0}
    resil_seen = False

    for e in evs:
        kind, name = e.get("kind"), e.get("name", "")
        args = e.get("args", {})
        if kind == "span":
            dur = e.get("dur", 0)
            if name in COMPILE_PHASES:
                cell = phases.setdefault(name, {"ns": 0, "count": 0})
                cell["ns"] += dur
                cell["count"] += 1
            elif name == "compile":
                compiles += 1
                compile_ns += dur
            elif name.startswith("opt.") and name != "opt.function":
                cell = opt_passes.setdefault(
                    name[4:], {"ns": 0, "runs": 0, "rewrites": 0,
                               "insts_delta": 0, "changed_runs": 0})
                cell["ns"] += dur
                cell["runs"] += 1
                cell["rewrites"] += args.get("rewrites", 0)
                cell["insts_delta"] += args.get("insts_delta", 0)
                cell["changed_runs"] += 1 if args.get("changed") else 0
            elif name == "gc.collect":
                pause = args.get("pause_ns", 0)
                gc["collections"] += 1
                gc["pause_ns_total"] += pause
                gc["pause_ns_max"] = max(gc["pause_ns_max"], pause)
                gc["root_scan_ns"] += args.get("root_scan_ns", 0)
                gc["mark_ns"] += args.get("mark_ns", 0)
                gc["sweep_ns"] += args.get("sweep_ns", 0)
                gc["reclaimed_objects"] += args.get("reclaimed_objects", 0)
                gc["live_bytes_last"] = args.get("live_bytes", 0)
                gc["live_objects_last"] = args.get("live_objects", 0)
                gc["fragmentation_last"] = args.get("fragmentation", 0.0)
                gc_timeline.append({
                    "t0": e.get("t0", 0), "number": args.get("number"),
                    "pause_ns": pause,
                    "root_scan_ns": args.get("root_scan_ns", 0),
                    "mark_ns": args.get("mark_ns", 0),
                    "sweep_ns": args.get("sweep_ns", 0),
                    "marked": args.get("marked", 0),
                    "reclaimed_objects": args.get("reclaimed_objects", 0),
                    "alloc_since_gc": args.get("alloc_since_gc", 0),
                    "live_bytes": args.get("live_bytes", 0),
                    "fragmentation": args.get("fragmentation", 0.0),
                })
            elif name == "vm.run":
                vm["runs"] += 1
                vm["wall_ns"] += dur
                for key in ("cycles", "instructions", "collections", "checks"):
                    vm[key] += args.get(key, 0)
        elif kind == "instant" and name == "gc.stats":
            gc_stats = dict(args)
        elif kind == "instant" and name == "obs.metrics":
            # A metrics snapshot embedded in the trace (repro obs record).
            metrics_payload = args.get("metrics") or metrics_payload
        elif kind == "instant" and name in ("cache.hit", "cache.miss",
                                            "cache.evict"):
            tier = cache.setdefault(
                args.get("kind", "compile"),
                {"hits": 0, "misses": 0, "evictions": 0})
            field = {"cache.hit": "hits", "cache.miss": "misses",
                     "cache.evict": "evictions"}[name]
            tier[field] += 1
        elif kind == "instant" and name.startswith("resil."):
            resil_seen = True
            if name == "resil.retry":
                resil["retries"] += args.get("tasks", 1)
            elif name == "resil.worker_lost":
                resil["worker_deaths"] += 1
            elif name == "resil.quarantine":
                resil["quarantined"] += 1
            elif name == "resil.dropped_messages":
                resil["dropped_messages"] += args.get("count", 1)
            elif name == "resil.degraded":
                resil["degraded"] = True
        elif kind == "instant" and name == "cache.breaker_trip":
            resil_seen = True
            resil["breaker_trips"] += 1
        elif kind == "instant" and name == "cache.write_error":
            resil_seen = True
            resil["cache_write_errors"] += 1

    avg = gc["pause_ns_total"] // gc["collections"] if gc["collections"] else 0
    gc["pause_ns_avg"] = avg

    # Percentile section: prefer real metric histograms (exact bucket
    # counts, shard-merged); fall back to histograms synthesized from
    # the trace spans.
    if metrics is not None:
        metrics_payload = (metrics.to_dict()
                           if isinstance(metrics, MetricsRegistry)
                           else dict(metrics))
    reg = MetricsRegistry()
    if metrics_payload:
        reg.merge(metrics_payload)
    else:
        for e in evs:
            if e.get("kind") != "span":
                continue
            name, args = e.get("name", ""), e.get("args", {})
            for span_name, metric_name, args_key in _SPAN_HISTOGRAMS:
                if name != span_name:
                    continue
                value = (e.get("dur", 0) if args_key is None
                         else args.get(args_key))
                if value is None:
                    continue
                bounds = (metrics_mod.COUNT_BUCKETS
                          if metric_name == "vm.run_cycles"
                          else metrics_mod.TIME_BUCKETS_NS)
                reg.histogram(metric_name, bounds=bounds).observe(value)
    percentiles: dict[str, dict[str, Any]] = {}
    for name in PERCENTILE_METRICS:
        hist = reg.get(name)
        if isinstance(hist, Histogram) and hist.count:
            percentiles[name] = {"count": hist.count,
                                 "p50": hist.percentile(50),
                                 "p95": hist.percentile(95),
                                 "p99": hist.percentile(99),
                                 "max": hist.max}

    summary: dict[str, Any] = {
        "schema": SUMMARY_SCHEMA,
        "compile": {"units": compiles, "total_ns": compile_ns,
                    "phases": phases, "opt_passes": opt_passes},
        "gc": {**gc, "timeline": gc_timeline, "stats": gc_stats},
        "vm": vm,
    }
    if percentiles:
        summary["percentiles"] = percentiles
    if metrics_payload:
        summary["metrics"] = metrics_payload
    if cache:
        summary["cache"] = cache
    if resil_seen:
        summary["resil"] = resil
    if profile is not None:
        summary["profile"] = profile.to_dict(top=top)
    return summary


# -- text rendering ----------------------------------------------------------

def _ms(ns: int | float) -> str:
    return f"{ns / 1e6:.2f}ms"


def _pct(part: int | float, whole: int | float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    -"


def _bar(value: float, peak: float, width: int = 24) -> str:
    if peak <= 0:
        return ""
    n = max(1, round(width * value / peak)) if value > 0 else 0
    return "#" * n


def render_compile_report(summary: dict[str, Any]) -> str:
    comp = summary["compile"]
    lines = [f"Compile pipeline: {comp['units']} unit(s), "
             f"{_ms(comp['total_ns'])} total"]
    total = comp["total_ns"] or 1
    for phase in COMPILE_PHASES:
        cell = comp["phases"].get(phase)
        if not cell:
            continue
        lines.append(f"  {phase:<20s} {_ms(cell['ns']):>10s} "
                     f"{_pct(cell['ns'], total)}  x{cell['count']}")
    if comp["opt_passes"]:
        lines.append("  optimizer passes (per-pass totals):")
        lines.append(f"    {'pass':<12s} {'time':>10s} {'runs':>6s} "
                     f"{'changed':>8s} {'rewrites':>9s} {'ir-delta':>9s}")
        for name, cell in sorted(comp["opt_passes"].items(),
                                 key=lambda kv: -kv[1]["ns"]):
            lines.append(f"    {name:<12s} {_ms(cell['ns']):>10s} "
                         f"{cell['runs']:>6d} {cell['changed_runs']:>8d} "
                         f"{cell['rewrites']:>9d} {cell['insts_delta']:>+9d}")
    return "\n".join(lines)


def render_gc_report(summary: dict[str, Any], max_rows: int = 20) -> str:
    gc = summary["gc"]
    if not gc["collections"]:
        return "GC: no collections recorded"
    lines = [f"GC: {gc['collections']} collection(s), "
             f"total pause {_ms(gc['pause_ns_total'])} "
             f"(avg {_ms(gc['pause_ns_avg'])}, max {_ms(gc['pause_ns_max'])})"]
    tot = gc["pause_ns_total"] or 1
    lines.append(f"  pause breakdown: root-scan {_ms(gc['root_scan_ns'])} "
                 f"({_pct(gc['root_scan_ns'], tot).strip()})  "
                 f"mark {_ms(gc['mark_ns'])} "
                 f"({_pct(gc['mark_ns'], tot).strip()})  "
                 f"sweep {_ms(gc['sweep_ns'])} "
                 f"({_pct(gc['sweep_ns'], tot).strip()})")
    lines.append(f"  live after last sweep: {gc['live_bytes_last']} bytes / "
                 f"{gc['live_objects_last']} objects, fragmentation "
                 f"{gc['fragmentation_last']:.1%}")
    timeline = gc["timeline"]
    peak = max(c["pause_ns"] for c in timeline)
    shown = timeline[:max_rows]
    lines.append(f"  {'#':>4s} {'pause':>10s} {'root':>9s} {'mark':>9s} "
                 f"{'sweep':>9s} {'marked':>8s} {'freed':>8s} "
                 f"{'live KB':>8s}  timeline")
    for c in shown:
        lines.append(
            f"  {c['number'] or 0:>4d} {_ms(c['pause_ns']):>10s} "
            f"{_ms(c['root_scan_ns']):>9s} {_ms(c['mark_ns']):>9s} "
            f"{_ms(c['sweep_ns']):>9s} {c['marked']:>8d} "
            f"{c['reclaimed_objects']:>8d} {c['live_bytes'] // 1024:>8d}  "
            f"{_bar(c['pause_ns'], peak)}")
    if len(timeline) > max_rows:
        lines.append(f"  ... {len(timeline) - max_rows} more collection(s)")
    hist = (gc.get("stats") or {}).get("alloc_histogram")
    if hist:
        lines.append("  allocation-size histogram (bytes -> count):")
        items = sorted((int(k), v) for k, v in hist.items())
        peak_n = max(v for _, v in items)
        for bucket, count in items:
            lo = 1 << (bucket - 1) if bucket > 1 else 1
            hi = (1 << bucket) - 1
            rng = f"{lo}" if lo >= hi else f"{lo}-{hi}"
            lines.append(f"    {rng:>12s} {count:>9d}  {_bar(count, peak_n)}")
    return "\n".join(lines)


def render_vm_report(summary: dict[str, Any]) -> str:
    vm = summary["vm"]
    if not vm["runs"]:
        return "VM: no runs recorded"
    return (f"VM: {vm['runs']} run(s), {vm['cycles']} cycles, "
            f"{vm['instructions']} instructions, "
            f"{vm['collections']} collection(s), {vm['checks']} check(s), "
            f"{_ms(vm['wall_ns'])} wall")


def render_percentiles_report(summary: dict[str, Any]) -> str:
    pct = summary.get("percentiles")
    if not pct:
        return "percentiles: no histogram data recorded"
    lines = ["latency percentiles (from deterministic fixed-bucket "
             "histograms):",
             f"  {'metric':<20s} {'n':>6s} {'p50':>10s} {'p95':>10s} "
             f"{'p99':>10s} {'max':>10s}"]

    def fmt(name: str, value: Any) -> str:
        if value is None:
            return "-"
        return _ms(value) if name.endswith("_ns") else str(value)

    for name in PERCENTILE_METRICS:
        cell = pct.get(name)
        if not cell:
            continue
        lines.append(f"  {name:<20s} {cell['count']:>6d} "
                     f"{fmt(name, cell['p50']):>10s} "
                     f"{fmt(name, cell['p95']):>10s} "
                     f"{fmt(name, cell['p99']):>10s} "
                     f"{fmt(name, cell['max']):>10s}")
    return "\n".join(lines)


def render_resil_report(summary: dict[str, Any]) -> str:
    r = summary.get("resil")
    if not r:
        return "resilience: no recovery events recorded"
    return (f"resilience: {r['retries']} retried task(s), "
            f"{r['worker_deaths']} worker(s) lost, "
            f"{r['quarantined']} quarantined, "
            f"{r['dropped_messages']} dropped message(s), "
            f"{r['breaker_trips']} breaker trip(s), "
            f"{r['cache_write_errors']} cache write error(s)"
            + (", DEGRADED (serial fallback)" if r["degraded"] else ""))


def render_text(summary: dict[str, Any],
                profile: VMProfile | None = None, top: int = 10) -> str:
    parts = [render_compile_report(summary), "", render_gc_report(summary),
             "", render_vm_report(summary)]
    if "percentiles" in summary:
        parts += ["", render_percentiles_report(summary)]
    if "resil" in summary:
        parts += ["", render_resil_report(summary)]
    if profile is not None:
        parts += ["", profile.render_report(top=top)]
    return "\n".join(parts)
