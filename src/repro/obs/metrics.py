"""Typed process-wide metrics: counters, gauges, fixed-bucket histograms.

The registry complements the tracer: where a trace records *every*
event, metrics keep O(1)-size aggregates that stay cheap over million-
event runs and merge exactly across engine shards — the same discipline
as ``Tracer.absorb`` and ``GCStats.merge``.  Three instrument types:

* :class:`Counter` — monotonically increasing integer (additive merge).
* :class:`Gauge` — last-set sample (merge takes the max; gauges are
  therefore never part of the deterministic snapshot).
* :class:`Histogram` — fixed upper-bound buckets with **exact integer
  counts** plus count/sum/min/max.  Percentiles (p50/p95/p99/...) are
  derived with pure integer arithmetic from the bucket counts, so two
  registries holding the same observations report bit-identical
  percentiles, and shard-merged histograms equal the serial ones.

Determinism contract: every metric carries a ``det`` flag.  ``det``
metrics derive only from simulated quantities (cycles, collections,
cache lookups) and must be byte-identical across worker counts for the
same seed; wall-clock histograms (pause times, task latency) are
``det=False`` and excluded from :meth:`MetricsRegistry.
deterministic_snapshot`.

Serialization:

* ``snapshot()`` → a versioned ``repro-obs-metrics/1`` envelope; one
  envelope per line in a JSONL stream (``write_jsonl`` / ``flush``)
  so ``repro obs top`` can tail live snapshots.
* ``to_prometheus()`` → the Prometheus text exposition format
  (counter / gauge / histogram with cumulative ``le`` buckets).

Zero-value elision: untouched counters, unset gauges, empty histograms,
and zero buckets are dropped from snapshots, so a registry that
registered a metric but never observed it serializes identically to one
that never registered it (this is what makes worker-merged snapshots
reproducible).

Stdlib-only leaf; importable from the GC, VM, engine, and caches.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable, TextIO

from ..api import envelopes

SCHEMA = envelopes.OBS_METRICS

#: Default histogram bounds for nanosecond latencies: powers of two
#: from ~4µs (2**12) to ~17s (2**34), plus the implicit +Inf overflow.
TIME_BUCKETS_NS: tuple[int, ...] = tuple(1 << b for b in range(12, 35))

#: Bounds for simulated-count histograms (cycles, instructions):
#: powers of two from 256 to 2**32.
COUNT_BUCKETS: tuple[int, ...] = tuple(1 << b for b in range(8, 33))

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def metric_key(name: str, labels: dict[str, Any] | None = None) -> str:
    """Canonical registry key: ``name`` or ``name{k=v,...}`` with label
    keys sorted.  Label values are stringified; labels must not contain
    ``{ } = ,`` (enforced at registration)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key`."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def _check_labels(labels: dict[str, Any]) -> dict[str, str]:
    out = {}
    for k, v in labels.items():
        v = str(v)
        if any(c in "{}=," for c in k + v):
            raise ValueError(f"metric label {k}={v!r} contains a "
                             "reserved character ({{}}=,)")
        out[k] = v
    return out


class Counter:
    """Monotonic integer counter."""

    kind = "counter"
    __slots__ = ("key", "name", "labels", "det", "value")

    def __init__(self, key: str, name: str, labels: dict[str, str],
                 det: bool = True):
        self.key = key
        self.name = name
        self.labels = labels
        self.det = det
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_entry(self) -> dict[str, Any] | None:
        if self.value == 0:
            return None  # zero-value elision
        return {"type": "counter", "det": self.det, "value": self.value}

    def merge_entry(self, entry: dict[str, Any]) -> None:
        self.value += int(entry.get("value", 0))


class Gauge:
    """Last-set sample.  Merging registries keeps the maximum, which is
    order-independent — so gauges are never deterministic across worker
    counts and always carry ``det=False``."""

    kind = "gauge"
    __slots__ = ("key", "name", "labels", "det", "value", "_set")

    def __init__(self, key: str, name: str, labels: dict[str, str],
                 det: bool = False):
        self.key = key
        self.name = name
        self.labels = labels
        self.det = False  # see class docstring
        self.value: float | int = 0
        self._set = False

    def set(self, value: float | int) -> None:
        self.value = value
        self._set = True

    def to_entry(self) -> dict[str, Any] | None:
        if not self._set:
            return None
        return {"type": "gauge", "det": self.det, "value": self.value}

    def merge_entry(self, entry: dict[str, Any]) -> None:
        value = entry.get("value", 0)
        self.value = max(self.value, value) if self._set else value
        self._set = True


class Histogram:
    """Fixed-bucket histogram with exact integer bucket counts.

    ``bounds`` are inclusive upper edges in increasing order; one
    implicit overflow bucket catches values above ``bounds[-1]``.
    ``observe`` is integer-only bookkeeping: a bisect into the bounds,
    four scalar updates — cheap enough for per-task/per-collection
    call sites.
    """

    kind = "histogram"
    __slots__ = ("key", "name", "labels", "det", "bounds", "counts",
                 "count", "sum", "min", "max")

    def __init__(self, key: str, name: str, labels: dict[str, str],
                 bounds: Iterable[int] = TIME_BUCKETS_NS,
                 det: bool = False):
        self.key = key
        self.name = name
        self.labels = labels
        self.det = det
        self.bounds = tuple(int(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int | float) -> None:
        value = int(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (bisect_left on bounds)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def percentile(self, p: float) -> int | None:
        """The p-th percentile (0..100), derived from bucket counts with
        integer interpolation inside the landing bucket — deterministic
        for identical bucket contents."""
        if self.count == 0:
            return None
        rank = max(1, -(-int(p * self.count) // 100))  # ceil(p/100 * n)
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= rank:
                lo = 0 if i == 0 else self.bounds[i - 1]
                hi = (self.bounds[i] if i < len(self.bounds)
                      else (self.max if self.max is not None else lo))
                pos = rank - cum  # 1..n within this bucket
                value = lo + ((hi - lo) * pos) // n
                if self.min is not None:
                    value = max(value, self.min)
                if self.max is not None:
                    value = min(value, self.max)
                return value
            cum += n
        return self.max  # unreachable when count > 0

    def percentiles(self, ps: Iterable[float] = (50, 95, 99)) -> dict[str, Any]:
        out: dict[str, Any] = {f"p{g:g}": self.percentile(g) for g in ps}
        out.update(count=self.count, sum=self.sum,
                   min=self.min, max=self.max)
        return out

    def to_entry(self) -> dict[str, Any] | None:
        if self.count == 0:
            return None
        return {
            "type": "histogram", "det": self.det,
            "bounds": list(self.bounds),
            # Sparse bucket counts, zero buckets elided; key = bucket
            # index (len(bounds) = overflow).
            "buckets": {str(i): n for i, n in enumerate(self.counts) if n},
            "count": self.count, "sum": self.sum,
            "min": self.min, "max": self.max,
        }

    def merge_entry(self, entry: dict[str, Any]) -> None:
        bounds = tuple(int(b) for b in entry.get("bounds", ()))
        if bounds != self.bounds:
            raise ValueError(
                f"histogram {self.key!r}: cannot merge bounds {bounds} "
                f"into {self.bounds}")
        for idx, n in entry.get("buckets", {}).items():
            self.counts[int(idx)] += int(n)
        self.count += int(entry.get("count", 0))
        self.sum += int(entry.get("sum", 0))
        emin, emax = entry.get("min"), entry.get("max")
        if emin is not None:
            self.min = emin if self.min is None else min(self.min, emin)
        if emax is not None:
            self.max = emax if self.max is None else max(self.max, emax)

    @staticmethod
    def from_entry(key: str, entry: dict[str, Any],
                   det: bool | None = None) -> "Histogram":
        name, labels = split_key(key)
        hist = Histogram(key, name, labels,
                         bounds=entry.get("bounds", TIME_BUCKETS_NS),
                         det=entry.get("det", False) if det is None else det)
        hist.merge_entry(entry)
        return hist


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create metric store with deterministic serialization.

    One registry per process (see ``obs.runtime``); engine workers
    install a fresh one at fork so only their delta ships home in the
    final pipe message, exactly like tracer events and cache stats.
    """

    def __init__(self, out_path: str | None = None):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        #: Optional JSONL destination for :meth:`flush` (live snapshots
        #: for ``repro obs top``); ``.prom`` paths get the Prometheus
        #: text format instead.
        self.out_path = out_path
        self._seq = 0

    # -- get-or-create -------------------------------------------------------

    def _get(self, cls, name: str, det: bool, **labels):
        labels = _check_labels(labels)
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key, name, labels, det=det)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {key!r} is a {metric.kind}, "
                             f"not a {cls.kind}")
        return metric

    def counter(self, name: str, det: bool = True, **labels) -> Counter:
        return self._get(Counter, name, det, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, False, **labels)

    def histogram(self, name: str, bounds: Iterable[int] = TIME_BUCKETS_NS,
                  det: bool = False, **labels) -> Histogram:
        labels = _check_labels(labels)
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(key, name, labels, bounds=bounds, det=det)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(f"metric {key!r} is a {metric.kind}, "
                             "not a histogram")
        return metric

    def get(self, name: str, **labels):
        return self._metrics.get(metric_key(name, _check_labels(labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    # -- serialization -------------------------------------------------------

    def to_dict(self, det_only: bool = False) -> dict[str, Any]:
        """``{key: entry}`` sorted by key, zero-valued metrics elided."""
        out: dict[str, Any] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if det_only and not metric.det:
                continue
            entry = metric.to_entry()
            if entry is not None:
                out[key] = entry
        return out

    def snapshot(self, det_only: bool = False) -> dict[str, Any]:
        """One versioned envelope (a JSONL line of the metrics stream)."""
        return {"schema": SCHEMA, "seq": self._seq,
                "metrics": self.to_dict(det_only=det_only)}

    def deterministic_snapshot(self) -> dict[str, Any]:
        """Only ``det`` metrics, no sequence number: the byte-comparable
        view that must be identical across ``--workers N``."""
        return {"schema": SCHEMA, "metrics": self.to_dict(det_only=True)}

    def merge(self, other: "MetricsRegistry | dict[str, Any]") -> "MetricsRegistry":
        """Fold another registry (or its ``to_dict`` payload) in."""
        entries = other.to_dict() if isinstance(other, MetricsRegistry) else other
        for key, entry in entries.items():
            metric = self._metrics.get(key)
            if metric is None:
                name, labels = split_key(key)
                cls = _TYPES.get(entry.get("type"))
                if cls is None:
                    continue  # unknown instrument from a newer writer
                if cls is Histogram:
                    metric = Histogram(key, name, labels,
                                       bounds=entry.get("bounds",
                                                        TIME_BUCKETS_NS),
                                       det=entry.get("det", False))
                else:
                    metric = cls(key, name, labels,
                                 det=entry.get("det", cls is Counter))
                self._metrics[key] = metric
            metric.merge_entry(entry)
        return self

    # -- export --------------------------------------------------------------

    def write_jsonl(self, out: TextIO | str, append: bool = True,
                    det_only: bool = False) -> None:
        """Append one snapshot envelope line (sorted keys)."""
        if isinstance(out, str):
            with open(out, "a" if append else "w") as fh:
                self.write_jsonl(fh, det_only=det_only)
            return
        out.write(json.dumps(self.snapshot(det_only=det_only),
                             sort_keys=True) + "\n")
        self._seq += 1

    def write_prometheus(self, out: TextIO | str) -> None:
        if isinstance(out, str):
            with open(out, "w") as fh:
                self.write_prometheus(fh)
            return
        out.write(self.to_prometheus())

    def flush(self) -> None:
        """Write the current snapshot to :attr:`out_path` (no-op when
        unset): JSONL appends, ``.prom`` files are rewritten whole."""
        if not self.out_path:
            return
        if self.out_path.endswith(".prom"):
            self.write_prometheus(self.out_path)
        else:
            self.write_jsonl(self.out_path, append=self._seq > 0)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (metric names ``repro_``-prefixed,
        dots mapped to underscores, histograms with cumulative ``le``)."""
        by_name: dict[str, list] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if metric.to_entry() is None:
                continue
            by_name.setdefault(metric.name, []).append(metric)
        lines: list[str] = []
        for name, metrics in by_name.items():
            prom = "repro_" + _PROM_BAD.sub("_", name)
            lines.append(f"# TYPE {prom} {metrics[0].kind}")
            for m in metrics:
                label_str = _prom_labels(m.labels)
                if isinstance(m, Histogram):
                    cum = 0
                    for i, bound in enumerate(m.bounds):
                        cum += m.counts[i]
                        lines.append(f"{prom}_bucket"
                                     f"{_prom_labels(m.labels, le=str(bound))}"
                                     f" {cum}")
                    lines.append(f"{prom}_bucket"
                                 f"{_prom_labels(m.labels, le='+Inf')}"
                                 f" {m.count}")
                    lines.append(f"{prom}_sum{label_str} {m.sum}")
                    lines.append(f"{prom}_count{label_str} {m.count}")
                else:
                    lines.append(f"{prom}{label_str} {m.value}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_labels(labels: dict[str, str], **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{merged[k]}"' for k in sorted(merged))
    return "{" + inner + "}"


# -- snapshot rendering (repro obs top) ---------------------------------------


def load_snapshot(path: str) -> dict[str, Any] | None:
    """The latest envelope from a metrics JSONL file (or a bare
    snapshot JSON file); None when no parseable envelope exists."""
    try:
        with open(path) as fh:
            lines = [ln.strip() for ln in fh if ln.strip()]
    except OSError:
        return None
    for line in reversed(lines):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict) and doc.get("schema") == SCHEMA:
            return doc
    return None


def _fmt_value(name: str, value: Any) -> str:
    if value is None:
        return "-"
    if name.endswith("_ns"):
        return f"{value / 1e6:.2f}ms"
    return str(value)


def render_snapshot(snapshot: dict[str, Any], top: int = 0) -> str:
    """Human-readable view of one envelope (the ``obs top`` screen)."""
    entries = snapshot.get("metrics", {})
    counters = [(k, e) for k, e in entries.items() if e["type"] == "counter"]
    gauges = [(k, e) for k, e in entries.items() if e["type"] == "gauge"]
    hists = [(k, e) for k, e in entries.items() if e["type"] == "histogram"]
    lines = [f"metrics snapshot (schema {snapshot.get('schema')}, "
             f"seq {snapshot.get('seq', 0)}): {len(entries)} live metric(s)"]
    if hists:
        lines.append(f"  {'histogram':<28s} {'n':>8s} {'p50':>12s} "
                     f"{'p95':>12s} {'p99':>12s} {'max':>12s}")
        for key, entry in hists:
            h = Histogram.from_entry(key, entry)
            name = h.name
            lines.append(
                f"  {key:<28s} {h.count:>8d} "
                f"{_fmt_value(name, h.percentile(50)):>12s} "
                f"{_fmt_value(name, h.percentile(95)):>12s} "
                f"{_fmt_value(name, h.percentile(99)):>12s} "
                f"{_fmt_value(name, h.max):>12s}")
    if counters:
        counters.sort(key=lambda kv: (-kv[1]["value"], kv[0]))
        shown = counters[:top] if top else counters
        lines.append(f"  {'counter':<40s} {'value':>14s}")
        for key, entry in shown:
            lines.append(f"  {key:<40s} {entry['value']:>14d}")
        if len(counters) > len(shown):
            lines.append(f"  ... {len(counters) - len(shown)} more counter(s)")
    if gauges:
        lines.append(f"  {'gauge':<40s} {'value':>14s}")
        for key, entry in gauges:
            lines.append(f"  {key:<40s} {entry['value']:>14}")
    return "\n".join(lines)
