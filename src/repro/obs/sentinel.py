"""The perf-regression sentinel: fresh metrics vs seeded trajectories.

Closes the observability loop.  ``repro obs trajectory`` and the bench/
vm benchmark scripts append measurement points to the ``BENCH_*.json``
trajectory files; :func:`run_sentinel` re-measures the workload fresh
and renders a verdict against those trajectories:

* **Counts are a hard gate, compared bit-exactly.**  Simulated cycles,
  instructions, collections, and checks are pure functions of
  (source, config, model), so any drift is a real behavior change —
  there is no noise to tolerate.
* **Wall times are compared statistically.**  The fresh measurement is
  min-of-N (the classic noise floor estimator); the trajectory history
  provides a median and a median-absolute-deviation, and the bound is
  ``median + max(mad_k * MAD, wall_slack * median)``.  Wall regressions
  are advisory by default (CI machines are noisy) and fatal only under
  ``strict_wall``.

The verdict serializes as a versioned ``repro-obs-sentinel/1`` envelope;
accepted runs can append their fresh point back to the trajectory file
(``append=True``) so the history grows with every green run.

Also home to the trajectory validators behind
``repro obs trajectory --check``: every ``BENCH_*.json`` flavor in the
repo (``repro-obs-bench/1`` point documents, ``repro-exec-bench/1`` /
``repro-vm2-bench/1`` record lists) is schema-checked on load so a
malformed or empty trajectory fails loudly instead of silently gating
nothing.
"""

from __future__ import annotations

import glob
import json
import os
import time
from typing import Any, Sequence

from . import clock as obs_clock
from ..api import envelopes
from . import runtime
from .metrics import MetricsRegistry
from ..gc.collector import Collector
from ..machine.driver import CompileConfig, compile_source
from ..machine.models import MODELS
from ..machine.vm import VM

SCHEMA = envelopes.OBS_SENTINEL
TRAJECTORY_SCHEMA = envelopes.OBS_BENCH
EXEC_SCHEMA = envelopes.EXEC_BENCH
VM2_SCHEMA = envelopes.VM2_BENCH

DEFAULT_CONFIGS = ("O", "O_safe", "g", "g_checked")

#: The bit-exact comparison keys of one trajectory config cell.
COUNT_KEYS = ("exit_code", "cycles", "instructions", "collections", "checks")

#: Keys every repro-obs-bench/1 config cell must carry.
_POINT_CELL_KEYS = COUNT_KEYS + ("wall_s",)


# -- trajectory validation ----------------------------------------------------

def default_trajectories(root: str = ".") -> list[str]:
    """Every ``BENCH_*.json`` in ``root``, sorted for determinism."""
    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))


def validate_trajectory(path: str) -> list[str]:
    """Schema-check one trajectory file; returns a list of issues
    (empty = valid).  Unknown-schema files are reported, not ignored."""
    issues: list[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return [f"{path}: missing"]
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable/malformed JSON ({exc})"]

    if isinstance(doc, dict):
        schema = doc.get("schema")
        if schema != TRAJECTORY_SCHEMA:
            return [f"{path}: unexpected schema {schema!r} "
                    f"(want {TRAJECTORY_SCHEMA})"]
        points = doc.get("points")
        if not isinstance(points, list) or not points:
            return [f"{path}: empty trajectory (no points)"]
        for i, point in enumerate(points):
            if not isinstance(point, dict):
                issues.append(f"{path}: point #{i} is not an object")
                continue
            for key in ("workload", "model", "configs"):
                if key not in point:
                    issues.append(f"{path}: point #{i} missing {key!r}")
            for cfg, cell in (point.get("configs") or {}).items():
                missing = [k for k in _POINT_CELL_KEYS
                           if not isinstance(cell, dict) or k not in cell]
                if missing:
                    issues.append(f"{path}: point #{i} config {cfg!r} "
                                  f"missing {missing}")
        return issues

    if isinstance(doc, list):
        if not doc:
            return [f"{path}: empty trajectory (no records)"]
        for i, rec in enumerate(doc):
            if not isinstance(rec, dict):
                issues.append(f"{path}: record #{i} is not an object")
                continue
            schema = rec.get("schema")
            if schema not in (EXEC_SCHEMA, VM2_SCHEMA):
                issues.append(f"{path}: record #{i} has unknown schema "
                              f"{schema!r}")
        return issues

    return [f"{path}: neither a point document nor a record list"]


def validate_trajectories(paths: Sequence[str] | None = None,
                          ) -> dict[str, list[str]]:
    """``{path: issues}`` for every trajectory file (empty dict values =
    all valid).  With no paths given, validates every ``BENCH_*.json``
    in the current directory."""
    if paths is None:
        paths = default_trajectories()
    return {path: validate_trajectory(path) for path in paths}


# -- noise statistics ---------------------------------------------------------

def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return (ordered[mid] if n % 2
            else (ordered[mid - 1] + ordered[mid]) / 2.0)


def _mad(values: Sequence[float]) -> float:
    """Median absolute deviation — a robust noise scale."""
    med = _median(values)
    return _median([abs(v - med) for v in values])


def wall_bound(history: Sequence[float], wall_slack: float = 0.5,
               mad_k: float = 3.0) -> float:
    """The acceptance bound for a fresh min-of-N wall time given the
    trajectory history: ``median + max(mad_k * MAD, wall_slack *
    median)``.  The slack floor keeps single-point histories (MAD = 0)
    from rejecting ordinary machine-to-machine variance."""
    med = _median(history)
    return med + max(mad_k * _mad(history), wall_slack * med)


# -- fresh measurement --------------------------------------------------------

def _measure(source: str, stdin: str, config_name: str, model_key: str,
             gc_interval: int, repeats: int) -> tuple[dict, list[str]]:
    """Compile + run one config ``repeats`` times; returns the fresh
    cell (counts + min-of-N wall + GC phase totals of the best run) and
    any determinism violations across repeats."""
    issues: list[str] = []
    clock = obs_clock.get_clock()
    best: dict | None = None
    counts0: tuple | None = None
    for rep in range(max(1, repeats)):
        config = CompileConfig.named(config_name, MODELS[model_key])
        collector = Collector()
        t0 = clock()
        compiled = compile_source(source, config)
        vm = VM(compiled.asm, config.model, collector=collector,
                gc_interval=gc_interval)
        vm.stdin = stdin
        result = vm.run()
        wall_s = (clock() - t0) / 1e9
        stats = collector.stats
        counts = (result.exit_code, result.cycles, result.instructions,
                  result.collections, result.checks)
        if counts0 is None:
            counts0 = counts
        elif counts != counts0:
            issues.append(
                f"{config_name}: repeat {rep} counts {counts} != "
                f"repeat 0 counts {counts0} — simulator nondeterminism")
        if best is None or wall_s < best["wall_s"]:
            best = {
                "exit_code": result.exit_code, "cycles": result.cycles,
                "instructions": result.instructions,
                "collections": result.collections, "checks": result.checks,
                "wall_s": round(wall_s, 4),
                "gc_pause_ns": stats.gc_pause_ns,
                "gc_root_scan_ns": stats.root_scan_ns,
                "gc_mark_ns": stats.mark_ns,
                "gc_sweep_ns": stats.sweep_ns,
                "gc_max_pause_ns": stats.max_pause_ns,
                "live_bytes_after": stats.live_bytes,
            }
    assert best is not None
    return best, issues


# -- the sentinel -------------------------------------------------------------

def run_sentinel(workload: str = "cfrac", source: str | None = None,
                 stdin: str = "", model: str = "ss10",
                 configs: Sequence[str] = DEFAULT_CONFIGS,
                 repeats: int = 3, gc_interval: int = 0,
                 trajectories: Sequence[str] | None = None,
                 wall_slack: float = 0.5, mad_k: float = 3.0,
                 strict_wall: bool = False, append: bool = False,
                 label: str = "sentinel", quiet: bool = True,
                 ) -> dict[str, Any]:
    """Measure ``workload`` fresh and compare against the trajectories.

    Returns the ``repro-obs-sentinel/1`` verdict envelope; ``ok`` is
    the gate CI keys on.  ``append=True`` writes the fresh point back
    to the ``repro-obs-bench/1`` trajectory when the verdict is green.
    """
    if source is None:
        from ..workloads import load_workload, WORKLOADS, AUX_WORKLOADS
        spec = WORKLOADS.get(workload) or AUX_WORKLOADS.get(workload)
        if spec is None:
            raise ValueError(f"unknown workload {workload!r}")
        source = load_workload(workload)
        stdin = stdin or spec.stdin

    if trajectories is None:
        trajectories = default_trajectories()
    validation = validate_trajectories(trajectories)
    checks: list[dict[str, Any]] = []
    for path, issues in validation.items():
        for issue in issues:
            checks.append({"file": path, "kind": "validate", "config": None,
                           "ok": False, "detail": issue})

    # Fresh measurement under the sentinel's own metrics registry (the
    # caller's registry, if any, is restored afterwards).
    previous = runtime.get_metrics()
    registry = runtime.set_metrics(MetricsRegistry())
    try:
        fresh: dict[str, dict] = {}
        for config_name in configs:
            cell, issues = _measure(source, stdin, config_name, model,
                                    gc_interval, repeats)
            fresh[config_name] = cell
            for issue in issues:
                checks.append({"file": None, "kind": "determinism",
                               "config": config_name, "ok": False,
                               "detail": issue})
            if not quiet:
                print(f"sentinel {workload}/{config_name}/{model}: "
                      f"cycles={cell['cycles']} wall={cell['wall_s']:.2f}s",
                      flush=True)
        snapshot = registry.snapshot()
    finally:
        runtime.set_metrics(previous)

    wall_info: dict[str, Any] = {"slack": wall_slack, "mad_k": mad_k,
                                 "repeats": repeats, "bounds": {}}

    for path in trajectories:
        if validation.get(path):
            continue  # already reported as a validation failure
        with open(path) as fh:
            doc = json.load(fh)

        if isinstance(doc, dict):  # repro-obs-bench/1
            points = [p for p in doc["points"]
                      if p.get("workload") == workload
                      and p.get("model") == model]
            if not points:
                checks.append({"file": path, "kind": "counts",
                               "config": None, "ok": True,
                               "detail": f"no points for {workload}/{model} "
                                         "— nothing to compare"})
                continue
            latest = points[-1]
            for config_name, cell in fresh.items():
                base = latest.get("configs", {}).get(config_name)
                if base is None:
                    continue
                diffs = [f"{k}: {base[k]} -> {cell[k]}"
                         for k in COUNT_KEYS if base.get(k) != cell[k]]
                checks.append({
                    "file": path, "kind": "counts", "config": config_name,
                    "ok": not diffs,
                    "detail": ("counts bit-identical" if not diffs
                               else "count drift: " + "; ".join(diffs))})
                history = [p["configs"][config_name]["wall_s"]
                           for p in points
                           if config_name in p.get("configs", {})]
                bound = wall_bound(history, wall_slack, mad_k)
                wall_info["bounds"][config_name] = {
                    "history": history, "bound": round(bound, 4),
                    "fresh": cell["wall_s"]}
                checks.append({
                    "file": path, "kind": "wall", "config": config_name,
                    "ok": cell["wall_s"] <= bound,
                    "detail": f"min-of-{repeats} wall {cell['wall_s']:.3f}s "
                              f"vs bound {bound:.3f}s "
                              f"(median {_median(history):.3f}s, "
                              f"MAD {_mad(history):.4f})"})
            continue

        # Record lists: repro-vm2-bench/1 and repro-exec-bench/1.
        for rec in doc:
            schema = rec.get("schema")
            if schema == VM2_SCHEMA:
                if (rec.get("workload") != workload
                        or rec.get("model") != model):
                    continue
                config_name = rec.get("config")
                cell = fresh.get(config_name)
                if cell is None:
                    continue
                diffs = []
                if rec.get("base_cycles") != cell["cycles"]:
                    diffs.append(f"base_cycles {rec.get('base_cycles')} -> "
                                 f"{cell['cycles']}")
                if rec.get("base_collections") != cell["collections"]:
                    diffs.append(
                        f"base_collections {rec.get('base_collections')} -> "
                        f"{cell['collections']}")
                checks.append({
                    "file": path, "kind": "counts", "config": config_name,
                    "ok": not diffs,
                    "detail": ("vm2 baseline counts match" if not diffs
                               else "vm2 drift: " + "; ".join(diffs))})
            elif schema == EXEC_SCHEMA:
                # Internal-consistency gate: a seeded exec point must
                # have byte-identical tables and a fully warm cache.
                bad = []
                if not rec.get("tables_identical", False):
                    bad.append("tables_identical is false")
                if rec.get("warm_hit_rate") != 1.0:
                    bad.append(f"warm_hit_rate {rec.get('warm_hit_rate')} "
                               "!= 1.0")
                checks.append({
                    "file": path, "kind": "consistency",
                    "config": rec.get("label"),
                    "ok": not bad,
                    "detail": ("exec record consistent" if not bad
                               else "; ".join(bad))})

    validations_ok = all(not issues for issues in validation.values())
    counts_ok = all(c["ok"] for c in checks
                    if c["kind"] in ("counts", "determinism", "consistency"))
    wall_ok = all(c["ok"] for c in checks if c["kind"] == "wall")
    ok = validations_ok and counts_ok and (wall_ok or not strict_wall)

    verdict: dict[str, Any] = {
        "schema": SCHEMA,
        "workload": workload, "model": model, "label": label,
        "repeats": repeats, "configs": fresh,
        "checks": checks,
        "counts_ok": counts_ok, "wall_ok": wall_ok,
        "strict_wall": strict_wall, "ok": ok,
        "wall": wall_info,
        "appended": False,
        "metrics": snapshot,
    }

    if append and ok:
        target = next((p for p in trajectories
                       if _is_point_document(p)), None)
        if target is not None:
            with open(target) as fh:
                doc = json.load(fh)
            doc["points"].append({
                "date": time.strftime("%Y-%m-%d"),
                "workload": workload, "model": model, "label": label,
                "configs": fresh,
            })
            with open(target, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            verdict["appended"] = True
            verdict["appended_to"] = target
    return verdict


def _is_point_document(path: str) -> bool:
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(doc, dict) and doc.get("schema") == TRAJECTORY_SCHEMA


def render_verdict(verdict: dict[str, Any]) -> str:
    lines = [f"sentinel verdict: {'OK' if verdict['ok'] else 'REGRESSION'} "
             f"({verdict['workload']}/{verdict['model']}, "
             f"min-of-{verdict['repeats']})"]
    for check in verdict["checks"]:
        mark = "ok " if check["ok"] else "FAIL"
        where = check.get("file") or "-"
        config = check.get("config") or "-"
        lines.append(f"  [{mark}] {check['kind']:<11s} {config:<10s} "
                     f"{where}: {check['detail']}")
    if not any(c["kind"] == "wall" for c in verdict["checks"]):
        lines.append("  (no wall history to compare)")
    if verdict.get("appended"):
        lines.append(f"  appended fresh point to {verdict['appended_to']}")
    return "\n".join(lines)
