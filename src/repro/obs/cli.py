"""``python -m repro.obs`` — record and report telemetry.

    python -m repro.obs record --workload cfrac --config O_safe
        Compile + run one workload with tracing and profiling on; write
        the JSONL trace (default obs-trace.jsonl) and print the compile
        pipeline, GC pause, and VM hot-spot reports.

    python -m repro.obs record --source prog.c --config g_checked --chrome t.json
        Same for an arbitrary C file; also export a Chrome trace for
        chrome://tracing / Perfetto.

    python -m repro.obs record --workload cfrac --config O --pgo-out cfrac.pgo.json
        Also persist the machine-readable per-block profile as a
        ``repro-vmprof-pgo/1`` envelope — the input to superinstruction
        fusion (``repro bench --pgo`` / ``repro cc --pgo``).

    python -m repro.obs report obs-trace.jsonl [--json] [--pgo FILE]
        Re-render the reports from a recorded trace; ``--pgo`` extracts
        the embedded ``vm.profile`` instants into the same pgo envelope
        (profiled runs embed one per recording).

    python -m repro.obs trajectory --workload cfrac --out BENCH_obs.json
        Run every config, append one perf-trajectory point (cycles,
        wall time, GC pause totals per config) to the trajectory file.

    python -m repro.obs trajectory --check [FILES...]
        Schema-validate every BENCH_*.json trajectory; exits non-zero
        on malformed or empty files.

    python -m repro.obs top obs-metrics.jsonl [--interval 2] [--once]
        Watch live metrics snapshots (counters, gauges, histogram
        percentiles) appended by a run started with --metrics-out.

    python -m repro.obs sentinel --workload cfrac [--strict-wall] [--append]
        Fresh min-of-N measurement compared against the BENCH_*.json
        trajectories: bit-exact counts, MAD-bounded wall times; emits a
        repro-obs-sentinel/1 verdict.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import clock as obs_clock
from . import runtime
from .metrics import load_snapshot, render_snapshot
from .report import render_text, summarize
from .sentinel import (TRAJECTORY_SCHEMA, default_trajectories,
                       render_verdict, run_sentinel, validate_trajectories)
from .tracer import load_jsonl
from .vmprof import PGO_SCHEMA, pgo_from_profile_dict
from ..gc.collector import Collector, GCCheckError
from ..machine.driver import CompileConfig, compile_source
from ..machine.models import MODELS
from ..machine.vm import VM, VMError
from ..workloads import AUX_WORKLOADS, WORKLOADS, load_workload

DEFAULT_TRAJECTORY_CONFIGS = ("O", "O_safe", "g", "g_checked")


def _workload_source(name: str) -> tuple[str, str]:
    if name not in WORKLOADS and name not in AUX_WORKLOADS:
        known = ", ".join(list(WORKLOADS) + list(AUX_WORKLOADS))
        raise SystemExit(f"error: unknown workload {name!r} (known: {known})")
    spec = WORKLOADS.get(name) or AUX_WORKLOADS[name]
    return load_workload(name), spec.stdin


def _gc_stats_instant(tracer, collector: Collector) -> None:
    """Close the trace with a self-contained GC stats snapshot (the
    allocation histogram lives in GCStats, not in span args)."""
    stats = collector.stats
    tracer.instant(
        "gc.stats",
        collections=stats.collections,
        bytes_allocated=stats.bytes_allocated,
        objects_allocated=stats.objects_allocated,
        objects_reclaimed=stats.objects_reclaimed,
        bytes_reclaimed=stats.bytes_reclaimed,
        live_bytes=stats.live_bytes,
        live_objects=stats.live_objects,
        checks_performed=stats.checks_performed,
        same_obj_checks=stats.same_obj_checks,
        incr_checks=stats.incr_checks,
        base_checks=stats.base_checks,
        gc_pause_ns=stats.gc_pause_ns,
        root_scan_ns=stats.root_scan_ns,
        mark_ns=stats.mark_ns,
        sweep_ns=stats.sweep_ns,
        max_pause_ns=stats.max_pause_ns,
        alloc_histogram={str(k): v for k, v in
                         sorted(stats.alloc_histogram.items())},
    )


def _record_one(source: str, stdin: str, config_name: str, model_key: str,
                gc_interval: int, profile_on: bool, metrics_on: bool = True):
    """Run one compile+execute under a fresh tracer; return
    (tracer, profile, collector, run result, wall seconds, metrics).

    All timestamps — the tracer's, the wall time, and the metric
    histograms — read the single injectable ns clock (``obs.clock``),
    so one fake clock makes the whole recording deterministic.
    """
    runtime.reset()
    tracer = runtime.enable_tracing()
    profile = runtime.enable_profiling() if profile_on else None
    metrics = runtime.enable_metrics() if metrics_on else None
    try:
        config = CompileConfig.named(config_name, MODELS[model_key])
        collector = Collector()
        t0_ns = obs_clock.now_ns()
        compiled = compile_source(source, config)
        vm = VM(compiled.asm, config.model, collector=collector,
                gc_interval=gc_interval)
        vm.stdin = stdin
        result = vm.run()
        wall_s = (obs_clock.now_ns() - t0_ns) / 1e9
        _gc_stats_instant(tracer, collector)
        if metrics is not None:
            # Embed the snapshot so report/summarize can rebuild the
            # percentile section from the trace alone.
            tracer.instant("obs.metrics", metrics=metrics.to_dict())
        if profile is not None:
            # Embed the full per-block profile so a later `report --pgo`
            # can regenerate the fusion envelope from the trace alone.
            tracer.instant("vm.profile", profile=profile.to_dict())
    finally:
        runtime.reset()
    return tracer, profile, collector, result, wall_s, metrics


def cmd_record(args: argparse.Namespace) -> int:
    if bool(args.workload) == bool(args.source):
        raise SystemExit("error: give exactly one of --workload / --source")
    if args.workload:
        source, stdin = _workload_source(args.workload)
    else:
        with open(args.source) as fh:
            source = fh.read()
        stdin = ""
    if args.stdin:
        with open(args.stdin) as fh:
            stdin = fh.read()

    try:
        tracer, profile, collector, result, wall_s, metrics = _record_one(
            source, stdin, args.config, args.model, args.gc_interval,
            profile_on=not args.no_profile)
    except (GCCheckError, VMError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    tracer.write_jsonl(args.out)
    if args.chrome:
        tracer.write_chrome(args.chrome)
    if args.metrics_out and metrics is not None:
        metrics.write_jsonl(args.metrics_out, append=False)
    if args.prom and metrics is not None:
        metrics.write_prometheus(args.prom)
    if args.pgo_out:
        if profile is None:
            raise SystemExit("error: --pgo-out needs profiling "
                             "(drop --no-profile)")
        _write_pgo(profile.to_pgo(), args.pgo_out, quiet=args.quiet)
    summary = summarize(tracer.events, profile, top=args.top,
                        metrics=metrics)
    summary["run"] = {
        "workload": args.workload, "source": args.source,
        "config": args.config, "model": args.model,
        "gc_interval": args.gc_interval, "exit_code": result.exit_code,
        "cycles": result.cycles, "instructions": result.instructions,
        "collections": result.collections, "checks": result.checks,
        "wall_s": round(wall_s, 6),
    }
    if args.summary_json:
        with open(args.summary_json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not args.quiet:
        what = args.workload or args.source
        print(f"recorded {what} [{args.config}/{args.model}]: "
              f"exit={result.exit_code} cycles={result.cycles} "
              f"instructions={result.instructions} "
              f"collections={result.collections} wall={wall_s:.2f}s")
        print(f"trace: {args.out} ({len(tracer.events)} events)"
              + (f", chrome: {args.chrome}" if args.chrome else ""))
        print()
        print(render_text(summary, profile, top=args.top))
    return 0


def _write_pgo(doc: dict, path: str, quiet: bool = False) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")
    if not quiet:
        print(f"pgo profile: {path} ({len(doc['blocks'])} blocks, "
              f"{doc['total_cycles']} cycles)")


def _merged_pgo_from_events(events: list[dict]) -> dict:
    """The pgo envelope for a trace: its embedded ``vm.profile``
    instants merged (several recordings may share one trace file) —
    per-(function, block) cycles/instructions summed, hottest first."""
    dicts = [e["args"]["profile"] for e in events
             if e.get("name") == "vm.profile"
             and isinstance(e.get("args", {}).get("profile"), dict)]
    if not dicts:
        raise SystemExit("error: trace has no vm.profile instants "
                         "(record with profiling enabled)")
    acc: dict[tuple, list[int]] = {}
    runs = total_cycles = total_instructions = 0
    tag = ""
    for d in dicts:
        tag = tag or str(d.get("tag", ""))
        runs += int(d.get("runs", 0))
        total_cycles += int(d.get("total_cycles", 0))
        total_instructions += int(d.get("total_instructions", 0))
        for b in d.get("blocks", ()):
            cell = acc.setdefault((str(b["function"]), str(b["block"])),
                                  [0, 0])
            cell[0] += int(b.get("cycles", 0))
            cell[1] += int(b.get("instructions", 0))
    blocks = [{"function": f, "block": blk, "cycles": cyc,
               "instructions": ins}
              for (f, blk), (cyc, ins) in acc.items()]
    blocks.sort(key=lambda b: (-b["cycles"], b["function"], b["block"]))
    return pgo_from_profile_dict({
        "tag": tag, "runs": runs, "total_cycles": total_cycles,
        "total_instructions": total_instructions, "blocks": blocks})


def cmd_report(args: argparse.Namespace) -> int:
    events = load_jsonl(args.trace)
    if args.pgo:
        _write_pgo(_merged_pgo_from_events(events), args.pgo,
                   quiet=args.json)
    summary = summarize(events, top=args.top)
    if args.json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(render_text(summary, top=args.top))
    return 0


def cmd_trajectory(args: argparse.Namespace) -> int:
    if args.check:
        paths = args.files or default_trajectories()
        if not paths:
            print("trajectory check: no BENCH_*.json files found",
                  file=sys.stderr)
            return 1
        failed = 0
        for path, issues in validate_trajectories(paths).items():
            if issues:
                failed += 1
                for issue in issues:
                    print(f"FAIL {issue}", file=sys.stderr)
            elif not args.quiet:
                print(f"ok   {path}")
        if failed:
            print(f"trajectory check: {failed}/{len(paths)} file(s) "
                  "malformed or empty", file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"trajectory check: {len(paths)} file(s) valid")
        return 0

    source, stdin = _workload_source(args.workload)
    configs = tuple(c.strip() for c in args.configs.split(",") if c.strip())
    point: dict = {
        "date": time.strftime("%Y-%m-%d"),
        "workload": args.workload,
        "model": args.model,
        "label": args.label,
        "configs": {},
    }
    for config_name in configs:
        tracer, profile, collector, result, wall_s, _ = _record_one(
            source, stdin, config_name, args.model, args.gc_interval,
            profile_on=False, metrics_on=False)
        stats = collector.stats
        point["configs"][config_name] = {
            "exit_code": result.exit_code,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "collections": result.collections,
            "checks": result.checks,
            "wall_s": round(wall_s, 4),
            "gc_pause_ns": stats.gc_pause_ns,
            "gc_root_scan_ns": stats.root_scan_ns,
            "gc_mark_ns": stats.mark_ns,
            "gc_sweep_ns": stats.sweep_ns,
            "gc_max_pause_ns": stats.max_pause_ns,
            "live_bytes_after": stats.live_bytes,
        }
        if not args.quiet:
            print(f"{args.workload}/{config_name}/{args.model}: "
                  f"cycles={result.cycles} wall={wall_s:.2f}s "
                  f"gc_pause={stats.gc_pause_ns / 1e6:.2f}ms "
                  f"collections={result.collections}", flush=True)

    try:
        with open(args.out) as fh:
            doc = json.load(fh)
        if doc.get("schema") != TRAJECTORY_SCHEMA:
            raise SystemExit(f"error: {args.out} has unexpected schema "
                             f"{doc.get('schema')!r}")
    except FileNotFoundError:
        doc = {"schema": TRAJECTORY_SCHEMA, "points": []}
    doc["points"].append(point)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if not args.quiet:
        print(f"appended trajectory point #{len(doc['points'])} to {args.out}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Watch mode: render the newest snapshot in a metrics JSONL file."""
    last_seq = None
    while True:
        snapshot = load_snapshot(args.file)
        try:
            if snapshot is None:
                print(f"(no metrics snapshot in {args.file} yet)")
            elif snapshot.get("seq") != last_seq or args.once:
                last_seq = snapshot.get("seq")
                print(render_snapshot(snapshot, top=args.top))
        except BrokenPipeError:  # `obs top ... | head` is a normal use
            return 0
        if args.once:
            return 0 if snapshot is not None else 1
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_sentinel(args: argparse.Namespace) -> int:
    configs = tuple(c.strip() for c in args.configs.split(",") if c.strip())
    verdict = run_sentinel(
        workload=args.workload, model=args.model, configs=configs,
        repeats=args.repeats, gc_interval=args.gc_interval,
        trajectories=args.files or None, wall_slack=args.wall_slack,
        mad_k=args.mad_k, strict_wall=args.strict_wall,
        append=args.append, label=args.label, quiet=args.quiet)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(verdict, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        json.dump(verdict, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(render_verdict(verdict))
    return 0 if verdict["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Telemetry: record traces, render reports, track the "
                    "perf trajectory")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record", help="trace + profile one workload run")
    p.add_argument("--workload", default=None,
                   help=f"workload name ({', '.join(WORKLOADS)}, "
                        f"{', '.join(AUX_WORKLOADS)})")
    p.add_argument("--source", default=None, metavar="FILE",
                   help="C source file instead of a named workload")
    p.add_argument("--config", default="O_safe",
                   choices=("O0", "O", "O_safe", "g", "g_checked"))
    p.add_argument("--model", choices=tuple(MODELS), default="ss10")
    p.add_argument("--gc-interval", type=int, default=0)
    p.add_argument("--stdin", default=None, metavar="FILE")
    p.add_argument("--out", default="obs-trace.jsonl", metavar="FILE",
                   help="JSONL trace output (default: obs-trace.jsonl)")
    p.add_argument("--chrome", default=None, metavar="FILE",
                   help="also export a chrome://tracing JSON trace")
    p.add_argument("--summary-json", default=None, metavar="FILE",
                   help="write the summary dict as JSON")
    p.add_argument("--pgo-out", default=None, metavar="FILE",
                   help=f"write the per-block profile as a {PGO_SCHEMA} "
                        "envelope for superinstruction fusion")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the hot-spot tables")
    p.add_argument("--no-profile", action="store_true",
                   help="skip VM hot-spot profiling (trace only)")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the repro-obs-metrics/1 snapshot (JSONL)")
    p.add_argument("--prom", default=None, metavar="FILE",
                   help="write a Prometheus text-exposition export")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(fn=cmd_record)

    p = sub.add_parser("report", help="render reports from a JSONL trace")
    p.add_argument("trace")
    p.add_argument("--json", action="store_true")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--pgo", default=None, metavar="FILE",
                   help=f"extract the trace's vm.profile instants into "
                        f"a {PGO_SCHEMA} envelope")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("trajectory",
                       help="append a perf-trajectory point to BENCH_obs.json "
                            "or validate trajectories (--check)")
    p.add_argument("files", nargs="*", metavar="FILE",
                   help="trajectory files for --check "
                        "(default: every BENCH_*.json)")
    p.add_argument("--check", action="store_true",
                   help="schema-validate trajectories instead of recording; "
                        "exits non-zero on malformed/empty files")
    p.add_argument("--workload", default="cfrac")
    p.add_argument("--model", choices=tuple(MODELS), default="ss10")
    p.add_argument("--configs", default=",".join(DEFAULT_TRAJECTORY_CONFIGS))
    p.add_argument("--gc-interval", type=int, default=0)
    p.add_argument("--out", default="BENCH_obs.json")
    p.add_argument("--label", default="")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(fn=cmd_trajectory)

    p = sub.add_parser("top", help="watch live metrics snapshots")
    p.add_argument("file", help="metrics JSONL file (from --metrics-out)")
    p.add_argument("--interval", type=float, default=2.0)
    p.add_argument("--once", action="store_true",
                   help="render the latest snapshot and exit")
    p.add_argument("--top", type=int, default=0,
                   help="limit counters shown (0 = all)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("sentinel",
                       help="compare a fresh run against the BENCH_*.json "
                            "trajectories (perf-regression gate)")
    p.add_argument("files", nargs="*", metavar="FILE",
                   help="trajectory files (default: every BENCH_*.json)")
    p.add_argument("--workload", default="cfrac")
    p.add_argument("--model", choices=tuple(MODELS), default="ss10")
    p.add_argument("--configs", default=",".join(DEFAULT_TRAJECTORY_CONFIGS))
    p.add_argument("--gc-interval", type=int, default=0)
    p.add_argument("--repeats", type=int, default=3,
                   help="min-of-N wall measurement (default 3)")
    p.add_argument("--wall-slack", type=float, default=0.5,
                   help="relative wall tolerance floor (default 0.5)")
    p.add_argument("--mad-k", type=float, default=3.0,
                   help="MAD multiplier for the wall bound (default 3)")
    p.add_argument("--strict-wall", action="store_true",
                   help="wall regressions fail the verdict (default: "
                        "advisory; only counts gate)")
    p.add_argument("--append", action="store_true",
                   help="append the fresh point to the trajectory when green")
    p.add_argument("--label", default="sentinel")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the repro-obs-sentinel/1 verdict JSON")
    p.add_argument("--json", action="store_true")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(fn=cmd_sentinel)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
