"""The single injectable nanosecond clock behind every obs timestamp.

Before this module existed the telemetry layer mixed clock sources:
``tracer.py`` read ``time.perf_counter_ns`` while ``obs/cli.py`` timed
wall seconds with ``time.perf_counter`` — two monotonic clocks that
cannot be cross-referenced and cannot be faked together in tests.  Now
every obs consumer (tracer epochs, GC pause timing, engine task
latency, metric histograms, CLI wall times) reads nanoseconds from the
one process-wide clock installed here.

The clock is injectable for tests and replay tooling::

    from repro.obs import clock
    clock.set_clock(fake_ns)       # deterministic timestamps
    ...
    clock.reset()                  # back to time.perf_counter_ns

Stdlib-only leaf: importable from the GC, the VM, and the engine
without cycles.  Swapping the clock affects *observation only* — the
simulated cycle/instruction counts never read it.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterator

#: Nanosecond monotonic clock; the process-wide default.
DEFAULT_CLOCK: Callable[[], int] = time.perf_counter_ns

_clock: Callable[[], int] = DEFAULT_CLOCK


def get_clock() -> Callable[[], int]:
    """The active nanosecond clock (hot paths cache the callable)."""
    return _clock


def set_clock(clock: Callable[[], int]) -> Callable[[], int]:
    """Install ``clock`` as the process-wide ns source; returns it."""
    global _clock
    _clock = clock
    return clock


def reset() -> None:
    """Restore ``time.perf_counter_ns``."""
    set_clock(DEFAULT_CLOCK)


def now_ns() -> int:
    """One reading of the active clock."""
    return _clock()


@contextlib.contextmanager
def clock_context(clock: Callable[[], int]) -> Iterator[Callable[[], int]]:
    """Run a block under ``clock``; restores the previous source."""
    previous = _clock
    set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)
