"""VM hot-spot profile: cycle/instruction attribution for the
threaded-code interpreter.

The VM (``machine/vm.py``) compiles every machine instruction into a
closure once at link time.  When a :class:`VMProfile` is attached, each
closure is wrapped with an accounting shim that attributes the cycle
delta of that instruction to its function and its basic block (the
stretch of instructions following a label), and counts calls and
pointer-check builtins per call site.  The shims only *read* the VM's
cycle counter — simulated counts are bit-identical with and without a
profile attached (a test asserts this).

Attribution rules (they make the totals exact):

* a non-call instruction attributes its own cycle cost;
* a call to a *builtin* attributes the call cost plus the builtin's
  extra cycles (builtins are leaves — that is their whole cost);
* a call to a *compiled* function attributes only the static call cost
  to the caller and bumps the callee's call count; the callee's
  instructions attribute themselves.

Hence ``sum(function cycles) == RunResult.cycles`` and
``sum(function instructions) == RunResult.instructions``.

The accumulator cells are plain ``[cycles, instructions, calls]``
lists so the shims stay allocation-free on the hot path.
"""

from __future__ import annotations

from typing import Any

from ..api import envelopes

# Builtins that are pointer-arithmetic checks (the paper's GC_same_obj
# family): profiled per call site so check overhead in `-checked`
# builds can be attributed to the code that incurs it.
CHECK_BUILTINS = frozenset((
    "GC_same_obj", "GC_pre_incr", "GC_post_incr", "GC_check_base", "GC_base",
))

# Persisted per-block profile envelope: the input to profile-guided
# superinstruction selection (``repro.machine.superinst``).  The format
# is deliberately tiny — block identities plus their cycle shares — so
# a profile recorded once replays deterministically forever.
PGO_SCHEMA = envelopes.VMPROF_PGO


def pgo_from_profile_dict(d: dict) -> dict:
    """Build a ``repro-vmprof-pgo/1`` envelope from a profile summary
    dict (``VMProfile.to_dict()`` output, as embedded in traces)."""
    return {
        "schema": PGO_SCHEMA,
        "tag": d.get("tag", ""),
        "runs": d.get("runs", 0),
        "total_cycles": d.get("total_cycles", 0),
        "total_instructions": d.get("total_instructions", 0),
        "blocks": [
            {"function": b["function"], "block": b["block"],
             "cycles": b["cycles"], "instructions": b["instructions"]}
            for b in d.get("blocks", [])
        ],
    }


class VMProfile:
    """Accumulates per-function / per-block / per-check-site costs."""

    def __init__(self, tag: str = ""):
        self.tag = tag
        # name -> [cycles, instructions, calls]
        self.funcs: dict[str, list[int]] = {}
        # (func, block-label) -> [cycles, instructions]
        self.blocks: dict[tuple[str, str], list[int]] = {}
        # (func, block-label, pc, builtin) -> [count]
        self.checks: dict[tuple[str, str, int, str], list[int]] = {}
        self.runs = 0  # completed VM.run() invocations

    # -- cell accessors (used by the VM at closure-compile time) -----------

    def func_cell(self, name: str) -> list[int]:
        cell = self.funcs.get(name)
        if cell is None:
            cell = self.funcs[name] = [0, 0, 0]
        return cell

    def block_cell(self, func: str, block: str) -> list[int]:
        key = (func, block)
        cell = self.blocks.get(key)
        if cell is None:
            cell = self.blocks[key] = [0, 0]
        return cell

    def check_cell(self, func: str, block: str, pc: int,
                   builtin: str) -> list[int]:
        key = (func, block, pc, builtin)
        cell = self.checks.get(key)
        if cell is None:
            cell = self.checks[key] = [0]
        return cell

    # -- aggregation -------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return sum(c[0] for c in self.funcs.values())

    @property
    def total_instructions(self) -> int:
        return sum(c[1] for c in self.funcs.values())

    def merge(self, other: "VMProfile") -> None:
        for name, cell in other.funcs.items():
            mine = self.func_cell(name)
            for i, v in enumerate(cell):
                mine[i] += v
        for key, cell in other.blocks.items():
            mine = self.block_cell(*key)
            for i, v in enumerate(cell):
                mine[i] += v
        for key, cell in other.checks.items():
            self.check_cell(*key)[0] += cell[0]
        self.runs += other.runs

    # -- reporting ---------------------------------------------------------

    def hot_functions(self, top: int = 10) -> list[tuple[str, int, int, int]]:
        """[(name, cycles, instructions, calls)] sorted by cycles."""
        rows = [(name, c[0], c[1], c[2]) for name, c in self.funcs.items()]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows[:top]

    def hot_blocks(self, top: int = 10) -> list[tuple[str, str, int, int]]:
        """[(func, block, cycles, instructions)] sorted by cycles."""
        rows = [(f, b, c[0], c[1]) for (f, b), c in self.blocks.items()]
        rows.sort(key=lambda r: (-r[2], r[0], r[1]))
        return rows[:top]

    def check_sites(self, top: int = 10) -> list[tuple[str, str, int, str, int]]:
        """[(func, block, pc, builtin, count)] sorted by count."""
        rows = [(f, b, pc, bi, c[0])
                for (f, b, pc, bi), c in self.checks.items()]
        rows.sort(key=lambda r: (-r[4], r[0], r[2]))
        return rows[:top]

    def render_report(self, top: int = 10) -> str:
        total_cyc = self.total_cycles or 1
        lines = [f"VM hot-spot profile"
                 + (f" [{self.tag}]" if self.tag else "")
                 + f": {self.total_cycles} cycles, "
                 f"{self.total_instructions} instructions, {self.runs} run(s)"]
        lines.append("")
        lines.append(f"  top functions{'':<17s} {'cycles':>12s} {'%':>6s} "
                     f"{'insts':>12s} {'calls':>9s}")
        for name, cyc, insts, calls in self.hot_functions(top):
            lines.append(f"  {name:<30.30s} {cyc:>12d} "
                         f"{100.0 * cyc / total_cyc:>5.1f}% "
                         f"{insts:>12d} {calls:>9d}")
        lines.append("")
        lines.append(f"  top basic blocks{'':<24s} {'cycles':>12s} {'%':>6s} "
                     f"{'insts':>12s}")
        for func, block, cyc, insts in self.hot_blocks(top):
            where = f"{func}:{block}"
            lines.append(f"  {where:<40.40s} {cyc:>12d} "
                         f"{100.0 * cyc / total_cyc:>5.1f}% {insts:>12d}")
        sites = self.check_sites(top)
        if sites:
            lines.append("")
            lines.append(f"  pointer-check call sites{'':<21s} {'builtin':>14s} "
                         f"{'count':>10s}")
            for func, block, pc, builtin, count in sites:
                where = f"{func}:{block}+{pc}"
                lines.append(f"  {where:<45.45s} {builtin:>14s} {count:>10d}")
        return "\n".join(lines)

    def to_pgo(self) -> dict[str, Any]:
        """The persisted ``repro-vmprof-pgo/1`` envelope for this
        profile: every basic block with its cycle/instruction totals,
        hottest first (see :data:`PGO_SCHEMA`)."""
        return pgo_from_profile_dict(self.to_dict())

    def to_dict(self, top: int = 0) -> dict[str, Any]:
        """JSON-ready summary; ``top=0`` means everything."""
        n = top or None
        return {
            "tag": self.tag,
            "runs": self.runs,
            "total_cycles": self.total_cycles,
            "total_instructions": self.total_instructions,
            "functions": [
                {"name": f, "cycles": c, "instructions": i, "calls": k}
                for f, c, i, k in self.hot_functions(top or len(self.funcs))
            ][:n],
            "blocks": [
                {"function": f, "block": b, "cycles": c, "instructions": i}
                for f, b, c, i in self.hot_blocks(top or len(self.blocks))
            ][:n],
            "check_sites": [
                {"function": f, "block": b, "pc": pc, "builtin": bi,
                 "count": c}
                for f, b, pc, bi, c in self.check_sites(top or len(self.checks))
            ][:n],
        }
