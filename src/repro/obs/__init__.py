"""Observability layer: structured tracing, GC/heap timelines, VM
hot-spot profiling, and the ``python -m repro.obs`` reporting CLI.

Leaf modules (importable from anywhere, stdlib-only):

* :mod:`repro.obs.tracer` — the event model and JSONL/Chrome exporters.
* :mod:`repro.obs.vmprof` — the VM cycle-attribution profile.
* :mod:`repro.obs.runtime` — process-wide tracer/profiler lookup.

Higher layers (import the compiler/VM; never imported by them):

* :mod:`repro.obs.report` — trace summarization and text rendering.
* :mod:`repro.obs.cli` — ``record`` / ``report`` / ``trajectory``.

See ``docs/OBSERVABILITY.md`` for the event schema and workflows.
"""

from .runtime import (
    disable_profiling, disable_tracing, enable_profiling, enable_tracing,
    get_tracer, profiling_enabled, session_profile, set_tracer,
    tracing_enabled,
)
from .tracer import SCHEMA, Span, TraceEvent, Tracer, load_jsonl
from .vmprof import CHECK_BUILTINS, VMProfile

__all__ = [
    "disable_profiling", "disable_tracing", "enable_profiling",
    "enable_tracing", "get_tracer", "profiling_enabled", "session_profile",
    "set_tracer", "tracing_enabled", "SCHEMA", "Span", "TraceEvent",
    "Tracer", "load_jsonl", "CHECK_BUILTINS", "VMProfile",
]
