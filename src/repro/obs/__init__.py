"""Observability layer: structured tracing, typed metrics, GC/heap
timelines, VM hot-spot profiling, and the ``python -m repro.obs``
reporting CLI.

Leaf modules (importable from anywhere, stdlib-only):

* :mod:`repro.obs.clock` — the single injectable ns clock behind every
  obs timestamp.
* :mod:`repro.obs.tracer` — the event model and JSONL/Chrome exporters.
* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms
  with deterministic snapshots and percentiles.
* :mod:`repro.obs.vmprof` — the VM cycle-attribution profile.
* :mod:`repro.obs.runtime` — process-wide tracer/metrics/profiler
  lookup.

Higher layers (import the compiler/VM; never imported by them):

* :mod:`repro.obs.report` — trace summarization and text rendering.
* :mod:`repro.obs.sentinel` — trajectory validation and the
  perf-regression sentinel.
* :mod:`repro.obs.cli` — ``record`` / ``report`` / ``trajectory`` /
  ``top`` / ``sentinel``.

See ``docs/OBSERVABILITY.md`` for the event schema and workflows.
"""

from .clock import clock_context, get_clock, now_ns, set_clock
from .metrics import (
    COUNT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
    TIME_BUCKETS_NS,
)
from .metrics import SCHEMA as METRICS_SCHEMA
from .runtime import (
    disable_metrics, disable_profiling, disable_tracing, enable_metrics,
    enable_profiling, enable_tracing, get_metrics, get_tracer,
    metrics_enabled, profiling_enabled, session_profile, set_metrics,
    set_tracer, tracing_enabled,
)
from .tracer import SCHEMA, Span, TraceEvent, Tracer, load_jsonl
from .vmprof import CHECK_BUILTINS, VMProfile

__all__ = [
    "clock_context", "get_clock", "now_ns", "set_clock",
    "COUNT_BUCKETS", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "TIME_BUCKETS_NS", "METRICS_SCHEMA",
    "disable_metrics", "disable_profiling", "disable_tracing",
    "enable_metrics", "enable_profiling", "enable_tracing", "get_metrics",
    "get_tracer", "metrics_enabled", "profiling_enabled", "session_profile",
    "set_metrics", "set_tracer", "tracing_enabled", "SCHEMA", "Span",
    "TraceEvent", "Tracer", "load_jsonl", "CHECK_BUILTINS", "VMProfile",
]
