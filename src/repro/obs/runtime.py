"""Process-wide telemetry session state.

Subsystems (collector, VM, compile pipeline) look up the active tracer
and profiling sink here, so *any* entry point — the repro CLI, the fuzz
CLI, pytest, the bench harness — can turn telemetry on without the code
in between threading tracer objects through every call:

    from repro.obs import runtime
    tracer = runtime.enable_tracing()      # spans/counters start recording
    runtime.enable_profiling()             # every VM built from now on
    ...                                    #   accumulates into one profile
    tracer.write_jsonl("trace.jsonl")
    print(runtime.session_profile().render_report())

The default state is a *disabled* tracer and no profiling sink: the
instrumented code paths all reduce to one attribute test (see
``tracer.Tracer``), and VMs compile their plain un-wrapped closures.

This module must stay import-cycle-free: it may import only
``obs.tracer``, ``obs.vmprof``, and ``obs.metrics`` (all stdlib-only
leaves).
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .tracer import Tracer
from .vmprof import VMProfile

_tracer: Tracer = Tracer(enabled=False)
_profile: VMProfile | None = None
_metrics: MetricsRegistry | None = None


def get_tracer() -> Tracer:
    """The active process-wide tracer (disabled by default)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _tracer
    _tracer = tracer
    return tracer


def enable_tracing(clock=None) -> Tracer:
    """Install and return a fresh enabled tracer."""
    return set_tracer(Tracer(enabled=True, clock=clock))


def disable_tracing() -> None:
    set_tracer(Tracer(enabled=False))


def tracing_enabled() -> bool:
    return _tracer.enabled


def enable_profiling() -> VMProfile:
    """Install a session-wide VM profile sink.  Every VM constructed
    while the sink is active attributes its execution into it."""
    global _profile
    if _profile is None:
        _profile = VMProfile(tag="session")
    return _profile


def disable_profiling() -> None:
    global _profile
    _profile = None


def profiling_enabled() -> bool:
    return _profile is not None


def session_profile() -> VMProfile | None:
    """The active profile sink (None when profiling is off)."""
    return _profile


def get_metrics() -> MetricsRegistry | None:
    """The active metrics registry (None when metrics are off).

    Instrumented hot paths read this once per operation; the disabled
    path is a single ``is None`` test, mirroring ``tracer.enabled``.
    """
    return _metrics


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    global _metrics
    _metrics = registry
    return registry


def enable_metrics(out: str | None = None) -> MetricsRegistry:
    """Install and return a fresh metrics registry.  ``out`` becomes the
    registry's flush destination (JSONL snapshots, or Prometheus text
    when the path ends in ``.prom``)."""
    return set_metrics(MetricsRegistry(out_path=out))


def disable_metrics() -> None:
    set_metrics(None)


def metrics_enabled() -> bool:
    return _metrics is not None


def reset() -> None:
    """Restore the default (disabled) state — used by tests and CLIs."""
    global _profile, _metrics
    disable_tracing()
    _profile = None
    _metrics = None
