"""``python -m repro.fuzz`` — run a differential fuzzing campaign.

    python -m repro.fuzz --seed 0 --iters 500
        Fuzz 500 generated programs through the five-config oracle
        (exit status 1 if any differential mismatch was found).

    python -m repro.fuzz --seed 0 --iters 500 --reduce --out findings/
        Same, but delta-debug every finding to a minimal reproducer and
        write <source, minimized, report> files under findings/.

    python -m repro.fuzz --replay prog.c
        Run one existing program through the full oracle (for triage).

``--trace FILE`` / ``--profile`` / ``--metrics-out FILE`` attach the
repro.obs telemetry layer: the trace records per-stage campaign timings
and every compile/GC/VM event; the profile aggregates VM hot spots
across all oracle cells; the metrics snapshot captures campaign-wide
counters and latency histograms (watch with ``repro obs top FILE``).
"""

from __future__ import annotations

import argparse
import os
import sys

from ..api import Toolchain
from ..api.build import dumps_canonical, fuzz_envelope
from ..cliutil import add_report_flags
from ..exec import cache as exec_cache
from ..exec.cli import resolve_cache_dir
from ..machine.models import MODELS
from ..obs import runtime as obs_runtime
from .gen import GenOptions
from .oracle import check_program, mismatch_predicate
from .reduce import ReduceStats, reduce_source


def _parse_models(text: str) -> tuple[str, ...]:
    models = tuple(m.strip() for m in text.split(",") if m.strip())
    for m in models:
        if m not in MODELS:
            raise argparse.ArgumentTypeError(
                f"unknown model {m!r} (expected from {tuple(MODELS)})")
    return models


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing: five build configs x machine "
                    "models must agree; GC-safe configs must survive an "
                    "adversarial collector (gc_interval=1, poisoning).")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed; iteration k fuzzes program seed+k")
    p.add_argument("--iters", type=int, default=100,
                   help="number of generated programs to check")
    p.add_argument("--models", type=_parse_models, default=("ss10", "ss2", "p90"),
                   help="comma-separated machine models (default: all three)")
    p.add_argument("--adv-interval", type=int, default=1,
                   help="adversarial collection interval in instructions")
    p.add_argument("--reduce", action="store_true",
                   help="delta-debug each finding to a minimal reproducer")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write finding artifacts (source/minimized/report)")
    p.add_argument("--keep-going", action="store_true",
                   help="do not stop at the first finding")
    p.add_argument("--max-statements", type=int, default=None,
                   help="cap generated statements per program")
    p.add_argument("--max-instructions", type=int, default=5_000_000)
    add_report_flags(p, json_schema="repro-fuzz/1")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed compile cache root "
                        "(default: $REPRO_CACHE_DIR)")
    p.add_argument("--replay", metavar="FILE", default=None,
                   help="oracle-check one existing .c file and exit")
    p.add_argument("--rebreak-addrfold", action="store_true",
                   help="TEST ONLY: reintroduce the PR 1 addrfold aliasing "
                        "bug to validate the oracle/reducer pipeline")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a JSONL telemetry trace of the campaign")
    p.add_argument("--profile", action="store_true",
                   help="print the aggregate VM hot-spot profile to stderr")
    p.add_argument("--quiet", action="store_true")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    quiet = args.quiet or args.json  # --json owns stdout
    log = (lambda msg: None) if quiet else (lambda msg: print(msg, flush=True))

    def execute() -> int:
        if args.replay:
            with open(args.replay) as fh:
                source = fh.read()
            report = check_program(source, models=args.models,
                                   adv_interval=args.adv_interval,
                                   max_instructions=args.max_instructions,
                                   workers=args.workers)
            print(report.describe())
            if not report.ok and args.reduce:
                stats = ReduceStats()
                pred = mismatch_predicate(
                    report.mismatches[0].signature(),
                    max_instructions=args.max_instructions,
                    adv_interval=args.adv_interval)
                minimized = reduce_source(source, pred, stats=stats)
                print(f"--- minimized {stats.lines_before} -> "
                      f"{stats.lines_after} lines ({stats.tests} tests) ---")
                print(minimized, end="")
            return 0 if report.ok else 1

        gen_options = GenOptions()
        if args.max_statements is not None:
            gen_options.max_statements = args.max_statements
            gen_options.min_statements = min(gen_options.min_statements,
                                             args.max_statements)
        result = Toolchain(workers=args.workers).fuzz(
            seed=args.seed, iters=args.iters, models=args.models,
            adv_interval=args.adv_interval, reduce=args.reduce,
            out_dir=args.out, gen_options=gen_options,
            stop_after=None if args.keep_going else 1,
            max_instructions=args.max_instructions, log=log)
        if args.json:
            print(dumps_canonical(fuzz_envelope(result)))
            return 0 if result.ok else 1
        verdict = ("zero differential mismatches"
                   if result.ok else f"{len(result.findings)} finding(s)")
        log(f"checked {result.iterations} programs "
            f"({result.cells} oracle cells): {verdict}")
        t = result.telemetry
        if t:
            log(f"stage wall: gen {t['gen_s']:.2f}s, "
                f"oracle {t['oracle_s']:.2f}s, reduce {t['reduce_s']:.2f}s")
        return 0 if result.ok else 1

    cache_dir = resolve_cache_dir(args.cache_dir)
    caches = ()
    if cache_dir:
        caches = (exec_cache.CompileCache(
            os.path.join(cache_dir, "compile")),)
        for cache in caches:
            exec_cache.install_cache(cache)
    if args.trace:
        obs_runtime.enable_tracing()
    if args.profile:
        obs_runtime.enable_profiling()
    if args.metrics_out:
        obs_runtime.enable_metrics(out=args.metrics_out)
    try:
        if args.rebreak_addrfold:
            from .brokenpass import rebroken_addrfold
            log("WARNING: running with the addrfold aliasing bug re-broken "
                "(test-only mode)")
            with rebroken_addrfold():
                return execute()
        return execute()
    finally:
        if args.trace:
            obs_runtime.get_tracer().write_jsonl(args.trace)
            print(f"! trace written to {args.trace}", file=sys.stderr)
        profile = obs_runtime.session_profile()
        if args.profile and profile is not None and profile.funcs:
            print(profile.render_report(), file=sys.stderr)
        if args.metrics_out:
            metrics = obs_runtime.get_metrics()
            if metrics is not None:
                metrics.flush()
                print(f"! metrics written to {args.metrics_out}",
                      file=sys.stderr)
            obs_runtime.disable_metrics()
        if args.trace or args.profile:
            obs_runtime.reset()
        for cache in caches:
            s = cache.stats
            print(f"! cache[{cache.kind}]: {s.hits} hits, {s.misses} misses, "
                  f"{s.stores} stores", file=sys.stderr)
        if caches:
            exec_cache.uninstall_cache()


if __name__ == "__main__":
    sys.exit(main())
