"""Seeded structured C program generator.

Much richer than the hypothesis toy in
``tests/test_integration/test_random_programs.py``: programs use structs
with linked-list chains, nested (2-D) arrays, global arrays, helper
functions, pointer casts, interior pointers, allocation churn, and —
deliberately — the disguise-prone address arithmetic shapes the paper
opens with (``p[i - C]`` reassociation bait and the ``x + (x - c)``
in-place aliasing shape from the PR 1 addrfold miscompile), plus
allocation-sinking bait for the escape-analysis pass: fully local
scratch buffers (should sink), conditional escapes, aliases through
casts, and buffers live across another allocation (must not sink, or
must sink without changing observables).

Every program is defined-behavior by construction:

* all array indices are in-bounds by construction (the generator tracks
  object extents and only emits accesses inside them);
* every variable is initialized before use;
* arithmetic that could overflow is masked at the point of storage
  (``& 0xFFFF`` / ``& 0xFF``) — and the simulated machine is a fixed
  32-bit two's-complement target whose optimizer folds with the exact
  VM semantics, so even intermediate wraparound is consistent;
* division/modulo never see a zero divisor (the generator only divides
  by non-zero constants);
* pointers stay inside their objects at the *source* level — the whole
  point is that only the optimizer manufactures out-of-object pointers.

Each statement (including compound ones) is emitted on a single source
line so the delta-debugging reducer can work at statement granularity.

Programs print their checksum(s) with ``printf`` and return a masked
checksum as the exit code, giving the oracle three observables: exit
code, output text, and checksum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class GenOptions:
    """Tuning knobs for one generated program."""

    min_statements: int = 6
    max_statements: int = 18
    max_array_len: int = 48
    min_array_len: int = 16
    max_helpers: int = 2
    list_len_max: int = 4


class _Gen:
    def __init__(self, seed: int, options: GenOptions):
        self.rng = random.Random(seed)
        self.opt = options
        self.na = self.rng.randint(options.min_array_len,
                                   options.max_array_len)
        self.ng = self.rng.randint(8, 16)           # global array length
        self.rows = self.rng.randint(2, 4)          # stk[rows][cols]
        self.cols = self.rng.randint(2, 4)
        self.pad = self.rng.randint(2, 5)           # struct S pad[] length
        self.list_len = self.rng.randint(2, options.list_len_max)
        self.n_helpers = self.rng.randint(0, options.max_helpers)
        self.use_struct = self.rng.random() < 0.9

    # -- small expression grammar ------------------------------------------

    def idx(self) -> int:
        return self.rng.randint(0, self.na - 1)

    def expr(self, depth: int = 2) -> str:
        """An int-valued expression over initialized names; the caller
        masks it before storing."""
        r = self.rng
        if depth == 0 or r.random() < 0.4:
            return r.choice(["x", "acc", str(r.randint(0, 99)),
                             f"a[{self.idx()}]", f"g0[{r.randint(0, self.ng - 1)}]"])
        op = r.choice(["+", "-", "*", "+", "-"])
        return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"

    # -- statement kinds ----------------------------------------------------

    def st_acc_load(self) -> str:
        return f"acc = (acc + a[{self.idx()}]) & 0xFFFF;"

    def st_store(self) -> str:
        return f"a[{self.idx()}] = ({self.expr()}) & 0xFF;"

    def st_global(self) -> str:
        gi = self.rng.randint(0, self.ng - 1)
        if self.rng.random() < 0.5:
            return f"g0[{gi}] = ({self.expr()}) & 0xFF;"
        return f"acc = (acc + g0[{gi}]) & 0xFFFF;"

    def st_loop_sum(self) -> str:
        n = self.rng.randint(2, self.na)
        c = self.rng.randint(1, 9)
        return (f"for (j = 0; j < {n}; j++) "
                f"acc = (acc + a[j] * {c}) & 0xFFFF;")

    def st_interior(self) -> str:
        off = self.rng.randint(1, self.na - 1)
        k = self.rng.randint(-off, self.na - 1 - off)
        return (f"{{ int *p = a + {off}; "
                f"acc = (acc + p[{k}]) & 0xFFFF; }}")

    def st_disguise_sub(self) -> str:
        """The paper's motivating shape: an index expression ``x - C``
        whose reassociation manufactures a below-object pointer."""
        c = self.rng.randint(8, min(self.na - 1, 30))
        target = self.rng.randint(c, self.na - 1)
        return (f"{{ x = {target}; "
                f"acc = (acc + a[x - {c}]) & 0xFFFF; }}")

    def st_alias_add(self) -> str:
        """PR 1's addrfold miscompile shape: ``x + (x - c)`` where the
        in-place rewrite would clobber the base register."""
        c = self.rng.randint(100, 5000)
        return (f"{{ x = a[{self.idx()}]; "
                f"acc = (acc + (x + (x - {c}))) & 0xFFFF; }}")

    def st_churn(self) -> str:
        sz = self.rng.randint(4, 24)
        m = self.rng.randint(1, 9)
        return (f"{{ b = (int *)GC_malloc({sz} * sizeof(int)); "
                f"for (j = 0; j < {sz}; j++) b[j] = (j * {m} + acc) & 0xFF; "
                f"acc = (acc + b[{self.rng.randint(0, sz - 1)}]) & 0xFFFF; }}")

    def st_pure_churn(self) -> str:
        return f"GC_malloc({self.rng.randint(8, 96)});"

    def st_byte_view(self) -> str:
        bi = self.rng.randint(0, 4 * self.na - 1)
        return f"acc = (acc + cp[{bi}]) & 0xFFFF;"

    def st_cast_roundtrip(self) -> str:
        off = self.rng.randint(1, self.na - 1)
        k = self.rng.randint(-off, self.na - 1 - off)
        return (f"{{ char *q = (char *)(a + {off}); int *r = (int *)q; "
                f"acc = (acc + r[{k}]) & 0xFFFF; }}")

    def st_ptr_walk(self) -> str:
        steps = self.rng.randint(1, self.na - 1)
        return (f"{{ int *p = a; for (j = 0; j < {steps}; j++) p++; "
                f"acc = (acc + *p) & 0xFFFF; }}")

    def st_stk2d(self) -> str:
        r = self.rng.randint(0, self.rows - 1)
        c = self.rng.randint(0, self.cols - 1)
        if self.rng.random() < 0.5:
            return f"stk[{r}][{c}] = ({self.expr()}) & 0xFF;"
        return f"acc = (acc + stk[{r}][{c}]) & 0xFFFF;"

    def st_struct_walk(self) -> str:
        return ("{ struct S *s = head; while (s) { "
                "acc = (acc + s->val) & 0xFFFF; s = s->next; } }")

    def st_struct_store(self) -> str:
        node = self.rng.choice(["head", "head->next"])
        field = self.rng.choice(
            ["val", f"pad[{self.rng.randint(0, self.pad - 1)}]"])
        return f"{node}->{field} = ({self.expr()}) & 0xFF;"

    def st_call(self) -> str:
        which = self.rng.randint(0, self.n_helpers - 1)
        off = self.rng.randint(0, self.na - 2)
        ln = self.rng.randint(1, self.na - off)
        return f"acc = (acc + hf{which}(a + {off}, {ln})) & 0xFFFF;"

    def st_struct_call(self) -> str:
        return "acc = (acc + sf0(head)) & 0xFFFF;"

    # -- allocation-sinking bait (postproc.sink) ----------------------------
    #
    # Shapes chosen to straddle the sinking pass's safety line: one that
    # should sink (fully local scratch buffer), and three that must not
    # (conditional escape, alias through a cast that feeds a store, and
    # a buffer live across another allocation — a collection point).
    # The oracle runs sink-enabled cells against the reference, so a
    # pass that sinks any of the hostile ones shows up as a mismatch.

    def st_sink_local(self) -> str:
        sz = self.rng.randint(2, 16)
        m = self.rng.randint(1, 9)
        return (f"{{ int *t = (int *)GC_malloc({sz} * sizeof(int)); "
                f"for (j = 0; j < {sz}; j++) t[j] = (acc + j * {m}) & 0xFF; "
                f"for (j = 0; j < {sz}; j++) acc = (acc + t[j]) & 0xFFFF; }}")

    def st_sink_cond_escape(self) -> str:
        sz = self.rng.randint(2, 12)
        thr = self.rng.randint(0, 200)
        return (f"{{ int *t = (int *)GC_malloc({sz} * sizeof(int)); "
                f"t[0] = acc & 0xFF; "
                f"if (({self.expr(1)}) > {thr}) b = t; "
                f"acc = (acc + b[0]) & 0xFFFF; }}")

    def st_sink_alias_cast(self) -> str:
        sz = self.rng.randint(2, 12)
        bi = self.rng.randint(0, 4 * sz - 1)
        return (f"{{ int *t = (int *)GC_malloc({sz} * sizeof(int)); "
                f"char *q = (char *)t; "
                f"for (j = 0; j < {sz}; j++) t[j] = (j + acc) & 0xFF; "
                f"q[{bi}] = acc & 0x7F; "
                f"acc = (acc + t[{bi // 4}]) & 0xFFFF; }}")

    def st_sink_live_across_gc(self) -> str:
        sz = self.rng.randint(2, 12)
        churn = self.rng.randint(8, 64)
        return (f"{{ int *t = (int *)GC_malloc({sz} * sizeof(int)); "
                f"t[0] = (acc + 7) & 0xFF; "
                f"GC_malloc({churn}); "
                f"acc = (acc + t[0]) & 0xFFFF; }}")

    def st_cond(self) -> str:
        i1, i2 = self.idx(), self.idx()
        return (f"if (({self.expr(1)}) > {self.rng.randint(0, 200)}) "
                f"acc = (acc + a[{i1}]) & 0xFFFF; "
                f"else acc = (acc + a[{i2}] + 1) & 0xFFFF;")

    # -- program assembly ---------------------------------------------------

    def statement(self) -> str:
        kinds = [
            (self.st_acc_load, 3), (self.st_store, 3), (self.st_global, 2),
            (self.st_loop_sum, 2), (self.st_interior, 3),
            (self.st_disguise_sub, 3), (self.st_alias_add, 2),
            (self.st_churn, 2), (self.st_pure_churn, 1),
            (self.st_byte_view, 2), (self.st_cast_roundtrip, 2),
            (self.st_ptr_walk, 2), (self.st_stk2d, 2), (self.st_cond, 2),
            (self.st_sink_local, 2), (self.st_sink_cond_escape, 1),
            (self.st_sink_alias_cast, 1), (self.st_sink_live_across_gc, 1),
        ]
        if self.use_struct:
            kinds += [(self.st_struct_walk, 2), (self.st_struct_store, 2),
                      (self.st_struct_call, 1)]
        if self.n_helpers:
            kinds += [(self.st_call, 2)]
        fns = [fn for fn, w in kinds for _ in range(w)]
        return self.rng.choice(fns)()

    def helper(self, n: int) -> list[str]:
        c1 = self.rng.randint(1, 9)
        c2 = self.rng.randint(1, 7)
        return [
            f"int hf{n}(int *p, int n) {{",
            "    int j, s = 0;",
            f"    for (j = 0; j < n; j++) s = (s + p[j] * {c1}) & 0xFFFF;",
            f"    if (n > {c2}) s = (s + p[n - {c2}]) & 0xFFFF;",
            "    return s;",
            "}",
        ]

    def struct_helper(self) -> list[str]:
        pi = self.rng.randint(0, self.pad - 1)
        return [
            "int sf0(struct S *s) {",
            "    int t = 0;",
            f"    while (s) {{ t = (t + s->val + s->pad[{pi}]) & 0xFFFF; "
            "s = s->next; }",
            "    return t;",
            "}",
        ]

    def generate(self) -> str:
        r = self.rng
        lines: list[str] = []
        if self.use_struct:
            lines.append(f"struct S {{ int val; int pad[{self.pad}]; "
                         "struct S *next; };")
        lines.append(f"int g0[{self.ng}];")
        for h in range(self.n_helpers):
            lines += self.helper(h)
        if self.use_struct:
            lines += self.struct_helper()
        lines.append("int main(void) {")
        lines.append(f"    int stk[{self.rows}][{self.cols}];")
        lines.append("    int *a; int *b; char *cp;")
        if self.use_struct:
            lines.append("    struct S *head; struct S *tail;")
        lines.append("    int i, j, x, acc;")
        lines.append(f"    a = (int *)GC_malloc({self.na} * sizeof(int));")
        m1, a1 = r.randint(1, 9), r.randint(0, 99)
        lines.append(f"    for (i = 0; i < {self.na}; i++) "
                     f"a[i] = (i * {m1} + {a1}) & 0xFF;")
        lines.append(f"    for (i = 0; i < {self.ng}; i++) "
                     f"g0[i] = (i * {r.randint(1, 9)} + {r.randint(0, 50)}) & 0xFF;")
        lines.append(f"    for (i = 0; i < {self.rows}; i++) "
                     f"for (j = 0; j < {self.cols}; j++) "
                     f"stk[i][j] = (i * {self.cols} + j + {r.randint(0, 30)}) & 0xFF;")
        lines.append("    b = a; cp = (char *)a;")
        lines.append(f"    x = {r.randint(0, self.na - 1)}; "
                     f"acc = {r.randint(0, 255)};")
        if self.use_struct:
            lines.append("    head = (struct S *)GC_malloc(sizeof(struct S));")
            lines.append(f"    head->val = {r.randint(1, 99)}; tail = head;")
            for n in range(1, self.list_len):
                lines.append("    tail->next = (struct S *)GC_malloc(sizeof(struct S));")
                lines.append(f"    tail = tail->next; tail->val = {r.randint(1, 99)};")
            lines.append("    tail->next = 0;")
            pi = r.randint(0, self.pad - 1)
            lines.append("    { struct S *s = head; while (s) { "
                         f"s->pad[{pi}] = {r.randint(0, 99)}; s = s->next; }} }}")
        n_st = r.randint(self.opt.min_statements, self.opt.max_statements)
        for _ in range(n_st):
            lines.append("    " + self.statement())
        lines.append('    printf("%d %d\\n", acc, x);')
        lines.append("    return (acc + x) & 0xFF;")
        lines.append("}")
        return "\n".join(lines) + "\n"


def generate_program(seed: int, options: GenOptions | None = None) -> str:
    """Generate one deterministic, defined-behavior C program."""
    return _Gen(seed, options or GenOptions()).generate()
