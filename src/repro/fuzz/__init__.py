"""Differential fuzzing subsystem.

The paper's correctness claim is cross-configurational: every build of a
program must agree on observable behavior, and the GC-safe builds must
*keep* agreeing when collections fire at the worst possible moments.
This package turns that claim into a push-button oracle:

* :mod:`repro.fuzz.gen` — a seeded, structured C program generator
  (structs, nested arrays, helper calls, pointer casts, interior
  pointers, alloc churn, disguise-prone address arithmetic; every
  program is defined-behavior by construction and prints a checksum).
* :mod:`repro.fuzz.oracle` — compiles each program under all five
  configs (``O0``, ``O``, ``O_safe``, ``g``, ``g_checked``) across the
  machine models, runs them with an adversarial collector
  (``gc_interval=1`` + heap poisoning) and cross-checks exit codes,
  output, and checksums.
* :mod:`repro.fuzz.reduce` — a delta-debugging reducer that shrinks any
  mismatching program to a minimal reproducer.
* :mod:`repro.fuzz.campaign` — campaign orchestration; also the engine
  behind ``python -m repro.fuzz``.
* :mod:`repro.fuzz.brokenpass` — a test-only hook that re-breaks the
  addrfold in-place aliasing fix so the oracle/reducer pipeline can be
  validated against a known miscompile.
"""

from .campaign import CampaignResult, Finding, run_campaign
from .gen import GenOptions, generate_program
from .oracle import (ADVERSARIAL_CONFIGS, ALL_CONFIGS, Mismatch, Outcome,
                     OracleReport, check_program, compile_and_run,
                     mismatch_predicate)
from .reduce import ReduceStats, reduce_source

__all__ = [
    "ADVERSARIAL_CONFIGS", "ALL_CONFIGS", "CampaignResult", "Finding",
    "GenOptions", "Mismatch", "Outcome", "OracleReport", "ReduceStats",
    "check_program", "compile_and_run", "generate_program",
    "mismatch_predicate", "reduce_source", "run_campaign",
]
