"""Test-only hook: re-break the addrfold in-place aliasing fix.

PR 1 fixed a latent miscompile in :mod:`repro.machine.opt.addrfold`: the
in-place variant of address reassociation (``p = p - c; ... p[i]``) must
not fire when the index operand aliases the base (``x + (x - c)``) or
when the base is still read between the two rewritten instructions —
otherwise the adjustment clobbers the value the final add still needs.

This module deliberately reintroduces that bug behind a context manager
so the differential oracle and the delta-debugging reducer can be
validated end-to-end against a *known* miscompile: under
:func:`rebroken_addrfold`, ``x + (x - c)`` compiles (at ``-O``) to
``2*(x - c)`` instead of ``2*x - c``.

Never import this from production code paths; it exists for
``tests/test_fuzz`` and the ``--rebreak-addrfold`` CLI flag only.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..machine.ir import Inst, IRFunc, Vreg, basic_blocks
from ..machine import opt as opt_pipeline


def _broken_run(fn: IRFunc) -> bool:
    """addrfold's in-place rewrite with the PR 1 aliasing guard removed.

    Structure mirrors ``addrfold.run`` but *always* takes the in-place
    branch when the base's live range ends at the rewritten add — even
    if the index operand is the base itself or the base is still read in
    between.  That is exactly the pre-fix behavior.
    """
    from ..machine.regalloc import build_intervals
    intervals, _ = build_intervals(fn)
    for block in basic_blocks(fn):
        def_at: dict[Vreg, int] = {}
        for idx in block:
            inst = fn.insts[idx]
            if inst.dst is not None:
                def_at[inst.dst] = idx
        global_uses: dict[Vreg, int] = {}
        for inst in fn.insts:
            for a in inst.args:
                global_uses[a] = global_uses.get(a, 0) + 1

        for idx in block:
            inst = fn.insts[idx]
            if inst.op != "bin" or inst.subop != "add" or len(inst.args) != 2:
                continue
            if inst.text == "reassoc":
                continue
            for p, t1 in (inst.args, inst.args[::-1]):
                t1_def_idx = def_at.get(t1)
                if t1_def_idx is None or t1_def_idx >= idx:
                    continue
                t1_def = fn.insts[t1_def_idx]
                if t1_def.op != "bin" or t1_def.subop not in ("sub", "add"):
                    continue
                if global_uses.get(t1, 0) != 1:
                    continue
                i_val, c_val = t1_def.args
                c_def_idx = def_at.get(c_val)
                if c_def_idx is None or fn.insts[c_def_idx].op != "const":
                    continue
                if global_uses.get(c_val, 0) != 1:
                    continue
                if any(fn.insts[k].dst in (i_val, p, c_val)
                       for k in range(t1_def_idx + 1, idx)
                       if fn.insts[k].dst is not None):
                    continue
                p_iv = intervals.get(p)
                if p_iv is None or p_iv.end > 2 * idx:
                    continue
                # The bug: no ``i_val != p`` / no intervening-read check.
                fn.insts[t1_def_idx] = Inst("bin", dst=p, subop=t1_def.subop,
                                            args=(p, c_val), text="reassoc")
                fn.insts[idx] = Inst("bin", dst=inst.dst, subop="add",
                                     args=(p, i_val), text="reassoc")
                return True
    return False


@contextmanager
def rebroken_addrfold():
    """Swap the registered addrfold pass for the pre-fix buggy variant
    for the duration of the ``with`` block.

    The pass swap changes pipeline *output* without changing any
    compile-cache key component, so the block also pushes an extra salt
    (:func:`repro.exec.cache.salt_context`) — otherwise a warm cache
    would serve correctly-compiled stale code and mask the bug the
    oracle is being validated against.
    """
    from ..exec.cache import salt_context

    original = opt_pipeline._PASS_FNS["addrfold"]
    opt_pipeline._PASS_FNS["addrfold"] = _broken_run
    try:
        with salt_context("rebroken-addrfold"):
            yield
    finally:
        opt_pipeline._PASS_FNS["addrfold"] = original
