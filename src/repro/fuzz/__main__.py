"""``python -m repro.fuzz`` entry point."""

import sys

from .cli import main

sys.exit(main())
