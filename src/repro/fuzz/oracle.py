"""The five-config differential oracle.

For one source program:

1. compile under every config in :data:`ALL_CONFIGS` for every requested
   machine model and run normally — all fifteen cells must produce the
   same exit code, output text, and checksum(s) (generated programs
   print their checksums, so "output" subsumes them);
2. re-run the GC-safe configs (:data:`ADVERSARIAL_CONFIGS`) under the
   adversarial collector — a collection every ``adv_interval``
   instructions with reclaimed objects poisoned — and require the same
   observables again.

The unsafe ``O`` build is deliberately *excluded* from step 2: the
paper's thesis is precisely that an optimizing build without KEEP_LIVE
may die under adversarial collections (see
``tests/test_integration/test_disguise.py``), so "survives gc_interval=1"
is only a correctness requirement for the other four columns.  ``O0``
participates because an empty pass pipeline never manufactures
out-of-object pointers, and source-level interior pointers are valid
roots for the collector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfront.errors import CFrontError
from ..gc.collector import Collector, GCCheckError
from ..gc.memory import MemoryFault
from ..machine.driver import CompileConfig, CONFIGS, compile_source
from ..machine.models import MODELS
from ..machine.vm import VM, VMError

ALL_CONFIGS = CONFIGS  # ("O0", "O", "O_safe", "g", "g_checked")
# Configs that must additionally survive the adversarial collector.
ADVERSARIAL_CONFIGS = ("O0", "O_safe", "g", "g_checked")
# The reference cell: unoptimized, fully debuggable — the paper's
# "obviously correct" column.
REFERENCE_CONFIG = "g"

DEFAULT_MODELS = ("ss10", "ss2", "p90")
POISON_BYTE = 0xDD


@dataclass
class Outcome:
    """Observable result of one (config, model, gc-mode) cell."""

    status: str  # "ok" | "fault" | "check" | "compile-error"
    exit_code: int | None = None
    output: str = ""
    detail: str = ""
    collections: int = 0

    def key(self) -> tuple:
        """What two cells must agree on (never timing counters)."""
        return (self.status, self.exit_code, self.output)

    def describe(self) -> str:
        if self.status == "ok":
            return f"exit={self.exit_code} output={self.output!r}"
        return f"{self.status}: {self.detail}"


@dataclass
class Mismatch:
    kind: str       # "plain" | "adversarial" | "reference"
    config: str
    model: str
    expected: str
    actual: str

    def signature(self) -> tuple[str, str, str]:
        return (self.kind, self.config, self.model)

    def describe(self) -> str:
        return (f"[{self.kind}] {self.config}/{self.model}: "
                f"expected {self.expected}, got {self.actual}")


@dataclass
class OracleReport:
    mismatches: list[Mismatch] = field(default_factory=list)
    runs: int = 0
    reference: Outcome | None = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.ok:
            return f"ok ({self.runs} cells agree)"
        return "\n".join(m.describe() for m in self.mismatches)


def compile_and_run(source: str, config_name: str, model_name: str = "ss10",
                    gc_interval: int = 0, poison: bool = True,
                    max_instructions: int = 5_000_000) -> Outcome:
    """Compile + execute one cell, folding every failure mode into an
    :class:`Outcome` so cells are always comparable."""
    model = MODELS[model_name]
    try:
        compiled = compile_source(source, CompileConfig.named(config_name, model))
    except CFrontError as exc:
        return Outcome("compile-error", detail=str(exc))
    gc = Collector()
    if poison:
        gc.heap.poison_byte = POISON_BYTE
    vm = VM(compiled.asm, model, collector=gc, gc_interval=gc_interval,
            max_instructions=max_instructions)
    try:
        result = vm.run()
    except GCCheckError as exc:
        return Outcome("check", detail=str(exc))
    except (VMError, MemoryFault) as exc:
        return Outcome("fault", detail=str(exc))
    return Outcome("ok", result.exit_code, result.output,
                   collections=result.collections)


def check_program(source: str, models: tuple[str, ...] = DEFAULT_MODELS,
                  adv_interval: int = 1,
                  adv_models: tuple[str, ...] | None = None,
                  max_instructions: int = 5_000_000) -> OracleReport:
    """Run the full differential matrix over one program.

    ``models`` drives the plain (no forced collections) agreement check
    for all five configs; ``adv_models`` (default: the first model)
    drives the adversarial re-run of the GC-safe configs.
    """
    report = OracleReport()
    primary = models[0]
    ref = compile_and_run(source, REFERENCE_CONFIG, primary,
                          max_instructions=max_instructions)
    report.reference = ref
    report.runs += 1
    if ref.status != "ok":
        report.mismatches.append(Mismatch(
            "reference", REFERENCE_CONFIG, primary,
            "a runnable program", ref.describe()))
        return report
    for model in models:
        for config in ALL_CONFIGS:
            if config == REFERENCE_CONFIG and model == primary:
                continue  # that cell *is* the reference
            out = compile_and_run(source, config, model,
                                  max_instructions=max_instructions)
            report.runs += 1
            if out.key() != ref.key():
                report.mismatches.append(Mismatch(
                    "plain", config, model, ref.describe(), out.describe()))
    for model in (adv_models or (primary,)):
        for config in ADVERSARIAL_CONFIGS:
            out = compile_and_run(source, config, model,
                                  gc_interval=adv_interval, poison=True,
                                  max_instructions=max_instructions)
            report.runs += 1
            if out.key() != ref.key():
                report.mismatches.append(Mismatch(
                    "adversarial", config, model, ref.describe(),
                    out.describe()))
    return report


def mismatch_predicate(signature: tuple[str, str, str] | None = None,
                       max_instructions: int = 5_000_000,
                       adv_interval: int = 1):
    """Build a reducer predicate: "does this source still mismatch?"

    With a ``signature`` (kind, config, model) from an original finding,
    the predicate re-checks only that cell against the reference — two
    compiles instead of the full matrix — and demands the *same* cell
    still disagrees, so reduction cannot wander onto a different bug.
    Sources that no longer compile simply fail the predicate.
    """
    if signature is None:
        def pred_full(source: str) -> bool:
            return not check_program(
                source, max_instructions=max_instructions,
                adv_interval=adv_interval).ok
        return pred_full

    kind, config, model = signature

    def pred(source: str) -> bool:
        ref = compile_and_run(source, REFERENCE_CONFIG, model,
                              max_instructions=max_instructions)
        if ref.status != "ok":
            return kind == "reference"
        gc_interval = adv_interval if kind == "adversarial" else 0
        out = compile_and_run(source, config, model, gc_interval=gc_interval,
                              poison=True, max_instructions=max_instructions)
        return out.key() != ref.key()

    return pred
