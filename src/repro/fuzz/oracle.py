"""The five-config differential oracle.

For one source program:

1. compile under every config in :data:`ALL_CONFIGS` for every requested
   machine model and run normally — all fifteen cells must produce the
   same exit code, output text, and checksum(s) (generated programs
   print their checksums, so "output" subsumes them);
2. re-run the GC-safe configs (:data:`ADVERSARIAL_CONFIGS`) under the
   adversarial collector — a collection every ``adv_interval``
   instructions with reclaimed objects poisoned — and require the same
   observables again;
3. re-run :data:`SINK_CONFIGS` with the escape-analysis
   allocation-sinking pass applied (plain, and adversarially for the
   GC-safe subset): sinking changes instruction counts by design, but
   exit code and output must not move.  The generator emits sink bait
   (local scratch buffers, conditional escapes, aliases through casts,
   buffers live across an allocation) specifically to stress this line.

The unsafe ``O`` build is deliberately *excluded* from step 2: the
paper's thesis is precisely that an optimizing build without KEEP_LIVE
may die under adversarial collections (see
``tests/test_integration/test_disguise.py``), so "survives gc_interval=1"
is only a correctness requirement for the other four columns.  ``O0``
participates because an empty pass pipeline never manufactures
out-of-object pointers, and source-level interior pointers are valid
roots for the collector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfront.errors import CFrontError
from ..exec.engine import run_sharded
from ..gc.collector import Collector, GCCheckError, GCStats
from ..gc.memory import MemoryFault
from ..machine.driver import CompileConfig, CONFIGS, compile_source
from ..machine.models import MODELS
from ..machine.vm import VM, VMError

ALL_CONFIGS = CONFIGS  # ("O0", "O", "O_safe", "g", "g_checked")
# Configs that must additionally survive the adversarial collector.
ADVERSARIAL_CONFIGS = ("O0", "O_safe", "g", "g_checked")
# Configs re-run with the allocation-sinking pass applied.  ``O`` is the
# pass's real target; ``O0``/``g`` exercise it on naive codegen (where
# debug frame stores usually block it — blocking must also be sound).
SINK_CONFIGS = ("O", "O0", "g")
# Sink cells that must also survive the adversarial collector (``O`` is
# excluded for the same reason as in step 2: unsafe by design).
SINK_ADVERSARIAL_CONFIGS = ("O0", "g")
# The reference cell: unoptimized, fully debuggable — the paper's
# "obviously correct" column.
REFERENCE_CONFIG = "g"

DEFAULT_MODELS = ("ss10", "ss2", "p90")
POISON_BYTE = 0xDD


@dataclass
class Outcome:
    """Observable result of one (config, model, gc-mode) cell."""

    status: str  # "ok" | "fault" | "check" | "compile-error"
    exit_code: int | None = None
    output: str = ""
    detail: str = ""
    collections: int = 0
    # The run's collector counters (``GCStats.to_dict()``) — aggregate
    # accounting only, never part of the agreement key (the wall-clock
    # ns fields vary run to run while tracing; the simulated check/
    # collection counts are deterministic).
    gc_stats: dict = field(default_factory=dict)

    def key(self) -> tuple:
        """What two cells must agree on (never timing counters)."""
        return (self.status, self.exit_code, self.output)

    def describe(self) -> str:
        if self.status == "ok":
            return f"exit={self.exit_code} output={self.output!r}"
        return f"{self.status}: {self.detail}"


@dataclass
class Mismatch:
    kind: str       # "plain" | "adversarial" | "reference"
    config: str
    model: str
    expected: str
    actual: str

    def signature(self) -> tuple[str, str, str]:
        return (self.kind, self.config, self.model)

    def describe(self) -> str:
        return (f"[{self.kind}] {self.config}/{self.model}: "
                f"expected {self.expected}, got {self.actual}")


@dataclass
class OracleReport:
    mismatches: list[Mismatch] = field(default_factory=list)
    runs: int = 0
    reference: Outcome | None = None
    # Merged collector counters over every cell run (GCStats.merge),
    # so serial and sharded campaigns can pin identical aggregates.
    gc_totals: GCStats = field(default_factory=GCStats)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.ok:
            return f"ok ({self.runs} cells agree)"
        return "\n".join(m.describe() for m in self.mismatches)


def compile_and_run(source: str, config_name: str, model_name: str = "ss10",
                    gc_interval: int = 0, poison: bool = True,
                    max_instructions: int = 5_000_000,
                    sink: bool = False) -> Outcome:
    """Compile + execute one cell, folding every failure mode into an
    :class:`Outcome` so cells are always comparable.  ``sink`` applies
    the allocation-sinking pass to the compiled program first (safe to
    mutate: the compile cache hands out fresh copies)."""
    model = MODELS[model_name]
    try:
        compiled = compile_source(source, CompileConfig.named(config_name, model))
    except CFrontError as exc:
        return Outcome("compile-error", detail=str(exc))
    if sink:
        from ..postproc.sink import sink_program
        sink_program(compiled.asm)
    gc = Collector()
    if poison:
        gc.heap.poison_byte = POISON_BYTE
    vm = VM(compiled.asm, model, collector=gc, gc_interval=gc_interval,
            max_instructions=max_instructions)
    try:
        result = vm.run()
    except GCCheckError as exc:
        return Outcome("check", detail=str(exc), gc_stats=gc.stats.to_dict())
    except (VMError, MemoryFault) as exc:
        return Outcome("fault", detail=str(exc), gc_stats=gc.stats.to_dict())
    return Outcome("ok", result.exit_code, result.output,
                   collections=result.collections,
                   gc_stats=gc.stats.to_dict())


def _cell_worker(payload: tuple) -> Outcome:
    """Engine task: one oracle cell.  Payload is (source, config, model,
    gc_interval, poison, max_instructions[, sink]) — all picklable
    scalars; the optional seventh element keeps older 6-tuple payloads
    working."""
    source, config, model, gc_interval, poison, max_instructions = payload[:6]
    sink = bool(payload[6]) if len(payload) > 6 else False
    return compile_and_run(source, config, model, gc_interval=gc_interval,
                           poison=poison, max_instructions=max_instructions,
                           sink=sink)


def run_cells(cells: list[tuple], workers: int = 1) -> list[Outcome]:
    """Run oracle cells through the execution engine, results in cell
    order.  ``workers <= 1`` executes inline (deterministic serial
    path); engine-level failures (a worker dying) are not folded into
    Outcomes — they raise, since a partial oracle matrix proves nothing.
    """
    merged = run_sharded(cells, _cell_worker, workers=workers,
                         label="oracle").raise_on_failure()
    return merged.results


def matrix_cells(source: str, models: tuple[str, ...] = DEFAULT_MODELS,
                 adv_interval: int = 1,
                 adv_models: tuple[str, ...] | None = None,
                 max_instructions: int = 5_000_000) -> list[tuple]:
    """The canonical cell list for one program's differential matrix
    (reference excluded), each tagged with its mismatch kind."""
    primary = models[0]
    cells: list[tuple] = []
    for model in models:
        for config in ALL_CONFIGS:
            if config == REFERENCE_CONFIG and model == primary:
                continue  # that cell *is* the reference
            cells.append(("plain", (source, config, model, 0, True,
                                    max_instructions)))
    for model in (adv_models or (primary,)):
        for config in ADVERSARIAL_CONFIGS:
            cells.append(("adversarial", (source, config, model,
                                          adv_interval, True,
                                          max_instructions)))
    for config in SINK_CONFIGS:
        cells.append(("sink", (source, config, primary, 0, True,
                               max_instructions, True)))
    for config in SINK_ADVERSARIAL_CONFIGS:
        cells.append(("sink-adversarial", (source, config, primary,
                                           adv_interval, True,
                                           max_instructions, True)))
    return cells


def check_program(source: str, models: tuple[str, ...] = DEFAULT_MODELS,
                  adv_interval: int = 1,
                  adv_models: tuple[str, ...] | None = None,
                  max_instructions: int = 5_000_000,
                  workers: int = 1) -> OracleReport:
    """Run the full differential matrix over one program.

    ``models`` drives the plain (no forced collections) agreement check
    for all five configs; ``adv_models`` (default: the first model)
    drives the adversarial re-run of the GC-safe configs.  ``workers``
    shards the (config, model, gc-mode) cells across processes via the
    execution engine; the report is identical for any worker count.
    """
    report = OracleReport()
    primary = models[0]
    ref = compile_and_run(source, REFERENCE_CONFIG, primary,
                          max_instructions=max_instructions)
    report.reference = ref
    report.runs += 1
    report.gc_totals.merge(ref.gc_stats)
    if ref.status != "ok":
        report.mismatches.append(Mismatch(
            "reference", REFERENCE_CONFIG, primary,
            "a runnable program", ref.describe()))
        return report
    cells = matrix_cells(source, models, adv_interval, adv_models,
                         max_instructions)
    outcomes = run_cells([payload for _, payload in cells], workers=workers)
    for (kind, payload), out in zip(cells, outcomes):
        _, config, model = payload[:3]
        report.runs += 1
        report.gc_totals.merge(out.gc_stats)
        if out.key() != ref.key():
            report.mismatches.append(Mismatch(
                kind, config, model, ref.describe(), out.describe()))
    return report


def mismatch_predicate(signature: tuple[str, str, str] | None = None,
                       max_instructions: int = 5_000_000,
                       adv_interval: int = 1):
    """Build a reducer predicate: "does this source still mismatch?"

    With a ``signature`` (kind, config, model) from an original finding,
    the predicate re-checks only that cell against the reference — two
    compiles instead of the full matrix — and demands the *same* cell
    still disagrees, so reduction cannot wander onto a different bug.
    Sources that no longer compile simply fail the predicate.

    Probes run through the execution engine with ``workers=1`` pinned:
    reduction is a sequential search whose every step depends on the
    previous answer, so probes must never inherit campaign-level
    parallelism — but they still flow through the same engine (and
    therefore the same compile cache) as every other oracle cell.
    """
    if signature is None:
        def pred_full(source: str) -> bool:
            return not check_program(
                source, max_instructions=max_instructions,
                adv_interval=adv_interval, workers=1).ok
        return pred_full

    kind, config, model = signature

    def pred(source: str) -> bool:
        ref, = run_cells([(source, REFERENCE_CONFIG, model, 0, True,
                           max_instructions)], workers=1)
        if ref.status != "ok":
            return kind == "reference"
        gc_interval = adv_interval if kind.endswith("adversarial") else 0
        sink = kind.startswith("sink")
        out, = run_cells([(source, config, model, gc_interval, True,
                           max_instructions, sink)], workers=1)
        return out.key() != ref.key()

    return pred
