"""Campaign orchestration: generate → oracle → (reduce) → persist.

A campaign is deterministic given ``--seed``: iteration ``k`` fuzzes the
program ``generate_program(seed + k)``, so any finding can be reproduced
in isolation from its iteration number alone.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from .gen import GenOptions, generate_program
from .oracle import OracleReport, check_program, mismatch_predicate
from .reduce import ReduceStats, reduce_source


@dataclass
class Finding:
    seed: int
    iteration: int
    source: str
    report: OracleReport
    reduced: str | None = None
    reduce_stats: ReduceStats | None = None

    def describe(self) -> str:
        head = f"seed={self.seed} iteration={self.iteration}"
        body = self.report.describe()
        if self.reduced is not None:
            body += (f"\nreduced {self.reduce_stats.lines_before} -> "
                     f"{self.reduce_stats.lines_after} lines "
                     f"({self.reduce_stats.tests} oracle tests)")
        return f"{head}\n{body}"


@dataclass
class CampaignResult:
    seed: int
    iterations: int = 0
    cells: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _persist(out_dir: str, finding: Finding) -> None:
    os.makedirs(out_dir, exist_ok=True)
    stem = os.path.join(out_dir, f"finding-{finding.seed}-{finding.iteration}")
    with open(stem + ".c", "w") as fh:
        fh.write(finding.source)
    if finding.reduced is not None:
        with open(stem + ".min.c", "w") as fh:
            fh.write(finding.reduced)
    with open(stem + ".txt", "w") as fh:
        fh.write(finding.describe() + "\n")


def run_campaign(seed: int, iters: int,
                 models: tuple[str, ...] = ("ss10", "ss2", "p90"),
                 adv_interval: int = 1,
                 reduce: bool = False,
                 out_dir: str | None = None,
                 stop_after: int | None = 1,
                 gen_options: GenOptions | None = None,
                 max_instructions: int = 5_000_000,
                 log: Callable[[str], None] | None = None,
                 progress_every: int = 50) -> CampaignResult:
    """Fuzz ``iters`` programs; return every differential finding.

    ``stop_after=N`` stops the campaign after N findings (None: never) —
    the default stops at the first, since under a healthy toolchain a
    finding means a compiler/GC bug that deserves attention before more
    churn.
    """
    log = log or (lambda msg: None)
    result = CampaignResult(seed=seed)
    for k in range(iters):
        program_seed = seed + k
        source = generate_program(program_seed, gen_options)
        report = check_program(source, models=models,
                               adv_interval=adv_interval,
                               max_instructions=max_instructions)
        result.iterations += 1
        result.cells += report.runs
        if not report.ok:
            finding = Finding(seed=program_seed, iteration=k,
                              source=source, report=report)
            if reduce:
                signature = report.mismatches[0].signature()
                pred = mismatch_predicate(signature,
                                          max_instructions=max_instructions,
                                          adv_interval=adv_interval)
                stats = ReduceStats()
                finding.reduced = reduce_source(source, pred, stats=stats)
                finding.reduce_stats = stats
            result.findings.append(finding)
            if out_dir:
                _persist(out_dir, finding)
            log(f"[{k + 1}/{iters}] MISMATCH (program seed {program_seed}):")
            for line in finding.describe().splitlines():
                log("    " + line)
            if stop_after is not None and len(result.findings) >= stop_after:
                break
        elif progress_every and (k + 1) % progress_every == 0:
            log(f"[{k + 1}/{iters}] ok — {result.cells} cells checked, "
                f"0 mismatches")
    return result
