"""Campaign orchestration: generate → oracle → (reduce) → persist.

A campaign is deterministic given ``--seed``: iteration ``k`` fuzzes the
program ``generate_program(seed + k)``, so any finding can be reproduced
in isolation from its iteration number alone.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from ..obs import runtime as obs_runtime
from .gen import GenOptions, generate_program
from .oracle import OracleReport, check_program, mismatch_predicate
from .reduce import ReduceStats, reduce_source


@dataclass
class Finding:
    seed: int
    iteration: int
    source: str
    report: OracleReport
    reduced: str | None = None
    reduce_stats: ReduceStats | None = None

    def describe(self) -> str:
        head = f"seed={self.seed} iteration={self.iteration}"
        body = self.report.describe()
        if self.reduced is not None:
            body += (f"\nreduced {self.reduce_stats.lines_before} -> "
                     f"{self.reduce_stats.lines_after} lines "
                     f"({self.reduce_stats.tests} oracle tests)")
        return f"{head}\n{body}"


@dataclass
class CampaignResult:
    seed: int
    iterations: int = 0
    cells: int = 0
    findings: list[Finding] = field(default_factory=list)
    # Wall-clock attribution of campaign stages (always collected — two
    # clock reads per iteration, negligible next to an oracle run).
    telemetry: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings


def _persist(out_dir: str, finding: Finding) -> None:
    os.makedirs(out_dir, exist_ok=True)
    stem = os.path.join(out_dir, f"finding-{finding.seed}-{finding.iteration}")
    with open(stem + ".c", "w") as fh:
        fh.write(finding.source)
    if finding.reduced is not None:
        with open(stem + ".min.c", "w") as fh:
            fh.write(finding.reduced)
    with open(stem + ".txt", "w") as fh:
        fh.write(finding.describe() + "\n")


def run_campaign(seed: int, iters: int,
                 models: tuple[str, ...] = ("ss10", "ss2", "p90"),
                 adv_interval: int = 1,
                 reduce: bool = False,
                 out_dir: str | None = None,
                 stop_after: int | None = 1,
                 gen_options: GenOptions | None = None,
                 max_instructions: int = 5_000_000,
                 log: Callable[[str], None] | None = None,
                 progress_every: int = 50) -> CampaignResult:
    """Fuzz ``iters`` programs; return every differential finding.

    ``stop_after=N`` stops the campaign after N findings (None: never) —
    the default stops at the first, since under a healthy toolchain a
    finding means a compiler/GC bug that deserves attention before more
    churn.
    """
    log = log or (lambda msg: None)
    result = CampaignResult(seed=seed)
    tracer = obs_runtime.get_tracer()
    clock = time.perf_counter_ns
    gen_ns = oracle_ns = reduce_ns = 0
    for k in range(iters):
        program_seed = seed + k
        with tracer.span("fuzz.iteration", seed=program_seed, index=k) as isp:
            t0 = clock()
            source = generate_program(program_seed, gen_options)
            t1 = clock()
            report = check_program(source, models=models,
                                   adv_interval=adv_interval,
                                   max_instructions=max_instructions)
            t2 = clock()
            gen_ns += t1 - t0
            oracle_ns += t2 - t1
            result.iterations += 1
            result.cells += report.runs
            isp.set(ok=report.ok, cells=report.runs,
                    gen_ns=t1 - t0, oracle_ns=t2 - t1)
            finding = None
            if not report.ok:
                finding = Finding(seed=program_seed, iteration=k,
                                  source=source, report=report)
                if reduce:
                    signature = report.mismatches[0].signature()
                    pred = mismatch_predicate(
                        signature, max_instructions=max_instructions,
                        adv_interval=adv_interval)
                    stats = ReduceStats()
                    r0 = clock()
                    with tracer.span("fuzz.reduce", seed=program_seed) as rsp:
                        finding.reduced = reduce_source(source, pred,
                                                        stats=stats)
                        rsp.set(lines_before=stats.lines_before,
                                lines_after=stats.lines_after,
                                tests=stats.tests)
                    reduce_ns += clock() - r0
                    finding.reduce_stats = stats
                result.findings.append(finding)
                if out_dir:
                    _persist(out_dir, finding)
                log(f"[{k + 1}/{iters}] MISMATCH "
                    f"(program seed {program_seed}):")
                for line in finding.describe().splitlines():
                    log("    " + line)
        if finding is not None:
            if stop_after is not None and len(result.findings) >= stop_after:
                break
        elif progress_every and (k + 1) % progress_every == 0:
            log(f"[{k + 1}/{iters}] ok — {result.cells} cells checked, "
                f"0 mismatches")
    result.telemetry = {
        "gen_s": round(gen_ns / 1e9, 6),
        "oracle_s": round(oracle_ns / 1e9, 6),
        "reduce_s": round(reduce_ns / 1e9, 6),
        "iterations": result.iterations,
        "cells": result.cells,
        "findings": len(result.findings),
    }
    if tracer.enabled:
        tracer.instant("fuzz.campaign", **result.telemetry, seed=seed)
    return result
