"""Campaign orchestration: generate → oracle → (reduce) → persist.

A campaign is deterministic given ``--seed``: iteration ``k`` fuzzes the
program ``generate_program(seed + k)``, so any finding can be reproduced
in isolation from its iteration number alone.

``workers > 1`` shards iterations **per seed** across processes through
:mod:`repro.exec.engine` (iteration ``k`` → shard ``k % workers``): each
iteration is self-contained — generate, full oracle matrix, and (when
requested) reduction all happen in the worker that owns the seed, with
reducer probes pinned to ``workers=1`` inside it.  The merge walks
records back in iteration order and applies ``stop_after`` exactly as
the serial loop would, so findings, counts, and aggregate GC totals are
identical for any worker count (the sharded run may *execute* more
iterations than it reports — that is the price of parallelism, not a
semantic difference).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from ..exec.engine import run_sharded
from ..gc.collector import GCStats
from ..obs import clock as obs_clock
from ..obs import runtime as obs_runtime
from .gen import GenOptions, generate_program
from .oracle import OracleReport, check_program, mismatch_predicate
from .reduce import ReduceStats, reduce_source


@dataclass
class Finding:
    seed: int
    iteration: int
    source: str
    report: OracleReport
    reduced: str | None = None
    reduce_stats: ReduceStats | None = None

    def describe(self) -> str:
        head = f"seed={self.seed} iteration={self.iteration}"
        body = self.report.describe()
        if self.reduced is not None:
            body += (f"\nreduced {self.reduce_stats.lines_before} -> "
                     f"{self.reduce_stats.lines_after} lines "
                     f"({self.reduce_stats.tests} oracle tests)")
        return f"{head}\n{body}"


@dataclass
class CampaignResult:
    seed: int
    iterations: int = 0
    cells: int = 0
    findings: list[Finding] = field(default_factory=list)
    # Merged collector counters across every oracle cell of every
    # reported iteration — identical for serial and sharded runs.
    gc_totals: GCStats = field(default_factory=GCStats)
    # Wall-clock attribution of campaign stages (always collected — two
    # clock reads per iteration, negligible next to an oracle run).
    telemetry: dict = field(default_factory=dict)
    workers: int = 1

    @property
    def ok(self) -> bool:
        return not self.findings

    def report(self) -> str:
        """The deterministic campaign record: counts, aggregate GC
        check totals, and findings — no wall-clock numbers, so serial
        and sharded runs of the same campaign render byte-identically.
        """
        lines = [f"campaign seed={self.seed} iterations={self.iterations} "
                 f"cells={self.cells} findings={len(self.findings)}",
                 f"gc checks: same_obj={self.gc_totals.same_obj_checks} "
                 f"incr={self.gc_totals.incr_checks} "
                 f"base={self.gc_totals.base_checks} "
                 f"collections={self.gc_totals.collections}"]
        for finding in self.findings:
            lines.append(finding.describe())
        return "\n".join(lines) + "\n"


def _persist(out_dir: str, finding: Finding) -> None:
    os.makedirs(out_dir, exist_ok=True)
    stem = os.path.join(out_dir, f"finding-{finding.seed}-{finding.iteration}")
    with open(stem + ".c", "w") as fh:
        fh.write(finding.source)
    if finding.reduced is not None:
        with open(stem + ".min.c", "w") as fh:
            fh.write(finding.reduced)
    with open(stem + ".txt", "w") as fh:
        fh.write(finding.describe() + "\n")


def _iteration_worker(payload: tuple) -> dict:
    """One self-contained campaign iteration (engine task).

    Returns a picklable record; the parent merges records in iteration
    order.  Reduction happens here — in the process that owns the seed —
    with its oracle probes routed through the engine pinned to
    ``workers=1`` (see :func:`repro.fuzz.oracle.mismatch_predicate`).
    """
    (program_seed, k, models, adv_interval, do_reduce,
     max_instructions, gen_options) = payload
    tracer = obs_runtime.get_tracer()
    clock = obs_clock.get_clock()
    record: dict = {"k": k, "seed": program_seed, "reduce_ns": 0}
    with tracer.span("fuzz.iteration", seed=program_seed, index=k) as isp:
        t0 = clock()
        source = generate_program(program_seed, gen_options)
        t1 = clock()
        report = check_program(source, models=models,
                               adv_interval=adv_interval,
                               max_instructions=max_instructions)
        t2 = clock()
        record.update(cells=report.runs, ok=report.ok,
                      gen_ns=t1 - t0, oracle_ns=t2 - t1,
                      gc_totals=report.gc_totals.to_dict(), finding=None)
        isp.set(ok=report.ok, cells=report.runs,
                gen_ns=t1 - t0, oracle_ns=t2 - t1)
        if not report.ok:
            finding = Finding(seed=program_seed, iteration=k,
                              source=source, report=report)
            if do_reduce:
                signature = report.mismatches[0].signature()
                pred = mismatch_predicate(
                    signature, max_instructions=max_instructions,
                    adv_interval=adv_interval)
                stats = ReduceStats()
                r0 = clock()
                with tracer.span("fuzz.reduce", seed=program_seed) as rsp:
                    finding.reduced = reduce_source(source, pred, stats=stats)
                    rsp.set(lines_before=stats.lines_before,
                            lines_after=stats.lines_after, tests=stats.tests)
                record["reduce_ns"] = clock() - r0
                finding.reduce_stats = stats
            record["finding"] = finding
    return record


def run_campaign(seed: int, iters: int,
                 models: tuple[str, ...] = ("ss10", "ss2", "p90"),
                 adv_interval: int = 1,
                 reduce: bool = False,
                 out_dir: str | None = None,
                 stop_after: int | None = 1,
                 gen_options: GenOptions | None = None,
                 max_instructions: int = 5_000_000,
                 log: Callable[[str], None] | None = None,
                 progress_every: int = 50,
                 workers: int = 1) -> CampaignResult:
    """Fuzz ``iters`` programs; return every differential finding.

    ``stop_after=N`` stops the campaign after N findings (None: never) —
    the default stops at the first, since under a healthy toolchain a
    finding means a compiler/GC bug that deserves attention before more
    churn.  ``workers=N`` shards iterations across N processes; results
    are merged per seed in iteration order, so the outcome (including
    the ``stop_after`` cut) is identical to the serial run.
    """
    log = log or (lambda msg: None)
    result = CampaignResult(seed=seed, workers=max(1, workers))
    metrics = obs_runtime.get_metrics()
    gen_ns = oracle_ns = reduce_ns = 0

    payloads = [(seed + k, k, tuple(models), adv_interval, reduce,
                 max_instructions, gen_options) for k in range(iters)]

    def consume(record: dict) -> bool:
        """Fold one in-order record into the result; True = stop."""
        nonlocal gen_ns, oracle_ns, reduce_ns
        k = record["k"]
        result.iterations += 1
        result.cells += record["cells"]
        result.gc_totals.merge(record["gc_totals"])
        gen_ns += record["gen_ns"]
        oracle_ns += record["oracle_ns"]
        reduce_ns += record["reduce_ns"]
        finding = record["finding"]
        if metrics is not None:
            # Folded in the parent over in-order records, so these
            # counters are identical for any worker count.
            metrics.counter("fuzz.iterations").inc()
            metrics.counter("fuzz.cells").inc(record["cells"])
            if finding is not None:
                metrics.counter("fuzz.findings").inc()
        if finding is not None:
            result.findings.append(finding)
            if out_dir:
                _persist(out_dir, finding)
            log(f"[{k + 1}/{iters}] MISMATCH "
                f"(program seed {record['seed']}):")
            for line in finding.describe().splitlines():
                log("    " + line)
            if stop_after is not None and len(result.findings) >= stop_after:
                return True
        elif progress_every and (k + 1) % progress_every == 0:
            log(f"[{k + 1}/{iters}] ok — {result.cells} cells checked, "
                f"0 mismatches")
            if metrics is not None:
                metrics.flush()  # keep `repro obs top` live mid-campaign
        return False

    resil_summary = None
    if result.workers <= 1:
        for payload in payloads:
            if consume(_iteration_worker(payload)):
                break
    else:
        merged = run_sharded(payloads, _iteration_worker,
                             workers=result.workers,
                             label="fuzz").raise_on_failure()
        for record in merged.results:
            if consume(record):
                break
        if (merged.retries or merged.worker_deaths or merged.quarantined
                or merged.degraded):
            resil_summary = merged.resil_summary()

    result.telemetry = {
        "gen_s": round(gen_ns / 1e9, 6),
        "oracle_s": round(oracle_ns / 1e9, 6),
        "reduce_s": round(reduce_ns / 1e9, 6),
        "iterations": result.iterations,
        "cells": result.cells,
        "findings": len(result.findings),
        "workers": result.workers,
    }
    if resil_summary is not None:
        # Recovery accounting only — never part of report() bytes.
        result.telemetry["resil"] = resil_summary
    tracer = obs_runtime.get_tracer()
    if tracer.enabled:
        tracer.instant("fuzz.campaign", **result.telemetry, seed=seed)
    if metrics is not None:
        metrics.flush()
        result.telemetry["metrics"] = metrics.to_dict()
    return result
