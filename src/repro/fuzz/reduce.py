"""Delta-debugging reducer: shrink a mismatching program to a minimal
reproducer.

Classic ddmin (Zeller & Hildebrandt) over source *lines*, followed by a
single-line elimination polish to a fixpoint.  The generator emits one
statement per line precisely so that line granularity equals statement
granularity; candidates that no longer parse/typecheck simply fail the
predicate (the oracle folds ``compile-error`` into the comparison), so
the reducer needs no C-specific knowledge beyond that.

The predicate receives candidate source text and returns True iff the
original mismatch still reproduces (see
:func:`repro.fuzz.oracle.mismatch_predicate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass
class ReduceStats:
    tests: int = 0
    lines_before: int = 0
    lines_after: int = 0


def _join(lines: list[str]) -> str:
    return "\n".join(lines) + "\n"


def reduce_source(source: str, predicate: Callable[[str], bool],
                  max_tests: int = 4000,
                  stats: ReduceStats | None = None) -> str:
    """Return a (locally) minimal variant of ``source`` for which
    ``predicate`` still holds.

    Raises ``ValueError`` if the predicate does not hold on the input —
    a reducer run on a non-reproducer would "reduce" to garbage.
    """
    stats = stats if stats is not None else ReduceStats()
    lines = [ln for ln in source.splitlines() if ln.strip()]
    stats.lines_before = len(lines)

    budget = [max_tests]

    def holds(cand: list[str]) -> bool:
        if not cand or budget[0] <= 0:
            return False
        budget[0] -= 1
        stats.tests += 1
        return predicate(_join(cand))

    if not predicate(_join(lines)):
        raise ValueError("predicate does not hold on the unreduced input")
    stats.tests += 1

    # -- ddmin: remove ever-smaller complements ----------------------------
    n = 2
    while len(lines) >= 2 and budget[0] > 0:
        chunk = max(1, len(lines) // n)
        removed_one = False
        start = 0
        while start < len(lines):
            cand = lines[:start] + lines[start + chunk:]
            if holds(cand):
                lines = cand
                n = max(n - 1, 2)
                removed_one = True
                break
            start += chunk
        if not removed_one:
            if n >= len(lines):
                break
            n = min(len(lines), n * 2)

    # -- polish: single-line elimination to a fixpoint ---------------------
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for i in range(len(lines)):
            cand = lines[:i] + lines[i + 1:]
            if holds(cand):
                lines = cand
                changed = True
                break

    stats.lines_after = len(lines)
    return _join(lines)
