"""The envelope registry — every versioned JSON schema in one place.

Machine-readable outputs across the repo are *versioned envelopes*: a
JSON document whose top-level ``"schema"`` key is ``repro-<name>/<v>``,
bumped on shape changes.  This module is the registry of record — the
schema string literals live here and nowhere else; every producer
(CLI ``--json``, the obs exporters, the serve daemon) imports its
constant or goes through :func:`make`.

>>> from repro.api import envelopes
>>> doc = envelopes.make("check", {"ok": True, "diagnostics": []})
>>> doc["schema"]
'repro-check/1'
>>> envelopes.validate(doc).name
'check'

The module is intentionally a leaf: it imports nothing from the rest
of ``repro``, so any subsystem (including :mod:`repro.obs`, which the
heavy facade imports transitively) can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


class EnvelopeError(ValueError):
    """A document failed envelope validation (missing / unknown /
    version-mismatched ``schema`` key)."""


@dataclass(frozen=True)
class Envelope:
    """One registered schema: its name, version, and producer."""

    name: str
    version: int
    producer: str

    @property
    def schema(self) -> str:
        return f"repro-{self.name}/{self.version}"


#: schema string -> Envelope, in registration order.
REGISTRY: dict[str, Envelope] = {}
#: name -> Envelope (latest registered version wins).
_BY_NAME: dict[str, Envelope] = {}


def _register(name: str, version: int, producer: str) -> str:
    env = Envelope(name, version, producer)
    if env.schema in REGISTRY:
        raise ValueError(f"duplicate envelope registration {env.schema!r}")
    REGISTRY[env.schema] = env
    _BY_NAME[name] = env
    return env.schema


# -- the catalog (docs/ARCHITECTURE.md renders this table) ---------------

ANNOTATE = _register("annotate", 1, "repro annotate --json / serve")
CHECK = _register("check", 1, "repro check --json / serve")
RUN = _register("run", 1, "repro cc --json / serve")
BENCH = _register("bench", 1, "repro bench --json / serve")
FUZZ = _register("fuzz", 1, "python -m repro.fuzz --json / serve")
CACHE_STATS = _register("cache-stats", 1, "repro cache stats --json")
CACHE_VERIFY = _register("cache-verify", 1, "repro cache verify --json")
CHAOS = _register("chaos", 1, "repro chaos --json")
EXEC_CACHE = _register("exec-cache", 2,
                       "cache key / code-version salt (on disk)")
OBS_TRACE = _register("obs-trace", 1,
                      "JSONL traces (--trace, repro.obs record)")
OBS_SUMMARY = _register("obs-summary", 1,
                        "repro.obs record --summary-json / report")
OBS_BENCH = _register("obs-bench", 1,
                      "repro.obs trajectory (BENCH_obs.json)")
OBS_METRICS = _register("obs-metrics", 1,
                        "metric snapshots (--metrics-out, repro.obs record)")
OBS_SENTINEL = _register("obs-sentinel", 1,
                         "repro.obs sentinel / benchmarks/check_sentinel.py")
EXEC_BENCH = _register("exec-bench", 1,
                       "benchmarks/check_exec_cache.py (BENCH_exec.json)")
VMPROF_PGO = _register("vmprof-pgo", 1,
                       "repro.obs record --pgo-out / report --pgo")
VM2_BENCH = _register("vm2-bench", 1,
                      "benchmarks/check_vm_pgo.py (BENCH_vm2.json)")
SERVE_REQUEST = _register("serve-request", 1,
                          "repro.api.Client -> daemon wire request")
SERVE_RESPONSE = _register("serve-response", 1,
                           "daemon wire response (result payload inside)")
SERVE_ERROR = _register("serve-error", 1,
                        "daemon typed error (admission/quota/job failures)")
SERVE_HEALTH = _register("serve-health", 1, "serve 'health' control method")
SERVE_LOAD = _register("serve-load", 1,
                       "repro serve load SLO report (--json)")


def schema_of(name: str) -> str:
    """``'check'`` -> ``'repro-check/1'``; full schema strings pass
    through (validated)."""
    if name in _BY_NAME:
        return _BY_NAME[name].schema
    if name in REGISTRY:
        return name
    raise EnvelopeError(f"unknown envelope {name!r}")


def make(name: str, payload: dict) -> dict:
    """A fresh envelope dict: ``{"schema": ..., **payload}``.

    ``name`` may be a short name (``"check"``) or a full schema string;
    the payload must not carry its own conflicting ``"schema"`` key.
    """
    schema = schema_of(name)
    if payload.get("schema", schema) != schema:
        raise EnvelopeError(
            f"payload already tagged {payload['schema']!r}, "
            f"refusing to relabel as {schema!r}")
    doc = {"schema": schema}
    doc.update(payload)
    return doc


def validate(doc) -> Envelope:
    """Check ``doc`` is a registered envelope; return its entry.

    Distinguishes the three failure modes — not a JSON object, no
    ``schema`` key, and unknown name vs. unregistered *version* of a
    known name — because clients branch on them.
    """
    if not isinstance(doc, dict):
        raise EnvelopeError(f"envelope must be a JSON object, "
                            f"got {type(doc).__name__}")
    schema = doc.get("schema")
    if schema is None:
        raise EnvelopeError("document has no 'schema' key")
    entry = REGISTRY.get(schema)
    if entry is None:
        name = str(schema).rsplit("/", 1)[0]
        known = [e.schema for e in REGISTRY.values()
                 if f"repro-{e.name}" == name]
        if known:
            raise EnvelopeError(
                f"unregistered version {schema!r} (known: {known})")
        raise EnvelopeError(f"unknown envelope schema {schema!r}")
    return entry


def registry_table() -> str:
    """The markdown schema table (kept in sync with ARCHITECTURE.md)."""
    width = max(len(e.schema) for e in REGISTRY.values()) + 2
    lines = [f"| {'schema':<{width}} | producer |",
             f"|{'-' * (width + 2)}|----------|"]
    for env in REGISTRY.values():
        lines.append(f"| `{env.schema}`{' ' * (width - len(env.schema) - 2)} "
                     f"| {env.producer} |")
    return "\n".join(lines)


__all__ = ["Envelope", "EnvelopeError", "REGISTRY", "make", "schema_of",
           "validate", "registry_table"]
