"""The unified toolchain facade — one object, one options bag.

Everything the repo can do (annotate, source-check, compile, execute,
benchmark, fuzz) previously lived behind per-subsystem entry points
with slightly different spellings (``mode='safe'`` strings here,
``CompileConfig`` flags there, ``workers=``/``cache_dir=`` threaded ad
hoc).  :class:`Toolchain` is the front door:

>>> from repro.api import Toolchain, Mode
>>> tc = Toolchain(mode=Mode.CHECKED, config="g_checked")
>>> tc.annotate("char *f(char *p) { return p + 1; }").text  # doctest: +SKIP
>>> tc.run("int main() { return 42; }").exit_code           # doctest: +SKIP
42

One :class:`Options` instance feeds every method; the options object is
never mutated (per-call overrides produce copies), so a ``Toolchain``
is freely shareable.  ``session()`` materializes the process-wide
machinery the options imply — today the content-addressed caches under
``cache_dir`` — for a ``with`` block.

The old module-level ``repro.core.api.annotate_source`` /
``check_source`` shims are gone — the facade is the only entry point
(out of process, :class:`repro.api.Client` mirrors it over the
``repro serve`` daemon).
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from ..cfront.errors import Diagnostic
from ..core.annotate import AnnotateOptions
from ..core.api import AnnotatedSource, _annotate_source, _check_source
from ..exec import cache as exec_cache
from ..gc.collector import Collector
from ..machine.driver import CompileConfig, CompiledProgram, compile_source
from ..machine.models import MODELS
from ..machine.vm import VM, RunResult

if TYPE_CHECKING:  # heavy subsystems are imported lazily at call time
    from ..bench.harness import WorkloadRow
    from ..fuzz.campaign import CampaignResult
    from ..machine.superinst import SuperinstPlan

#: Heap poison pattern used by adversarial reruns (matches fuzz.oracle).
POISON_BYTE = 0xDD


class Mode(enum.Enum):
    """What the annotator injects: nothing, KEEP_LIVE barriers (the
    paper's GC-safety mode), or GC_same_obj checking calls."""

    NONE = "none"
    SAFE = "safe"
    CHECKED = "checked"

    @classmethod
    def coerce(cls, value: "Mode | str | None") -> "Mode":
        if value is None:
            return cls.SAFE
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown mode {value!r} (expected one of "
                f"{[m.value for m in cls]})") from None


@dataclass(frozen=True)
class Options:
    """The one options bag every :class:`Toolchain` method shares."""

    mode: Mode = Mode.SAFE                 # annotate() / check() flavor
    config: str = "O_safe"                 # build-matrix column for compile()
    model: str = "ss10"                    # machine model key
    run_cpp: bool = False                  # preprocess before annotating
    include_dirs: tuple[str, ...] = ()     # cpp search path
    workers: int = 1                       # bench()/fuzz() sharding
    cache_dir: str | None = None           # content-addressed cache root
    gc_interval: int = 0                   # run(): force GC every N allocs
    poison: bool = False                   # run(): poison reclaimed objects
    max_instructions: int = 500_000_000    # run(): VM fuel
    annotate: AnnotateOptions | None = None  # fine-grained annotator knobs
    pgo: str | None = None                 # vmprof-pgo profile path for
                                           #   superinstruction fusion
    sink: bool = False                     # allocation-sinking postproc pass

    def __post_init__(self):
        object.__setattr__(self, "mode", Mode.coerce(self.mode))
        object.__setattr__(self, "include_dirs", tuple(self.include_dirs))
        if self.model not in MODELS:
            raise ValueError(f"unknown model {self.model!r} "
                             f"(expected one of {sorted(MODELS)})")

    def with_(self, **overrides) -> "Options":
        return replace(self, **overrides) if overrides else self


class Toolchain:
    """The facade: every pipeline entry point behind one options bag.

    Construct with an :class:`Options`, keyword overrides, or both::

        Toolchain()                             # defaults
        Toolchain(mode="checked", workers=4)
        Toolchain(opts, cache_dir="/tmp/cc")    # opts + overrides
    """

    def __init__(self, options: Options | None = None, **overrides):
        base = options if options is not None else Options()
        self.options = base.with_(**overrides)

    # -- sessions ----------------------------------------------------------

    @contextlib.contextmanager
    def session(self):
        """Install the process-wide machinery the options imply (cache
        tiers under ``cache_dir``) for the duration of the block."""
        if self.options.cache_dir is None:
            yield self
            return
        compile_cache, result_cache = exec_cache.open_caches(
            self.options.cache_dir)
        with exec_cache.cache_context(compile_cache, result_cache):
            yield self

    # -- annotator ---------------------------------------------------------

    def annotate(self, source: str,
                 mode: Mode | str | None = None) -> AnnotatedSource:
        """Annotate for GC-safety (SAFE) or pointer checking (CHECKED)."""
        use = Mode.coerce(mode) if mode is not None else self.options.mode
        if use is Mode.NONE:
            raise ValueError("annotate() needs mode SAFE or CHECKED; "
                             "Mode.NONE annotates nothing")
        return _annotate_source(
            source, mode=use.value, options=self.options.annotate,
            run_cpp=self.options.run_cpp,
            include_dirs=list(self.options.include_dirs) or None)

    def check(self, source: str) -> list[Diagnostic]:
        """Source-safety diagnostics only; the program is untouched."""
        return _check_source(
            source, run_cpp=self.options.run_cpp,
            include_dirs=list(self.options.include_dirs) or None)

    # -- compiler / VM -----------------------------------------------------

    def compile_config(self, config: str | None = None) -> CompileConfig:
        """The :class:`CompileConfig` these options describe."""
        cc = CompileConfig.named(config or self.options.config,
                                 MODELS[self.options.model])
        cc.run_cpp = self.options.run_cpp or cc.run_cpp
        cc.include_dirs = list(self.options.include_dirs)
        if self.options.annotate is not None:
            cc.annotate_options = self.options.annotate
        return cc

    def compile(self, source: str,
                config: str | None = None) -> CompiledProgram:
        """Full pipeline for one build-matrix column (memoized when a
        compile cache is installed — see :meth:`session`)."""
        return compile_source(source, self.compile_config(config))

    def superinst_plan(self) -> "SuperinstPlan | None":
        """The fusion plan ``options.pgo`` names, or None.  Loaded and
        validated lazily so a Toolchain without PGO never touches
        disk."""
        if self.options.pgo is None:
            return None
        from ..machine.superinst import load_pgo, plan_from_pgo
        return plan_from_pgo(load_pgo(self.options.pgo))

    def execute(self, compiled: CompiledProgram, stdin: str = "",
                entry: str = "main") -> RunResult:
        """Run an already-compiled program on this options' VM setup.

        With ``options.sink`` the allocation-sinking pass rewrites the
        program in place first; with ``options.pgo`` the VM fuses hot
        blocks from the named profile."""
        if self.options.sink:
            from ..postproc.sink import sink_program
            sink_program(compiled.asm)
        collector = Collector()
        if self.options.poison:
            collector.heap.poison_byte = POISON_BYTE
        vm = VM(compiled.asm, MODELS[self.options.model],
                collector=collector,
                gc_interval=self.options.gc_interval,
                max_instructions=self.options.max_instructions,
                superinst=self.superinst_plan())
        vm.stdin = stdin
        return vm.run(entry)

    def run(self, source: str, stdin: str = "",
            config: str | None = None, entry: str = "main") -> RunResult:
        """Compile and execute in one step."""
        return self.execute(self.compile(source, config), stdin=stdin,
                            entry=entry)

    # -- drivers -----------------------------------------------------------

    def bench(self, workloads: tuple[str, ...] | None = None,
              configs: tuple[str, ...] | None = None
              ) -> "dict[str, WorkloadRow]":
        """The paper's benchmark matrix on this options' model, sharded
        across ``options.workers`` processes."""
        from ..bench.harness import CONFIG_ORDER, Harness
        harness = Harness(self.options.model, pgo=self.superinst_plan(),
                          sink=self.options.sink)
        return harness.run_all(workloads, configs or CONFIG_ORDER,
                               workers=self.options.workers)

    def fuzz(self, seed: int = 0, iters: int = 100,
             **kwargs: Any) -> "CampaignResult":
        """A differential fuzzing campaign (see
        :func:`repro.fuzz.campaign.run_campaign` for kwargs)."""
        from ..fuzz.campaign import run_campaign
        kwargs.setdefault("workers", self.options.workers)
        return run_campaign(seed, iters, **kwargs)


__all__ = ["Mode", "Options", "Toolchain", "POISON_BYTE"]
