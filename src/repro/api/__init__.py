"""``repro.api`` — the public surface: one facade, one wire client,
one envelope registry.

* :class:`Toolchain` (and its :class:`Options` bag / :class:`Mode`
  enum) — the in-process facade over annotate/check/compile/run/
  bench/fuzz (:mod:`repro.api._facade`).
* :class:`Client` — the same surface method-for-method, spoken over
  the ``repro serve`` daemon's versioned-envelope wire protocol
  (:mod:`repro.serve.client`).
* :mod:`repro.api.envelopes` — the registry of every versioned
  ``repro-<name>/<v>`` JSON schema (the only place the literals live).
* :mod:`repro.api.build` — the envelope builders the CLIs and the
  daemon share, so both serialize identically.

The heavy facade machinery is imported lazily (PEP 562) so that leaf
consumers — ``from repro.api import envelopes`` inside the telemetry
layer, say — never pull in the compiler pipeline.
"""

from __future__ import annotations

from . import envelopes

__all__ = ["Mode", "Options", "Toolchain", "POISON_BYTE", "Client",
           "envelopes"]

_FACADE_NAMES = ("Mode", "Options", "Toolchain", "POISON_BYTE")


def __getattr__(name: str):
    if name in _FACADE_NAMES:
        from . import _facade
        return getattr(_facade, name)
    if name == "Client":
        from ..serve.client import Client
        return Client
    if name == "build":
        from . import build
        return build
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__) | {"build"})
