"""Envelope builders — the one serialization of every tool report.

Each function turns a toolchain result into the payload of its
registered envelope (:mod:`repro.api.envelopes`).  The CLI ``--json``
paths and the ``repro serve`` daemon both call these builders, so a
job submitted over the wire serializes byte-for-byte like the same job
run through ``python -m repro <cmd> --json`` — that identity is the
service's correctness gate.

Every builder is deterministic: no wall-clock numbers, no process
state, keys emitted in sorted order by :func:`dumps_canonical`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import TYPE_CHECKING, Any

from . import envelopes

if TYPE_CHECKING:
    from ..bench.harness import WorkloadRow
    from ..cfront.errors import Diagnostic
    from ..core.api import AnnotatedSource
    from ..fuzz.campaign import CampaignResult
    from ..machine.vm import RunResult

#: bench table key per machine model (T1-T3 in the paper).
TABLE_KEYS = {"ss2": "t1_ss2", "ss10": "t2_ss10", "p90": "t3_p90"}


def dumps_canonical(doc: dict) -> str:
    """The one canonical rendering every producer prints — byte
    identity between serial, sharded, and served runs is defined over
    this string."""
    return json.dumps(doc, indent=2, sort_keys=True)


def _diag_rows(source: str, diags: "list[Diagnostic]") -> list[dict]:
    return [{"pos": d.pos, "line": source.count("\n", 0, d.pos) + 1,
             "category": d.category, "message": d.message}
            for d in diags]


def annotate_envelope(source: str, mode: str,
                      result: "AnnotatedSource") -> dict:
    """``repro-annotate/1`` — the annotated text plus stats."""
    return envelopes.make(envelopes.ANNOTATE, {
        "mode": mode,
        "text": result.text,
        "keep_lives": result.stats.keep_lives,
        "stats": dataclasses.asdict(result.stats),
        "diagnostics": _diag_rows(source, result.diagnostics),
    })


def check_envelope(source: str, diags: "list[Diagnostic]") -> dict:
    """``repro-check/1`` — source-safety diagnostics only."""
    return envelopes.make(envelopes.CHECK, {
        "ok": not diags,
        "count": len(diags),
        "diagnostics": _diag_rows(source, diags),
    })


def run_envelope(result: "RunResult", code_size: int, config: str,
                 model: str) -> dict:
    """``repro-run/1`` — one compile+execute observation."""
    return envelopes.make(envelopes.RUN, {
        "config": config,
        "model": model,
        "exit_code": result.exit_code,
        "output": result.output,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "collections": result.collections,
        "code_size": code_size,
    })


def bench_envelope(rows: "dict[str, WorkloadRow]", model: str) -> dict:
    """``repro-bench/1`` — the slowdown matrix: per-cell counts plus
    the rendered table (the same bytes ``repro bench`` prints)."""
    from ..bench.tables import render_slowdown_table
    from ..machine.models import MODELS
    cells: dict[str, dict[str, Any]] = {}
    for workload, row in rows.items():
        cells[workload] = {
            config: {"cycles": c.cycles, "instructions": c.instructions,
                     "code_size": c.code_size, "exit_code": c.exit_code,
                     "collections": c.collections}
            for config, c in row.cells.items()}
    table = render_slowdown_table(
        rows, TABLE_KEYS[model], f"Slowdowns on {MODELS[model].name}")
    return envelopes.make(envelopes.BENCH, {
        "model": model,
        "workloads": sorted(rows),
        "cells": cells,
        "table": table,
    })


#: GCStats fields that carry (or bucket by) wall-clock nanoseconds, or
#: fill only while tracing is enabled — envelope bytes must not depend
#: on either, so the fuzz envelope drops them.
_GC_WALL_FIELDS = frozenset({
    "gc_pause_ns", "root_scan_ns", "mark_ns", "sweep_ns", "max_pause_ns",
    "alloc_histogram", "pause_histogram", "sweep_histogram",
})


def fuzz_envelope(result: "CampaignResult") -> dict:
    """``repro-fuzz/1`` — the campaign record, restricted to the
    deterministic counters (wall-clock pause accounting stays in the
    obs layer, not in the envelope)."""
    gc_totals = {k: v for k, v in result.gc_totals.to_dict().items()
                 if k not in _GC_WALL_FIELDS}
    return envelopes.make(envelopes.FUZZ, {
        "seed": result.seed,
        "iterations": result.iterations,
        "cells": result.cells,
        "ok": result.ok,
        "findings": [f.describe() for f in result.findings],
        "gc_totals": gc_totals,
        "report": result.report(),
    })


__all__ = ["TABLE_KEYS", "dumps_canonical", "annotate_envelope",
           "check_envelope", "run_envelope", "bench_envelope",
           "fuzz_envelope"]
