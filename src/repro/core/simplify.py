"""Post-annotation cleanup: fold ``*&e`` back to ``e``.

The annotator normalizes heap lvalue chains to ``*&(chain)`` so the
address computation becomes the dereference argument (the form the paper
assumes).  Where no KEEP_LIVE ended up between the ``*`` and the ``&``,
the detour is folded away again, so un-annotated expressions unparse in
their original shape.  This mirrors the paper's "&*e have been
simplified to e" assumption.
"""

from __future__ import annotations

from ..cfront import cast as A


def simplify_unit(unit: A.TranslationUnit) -> None:
    for item in unit.items:
        _visit(item)


def _visit(node: A.Node) -> None:
    for name, value in vars(node).items():
        if isinstance(value, A.Expr):
            setattr(node, name, _fold(value))
        elif isinstance(value, A.Node):
            _visit(value)
        elif isinstance(value, list):
            new_list = []
            for item in value:
                if isinstance(item, A.Expr):
                    new_list.append(_fold(item))
                elif isinstance(item, A.Node):
                    _visit(item)
                    new_list.append(item)
                else:
                    new_list.append(item)
            setattr(node, name, new_list)


def _fold(e: A.Expr) -> A.Expr:
    _visit(e)
    if isinstance(e, A.Unary) and e.op == "*":
        inner = e.operand
        if isinstance(inner, A.Unary) and inner.op == "&":
            return inner.operand
    if isinstance(e, A.Unary) and e.op == "&":
        inner = e.operand
        if isinstance(inner, A.Unary) and inner.op == "*":
            return inner.operand
    return e
