"""KEEP_LIVE annotation — the paper's central algorithm.

"Our algorithm is now simple to state: replace every pointer-valued
expression *e* that occurs as the right side of an assignment, or as the
argument of a dereferencing operation, or as a function argument or
result, by the expression KEEP_LIVE(e, BASE(e)).  C increment and
decrement operators are treated as assignments."

Implementation notes
--------------------
* Following the paper, dereferences are first normalized so they occur
  only as ``*e`` with the ``[]``/``->`` operators inside an ``&``
  operator: ``e1[e2].x`` becomes ``*&(e1[e2].x)`` and so on.  A cleanup
  pass folds ``*&e`` back to ``e`` wherever no KEEP_LIVE was inserted,
  so un-annotated code round-trips unchanged.
* Optimization (1) (copy suppression), (2) (specialized ++/--
  expansions) and (3) (slowly-varying base heuristic) from the paper's
  "Optimizations" section are all implemented and individually
  switchable, as is the paper's point (4) (collections only at call
  sites) via ``call_safe_points``.
* In checked (debugging) mode the same insertion points receive real
  calls: ``GC_same_obj(e, base)`` and ``GC_pre_incr``/``GC_post_incr``
  for increments, exactly as in the paper's "Debugging Applications"
  section.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfront import cast as A
from ..cfront.ctypes import CType, INT, Pointer, VOID, VOID_PTR
from ..cfront.errors import SourceSpan
from ..cfront.typecheck import typecheck
from .base import base_of, baseaddr_of, is_generating, is_plain_copy
from .simplify import simplify_unit

SAFE = "safe"
CHECKED = "checked"


@dataclass
class AnnotateOptions:
    """Knobs for the annotation pass (paper's optimizations 1-4)."""

    mode: str = SAFE  # 'safe' (KEEP_LIVE barrier) | 'checked' (GC_same_obj)
    suppress_copies: bool = True  # optimization (1)
    expand_incdec: bool = True  # optimization (2)
    base_heuristic: bool = True  # optimization (3)
    call_safe_points: bool = False  # optimization (4): GC only at calls
    # Paper's Extensions section: assert that "the client program stores
    # only pointers to the base of an object in the heap or in statically
    # allocated variables" by inserting dynamic GC_check_base calls.
    check_base_stores: bool = False


@dataclass
class AnnotateStats:
    keep_lives: int = 0
    suppressed_copies: int = 0
    suppressed_nil_base: int = 0
    suppressed_no_call: int = 0
    incdec_expansions: int = 0
    heuristic_replacements: int = 0
    temps_introduced: int = 0
    base_store_checks: int = 0


@dataclass
class Replacement:
    """One annotation site: the original span and the node now there."""

    span: SourceSpan
    node: A.Node


@dataclass
class AnnotationResult:
    unit: A.TranslationUnit
    stats: AnnotateStats
    replacements: list[Replacement] = field(default_factory=list)
    temp_decls: dict[str, list[tuple[str, CType]]] = field(default_factory=dict)


_GC_BUILTIN_DECLS = {
    "GC_same_obj": (VOID_PTR, (VOID_PTR, VOID_PTR)),
    "GC_pre_incr": (VOID_PTR, (Pointer(VOID_PTR), INT)),
    "GC_post_incr": (VOID_PTR, (Pointer(VOID_PTR), INT)),
    "GC_check_base": (VOID_PTR, (VOID_PTR,)),
}


class Annotator:
    def __init__(self, unit: A.TranslationUnit, options: AnnotateOptions | None = None):
        self.unit = unit
        self.options = options or AnnotateOptions()
        self.stats = AnnotateStats()
        self.replacements: list[Replacement] = []
        self.temp_decls: dict[str, list[tuple[str, CType]]] = {}
        self._temps: list[tuple[str, CType]] = []
        self._temp_n = 0
        self._heuristic_map: dict[str, str] = {}
        self._local_names: set[str] = set()
        self._stmt_has_call = True  # refined per statement when opt (4) is on

    # -- public ------------------------------------------------------------

    def run(self) -> AnnotationResult:
        for item in self.unit.items:
            if isinstance(item, A.FuncDef):
                self._annotate_function(item)
        if self.options.mode == CHECKED or self.options.check_base_stores:
            self._inject_builtin_decls()
        simplify_unit(self.unit)  # fold the *&e detours that stayed bare
        typecheck(self.unit)  # re-type new nodes (KeepLive, temps, calls)
        return AnnotationResult(self.unit, self.stats, self.replacements, self.temp_decls)

    # -- per function ---------------------------------------------------------

    def _annotate_function(self, fn: A.FuncDef) -> None:
        self._temps = []
        self._local_names = {p.name for p in fn.params}
        for node in A.walk(fn.body):
            if isinstance(node, A.Decl):
                self._local_names.update(d.name for d in node.declarators)
        self._heuristic_map = (
            _slowly_varying_bases(fn) if self.options.base_heuristic else {}
        )
        fn.body = self._stmt(fn.body)  # type: ignore[assignment]
        if self._temps:
            decls = [
                A.Decl(declarators=[A.Declarator(name=name, ctype=ctype)],
                       base_type=ctype)
                for name, ctype in self._temps
            ]
            fn.body.items[:0] = decls
            self.temp_decls[fn.name] = list(self._temps)
            self.stats.temps_introduced += len(self._temps)

    def _fresh_temp(self, ctype: CType) -> A.Ident:
        self._temp_n += 1
        name = f"__gcs_tmp{self._temp_n}"
        self._temps.append((name, ctype))
        return A.Ident(name=name, ctype=ctype, is_lvalue=True)

    # -- statements --------------------------------------------------------------

    def _stmt(self, s: A.Node) -> A.Node:
        if isinstance(s, A.Block):
            s.items = [self._stmt(item) for item in s.items]
            return s
        if isinstance(s, A.ExprStmt):
            if s.expr is not None:
                self._enter_stmt(s.expr)
                s.expr = self._tx(s.expr, value_used=False)
            return s
        if isinstance(s, A.Decl):
            for d in s.declarators:
                if isinstance(d.init, A.Expr):
                    self._enter_stmt(d.init)
                    init = self._tx(d.init)
                    if d.ctype.is_pointer:
                        init = self._wrap(init)
                    d.init = init
            return s
        if isinstance(s, A.If):
            self._enter_stmt(s.cond)
            s.cond = self._tx(s.cond)
            s.then = self._stmt(s.then)  # type: ignore[assignment]
            if s.otherwise is not None:
                s.otherwise = self._stmt(s.otherwise)  # type: ignore[assignment]
            return s
        if isinstance(s, A.While):
            self._enter_stmt(s.cond)
            s.cond = self._tx(s.cond)
            s.body = self._stmt(s.body)  # type: ignore[assignment]
            return s
        if isinstance(s, A.DoWhile):
            s.body = self._stmt(s.body)  # type: ignore[assignment]
            self._enter_stmt(s.cond)
            s.cond = self._tx(s.cond)
            return s
        if isinstance(s, A.For):
            if s.init is not None:
                s.init = self._stmt(s.init)
            if s.cond is not None:
                self._enter_stmt(s.cond)
                s.cond = self._tx(s.cond)
            if s.step is not None:
                self._enter_stmt(s.step)
                s.step = self._tx(s.step, value_used=False)
            s.body = self._stmt(s.body)  # type: ignore[assignment]
            return s
        if isinstance(s, A.Return):
            if s.value is not None:
                self._enter_stmt(s.value)
                value = self._tx(s.value)
                if _is_pointer_valued(value):
                    value = self._wrap(value)
                s.value = value
            return s
        if isinstance(s, A.Switch):
            self._enter_stmt(s.cond)
            s.cond = self._tx(s.cond)
            s.body = self._stmt(s.body)  # type: ignore[assignment]
            return s
        if isinstance(s, (A.Case, A.Default, A.Label)):
            if s.body is not None:
                s.body = self._stmt(s.body)  # type: ignore[assignment]
            return s
        return s  # Break, Continue, Goto, empty

    def _enter_stmt(self, e: A.Expr) -> None:
        """Optimization (4): when collections happen only at call sites, a
        statement containing no call cannot lose a pointer to the GC."""
        if not self.options.call_safe_points:
            self._stmt_has_call = True
            return
        self._stmt_has_call = any(isinstance(n, A.Call) for n in A.walk(e))

    # -- expressions ------------------------------------------------------------

    def _tx(self, e: A.Expr, value_used: bool = True) -> A.Expr:
        """Transform ``e`` bottom-up, inserting KEEP_LIVE at the paper's
        insertion points."""
        if isinstance(e, (A.IntLit, A.FloatLit, A.CharLit, A.StringLit, A.Ident)):
            return e
        if isinstance(e, A.Assign):
            return self._tx_assign(e)
        if isinstance(e, (A.Unary, A.Postfix)) and e.op in ("++", "--"):
            return self._tx_incdec(e, value_used)
        if isinstance(e, A.Unary) and e.op == "*":
            e.operand = self._wrap(self._tx(e.operand))
            return e
        if isinstance(e, A.Unary) and e.op == "&":
            e.operand = self._tx_inside_addr(e.operand)
            return e
        if isinstance(e, A.Unary):
            e.operand = self._tx(e.operand)
            return e
        if isinstance(e, A.Binary):
            e.left = self._tx(e.left)
            e.right = self._tx(e.right)
            if e.op in ("+", "-"):
                # Pointer arithmetic on a generating expression needs a
                # named base (paper's temporary-introduction assumption).
                if e.left.ctype is not None and e.left.ctype.decay().is_pointer:
                    e.left = self._materialize(e.left)
                elif e.right.ctype is not None and e.right.ctype.decay().is_pointer:
                    e.right = self._materialize(e.right)
            return e
        if isinstance(e, A.Cond):
            e.cond = self._tx(e.cond)
            e.then = self._tx(e.then, value_used)
            e.otherwise = self._tx(e.otherwise, value_used)
            return e
        if isinstance(e, A.Comma):
            e.items = [
                self._tx(item, value_used=(value_used and i == len(e.items) - 1))
                for i, item in enumerate(e.items)
            ]
            return e
        if isinstance(e, A.Call):
            e.func = self._tx(e.func)
            new_args = []
            for arg in e.args:
                arg = self._tx(arg)
                if _is_pointer_valued(arg):
                    arg = self._wrap(arg)
                new_args.append(arg)
            e.args = new_args
            return e
        if isinstance(e, (A.Index, A.Member)):
            if e.is_lvalue and _chain_needs_normalizing(e):
                # Load context: e1[e2] -> *&(e1[e2]) so the address
                # computation becomes the dereference argument.
                addr = A.Unary(op="&", operand=self._tx_inside_addr(e), span=e.span)
                addr.ctype = Pointer(e.ctype or INT)
                wrapped = self._wrap(addr)
                deref = A.Unary(op="*", operand=wrapped, span=e.span)
                deref.ctype = e.ctype
                deref.is_lvalue = True
                if wrapped is not addr:  # splice must include the '*'
                    self._record(e.span, deref)
                return deref
            return self._tx_inside_addr(e)
        if isinstance(e, A.Cast):
            e.operand = self._tx(e.operand, value_used)
            return e
        if isinstance(e, (A.SizeofExpr, A.SizeofType)):
            return e
        if isinstance(e, A.KeepLive):
            return e
        return e

    def _materialize(self, e: A.Expr) -> A.Expr:
        """Give a pointer-valued *generating* expression a name, per the
        paper's normalization ("we assume that temporaries have already
        been introduced, so that we can name the results").  The temp
        then serves as a BASE for subsequent address arithmetic."""
        if not (is_generating(e) and _is_pointer_valued(e)):
            return e
        assert e.ctype is not None
        tmp = self._fresh_temp(e.ctype.decay())
        seq = A.Comma(items=[_assign(_clone_ident(tmp), e), _clone_ident(tmp)],
                      span=e.span)
        seq.ctype = tmp.ctype
        self._record(e.span, seq)
        return seq

    def _tx_inside_addr(self, e: A.Expr) -> A.Expr:
        """Transform an lvalue chain that sits under an ``&`` (so its own
        address computation is *not* a dereference here)."""
        if isinstance(e, A.Index):
            base = self._tx(e.base)
            if base.ctype is not None and base.ctype.decay().is_pointer:
                base = self._materialize(base)
            e.base = base
            e.index = self._tx(e.index)
            return e
        if isinstance(e, A.Member):
            if e.arrow:
                e.base = self._materialize(self._tx(e.base))
            else:
                e.base = self._tx_inside_addr(e.base)
            return e
        if isinstance(e, A.Unary) and e.op == "*":
            # &*e: the address is just e; no dereference happens.
            e.operand = self._tx(e.operand)
            return e
        return self._tx(e)

    def _tx_assign(self, e: A.Assign) -> A.Expr:
        target_is_ptr = e.target.ctype is not None and e.target.ctype.is_pointer
        if e.op in ("+=", "-=") and target_is_ptr:
            return self._tx_compound_pointer_assign(e)
        # Plain or non-pointer compound assignment.
        e.target = self._tx_store_target(e.target)
        value = self._tx(e.value)
        if e.op == "=" and _is_pointer_valued(value):
            value = self._wrap(value)
            if (self.options.check_base_stores
                    and self._is_heap_or_static_store(e.target)):
                value = self._wrap_check_base(value)
        e.value = value
        return e

    def _is_heap_or_static_store(self, target: A.Expr) -> bool:
        """Classify a (normalized) store destination for the Extensions
        mode: heap (any dereference) or statically allocated (a global
        variable / dot-chain rooted in one) — stack and register locals
        may legitimately hold interior pointers."""
        root = target
        while isinstance(root, (A.Member, A.Index)):
            if isinstance(root, A.Member) and root.arrow:
                return True
            root = root.base
        if isinstance(root, A.Unary) and root.op == "*":
            return True
        if isinstance(root, A.Ident):
            return root.name not in self._local_names
        return False

    def _wrap_check_base(self, value: A.Expr) -> A.Expr:
        """value -> (T)GC_check_base((void *)(value))."""
        call = A.Call(func=A.Ident(name="GC_check_base"), args=[value],
                      span=value.span)
        call.ctype = VOID_PTR
        if value.ctype is not None and value.ctype.decay().is_pointer:
            cast = A.Cast(to_type=value.ctype.decay(), operand=call,
                          span=value.span)
            cast.ctype = value.ctype.decay()
            self._record(value.span, cast)
            self.stats.base_store_checks += 1
            return cast
        self.stats.base_store_checks += 1
        self._record(value.span, call)
        return call

    def _tx_store_target(self, target: A.Expr) -> A.Expr:
        """Normalize a store destination: heap lvalues become ``*addr``
        with the address wrapped (the address computation is the
        dereference argument of the store)."""
        if isinstance(target, A.Ident):
            return target
        if isinstance(target, (A.Index, A.Member)) and not _chain_needs_normalizing(target):
            return self._tx_inside_addr(target)
        if isinstance(target, A.Unary) and target.op == "*":
            target.operand = self._wrap(self._tx(target.operand))
            return target
        if isinstance(target, (A.Index, A.Member)):
            addr = A.Unary(op="&", operand=self._tx_inside_addr(target), span=target.span)
            addr.ctype = Pointer(target.ctype or INT)
            wrapped = self._wrap(addr)
            deref = A.Unary(op="*", operand=wrapped, span=target.span)
            deref.ctype = target.ctype
            deref.is_lvalue = True
            if wrapped is not addr:
                self._record(target.span, deref)
            return deref
        return self._tx(target)

    def _tx_compound_pointer_assign(self, e: A.Assign) -> A.Expr:
        """``p += n`` is pointer arithmetic plus an assignment:
        rewritten to ``p = KEEP_LIVE(p + n, BASE(p))`` (safe mode) or a
        ``GC_same_obj`` call (checked mode)."""
        op = "+" if e.op == "+=" else "-"
        value = self._tx(e.value)
        if isinstance(e.target, A.Ident):
            target = e.target
            rhs = A.Binary(op=op, left=_clone_ident(target), right=value, span=e.span)
            rhs.ctype = target.ctype
            wrapped = self._wrap(rhs, force_base=base_of(target))
            out = A.Assign(op="=", target=target, value=wrapped, span=e.span)
            out.ctype = target.ctype
            self._record(e.span, out)
            return out
        # General lvalue: (tp = &lv, tv = *tp, *tp = KEEP_LIVE(tv op n, tv))
        lv = self._tx_store_target(e.target)
        assert e.target.ctype is not None
        tp = self._fresh_temp(Pointer(e.target.ctype))
        tv = self._fresh_temp(e.target.ctype)
        addr = _addr_of(lv)
        arith = A.Binary(op=op, left=_clone_ident(tv), right=value, span=e.span)
        arith.ctype = tv.ctype
        seq = A.Comma(items=[
            _assign(tp, addr),
            _assign(tv, _deref(_clone_ident(tp))),
            _assign(_deref(_clone_ident(tp)),
                    self._wrap(arith, force_base=_clone_ident(tv))),
        ], span=e.span)
        seq.ctype = e.target.ctype
        self._record(e.span, seq)
        return seq

    def _tx_incdec(self, e: A.Expr, value_used: bool) -> A.Expr:
        """Pointer ``++``/``--`` are assignments (paper).  Optimization
        (2): expand simple variables without forcing them to memory; in
        checked mode emit ``GC_pre_incr``/``GC_post_incr``."""
        assert isinstance(e, (A.Unary, A.Postfix))
        operand = e.operand
        is_ptr = operand.ctype is not None and operand.ctype.is_pointer
        if not is_ptr:
            e.operand = self._tx_store_target(operand) if not isinstance(operand, A.Ident) else operand
            return e
        sign = 1 if e.op == "++" else -1
        prefix = isinstance(e, A.Unary)
        if self.options.mode == CHECKED:
            return self._checked_incdec(e, operand, sign, prefix)
        self.stats.incdec_expansions += 1
        one = A.IntLit(value=1, ctype=INT)
        if isinstance(operand, A.Ident) and self.options.expand_incdec:
            arith = A.Binary(op="+" if sign > 0 else "-",
                             left=_clone_ident(operand), right=one, span=e.span)
            arith.ctype = operand.ctype
            if prefix or not value_used:
                out: A.Expr = _assign(operand, self._wrap(arith, force_base=operand))
            else:
                # (tmp = p, p = KEEP_LIVE(tmp + 1, tmp), tmp); with the
                # base heuristic the less rapidly varying source replaces
                # tmp as the base, giving the paper's s/t version.
                tmp = self._fresh_temp(operand.ctype)
                arith2 = A.Binary(op="+" if sign > 0 else "-",
                                  left=_clone_ident(tmp), right=one, span=e.span)
                arith2.ctype = operand.ctype
                post_base: A.Ident = _clone_ident(tmp)
                if operand.name in self._heuristic_map:
                    post_base = A.Ident(name=self._heuristic_map[operand.name])
                    self.stats.heuristic_replacements += 1
                out = A.Comma(items=[
                    _assign(tmp, _clone_ident(operand)),
                    _assign(operand, self._wrap(arith2, force_base=post_base)),
                    _clone_ident(tmp),
                ], span=e.span)
                out.ctype = operand.ctype
            self._record(e.span, out)
            return out
        # General lvalue: (tmp1 = &(e), tmp2 = *tmp1, *tmp1 = KL(tmp2 +- 1, tmp2)[, tmp2])
        lv = self._tx_store_target(operand)
        assert operand.ctype is not None
        tp = self._fresh_temp(Pointer(operand.ctype))
        tv = self._fresh_temp(operand.ctype)
        arith = A.Binary(op="+" if sign > 0 else "-",
                         left=_clone_ident(tv), right=one, span=e.span)
        arith.ctype = operand.ctype
        items: list[A.Expr] = [
            _assign(tp, _addr_of(lv)),
            _assign(tv, _deref(_clone_ident(tp))),
            _assign(_deref(_clone_ident(tp)),
                    self._wrap(arith, force_base=_clone_ident(tv))),
        ]
        if not prefix and value_used:
            items.append(_clone_ident(tv))
        out = A.Comma(items=items, span=e.span)
        out.ctype = operand.ctype
        self._record(e.span, out)
        return out

    def _checked_incdec(self, e: A.Expr, operand: A.Expr, sign: int,
                        prefix: bool) -> A.Expr:
        """Checked mode: ++p -> (T)GC_pre_incr(&p, sizeof(*p) * (+1))."""
        self.stats.incdec_expansions += 1
        self.stats.keep_lives += 1
        assert isinstance(operand.ctype, Pointer)
        elem = operand.ctype.target
        elem_size = max(1, elem.size)
        lv = self._tx_store_target(operand) if not isinstance(operand, A.Ident) else operand
        fn = "GC_pre_incr" if prefix else "GC_post_incr"
        amount: A.Expr = A.IntLit(value=elem_size * sign, ctype=INT)
        call = A.Call(func=A.Ident(name=fn), args=[_addr_of(lv), amount], span=e.span)
        call.ctype = VOID_PTR
        cast = A.Cast(to_type=operand.ctype, operand=call, span=e.span)
        cast.ctype = operand.ctype
        self._record(e.span, cast)
        return cast

    # -- KEEP_LIVE insertion ---------------------------------------------------

    def _wrap(self, e: A.Expr, force_base: A.Ident | None = None) -> A.Expr:
        """Wrap ``e`` in KEEP_LIVE(e, BASE(e)) if the paper's rules call
        for it, applying optimizations (1), (3) and (4)."""
        if not _is_pointer_valued(e):
            return e
        if isinstance(e, A.KeepLive):
            return e
        if is_generating(e) and force_base is None:
            return e
        if self.options.call_safe_points and not self._stmt_has_call:
            self.stats.suppressed_no_call += 1
            return e
        if force_base is None and self.options.suppress_copies and is_plain_copy(e):
            self.stats.suppressed_copies += 1
            return e
        base = force_base if force_base is not None else base_of(e)
        if base is None:
            self.stats.suppressed_nil_base += 1
            return e
        base_ident = _clone_ident(base)
        if base.name in self._heuristic_map:
            base_ident = A.Ident(name=self._heuristic_map[base.name])
            self.stats.heuristic_replacements += 1
        kl = A.KeepLive(value=e, base=base_ident,
                        checked=self.options.mode == CHECKED, span=e.span)
        kl.ctype = e.ctype
        self.stats.keep_lives += 1
        self._record(e.span, kl)
        return kl

    def _record(self, span: SourceSpan, node: A.Node) -> None:
        if span.start >= 0:
            self.replacements.append(Replacement(span, node))

    # -- checked-mode externs ----------------------------------------------------

    def _inject_builtin_decls(self) -> None:
        decls: list[A.Node] = []
        from ..cfront.ctypes import Function
        for name, (ret, params) in _GC_BUILTIN_DECLS.items():
            fn = Function(ret, params)
            decls.append(A.Decl(
                declarators=[A.Declarator(name=name, ctype=fn)],
                storage="extern", base_type=ret))
        self.unit.items[:0] = decls


# -- small AST builders --------------------------------------------------------


def _clone_ident(ident: A.Ident) -> A.Ident:
    return A.Ident(name=ident.name, ctype=ident.ctype, is_lvalue=True)


def _assign(target: A.Expr, value: A.Expr) -> A.Assign:
    out = A.Assign(op="=", target=target, value=value)
    out.ctype = target.ctype
    return out


def _deref(e: A.Expr) -> A.Unary:
    out = A.Unary(op="*", operand=e)
    if isinstance(e.ctype, Pointer):
        out.ctype = e.ctype.target
    out.is_lvalue = True
    return out


def _addr_of(e: A.Expr) -> A.Expr:
    if isinstance(e, A.Unary) and e.op == "*":
        return e.operand  # &*x == x
    out = A.Unary(op="&", operand=e)
    out.ctype = Pointer(e.ctype or INT)
    return out


def _is_pointer_valued(e: A.Expr) -> bool:
    return e.ctype is not None and e.ctype.decay().is_pointer


def _chain_needs_normalizing(e: A.Expr) -> bool:
    """True when an lvalue chain dereferences heap-capable storage (any
    ``*``, ``->``, or ``[]`` on a pointer).  Pure dot-chains on plain
    variables (``s.a.b``) and indexing of on-stack arrays stay as-is —
    their addresses have NIL base anyway."""
    if isinstance(e, A.Index):
        base_t = e.base.ctype
        if base_t is not None and base_t.is_pointer:
            return True
        return _chain_needs_normalizing(e.base)
    if isinstance(e, A.Member):
        if e.arrow:
            return True
        return _chain_needs_normalizing(e.base)
    if isinstance(e, A.Unary) and e.op == "*":
        return True
    return False


def _slowly_varying_bases(fn: A.FuncDef) -> dict[str, str]:
    """Optimization (3): map rapidly-varying base variables to
    "equivalent, but less rapidly varying base pointers".

    ``p`` maps to ``s`` when every assignment to ``p`` in the function is
    either ``p = <expr with BASE s>`` or a self-update (``p++``,
    ``p += k``, ``p = p + k``), with a single non-self source ``s``, and
    ``s`` itself is never reassigned (it is a parameter or is assigned at
    most once).  Then whenever ``p`` points at a heap object, ``s``
    points at the same object, and ``s`` makes the less constraining
    KEEP_LIVE base (the paper's canonical string-copy loop).
    """
    assigns: dict[str, list[A.Expr]] = {}
    for node in A.walk(fn.body):
        if isinstance(node, A.Assign) and isinstance(node.target, A.Ident):
            if node.op in ("+=", "-="):
                assigns.setdefault(node.target.name, []).append(node)  # self-update
            else:
                assigns.setdefault(node.target.name, []).append(node.value)
        elif isinstance(node, (A.Unary, A.Postfix)) and node.op in ("++", "--"):
            if isinstance(node.operand, A.Ident):
                assigns.setdefault(node.operand.name, []).append(node)
        elif isinstance(node, A.Decl):
            for d in node.declarators:
                if isinstance(d.init, A.Expr):
                    assigns.setdefault(d.name, []).append(d.init)

    param_names = {p.name for p in fn.params}

    def stable(name: str) -> bool:
        writes = assigns.get(name, [])
        if name in param_names:
            return not writes
        return len(writes) <= 1

    out: dict[str, str] = {}
    for name, writes in assigns.items():
        sources: set[str] = set()
        ok = True
        for w in writes:
            if isinstance(w, (A.Unary, A.Postfix)):
                continue  # self-update
            if not isinstance(w, A.Expr):
                ok = False
                break
            if not _is_pointer_valued(w):
                ok = False
                break
            b = base_of(w)
            if b is None:
                ok = False
                break
            if b.name == name:
                continue  # self-update like p = p + 1
            sources.add(b.name)
        if ok and len(sources) == 1:
            src = sources.pop()
            if stable(src) and src != name:
                out[name] = src
    return out


def annotate(unit: A.TranslationUnit,
             options: AnnotateOptions | None = None) -> AnnotationResult:
    """Annotate a typechecked translation unit in place and return the
    result bundle.  The unit must already have been through
    :func:`repro.cfront.typecheck`."""
    return Annotator(unit, options).run()
