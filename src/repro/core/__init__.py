"""The paper's contribution: BASE/BASEADDR analysis, KEEP_LIVE
annotation for GC-safety, pointer-arithmetic checking mode, and the
source-safety diagnostics."""

from .annotate import (
    AnnotateOptions, AnnotateStats, AnnotationResult, Annotator, CHECKED, SAFE,
    annotate,
)
from .api import AnnotatedSource
from .base import base_of, baseaddr_of, is_generating, is_plain_copy
from .edits import Edit, EditList, splice
from .sourcecheck import check_unit

__all__ = [
    "AnnotateOptions", "AnnotateStats", "AnnotationResult", "Annotator",
    "CHECKED", "SAFE", "annotate", "AnnotatedSource",
    "base_of", "baseaddr_of", "is_generating",
    "is_plain_copy", "Edit", "EditList", "splice", "check_unit",
]
