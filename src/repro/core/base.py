"""The BASE / BASEADDR inductive definition (paper, section "An Algorithm").

``BASE(e)``, for a pointer-valued expression ``e``, is the pointer
*variable* from which the value of ``e`` is computed, or NIL if there is
no such pointer variable.  The defining property: ``e`` and ``BASE(e)``
are guaranteed to point to the same object whenever ``e`` points to a
heap object (this relies on the ANSI C rule that pointer arithmetic may
not leave the object).

``BASEADDR(e)`` is the possible base pointer for ``&e``.

The paper's table, transcribed:

    BASE(0)            = NIL
    BASE(x)            = x            if x is a variable and possible heap pointer
    BASE(x = e)        = x            if x is a pointer variable
    BASE(x = e)        = BASE(e)      if x is not a pointer variable
    BASE(e1 += e2)     = BASE(e1)
    BASE(e1 -= e2)     = BASE(e1)
    BASE(e1++) = BASE(++e1) = BASE(e1)
    BASE(e1--) = BASE(--e1) = BASE(e1)
    BASE(e1 + e2)      = BASE(e1)     where e1 is the operand with pointer type
    BASE(e1 - e2)      = BASE(e1)
    BASE(e1, e2)       = BASE(e2)
    BASE(&e1)          = BASEADDR(e1)

    BASEADDR(x)        = NIL          if x is a variable
    BASEADDR(e1[e2])   = BASE(e1)     if BASE(e1) is not NIL
    BASEADDR(e1[e2])   = BASE(e2)     if BASE(e1) is NIL
    BASEADDR(e1 -> x)  = BASE(e1)

BASE is *not* defined for generating expressions (pointer dereferences,
function calls, conditional expressions): the algorithm assumes those
are assigned to temporaries whose values already count as KEEP_LIVE
results.  We additionally define the natural closure cases the paper
leaves implicit: casts are transparent (pointer-to-pointer only),
``BASEADDR(e.x) = BASEADDR(e)`` and ``BASEADDR(*e) = BASE(e)``.
"""

from __future__ import annotations

from ..cfront import cast as A
from ..cfront.ctypes import Pointer
from ..cfront.symbols import SymbolTable


def _is_heap_pointer_var(e: A.Expr) -> bool:
    """'x is a variable and possible heap pointer': a pointer-typed
    identifier.  Array-typed identifiers denote stack/static storage, so
    they are never heap pointers themselves."""
    return isinstance(e, A.Ident) and e.ctype is not None and e.ctype.is_pointer


def base_of(e: A.Expr) -> A.Ident | None:
    """BASE(e): the base pointer variable, or None for NIL."""
    if isinstance(e, (A.IntLit, A.CharLit, A.FloatLit, A.StringLit)):
        return None
    if isinstance(e, A.Ident):
        return e if _is_heap_pointer_var(e) else None
    if isinstance(e, A.Assign):
        if e.op == "=":
            if _is_heap_pointer_var(e.target):
                return e.target  # type: ignore[return-value]
            return base_of(e.value)
        if e.op in ("+=", "-="):
            return base_of(e.target)
        return None
    if isinstance(e, (A.Unary, A.Postfix)) and e.op in ("++", "--"):
        return base_of(e.operand)
    if isinstance(e, A.Binary) and e.op in ("+", "-"):
        left_ptr = e.left.ctype is not None and e.left.ctype.decay().is_pointer
        if left_ptr:
            return base_of(e.left)
        right_ptr = e.right.ctype is not None and e.right.ctype.decay().is_pointer
        if right_ptr:
            return base_of(e.right)
        return None
    if isinstance(e, A.Comma):
        return base_of(e.items[-1]) if e.items else None
    if isinstance(e, A.Unary) and e.op == "&":
        return baseaddr_of(e.operand)
    if isinstance(e, A.Cast):
        # Pointer-to-pointer casts are transparent; anything else (int to
        # pointer, etc.) manufactures a pointer with no base.
        src = e.operand.ctype
        if isinstance(e.to_type, Pointer) and src is not None and src.decay().is_pointer:
            return base_of(e.operand)
        return None
    if isinstance(e, A.KeepLive):
        return base_of(e.value)
    if isinstance(e, A.Cond):
        # Generating expression: BASE undefined.
        return None
    if isinstance(e, A.Call):
        return None
    if isinstance(e, A.Unary) and e.op == "*":
        return None  # dereference: generating expression
    if isinstance(e, (A.Index, A.Member)):
        # As an rvalue these are loads, i.e. generating expressions.  The
        # special handling for their *addresses* lives in baseaddr_of.
        return None
    return None


def baseaddr_of(e: A.Expr) -> A.Ident | None:
    """BASEADDR(e): the possible base pointer for &e, or None for NIL."""
    if isinstance(e, A.Ident):
        return None  # address of a variable: stack or static storage
    if isinstance(e, A.Index):
        base = base_of(e.base)
        if base is not None:
            return base
        return base_of(e.index)
    if isinstance(e, A.Member):
        if e.arrow:
            return base_of(e.base)
        return baseaddr_of(e.base)
    if isinstance(e, A.Unary) and e.op == "*":
        return base_of(e.operand)
    if isinstance(e, A.StringLit):
        return None
    # Other expressions are not lvalues; their address may not be taken.
    return None


def is_plain_copy(e: A.Expr) -> bool:
    """Optimization (1) of the paper: an expression result "statically
    known to be simply a copy of a value logically stored elsewhere"
    needs no KEEP_LIVE, because condition (2) of KEEP_LIVE already
    guarantees the underlying value stays visible.

    Copies: identifiers, loads (``*p``, ``p[i]``, ``p->f``, ``s.f``),
    pointer-to-pointer casts of copies, comma expressions ending in a
    copy, already-wrapped KEEP_LIVE results, and literals.
    """
    if isinstance(e, (A.Ident, A.StringLit, A.IntLit, A.CharLit, A.KeepLive)):
        return True
    if isinstance(e, A.Unary) and e.op == "*":
        return True
    if isinstance(e, (A.Index, A.Member)):
        return True
    if isinstance(e, A.Cast):
        src = e.operand.ctype
        if isinstance(e.to_type, Pointer) and src is not None and src.decay().is_pointer:
            return is_plain_copy(e.operand)
        return False
    if isinstance(e, A.Comma):
        return bool(e.items) and is_plain_copy(e.items[-1])
    if isinstance(e, A.Assign) and e.op == "=":
        # The assignment stores the value; the result is that stored copy.
        return is_plain_copy(e.value) or isinstance(e.target, A.Ident)
    return False


def is_generating(e: A.Expr) -> bool:
    """Generating expressions (paper): pointer dereferences, function
    calls, conditional expressions.  Their results are treated as values
    of KEEP_LIVE expressions (allocation results in particular), so the
    annotator never wraps them directly."""
    if isinstance(e, A.Call):
        return True
    if isinstance(e, A.Cond):
        return True
    if isinstance(e, A.Unary) and e.op == "*":
        return True
    if isinstance(e, (A.Index, A.Member)):
        return True
    return False
