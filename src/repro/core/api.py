"""Entry points for the annotator — the paper's preprocessor as a
library.

>>> from repro.api import Toolchain
>>> result = Toolchain().annotate("char *f(char *p) { return p + 1; }")
>>> print(result.text)            # doctest: +SKIP
char *f(char *p) { return KEEP_LIVE((p + 1), p); }

The old module-level ``annotate_source`` / ``check_source`` shims are
gone (deprecated through PR 7, removed in the serve PR): every caller
goes through the unified facade, :class:`repro.api.Toolchain`, whose
``annotate()`` / ``check()`` wrap the private ``_annotate_source`` /
``_check_source`` workers below.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cfront import cast as A
from ..cfront.cpp import preprocess
from ..cfront.errors import Diagnostic
from ..cfront.parser import parse
from ..cfront.typecheck import typecheck
from ..cfront.unparse import Unparser, type_prefix_suffix, unparse, unparse_type
from .annotate import (
    AnnotateOptions, AnnotateStats, AnnotationResult, Annotator, CHECKED, SAFE,
)
from .edits import EditList, splice
from .sourcecheck import check_unit


@dataclass
class AnnotatedSource:
    """Everything the preprocessor produces for one translation unit."""

    text: str  # annotated source, original formatting preserved
    unit: A.TranslationUnit  # the transformed AST (compiler input)
    stats: AnnotateStats
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def keep_live_count(self) -> int:
        return self.stats.keep_lives

    def render_diagnostics(self, source: str) -> str:
        """One line per diagnostic, no trailing newline; empty string
        (not ``"\\n"``) when there are no diagnostics."""
        if not self.diagnostics:
            return ""
        return "\n".join(d.render(source) for d in self.diagnostics)


def _annotate_source(source: str, mode: str = SAFE,
                     options: AnnotateOptions | None = None,
                     run_cpp: bool = False,
                     include_dirs: list[str] | None = None) -> AnnotatedSource:
    """Annotate C source for GC-safety (``mode='safe'``) or pointer-
    arithmetic checking (``mode='checked'``).

    The returned text is produced by splicing the KEEP_LIVE /
    GC_same_obj expansions into the *original* source, exactly the
    paper's insertion/deletion-list strategy, so untouched code keeps
    its formatting.
    """
    if run_cpp:
        source = preprocess(source, include_dirs)
    if options is None:
        options = AnnotateOptions(mode=mode)
    else:
        # Copy, never mutate: options is caller-owned and reusable.
        options = replace(options, mode=mode)
    unit = parse(source)
    typecheck(unit)
    diagnostics = check_unit(unit)
    result = Annotator(unit, options).run()
    text = _render(source, unit, result, options)
    return AnnotatedSource(text=text, unit=unit, stats=result.stats,
                           diagnostics=diagnostics)


def _check_source(source: str, run_cpp: bool = False,
                  include_dirs: list[str] | None = None) -> list[Diagnostic]:
    """Run only the source-safety checks (paper's "Source Checking"),
    without transforming the program."""
    if run_cpp:
        source = preprocess(source, include_dirs)
    unit = parse(source)
    typecheck(unit)
    return check_unit(unit)


def _render(source: str, unit: A.TranslationUnit, result: AnnotationResult,
            options: AnnotateOptions) -> str:
    inserts: list[tuple[int, str]] = []
    if options.mode == CHECKED:
        proto = ("extern void *GC_same_obj(void *p, void *q); "
                 "extern void *GC_pre_incr(void *p, int n); "
                 "extern void *GC_post_incr(void *p, int n);\n")
        inserts.append((0, proto))
    for item in unit.items:
        if isinstance(item, A.FuncDef) and item.name in result.temp_decls:
            pos = item.body.span.start + 1  # just after the opening brace
            decls = "".join(
                f" {type_prefix_suffix(ctype, name)};"
                for name, ctype in result.temp_decls[item.name]
            )
            inserts.append((pos, decls))
    return splice(source, result.replacements, inserts)
