"""Insertion/deletion edit lists keyed by character position.

The paper's preprocessor "maintains a copy of the input file ...  In the
process it generates a list of insertions and deletions, sorted by
character position in the original source string.  After parsing is
complete, the insertions and deletions are applied to the original
source."  This module reproduces that machinery: the annotator records
replacements against node spans, and :func:`splice` applies the
outermost ones to the original text, leaving untouched code untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfront import cast as A
from ..cfront.errors import SourceSpan
from ..cfront.unparse import Unparser


@dataclass(frozen=True)
class Edit:
    """Replace source[start:end] with ``text`` (pure insertion when
    start == end)."""

    start: int
    end: int
    text: str


class EditList:
    """A set of non-overlapping edits, applied back-to-front."""

    def __init__(self):
        self._edits: list[Edit] = []

    def insert(self, pos: int, text: str) -> None:
        self.replace(pos, pos, text)

    def delete(self, start: int, end: int) -> None:
        self.replace(start, end, "")

    def replace(self, start: int, end: int, text: str) -> None:
        if start < 0 or end < start:
            raise ValueError(f"bad edit range [{start}, {end})")
        self._edits.append(Edit(start, end, text))

    def __len__(self) -> int:
        return len(self._edits)

    def __iter__(self):
        return iter(sorted(self._edits, key=lambda e: (e.start, e.end)))

    def apply(self, source: str) -> str:
        """Apply all edits.  Overlapping edits are an error (the caller
        is responsible for keeping only outermost replacements)."""
        ordered = sorted(self._edits, key=lambda e: (e.start, e.end))
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start < prev.end:
                raise ValueError(f"overlapping edits at {prev.start}..{prev.end} "
                                 f"and {cur.start}..{cur.end}")
        out: list[str] = []
        cursor = 0
        for edit in ordered:
            out.append(source[cursor:edit.start])
            out.append(edit.text)
            cursor = edit.end
        out.append(source[cursor:])
        return "".join(out)


def outermost(replacements: list) -> list:
    """Keep only replacements not strictly contained in another one.
    When spans tie, the later-recorded (outer-constructed) entry wins."""
    kept: list = []
    for i, rep in enumerate(replacements):
        contained = False
        for j, other in enumerate(replacements):
            if i == j:
                continue
            inside = (other.span.start <= rep.span.start
                      and rep.span.end <= other.span.end)
            strictly = (other.span.start < rep.span.start
                        or rep.span.end < other.span.end)
            if inside and (strictly or j > i):
                contained = True
                break
        if not contained:
            kept.append(rep)
    return kept


def splice(source: str, replacements: list,
           extra_inserts: list[tuple[int, str]] | None = None) -> str:
    """Render the annotated program by splicing replacement text into the
    original source, preserving all untouched formatting.

    ``extra_inserts`` carries pure insertions (e.g. temporary-variable
    declarations at function-body starts, extern declarations at the top
    of the file).
    """
    unparser = Unparser()
    edits = EditList()
    for rep in outermost(replacements):
        if isinstance(rep.node, A.Expr):
            # Parenthesize: the replacement lands in an unknown
            # precedence context within the original text.
            text = f"({unparser.expr(rep.node)})"
        else:
            text = unparser.stmt(rep.node)
        edits.replace(rep.span.start, rep.span.end, text)
    for pos, text in extra_inserts or []:
        edits.insert(pos, text)
    return edits.apply(source)
