"""Source-safety diagnostics (paper, "Source Checking" section).

The paper's assumptions about input programs:

1. No integers are converted to heap pointers.  Conversion of a pointer
   to an integer and back without intervening arithmetic is benign, as
   is converting very small integers to pointers that are never
   dereferenced.  "Our preprocessor issues warnings when nonpointer
   values are directly converted to pointers."  It "could and should"
   also warn about suspicious casts between unrelated structure pointer
   types.

2. Pointers are not hidden from the collector by writing them to files
   and reading them back (``scanf`` with ``%p``, ``fread`` into a
   pointer-containing type, mismatched ``memcpy``/``memmove``).  The
   paper notes this "should be easily checkable, though we currently
   don't do so" — we do check the recognizable syntactic cases.
"""

from __future__ import annotations

from ..cfront import cast as A
from ..cfront.ctypes import Pointer, Struct, may_hold_heap_pointer
from ..cfront.errors import Diagnostic

_SCANF_FAMILY = frozenset({"scanf", "fscanf", "sscanf"})
_RAW_COPY = frozenset({"memcpy", "memmove", "fread"})


def check_unit(unit: A.TranslationUnit) -> list[Diagnostic]:
    """Run all source-safety checks over a typechecked unit."""
    diags: list[Diagnostic] = []
    for node in A.walk(unit):
        if isinstance(node, A.Cast):
            diags.extend(_check_cast(node))
        elif isinstance(node, A.Call):
            diags.extend(_check_call(node))
    diags.sort(key=lambda d: d.pos)
    return diags


def _check_cast(cast: A.Cast) -> list[Diagnostic]:
    src = cast.operand.ctype
    dst = cast.to_type
    if src is None or not isinstance(dst, Pointer):
        return []
    src = src.decay()
    pos = cast.span.start
    if src.is_integer:
        if _is_small_int_constant(cast.operand):
            return []  # converting very small integers to pointers is common and benign
        if _is_direct_pointer_round_trip(cast.operand):
            # "conversion of a pointer to an integer and back, without
            # intervening arithmetic, is benign"
            return []
        return [Diagnostic(pos, "nonpointer value converted to pointer "
                                "(possible disguised pointer)", "int-to-pointer")]
    if isinstance(src, Pointer):
        a, b = src.target, dst.target
        if isinstance(a, Struct) and isinstance(b, Struct) and a is not b:
            if not _prefix_compatible(a, b):
                return [Diagnostic(pos,
                                   f"cast between unrelated structure pointer types "
                                   f"({a} to {b}) may disguise pointers",
                                   "struct-pointer-cast")]
    return []


def _check_call(call: A.Call) -> list[Diagnostic]:
    if not isinstance(call.func, A.Ident):
        return []
    name = call.func.name
    pos = call.span.start
    if name in _SCANF_FAMILY:
        for arg in call.args:
            if isinstance(arg, A.StringLit) and "%p" in arg.value:
                return [Diagnostic(pos, f"{name} with %p can read in a pointer "
                                        "invisible to the collector", "pointer-input")]
        return []
    if name in _RAW_COPY and call.args:
        dest = call.args[0]
        dest_t = dest.ctype.decay() if dest.ctype is not None else None
        if isinstance(dest_t, Pointer) and may_hold_heap_pointer(dest_t.target):
            return [Diagnostic(pos, f"{name} into a pointer-containing type can hide "
                                    "pointers from the collector", "raw-pointer-copy")]
    return []


def _is_direct_pointer_round_trip(e: A.Expr) -> bool:
    """(T *)(int)p with no intervening arithmetic: benign per the paper.
    Through a variable we stay conservative and warn."""
    if isinstance(e, A.Cast):
        inner_t = e.operand.ctype
        if inner_t is not None and inner_t.decay().is_pointer:
            return True
        return _is_direct_pointer_round_trip(e.operand)
    return False


def _is_small_int_constant(e: A.Expr) -> bool:
    if isinstance(e, A.IntLit):
        return 0 <= e.value < 4096
    if isinstance(e, A.Cast):
        return _is_small_int_constant(e.operand)
    return False


def _prefix_compatible(a: Struct, b: Struct) -> bool:
    """Two struct types are prefix-compatible when the shorter one's
    field types match the prefix of the longer one's — the common C
    idiom of a shared header, which does not disguise pointers."""
    shorter, longer = (a, b) if len(a.fields) <= len(b.fields) else (b, a)
    for fa, fb in zip(shorter.fields, longer.fields):
        ta, tb = fa.ctype, fb.ctype
        if ta.is_pointer != tb.is_pointer:
            return False
        if not ta.is_pointer and ta.size != tb.size:
            return False
    return True
