"""Render the paper's tables from harness results.

The row/column structure mirrors the paper exactly: workloads as rows;
``-O safe``, ``-g``, ``-g checked`` slowdown percentages as columns
(T1/T2/T3 per machine), code-size expansion (T4), and the residual
running-time/code-size overhead of safe + postprocessor (T5).

Paper reference values are embedded so every rendering shows
paper-vs-measured side by side; the shape assertions used by the
benchmark suite live in ``paper_reference``.
"""

from __future__ import annotations

from .harness import CellResult, Harness, WorkloadRow

# Paper numbers: {table: {workload: {column: percent or None (absent)}}}
PAPER = {
    "t1_ss2": {  # SPARCstation 2: -O safe / -g / -g checked
        "cordtest": {"O_safe": 9, "g": 54, "g_checked": 514},
        "cfrac": {"O_safe": 17, "g": None, "g_checked": None},
        "miniawk": {"O_safe": 8, "g": 25, "g_checked": None},
        "minips": {"O_safe": 0, "g": 33, "g_checked": 205},
    },
    "t2_ss10": {  # SPARC 10: -O2 safe / -g / -g checked
        "cordtest": {"O_safe": 9, "g": 56, "g_checked": 529},
        "cfrac": {"O_safe": 8, "g": None, "g_checked": None},
        "miniawk": {"O_safe": 8, "g": 48, "g_checked": None},
        "minips": {"O_safe": 5, "g": 37, "g_checked": 366},
    },
    "t3_p90": {  # Pentium 90
        "cordtest": {"O_safe": 12, "g": 28, "g_checked": 510},
        "cfrac": {"O_safe": 11, "g": None, "g_checked": None},
        "miniawk": {"O_safe": 9, "g": 41, "g_checked": None},
        "minips": {"O_safe": 6, "g": 17, "g_checked": 279},
    },
    "t4_size": {  # SPARC object code expansion
        "cordtest": {"O_safe": 9, "g": 69, "g_checked": 130},
        "cfrac": {"O_safe": 6, "g": None, "g_checked": None},
        "miniawk": {"O_safe": 15, "g": 68, "g_checked": None},
        "minips": {"O_safe": 19, "g": 73, "g_checked": 160},
    },
    "t5_postproc": {  # SPARC 10, safe + peephole: time / size residuals
        "cordtest": {"time": 4, "size": 3},
        "cfrac": {"time": 2, "size": 3},
        "miniawk": {"time": 1, "size": 7},
        "minips": {"time": 2, "size": 7},
    },
}

# The paper's workload names (ours are stand-ins).
PAPER_NAMES = {"cordtest": "cordtest", "cfrac": "cfrac",
               "miniawk": "gawk", "minips": "gs"}

_COLS = ("O_safe", "g", "g_checked")
_COL_TITLES = {"O_safe": "-O, safe", "g": "-g", "g_checked": "-g, checked"}


def _fmt(pct: float | None) -> str:
    return "-" if pct is None else f"{pct:.0f}%"


def render_slowdown_table(rows: dict[str, WorkloadRow], table_key: str,
                          title: str) -> str:
    """Render one of T1/T2/T3 with paper values alongside."""
    paper = PAPER[table_key]
    lines = [title, f"{'':10s} " + " ".join(
        f"{_COL_TITLES[c]:>22s}" for c in _COLS)]
    lines.append(f"{'':10s} " + " ".join(
        f"{'paper / measured':>22s}" for _ in _COLS))
    for name, row in rows.items():
        cells = []
        for col in _COLS:
            measured = row.slowdown_pct(col)
            ref = paper.get(name, {}).get(col)
            cells.append(f"{_fmt(ref):>9s} / {measured:7.1f}%")
        lines.append(f"{PAPER_NAMES.get(name, name):10s} " + " ".join(
            f"{c:>22s}" for c in cells))
    return "\n".join(lines)


def render_size_table(rows: dict[str, WorkloadRow]) -> str:
    """T4: static object-code expansion (instructions, excluding
    libraries — ours are builtins, so excluded by construction)."""
    paper = PAPER["t4_size"]
    lines = ["T4: SPARC object code expansion (paper / measured)",
             f"{'':10s} " + " ".join(f"{_COL_TITLES[c]:>22s}" for c in _COLS)]
    for name, row in rows.items():
        cells = []
        for col in _COLS:
            measured = row.slowdown_pct(col, metric="code_size")
            ref = paper.get(name, {}).get(col)
            cells.append(f"{_fmt(ref):>9s} / {measured:7.1f}%")
        lines.append(f"{PAPER_NAMES.get(name, name):10s} " + " ".join(
            f"{c:>22s}" for c in cells))
    return "\n".join(lines)


def render_postproc_table(cells_by_workload: dict[str, dict[str, CellResult]]) -> str:
    """T5: residual overhead of safe code after the peephole pass."""
    paper = PAPER["t5_postproc"]
    lines = ["T5: safe + postprocessor residual overhead vs -O (paper / measured)",
             f"{'':10s} {'running time':>22s} {'code size':>22s}"]
    for name, cells in cells_by_workload.items():
        base = cells["O"]
        pp = cells["O_safe_pp"]
        time_pct = 100.0 * (pp.cycles - base.cycles) / base.cycles
        size_pct = 100.0 * (pp.code_size - base.code_size) / base.code_size
        ref = paper.get(name, {})
        lines.append(
            f"{PAPER_NAMES.get(name, name):10s} "
            f"{_fmt(ref.get('time')):>9s} / {time_pct:7.1f}%  "
            f"{_fmt(ref.get('size')):>9s} / {size_pct:7.1f}%")
    lines.append("peephole rewrites (loads folded / moves eliminated / "
                 "adds retargeted):")
    for name, cells in cells_by_workload.items():
        stats = cells["O_safe_pp"].peephole_stats
        if stats is None:
            continue
        lines.append(
            f"{PAPER_NAMES.get(name, name):10s} "
            f"{stats.loads_folded:>6d} / {stats.moves_eliminated:>6d} / "
            f"{stats.adds_retargeted:>6d}   ({stats.total} total)")
    return "\n".join(lines)
