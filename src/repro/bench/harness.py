"""Benchmark harness: builds the paper's measurement matrix.

For each workload and machine model it compiles the four configurations
(``-O`` baseline, ``-O safe``, ``-g``, ``-g checked``), runs them on the
VM, verifies they all compute the same answer, and reports slowdown
percentages relative to the optimized baseline — the exact structure of
the paper's tables.  Code-size expansion (T4) and the postprocessor
variant (T5) reuse the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exec import cache as exec_cache
from ..exec.engine import run_sharded
from ..machine.driver import CompileConfig, compile_source
from ..machine.models import MODELS, MachineModel
from ..machine.vm import VM
from ..machine.superinst import SuperinstPlan
from ..obs import runtime as obs_runtime
from ..obs.report import summarize
from ..postproc import postprocess
from ..postproc.peephole import PeepholeStats
from ..postproc.sink import SinkStats, sink_program
from ..workloads import AUX_WORKLOADS, WORKLOADS, load_workload

CONFIG_ORDER = ("O", "O_safe", "g", "g_checked")


@dataclass
class CellResult:
    workload: str
    config: str
    model: str
    cycles: int
    instructions: int
    code_size: int
    exit_code: int
    collections: int
    output: str
    postprocessed: bool = False
    peephole_stats: PeepholeStats | None = None
    # ``repro-obs-summary/1`` dict for this cell's compile+run when the
    # session tracer was enabled; None otherwise (telemetry is opt-in
    # and never perturbs the measured cycle counts).
    telemetry: dict | None = None
    # PR 6 raw-speed knobs: digest of the superinstruction plan the VM
    # ran under (None = unfused) and the allocation-sinking rewrite
    # stats (None = pass not applied).  Both are opt-in and observable-
    # count-neutral for pgo / count-changing for sink, so they salt the
    # result-cache key whenever set.
    pgo: str | None = None
    sink_stats: SinkStats | None = None


@dataclass
class WorkloadRow:
    """All configurations of one workload on one model."""

    workload: str
    model: str
    cells: dict[str, CellResult] = field(default_factory=dict)

    @property
    def baseline(self) -> CellResult:
        return self.cells["O"]

    def slowdown_pct(self, config: str, metric: str = "cycles") -> float:
        base = getattr(self.baseline, metric)
        value = getattr(self.cells[config], metric)
        return 100.0 * (value - base) / base

    def verify_consistent(self) -> None:
        codes = {c.exit_code for c in self.cells.values()}
        if len(codes) != 1:
            raise AssertionError(
                f"{self.workload}/{self.model}: configurations disagree on the "
                f"answer: { {k: v.exit_code for k, v in self.cells.items()} }")


class Harness:
    def __init__(self, model_key: str = "ss10",
                 pgo: SuperinstPlan | None = None, sink: bool = False):
        self.model_key = model_key
        self.model: MachineModel = MODELS[model_key]
        # Raw-speed knobs, applied to every cell this harness runs: a
        # superinstruction plan for the VM (observable counts stay
        # bit-identical) and the allocation-sinking postproc pass
        # (count-changing, like `postprocessed`).
        self.pgo = pgo
        self.sink = sink
        self._cache: dict[tuple, CellResult] = {}

    @property
    def _pgo_digest(self) -> str | None:
        return self.pgo.digest() if self.pgo else None

    def run_cell(self, workload: str, config_name: str,
                 postprocessed: bool = False) -> CellResult:
        key = (workload, config_name, postprocessed)
        if key in self._cache:
            return self._cache[key]
        spec = WORKLOADS.get(workload) or AUX_WORKLOADS[workload]
        source = load_workload(workload)
        config = CompileConfig.named(config_name, self.model)
        # Content-addressed cell memoization: the VM is deterministic,
        # so an executed cell is a pure function of (source, config,
        # stdin, postprocessed, pgo plan, sink) and can be replayed
        # from disk bit-identically.
        rcache = exec_cache.active_cache("result")
        rkey = (rcache.key_for(source, config, stdin=spec.stdin,
                               postprocessed=postprocessed,
                               pgo=self._pgo_digest, sink=self.sink)
                if rcache is not None else None)
        if rkey is not None:
            hit = rcache.get(rkey)
            if hit is not None:
                self._cache[key] = hit
                return hit
        tracer = obs_runtime.get_tracer()
        ev_start = len(tracer.events)
        with tracer.span("bench.cell", workload=workload, config=config_name,
                         model=self.model_key, postprocessed=postprocessed):
            compiled = compile_source(source, config)
            stats = postprocess(compiled.asm) if postprocessed else None
            sink_stats = sink_program(compiled.asm) if self.sink else None
            vm = VM(compiled.asm, self.model, superinst=self.pgo)
            vm.stdin = spec.stdin
            run = vm.run()
        telemetry = (summarize(tracer.events[ev_start:])
                     if tracer.enabled else None)
        cell = CellResult(
            workload=workload, config=config_name, model=self.model_key,
            cycles=run.cycles, instructions=run.instructions,
            code_size=compiled.asm.code_size(), exit_code=run.exit_code,
            collections=run.collections, output=run.output,
            postprocessed=postprocessed, peephole_stats=stats,
            telemetry=telemetry, pgo=self._pgo_digest, sink_stats=sink_stats)
        self._cache[key] = cell
        if rkey is not None:
            rcache.put(rkey, cell)
        return cell

    def run_workload(self, workload: str,
                     configs: tuple[str, ...] = CONFIG_ORDER) -> WorkloadRow:
        row = WorkloadRow(workload, self.model_key)
        for config in configs:
            row.cells[config] = self.run_cell(workload, config)
        row.verify_consistent()
        return row

    def run_all(self, workloads: tuple[str, ...] | None = None,
                configs: tuple[str, ...] = CONFIG_ORDER,
                workers: int = 1) -> dict[str, WorkloadRow]:
        """Every (workload, config) cell for this model.

        ``workers > 1`` shards the cells across processes through the
        execution engine; rows are assembled from the canonical-order
        merge, so tables render byte-identically for any worker count.
        """
        names = tuple(workloads or tuple(WORKLOADS))
        if workers <= 1:
            return {name: self.run_workload(name, configs) for name in names}
        payloads = [(self.model_key, name, config, False,
                     self.pgo, self.sink)
                    for name in names for config in configs]
        merged = run_sharded(payloads, _cell_worker, workers=workers,
                             label="bench").raise_on_failure()
        out: dict[str, WorkloadRow] = {}
        for (_, name, config, *_), cell in zip(payloads, merged.results):
            row = out.setdefault(name, WorkloadRow(name, self.model_key))
            row.cells[config] = cell
            self._cache[(name, config, False)] = cell
        for row in out.values():
            row.verify_consistent()
        return out

    # -- T5: safe + postprocessor ------------------------------------------

    def run_postproc_row(self, workload: str) -> dict[str, CellResult]:
        """Baseline, safe, and safe+postprocessed cells for T5."""
        cells = {
            "O": self.run_cell(workload, "O"),
            "O_safe": self.run_cell(workload, "O_safe"),
            "O_safe_pp": self.run_cell(workload, "O_safe", postprocessed=True),
        }
        codes = {c.exit_code for c in cells.values()}
        if len(codes) != 1:
            raise AssertionError(f"{workload}: postprocessed code changed the answer")
        return cells

    def run_postproc_rows(self, workloads: tuple[str, ...] | None = None,
                          workers: int = 1) -> dict[str, dict[str, CellResult]]:
        """T5 rows for several workloads, optionally sharded."""
        names = tuple(workloads or tuple(WORKLOADS))
        if workers <= 1:
            return {name: self.run_postproc_row(name) for name in names}
        variants = (("O", False), ("O_safe", False), ("O_safe_pp", True))
        payloads = [(self.model_key, name,
                     "O_safe" if post else config, post,
                     self.pgo, self.sink)
                    for name in names for config, post in variants]
        merged = run_sharded(payloads, _cell_worker, workers=workers,
                             label="bench").raise_on_failure()
        out: dict[str, dict[str, CellResult]] = {}
        it = iter(merged.results)
        for name in names:
            cells = {config: next(it) for config, _ in variants}
            codes = {c.exit_code for c in cells.values()}
            if len(codes) != 1:
                raise AssertionError(
                    f"{name}: postprocessed code changed the answer")
            out[name] = cells
        return out


def _cell_worker(payload: tuple) -> CellResult:
    """Engine task: one benchmark cell.  A fresh per-process Harness is
    correct because cells are independent; cross-process reuse comes
    from the content-addressed caches, not in-memory state.  Payloads
    are 4-tuples from older callers or 6-tuples carrying the pgo plan
    and sink flag; unpack both shapes."""
    model_key, workload, config_name, postprocessed = payload[:4]
    pgo = payload[4] if len(payload) > 4 else None
    sink = bool(payload[5]) if len(payload) > 5 else False
    return Harness(model_key, pgo=pgo, sink=sink).run_cell(
        workload, config_name, postprocessed)
