"""Benchmark harness reproducing the paper's five tables."""

from .harness import CellResult, CONFIG_ORDER, Harness, WorkloadRow
from .tables import (
    PAPER, PAPER_NAMES, render_postproc_table, render_size_table,
    render_slowdown_table,
)

__all__ = [
    "CellResult", "CONFIG_ORDER", "Harness", "WorkloadRow",
    "PAPER", "PAPER_NAMES", "render_postproc_table", "render_size_table",
    "render_slowdown_table",
]
