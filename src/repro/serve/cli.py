"""``repro serve`` — run the daemon, drive it, load-test it.

    python -m repro serve [start] [--port 8091] [--workers 4]
                          [--cache-dir DIR] [--model ss10]
                          [--tenant-inflight N] [--tenant-jobs N]
                          [--max-queue-depth N] [--batch-size N]
        Start the multi-tenant toolchain daemon and serve until
        interrupted.  Clients speak ``repro-serve-request/1`` envelopes
        over POST /rpc (see repro.api.Client and docs/SERVE.md).

    python -m repro serve load [--seed 0] [--clients 8] [--jobs 24]
                               [--workers N] [--check] [--faults SPEC]
                               [--chaos] [--slo-p99-ms MS] [--json]
        Replay a deterministic fuzz-corpus + bench traffic tape against
        an in-process daemon at high concurrency; print (or emit as a
        ``repro-serve-load/1`` envelope) the p50/p99 SLO report.
        ``--check`` gates every served envelope byte-identical to a
        serial Toolchain run; ``--chaos`` replays the tape again under
        the default 10-fault plan (``--faults`` overrides it) and gates
        faulted == fault-free, exactly like ``repro chaos``.

    python -m repro serve call METHOD [--file F] [--port P] [--tenant T]
        One ad-hoc request against a running daemon (handy smoke test):
        prints the inner envelope, exit 1 on a typed error.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..cliutil import add_report_flags
from ..machine.models import MODELS
from .daemon import ServeConfig, start_in_thread


def _config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host, port=args.port, model=args.model,
        workers=args.workers, cache_dir=args.cache_dir,
        batch_size=args.batch_size, max_queue_depth=args.max_queue_depth,
        tenant_inflight=args.tenant_inflight, tenant_jobs=args.tenant_jobs,
        task_timeout=args.task_timeout)


def cmd_serve_start(args: argparse.Namespace) -> int:
    handle = start_in_thread(_config_from_args(args))
    print(f"repro serve: listening on "
          f"http://{args.host}:{handle.port}/rpc "
          f"(model {args.model}, workers {args.workers}, "
          f"cache {args.cache_dir or 'off'})", file=sys.stderr)
    try:
        while handle.thread.is_alive():
            handle.thread.join(0.5)
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
        handle.stop()
    return 0


def cmd_serve_load(args: argparse.Namespace) -> int:
    from .load import CHAOS_FAULTS, LoadSpec, render_report, run_load
    faults = args.faults
    if args.chaos and faults is None:
        faults = CHAOS_FAULTS
    spec = LoadSpec(seed=args.seed, clients=args.clients, jobs=args.jobs,
                    fuzz_iters=args.fuzz_iters,
                    bench_workloads=tuple(args.bench_workloads.split(","))
                    if args.bench_workloads else (),
                    max_statements=args.max_statements)
    config = ServeConfig(model=args.model, workers=args.workers,
                         cache_dir=args.cache_dir,
                         batch_size=args.batch_size,
                         max_queue_depth=args.max_queue_depth,
                         tenant_inflight=args.tenant_inflight,
                         tenant_jobs=args.tenant_jobs,
                         task_timeout=args.task_timeout)
    report = run_load(config, spec, check=args.check, faults=faults,
                      slo_p99_ms=args.slo_p99_ms,
                      metrics_out=args.metrics_out)
    if args.metrics_out:
        print(f"! metrics written to {args.metrics_out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0 if report["ok"] else 1


def cmd_serve_call(args: argparse.Namespace) -> int:
    from .client import Client, ServeError
    params: dict = {}
    if args.file:
        with open(args.file) as fh:
            params["source"] = fh.read()
    for item in args.param or ():
        key, _, value = item.partition("=")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    with Client(host=args.host, port=args.port,
                tenant=args.tenant) as client:
        try:
            doc = client.call(args.method, params)
        except ServeError as exc:
            print(json.dumps(exc.envelope, indent=2, sort_keys=True))
            return 1
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _add_daemon_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--model", choices=tuple(MODELS), default="ss10")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="shared warm content-addressed cache root "
                        "(one cache for all tenants)")
    p.add_argument("--batch-size", type=int, default=8,
                   help="max jobs per scheduler pass")
    p.add_argument("--max-queue-depth", type=int, default=64,
                   help="global admission cap on queued jobs")
    p.add_argument("--tenant-inflight", type=int, default=8,
                   help="per-tenant cap on in-flight (queued+running) jobs")
    p.add_argument("--tenant-jobs", type=int, default=None,
                   help="per-tenant lifetime job budget (default: none)")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="resil per-job hang timeout in seconds")


def add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve", help="multi-tenant toolchain daemon + load generator")
    p.set_defaults(fn=cmd_serve_start)
    actions = p.add_subparsers(dest="serve_cmd")

    ps = actions.add_parser("start", help="run the daemon")
    ps.add_argument("--port", type=int, default=8091,
                    help="listen port (0 = ephemeral)")
    _add_daemon_args(ps)
    add_report_flags(ps, json_schema="repro-serve-health/1",
                     json_flag=False, metrics=False)
    ps.set_defaults(fn=cmd_serve_start)

    # bare `repro serve` == `repro serve start`
    p.add_argument("--port", type=int, default=8091,
                   help="listen port (0 = ephemeral)")
    _add_daemon_args(p)
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="exec-engine worker processes")

    pl = actions.add_parser(
        "load", help="deterministic load generator + SLO report")
    pl.add_argument("--seed", type=int, default=0)
    pl.add_argument("--clients", type=int, default=8,
                    help="concurrent client connections")
    pl.add_argument("--jobs", type=int, default=24,
                    help="total jobs on the traffic tape")
    pl.add_argument("--fuzz-iters", type=int, default=2)
    pl.add_argument("--bench-workloads", default="cordtest",
                    help="comma-separated bench workloads on the tape")
    pl.add_argument("--max-statements", type=int, default=10,
                    help="size cap for generated corpus programs")
    pl.add_argument("--check", action="store_true",
                    help="gate every served envelope byte-identical "
                         "to a serial Toolchain run")
    pl.add_argument("--faults", default=None, metavar="SPEC",
                    help="replay the tape under this fault plan and "
                         "gate faulted == fault-free")
    pl.add_argument("--chaos", action="store_true",
                    help="replay under the default 10-fault plan "
                         "(the serve chaos gate; --faults overrides)")
    pl.add_argument("--slo-p99-ms", type=float, default=None,
                    help="fail (exit 1) if request p99 exceeds this")
    _add_daemon_args(pl)
    add_report_flags(pl, json_schema="repro-serve-load/1")
    pl.set_defaults(fn=cmd_serve_load)

    pc = actions.add_parser("call", help="one ad-hoc request")
    pc.add_argument("method")
    pc.add_argument("--host", default="127.0.0.1")
    pc.add_argument("--port", type=int, default=8091)
    pc.add_argument("--tenant", default="default")
    pc.add_argument("--file", default=None,
                    help="read params['source'] from this file")
    pc.add_argument("--param", action="append", metavar="K=V",
                    help="extra param (JSON value or bare string)")
    pc.set_defaults(fn=cmd_serve_call)


__all__ = ["add_serve_parser", "cmd_serve_start", "cmd_serve_load",
           "cmd_serve_call"]
