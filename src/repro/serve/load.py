"""``repro serve load`` — the deterministic load generator.

Builds a seeded traffic tape (fuzz-corpus sources through annotate /
check / run, plus bench-matrix and fuzz-campaign jobs), replays it
against an in-process daemon from N concurrent clients (one thread,
one connection, one tenant each, jobs assigned round-robin by index),
and reports a ``repro-serve-load/1`` SLO document with p50/p95/p99
latencies read from the daemon's ``serve.*`` metrics.

Gates, both optional and both byte-identity over canonical dumps:

* ``check=True`` — every served envelope must equal the serial
  :func:`repro.serve.jobs.run_job` reference for the same tape entry
  (the "daemon adds nothing" gate of ISSUE 10 / ROADMAP item 1).
* ``faults=...`` — the whole tape is replayed through a *second*
  daemon under a seeded fault plan over the same warm cache root; the
  faulted envelopes must equal the fault-free ones, exactly the
  ``repro chaos`` contract, with the engine's recovery counters
  reported from the faulted phase's metrics.

Everything observable is a function of ``seed``; only the latency
numbers are wall-clock (and stay out of every gate).
"""

from __future__ import annotations

import random
import shutil
import tempfile
import threading
from dataclasses import dataclass, replace

from ..api import envelopes
from ..api.build import dumps_canonical
from ..exec import cache as exec_cache
from ..obs import metrics as metrics_mod
from ..obs import runtime as obs_runtime
from .client import Client, ServeError
from .daemon import ServeConfig, start_in_thread
from .jobs import JobDefaults, JobError, run_job

#: the 10-fault plan the serve chaos gate replays by default — two
#: worker crashes, five corrupt cache reads, a slow worker, a slowed
#: compile, and lossy pipes (cf. resil.cli.DEFAULT_FAULTS).
CHAOS_FAULTS = ("worker_crash@shard1,worker_crash@shard2,"
                "cache_corrupt@2-6,slow_worker@shard0:2x,"
                "compile_slow@shard3:2x,pipe_drop@0.05")


@dataclass(frozen=True)
class LoadSpec:
    """The seeded traffic tape: what gets replayed, by how many."""

    seed: int = 0
    clients: int = 8
    jobs: int = 24
    fuzz_iters: int = 2
    bench_workloads: tuple[str, ...] = ("cordtest",)
    bench_configs: tuple[str, ...] = ("O", "g")
    #: method mix weights (annotate, check, run, bench, fuzz)
    weights: tuple[float, ...] = (0.30, 0.20, 0.30, 0.10, 0.10)
    max_statements: int = 10


_METHODS = ("annotate", "check", "run", "bench", "fuzz")


def build_traffic(spec: LoadSpec) -> list[dict]:
    """The tape: ``jobs`` entries of ``{"method", "params"}``, a pure
    function of the spec."""
    from ..fuzz.gen import GenOptions, generate_program
    rng = random.Random(spec.seed)
    gen_options = GenOptions()
    gen_options.max_statements = spec.max_statements
    gen_options.min_statements = min(gen_options.min_statements,
                                     spec.max_statements)
    tape: list[dict] = []
    for i in range(spec.jobs):
        method = rng.choices(_METHODS, weights=spec.weights, k=1)[0]
        if method in ("annotate", "check", "run"):
            source = generate_program(spec.seed * 1_000_003 + i,
                                      gen_options)
            params: dict = {"source": source, "run_cpp": False}
            if method == "annotate":
                params["mode"] = rng.choice(("safe", "checked"))
            if method == "run":
                params["config"] = rng.choice(("O", "O_safe", "g"))
                params["max_instructions"] = 5_000_000
        elif method == "bench":
            params = {"workloads": list(spec.bench_workloads),
                      "configs": list(spec.bench_configs)}
        else:
            params = {"seed": spec.seed + i, "iters": spec.fuzz_iters,
                      "max_instructions": 2_000_000}
        tape.append({"method": method, "params": params})
    return tape


def _outcome_bytes(fn) -> str:
    """Normalize success and typed failure to comparable bytes."""
    try:
        return dumps_canonical(fn())
    except JobError as exc:
        return dumps_canonical({"error": "job_failed", "message": str(exc)})
    except ServeError as exc:
        error = exc.envelope.get("error", {})
        return dumps_canonical({"error": error.get("code"),
                                "message": error.get("message", "")})


def serial_reference(tape: list[dict], defaults: JobDefaults) -> list[str]:
    """The tape run straight through the Toolchain (no daemon, fresh
    caches) — the bytes every served run is gated against."""
    root = tempfile.mkdtemp(prefix="repro-serve-ref-")
    try:
        with exec_cache.cache_context(*exec_cache.open_caches(root)):
            return [
                _outcome_bytes(lambda e=entry: run_job(
                    e["method"], e["params"], defaults))
                for entry in tape]
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _replay(config: ServeConfig, spec: LoadSpec, tape: list[dict],
            registry: metrics_mod.MetricsRegistry
            ) -> tuple[list[str], dict]:
    """One daemon lifetime: N client threads replay the tape; returns
    (per-index outcome bytes, daemon-side report fragments)."""
    previous = obs_runtime.get_metrics()
    obs_runtime.set_metrics(registry)
    results: list[str | None] = [None] * len(tape)
    errors: list[BaseException] = []
    try:
        handle = start_in_thread(config, metrics=registry)

        def client_main(k: int) -> None:
            try:
                with Client(port=handle.port, tenant=f"t{k}") as client:
                    for index in range(k, len(tape), spec.clients):
                        entry = tape[index]
                        results[index] = _outcome_bytes(
                            lambda: client.call(entry["method"],
                                                entry["params"]))
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client_main, args=(k,),
                                    name=f"repro-load-{k}")
                   for k in range(spec.clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        admission = handle.daemon.admission.snapshot()
        handle.stop()
        if errors:
            raise errors[0]
        assert all(r is not None for r in results)
        return results, {"admission": admission}
    finally:
        obs_runtime.set_metrics(previous)


def _percentiles(registry: metrics_mod.MetricsRegistry,
                 name: str) -> dict[str, dict]:
    """p50/p95/p99 for every labeled series of ``name`` plus a merged
    ``overall`` series."""
    scratch = metrics_mod.MetricsRegistry()
    overall = scratch.histogram(name)
    out: dict[str, dict] = {}
    for metric in registry:
        if metric.name != name or not isinstance(metric,
                                                 metrics_mod.Histogram):
            continue
        entry = metric.to_entry()
        if entry is None:
            continue
        label = ",".join(f"{k}={v}" for k, v in metric.labels.items())
        out[label or "overall"] = metric.percentiles((50, 95, 99))
        if label:
            overall.merge_entry(entry)
    if overall.to_entry() is not None and "overall" not in out:
        out["overall"] = overall.percentiles((50, 95, 99))
    return out


def _latency_report(registry: metrics_mod.MetricsRegistry) -> dict:
    return {"request_ns": _percentiles(registry, "serve.request_ns"),
            "queue_wait_ns": _percentiles(registry, "serve.queue_wait_ns"),
            "task_wall_ns": _percentiles(registry, "serve.task_wall_ns")}


def _mismatches(got: list[str], want: list[str]) -> list[int]:
    return [i for i, (g, w) in enumerate(zip(got, want)) if g != w]


def run_load(config: ServeConfig, spec: LoadSpec, check: bool = False,
             faults: str | None = None, slo_p99_ms: float | None = None,
             metrics_out: str | None = None) -> dict:
    """The whole exercise; returns the ``repro-serve-load/1`` report."""
    tape = build_traffic(spec)
    mix: dict[str, int] = {}
    for entry in tape:
        mix[entry["method"]] = mix.get(entry["method"], 0) + 1

    cache_root = config.cache_dir or tempfile.mkdtemp(prefix="repro-serve-")
    own_root = config.cache_dir is None
    config = replace(config, cache_dir=cache_root)
    report: dict = {
        "seed": spec.seed, "clients": spec.clients, "jobs": spec.jobs,
        "workers": config.workers, "model": config.model, "mix": mix,
        "ok": True,
        "byte_identity": {"checked": check, "ok": None, "mismatches": []},
        "chaos": None, "slo": None,
    }
    try:
        reference = (serial_reference(tape, config.defaults())
                     if check else None)

        registry = metrics_mod.MetricsRegistry(out_path=metrics_out)
        served, fragments = _replay(config, spec, tape, registry)
        report.update(fragments)
        report["latency"] = _latency_report(registry)
        registry.flush()

        if reference is not None:
            bad = _mismatches(served, reference)
            report["byte_identity"].update(ok=not bad, mismatches=bad)
            if bad:
                report["ok"] = False

        if faults is not None:
            from ..resil import inject
            from ..resil.plan import parse_faults
            plan = parse_faults(faults, seed=spec.seed)
            chaos_registry = metrics_mod.MetricsRegistry()
            chaos_config = replace(
                config, task_timeout=config.task_timeout or 30.0)
            with inject.plan_context(plan):
                faulted, _ = _replay(chaos_config, spec, tape,
                                     chaos_registry)
            bad = _mismatches(faulted, served)
            resil = {
                key: metric.value
                for metric in chaos_registry
                if metric.name in ("resil.faults_injected", "exec.retries",
                                   "exec.worker_deaths", "exec.quarantined",
                                   "cache.corrupt_reads",
                                   "cache.breaker_trips")
                and metric.kind == "counter" and metric.value
                for key in [metric.key]}
            report["chaos"] = {"faults": plan.to_json(),
                              "identical": not bad, "mismatches": bad,
                              "resil": resil}
            if bad:
                report["ok"] = False

        if slo_p99_ms is not None:
            overall = (report["latency"]["request_ns"]
                       .get("overall") or
                       next(iter(report["latency"]["request_ns"].values()),
                            None))
            p99_ms = (overall["p99"] / 1e6) if overall else None
            report["slo"] = {"p99_ms_limit": slo_p99_ms, "p99_ms": p99_ms,
                             "ok": p99_ms is not None
                             and p99_ms <= slo_p99_ms}
            if not report["slo"]["ok"]:
                report["ok"] = False
    finally:
        if own_root:
            shutil.rmtree(cache_root, ignore_errors=True)

    return envelopes.make(envelopes.SERVE_LOAD, report)


def render_report(report: dict) -> str:
    """Human-readable SLO summary of a ``repro-serve-load/1`` doc."""
    lines = [f"serve load: seed {report['seed']}, {report['jobs']} jobs, "
             f"{report['clients']} clients, workers={report['workers']}, "
             f"model {report['model']}",
             "  mix: " + " ".join(f"{m}={n}" for m, n
                                  in sorted(report["mix"].items()))]
    ident = report["byte_identity"]
    if ident["checked"]:
        lines.append("  byte-identity vs serial: "
                     + ("OK" if ident["ok"]
                        else f"MISMATCH at {ident['mismatches']}"))
    chaos = report.get("chaos")
    if chaos:
        n_resil = sum(chaos["resil"].values())
        lines.append("  chaos replay: "
                     + ("identical" if chaos["identical"]
                        else f"MISMATCH at {chaos['mismatches']}")
                     + f" ({n_resil} recovery/fault events)")
    lat = report.get("latency", {})
    req = lat.get("request_ns", {})
    for label in sorted(req):
        p = req[label]
        lines.append(f"  request {label}: p50 {p['p50'] / 1e6:.1f}ms  "
                     f"p95 {p['p95'] / 1e6:.1f}ms  "
                     f"p99 {p['p99'] / 1e6:.1f}ms  (n={p['count']})")
    qw = lat.get("queue_wait_ns", {}).get("overall")
    if qw:
        lines.append(f"  queue wait: p50 {qw['p50'] / 1e6:.1f}ms  "
                     f"p99 {qw['p99'] / 1e6:.1f}ms")
    adm = report.get("admission", {})
    if adm:
        lines.append(f"  admission: {adm['admitted']} admitted, "
                     f"rejections {adm['rejections'] or '{}'}")
    slo = report.get("slo")
    if slo:
        lines.append(f"  SLO p99 {slo['p99_ms']:.1f}ms "
                     f"<= {slo['p99_ms_limit']:.1f}ms: "
                     + ("OK" if slo["ok"] else "VIOLATED"))
    lines.append("serve load: " + ("OK" if report["ok"] else "FAILED"))
    return "\n".join(lines)


__all__ = ["LoadSpec", "CHAOS_FAULTS", "build_traffic", "serial_reference",
           "run_load", "render_report"]
