"""The async daemon: admission -> fair queue -> one executor.

Concurrency model, chosen for byte-identity first:

* The **event loop** (own thread when started via
  :func:`start_in_thread`) accepts any number of keep-alive client
  connections and runs admission control inline — rejections are
  cheap and typed.
* Admitted jobs land in per-tenant FIFO queues.  The **scheduler**
  drains them in batches, round-robin across tenants (one job per
  tenant per pass), so a flood from one tenant cannot starve another.
* Every job body runs on a **single dedicated executor thread** in
  submission order.  Parallelism lives *below* that thread, in the
  sharded fork-based exec engine (``workers=N``) — exactly where the
  repo has already proven canonical-order merges byte-identical.  The
  daemon therefore inherits the engine's resilience policies (retry /
  quarantine / serial degradation) and the process-wide
  content-addressed caches, warm and shared across tenants.

Control methods (``health``, ``metrics``, ``shutdown``) answer inline
from the loop and bypass admission: you can always ask a saturated
daemon how saturated it is.

``serve.*`` telemetry (:mod:`repro.obs.metrics`): request/admission
counters (det), ``serve.queue_depth`` gauge, and wall histograms
``serve.queue_wait_ns`` / ``serve.task_wall_ns{tenant=}`` /
``serve.request_ns{method=}`` — the p50/p99 surface the load
generator's SLO report reads.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import threading
from dataclasses import dataclass

from ..api import envelopes
from ..exec import cache as exec_cache
from ..exec import engine
from ..obs import clock as obs_clock
from ..obs import metrics as metrics_mod
from ..obs import runtime as obs_runtime
from . import protocol
from .jobs import HANDLERS, JobDefaults, JobError, run_job
from .quota import AdmissionController, TenantQuota

#: job-count histogram bounds for serve.batch_jobs.
_BATCH_BOUNDS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class ServeConfig:
    """Everything a daemon instance is allowed to know at start."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral, see Daemon.port
    model: str = "ss10"
    workers: int = 1                   # exec-engine shards per job
    cache_dir: str | None = None       # shared warm cache root
    batch_size: int = 8                # max jobs per scheduler pass
    max_queue_depth: int = 64
    tenant_inflight: int = 8
    tenant_jobs: int | None = None     # lifetime budget per tenant
    task_timeout: float | None = None  # resil policy override per job
    max_instructions: int = 500_000_000

    def defaults(self) -> JobDefaults:
        return JobDefaults(model=self.model, workers=self.workers,
                           max_instructions=self.max_instructions)


@dataclass
class _Job:
    job_id: int
    tenant: str
    method: str
    params: dict
    request: dict
    future: asyncio.Future
    enqueue_ns: int = 0


class Daemon:
    def __init__(self, config: ServeConfig | None = None,
                 metrics: metrics_mod.MetricsRegistry | None = None):
        self.config = config or ServeConfig()
        # Explicit None checks: a fresh registry is empty and len()-falsy,
        # and it must still win over the ambient one.
        if metrics is None:
            metrics = obs_runtime.get_metrics()
        if metrics is None:
            metrics = metrics_mod.MetricsRegistry()
        self.metrics = metrics
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            default_quota=TenantQuota(
                max_inflight=self.config.tenant_inflight,
                max_jobs=self.config.tenant_jobs))
        self.port: int | None = None
        self.jobs_done = 0
        self._defaults = self.config.defaults()
        self._clock = obs_clock.get_clock()
        self._pending: dict[str, collections.deque[_Job]] = {}
        self._tenant_order: list[str] = []
        self._rr = 0
        self._next_id = 1
        self._job_ready: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._caches: tuple = ()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- metrics shorthands ----------------------------------------------

    def _count(self, name: str, **labels) -> None:
        self.metrics.counter(name, **labels).inc()

    def _observe(self, name: str, value: int, **labels) -> None:
        self.metrics.histogram(name, det=False, **labels).observe(value)

    def _gauge_depth(self) -> None:
        self.metrics.gauge("serve.queue_depth").set(self.admission.queued)

    # -- lifecycle --------------------------------------------------------

    async def run(self, ready: threading.Event | None = None) -> None:
        """Serve until ``shutdown`` (RPC or :meth:`request_stop`);
        drains admitted jobs before returning."""
        self._loop = asyncio.get_running_loop()
        self._job_ready = asyncio.Event()
        self._stopping = asyncio.Event()
        if self.config.cache_dir:
            self._caches = exec_cache.open_caches(self.config.cache_dir)
            for cache in self._caches:
                exec_cache.install_cache(cache)
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        scheduler = asyncio.ensure_future(self._scheduler())
        if ready is not None:
            ready.set()
        try:
            await self._stopping.wait()
        finally:
            server.close()
            await server.wait_closed()
            self._job_ready.set()        # wake the scheduler to drain
            await scheduler
            for writer in list(self._writers):
                with contextlib.suppress(ConnectionError):
                    writer.close()       # unblock idle keep-alive readers
            await asyncio.sleep(0)
            for _ in self._caches:
                exec_cache.uninstall_cache()
            self._caches = ()

    def request_stop(self) -> None:
        """Thread-safe shutdown trigger (used by :class:`DaemonHandle`)."""
        if self._loop is not None and self._stopping is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    req = await protocol.read_http_request(reader)
                except protocol.ProtocolError:
                    break                       # not our dialect; hang up
                if req is None:
                    break                       # clean keep-alive close
                method, path, _headers, body = req
                doc = await self._dispatch_http(method, path, body)
                if doc is None:                 # 404/405, non-envelope
                    writer.write(protocol.encode_http_response(
                        404, b'{"error": "not found"}\n', keep_alive=False))
                    await writer.drain()
                    break
                writer.write(protocol.encode_http_response(
                    protocol.http_status(doc), protocol.encode_doc(doc)))
                await writer.drain()
                if self._stopping is not None and self._stopping.is_set():
                    break                       # shutting down: no keep-alive
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    async def _dispatch_http(self, http_method: str, path: str,
                             body: bytes) -> dict | None:
        if http_method == "GET" and path in ("/healthz", "/health"):
            return self._health_envelope()
        if http_method != "POST" or path != "/rpc":
            return None
        t0 = self._clock()
        try:
            request = protocol.parse_request_envelope(body)
        except envelopes.EnvelopeError as exc:
            self._count("serve.errors", code=protocol.ERROR_BAD_REQUEST)
            return protocol.make_error(protocol.ERROR_BAD_REQUEST, str(exc))
        doc = await self._dispatch_rpc(request)
        self._observe("serve.request_ns", self._clock() - t0,
                      method=request["method"])
        return doc

    async def _dispatch_rpc(self, request: dict) -> dict:
        method = request["method"]
        self._count("serve.requests", method=method)
        if method == "health":
            return protocol.make_response(request, self._health_envelope())
        if method == "metrics":
            return protocol.make_response(request, self.metrics.snapshot())
        if method == "shutdown":
            assert self._stopping is not None
            self._loop.call_soon(self._stopping.set)
            return protocol.make_response(request, self._health_envelope())
        if method not in HANDLERS:
            self._count("serve.errors", code=protocol.ERROR_UNKNOWN_METHOD)
            return protocol.make_error(
                protocol.ERROR_UNKNOWN_METHOD,
                f"unknown method {method!r} "
                f"(have {sorted(HANDLERS) + ['health', 'metrics', 'shutdown']})",
                request)
        if self._stopping.is_set():
            return protocol.make_error(
                protocol.ERROR_SHUTTING_DOWN, "daemon is shutting down",
                request)
        return await self._enqueue(request)

    # -- queue + scheduler ------------------------------------------------

    async def _enqueue(self, request: dict) -> dict:
        tenant = request.get("tenant", "default")
        reason = self.admission.admit(tenant)
        if reason is not None:
            self._count("serve.admission_rejections", reason=reason)
            code = (protocol.ERROR_ADMISSION
                    if reason == "queue_full" else protocol.ERROR_QUOTA)
            return protocol.make_error(
                code, f"admission rejected ({reason}) for tenant "
                      f"{tenant!r}", request, reason=reason)
        self._count("serve.admitted", tenant=tenant)
        self._gauge_depth()
        job = _Job(job_id=self._next_id, tenant=tenant,
                   method=request["method"],
                   params=request.get("params", {}), request=request,
                   future=self._loop.create_future(),
                   enqueue_ns=self._clock())
        self._next_id += 1
        if tenant not in self._pending:
            self._pending[tenant] = collections.deque()
            self._tenant_order.append(tenant)
        self._pending[tenant].append(job)
        self._job_ready.set()
        return await job.future

    def _next_batch(self) -> list[_Job]:
        """Up to ``batch_size`` jobs, one per tenant per pass starting
        after the last tenant served (fair round-robin)."""
        batch: list[_Job] = []
        order = self._tenant_order
        while order and len(batch) < self.config.batch_size:
            took = False
            for i in range(len(order)):
                idx = (self._rr + i) % len(order)
                queue = self._pending.get(order[idx])
                if queue:
                    batch.append(queue.popleft())
                    self._rr = (idx + 1) % len(order)
                    took = True
                    if len(batch) >= self.config.batch_size:
                        break
            if not took:
                break
        return batch

    async def _scheduler(self) -> None:
        assert self._loop is not None
        # One thread: jobs execute in scheduled order; the exec engine
        # below it provides the actual parallelism (and forks cleanly
        # because this thread holds no event-loop state).
        from concurrent.futures import ThreadPoolExecutor
        pool = ThreadPoolExecutor(max_workers=1,
                                  thread_name_prefix="repro-serve-exec")
        try:
            while True:
                batch = self._next_batch()
                if not batch:
                    if self._stopping.is_set():
                        return
                    self._job_ready.clear()
                    await self._job_ready.wait()
                    continue
                self._count("serve.batches")
                self.metrics.histogram(
                    "serve.batch_jobs", bounds=_BATCH_BOUNDS,
                    det=False).observe(len(batch))
                for job in batch:
                    started = self._clock()
                    self._observe("serve.queue_wait_ns",
                                  started - job.enqueue_ns)
                    try:
                        doc = await self._loop.run_in_executor(
                            pool, self._execute, job)
                    except JobError as exc:
                        self._count("serve.errors",
                                    code=protocol.ERROR_JOB_FAILED)
                        doc = protocol.make_error(
                            protocol.ERROR_JOB_FAILED, str(exc),
                            job.request)
                    except Exception as exc:  # daemon-side bug
                        self._count("serve.errors",
                                    code=protocol.ERROR_INTERNAL)
                        doc = protocol.make_error(
                            protocol.ERROR_INTERNAL,
                            f"{type(exc).__name__}: {exc}", job.request)
                    else:
                        doc = protocol.make_response(job.request, doc)
                    self._observe("serve.task_wall_ns",
                                  self._clock() - started,
                                  tenant=job.tenant)
                    self.admission.release(job.tenant)
                    self.jobs_done += 1
                    self._gauge_depth()
                    if not job.future.done():
                        job.future.set_result(doc)
        finally:
            pool.shutdown(wait=True)

    def _execute(self, job: _Job) -> dict:
        """Runs on the executor thread; the resilience policy override
        (task hang sweep) applies per job, everything else inherits the
        ambient engine defaults — including an installed fault plan."""
        if self.config.task_timeout is not None:
            with engine.policy_context(
                    task_timeout=self.config.task_timeout):
                return run_job(job.method, job.params, self._defaults)
        return run_job(job.method, job.params, self._defaults)

    # -- control envelopes ------------------------------------------------

    def _health_envelope(self) -> dict:
        return envelopes.make(envelopes.SERVE_HEALTH, {
            "model": self.config.model,
            "workers": self.config.workers,
            "cache_dir": self.config.cache_dir,
            "jobs_done": self.jobs_done,
            "stopping": bool(self._stopping and self._stopping.is_set()),
            "admission": self.admission.snapshot(),
            "methods": sorted(HANDLERS) + ["health", "metrics", "shutdown"],
        })


class DaemonHandle:
    """A daemon running on its own thread/event loop; context-manager
    friendly.  ``stop()`` drains admitted jobs, then joins."""

    def __init__(self, daemon: Daemon, thread: threading.Thread):
        self.daemon = daemon
        self.thread = thread

    @property
    def port(self) -> int:
        assert self.daemon.port is not None
        return self.daemon.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.daemon.config.host, self.port)

    def stop(self, timeout: float = 30.0) -> None:
        self.daemon.request_stop()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("serve daemon did not stop in time")

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(config: ServeConfig | None = None,
                    metrics: metrics_mod.MetricsRegistry | None = None,
                    start_timeout: float = 30.0) -> DaemonHandle:
    """Start a daemon on a fresh thread; returns once it is accepting
    (``handle.port`` is bound)."""
    daemon = Daemon(config, metrics=metrics)
    ready = threading.Event()
    failure: list[BaseException] = []

    def _main() -> None:
        try:
            asyncio.run(daemon.run(ready=ready))
        except BaseException as exc:  # surface startup failures
            failure.append(exc)
            ready.set()

    thread = threading.Thread(target=_main, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(start_timeout):
        raise RuntimeError("serve daemon did not start in time")
    if failure:
        raise RuntimeError(f"serve daemon failed to start: {failure[0]}")
    return DaemonHandle(daemon, thread)


__all__ = ["ServeConfig", "Daemon", "DaemonHandle", "start_in_thread"]
