"""Admission control — who gets into the queue, and why not.

Two layers, both deterministic functions of the admission sequence so
a replayed request stream is accepted/rejected identically:

* a **global** queue-depth cap (``queue_full``) protects the daemon;
* **per-tenant** quotas cap in-flight jobs (queued + running,
  ``tenant_inflight``) and, optionally, a total admitted-jobs budget
  for the daemon's lifetime (``tenant_budget``).

The controller is event-loop-confined (no locks); counters feed the
``serve.admitted`` / ``serve.admission_rejections{reason=}`` metrics
and the :meth:`snapshot` that ``health`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: rejection reasons (the ``reason`` label on serve.admission_rejections
#: and the ``code`` detail of quota error envelopes).
QUEUE_FULL = "queue_full"
TENANT_INFLIGHT = "tenant_inflight"
TENANT_BUDGET = "tenant_budget"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_inflight`` bounds queued+running jobs at any instant;
    ``max_jobs`` (None = unlimited) bounds total admissions over the
    daemon's lifetime — the deterministic quota used by tests and the
    load generator's quota-path probes.
    """

    max_inflight: int = 8
    max_jobs: int | None = None


@dataclass
class _TenantState:
    inflight: int = 0
    admitted: int = 0
    rejected: int = 0


class AdmissionController:
    def __init__(self, max_queue_depth: int = 64,
                 default_quota: TenantQuota | None = None,
                 quotas: dict[str, TenantQuota] | None = None):
        self.max_queue_depth = max_queue_depth
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.tenants: dict[str, _TenantState] = {}
        self.queued = 0          # jobs admitted but not yet finished
        self.admitted_total = 0
        self.rejections: dict[str, int] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _state(self, tenant: str) -> _TenantState:
        return self.tenants.setdefault(tenant, _TenantState())

    def admit(self, tenant: str) -> str | None:
        """Try to admit one job; return None on success or the
        rejection reason."""
        quota = self.quota_for(tenant)
        state = self._state(tenant)
        reason = None
        if self.queued >= self.max_queue_depth:
            reason = QUEUE_FULL
        elif state.inflight >= quota.max_inflight:
            reason = TENANT_INFLIGHT
        elif quota.max_jobs is not None and state.admitted >= quota.max_jobs:
            reason = TENANT_BUDGET
        if reason is not None:
            state.rejected += 1
            self.rejections[reason] = self.rejections.get(reason, 0) + 1
            return reason
        state.inflight += 1
        state.admitted += 1
        self.queued += 1
        self.admitted_total += 1
        return None

    def release(self, tenant: str) -> None:
        """One admitted job finished (or failed) — free its slot."""
        state = self._state(tenant)
        if state.inflight <= 0 or self.queued <= 0:
            raise AssertionError(
                f"release without matching admit for tenant {tenant!r}")
        state.inflight -= 1
        self.queued -= 1

    def snapshot(self) -> dict:
        return {
            "max_queue_depth": self.max_queue_depth,
            "queued": self.queued,
            "admitted": self.admitted_total,
            "rejections": dict(sorted(self.rejections.items())),
            "tenants": {
                name: {"inflight": s.inflight, "admitted": s.admitted,
                       "rejected": s.rejected}
                for name, s in sorted(self.tenants.items())},
        }


__all__ = ["TenantQuota", "AdmissionController", "QUEUE_FULL",
           "TENANT_INFLIGHT", "TENANT_BUDGET"]
