""":class:`repro.api.Client` — the Toolchain facade, spoken over the
daemon's wire.

Mirrors every *serveable* :class:`repro.api.Toolchain` method by name
— ``annotate`` / ``check`` / ``run`` / ``bench`` / ``fuzz`` — plus the
daemon control plane (``health`` / ``metrics_snapshot`` /
``shutdown``).  ``compile``/``execute`` stay facade-only: they return
live in-process objects (a linked program, a VM result) that have no
wire form; ``run`` is their wire composition.

Methods return the job's *inner* versioned envelope (the same dict the
matching CLI ``--json`` prints); typed daemon failures raise
:class:`ServeError` carrying the ``repro-serve-error/1`` envelope::

    with Client(port=8091, tenant="ci") as c:
        doc = c.annotate("char *f(char *p) { return p + 1; }")
        doc["schema"]            # 'repro-annotate/1'

One ``Client`` owns one keep-alive HTTP connection and is not thread
safe — give each concurrent caller its own instance (the load
generator runs one per simulated client).
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from ..api import envelopes
from . import protocol


class ServeError(Exception):
    """The daemon answered with a typed ``repro-serve-error/1``."""

    def __init__(self, envelope: dict):
        self.envelope = envelope
        error = envelope.get("error", {})
        self.code = error.get("code", "unknown")
        self.reason = error.get("reason")
        super().__init__(f"{self.code}: {error.get('message', '')}")


class Client:
    def __init__(self, host: str = "127.0.0.1", port: int = 8091,
                 tenant: str = "default", timeout: float = 300.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        self._next_id = 1

    # -- plumbing ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def call(self, method: str, params: dict | None = None) -> dict:
        """One RPC round-trip; returns the inner result envelope or
        raises :class:`ServeError`."""
        request = protocol.make_request(method, params or {},
                                        tenant=self.tenant,
                                        req_id=self._next_id)
        self._next_id += 1
        body = protocol.encode_doc(request)
        conn = self._connection()
        try:
            conn.request("POST", "/rpc", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = response.read()
        except (ConnectionError, http.client.HTTPException, OSError):
            # One reconnect: the daemon may have dropped a stale
            # keep-alive connection between requests.
            self.close()
            conn = self._connection()
            conn.request("POST", "/rpc", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = response.read()
        doc = json.loads(payload.decode("utf-8"))
        entry = envelopes.validate(doc)
        if entry.schema == envelopes.SERVE_ERROR:
            raise ServeError(doc)
        if entry.schema != envelopes.SERVE_RESPONSE:
            raise ServeError(protocol.make_error(
                protocol.ERROR_INTERNAL,
                f"unexpected reply envelope {entry.schema!r}"))
        return doc["result"]

    # -- the Toolchain mirror ---------------------------------------------

    def annotate(self, source: str, mode: str | None = None,
                 **params: Any) -> dict:
        """``repro-annotate/1`` for one translation unit."""
        if mode is not None:
            params["mode"] = mode
        return self.call("annotate", {"source": source, **params})

    def check(self, source: str, **params: Any) -> dict:
        """``repro-check/1`` source-safety diagnostics."""
        return self.call("check", {"source": source, **params})

    def run(self, source: str, config: str | None = None,
            stdin: str = "", **params: Any) -> dict:
        """``repro-run/1``: compile + execute in one job."""
        if config is not None:
            params["config"] = config
        if stdin:
            params["stdin"] = stdin
        return self.call("run", {"source": source, **params})

    def bench(self, workloads: tuple[str, ...] | list[str] | None = None,
              configs: tuple[str, ...] | list[str] | None = None,
              **params: Any) -> dict:
        """``repro-bench/1`` slowdown matrix."""
        if workloads:
            params["workloads"] = list(workloads)
        if configs:
            params["configs"] = list(configs)
        return self.call("bench", params)

    def fuzz(self, seed: int = 0, iters: int = 10, **params: Any) -> dict:
        """``repro-fuzz/1`` differential campaign record."""
        return self.call("fuzz", {"seed": seed, "iters": iters, **params})

    # -- control plane ----------------------------------------------------

    def health(self) -> dict:
        return self.call("health")

    def metrics_snapshot(self) -> dict:
        """The daemon's live ``repro-obs-metrics/1`` snapshot."""
        return self.call("metrics")

    def shutdown(self) -> dict:
        doc = self.call("shutdown")
        self.close()
        return doc


__all__ = ["Client", "ServeError"]
