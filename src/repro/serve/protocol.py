"""The wire: request/response/error envelopes + a minimal HTTP/1.1
layer over asyncio streams.

One endpoint, ``POST /rpc``.  The body is a ``repro-serve-request/1``
envelope::

    {"schema": "repro-serve-request/1", "id": 3, "tenant": "ci",
     "method": "annotate", "params": {"source": "...", "mode": "safe"}}

Success answers are ``repro-serve-response/1`` with the job's *inner*
versioned envelope under ``"result"`` — those inner bytes (canonical
dump) are exactly what the matching CLI ``--json`` would print, which
is the byte-identity contract.  Failures are ``repro-serve-error/1``
with a typed ``code`` (see ERROR_* below); admission failures map to
HTTP 429, malformed requests to 400, everything else rides on 200/500.

Zero dependencies: the HTTP subset is hand-rolled (request line,
headers, Content-Length bodies, keep-alive) because the stdlib has no
async server and the daemon must not grow one as a dependency.
"""

from __future__ import annotations

import asyncio
import json

from ..api import envelopes
from ..api.build import dumps_canonical

MAX_BODY = 64 * 1024 * 1024     # one source file tops out far below this
MAX_HEADER = 64 * 1024

# -- typed error codes ---------------------------------------------------

ERROR_BAD_REQUEST = "bad_request"          # unparsable / invalid envelope
ERROR_UNKNOWN_METHOD = "unknown_method"
ERROR_ADMISSION = "admission_rejected"     # global queue / backpressure
ERROR_QUOTA = "quota_exceeded"             # per-tenant quota
ERROR_JOB_FAILED = "job_failed"            # toolchain raised (deterministic)
ERROR_INTERNAL = "internal"                # daemon bug / unexpected state
ERROR_SHUTTING_DOWN = "shutting_down"

_HTTP_STATUS = {
    ERROR_BAD_REQUEST: 400,
    ERROR_UNKNOWN_METHOD: 400,
    ERROR_ADMISSION: 429,
    ERROR_QUOTA: 429,
    ERROR_JOB_FAILED: 200,     # the *job* failed; the RPC itself worked
    ERROR_INTERNAL: 500,
    ERROR_SHUTTING_DOWN: 503,
}


class ProtocolError(Exception):
    """The peer sent something that is not our HTTP subset."""


def make_request(method: str, params: dict, tenant: str = "default",
                 req_id: int = 0) -> dict:
    return envelopes.make(envelopes.SERVE_REQUEST, {
        "id": req_id, "tenant": tenant, "method": method, "params": params})


def make_response(req: dict, result: dict) -> dict:
    return envelopes.make(envelopes.SERVE_RESPONSE, {
        "id": req.get("id", 0), "tenant": req.get("tenant", "default"),
        "method": req.get("method", ""), "ok": True, "result": result})


def make_error(code: str, message: str, req: dict | None = None,
               reason: str | None = None) -> dict:
    """A typed ``repro-serve-error/1`` envelope.  ``reason`` carries
    the admission/quota sub-reason label (``queue_full``, ...)."""
    error: dict = {"code": code, "message": message}
    if reason is not None:
        error["reason"] = reason
    req = req or {}
    return envelopes.make(envelopes.SERVE_ERROR, {
        "id": req.get("id", 0), "tenant": req.get("tenant", "default"),
        "method": req.get("method", ""), "ok": False, "error": error})


def http_status(doc: dict) -> int:
    if doc.get("ok", False):
        return 200
    return _HTTP_STATUS.get(doc.get("error", {}).get("code", ""), 500)


def parse_request_envelope(body: bytes) -> dict:
    """Decode and validate one wire request; raises
    :class:`envelopes.EnvelopeError` with a message fit for a
    ``bad_request`` error envelope."""
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise envelopes.EnvelopeError(f"body is not JSON: {exc}") from None
    entry = envelopes.validate(doc)
    if entry.schema != envelopes.SERVE_REQUEST:
        raise envelopes.EnvelopeError(
            f"expected {envelopes.SERVE_REQUEST!r}, got {entry.schema!r}")
    method = doc.get("method")
    if not isinstance(method, str) or not method:
        raise envelopes.EnvelopeError("request has no 'method'")
    if not isinstance(doc.get("params", {}), dict):
        raise envelopes.EnvelopeError("'params' must be an object")
    tenant = doc.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise envelopes.EnvelopeError("'tenant' must be a non-empty string")
    return doc


# -- asyncio HTTP subset -------------------------------------------------

async def read_http_request(
        reader: asyncio.StreamReader) -> tuple[str, str, dict, bytes] | None:
    """One request: ``(method, path, headers, body)``; None on clean EOF
    (peer closed the keep-alive connection)."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated request line") from None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"bad request line {line!r}")
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    total = 0
    while True:
        hline = await reader.readuntil(b"\r\n")
        total += len(hline)
        if total > MAX_HEADER:
            raise ProtocolError("header block too large")
        if hline == b"\r\n":
            break
        name, _, value = hline.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY:
        raise ProtocolError(f"bad content-length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


def encode_http_response(status: int, body: bytes,
                         content_type: str = "application/json",
                         keep_alive: bool = True) -> bytes:
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body


def encode_doc(doc: dict) -> bytes:
    return (dumps_canonical(doc) + "\n").encode("utf-8")


__all__ = ["ProtocolError", "make_request", "make_response", "make_error",
           "http_status", "parse_request_envelope", "read_http_request",
           "encode_http_response", "encode_doc",
           "ERROR_BAD_REQUEST", "ERROR_UNKNOWN_METHOD", "ERROR_ADMISSION",
           "ERROR_QUOTA", "ERROR_JOB_FAILED", "ERROR_INTERNAL",
           "ERROR_SHUTTING_DOWN"]
