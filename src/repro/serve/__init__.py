"""``repro.serve`` — the multi-tenant toolchain daemon.

An asyncio job-queue service in front of :class:`repro.api.Toolchain`:
clients POST ``repro-serve-request/1`` envelopes to a local HTTP
surface, jobs are admitted under per-tenant quotas
(:mod:`repro.serve.quota`), batch-scheduled fairly across tenants onto
one executor that owns the sharded exec engine and the shared warm
content-addressed caches, and answered with the *same* versioned
envelope bytes the CLI ``--json`` paths print
(:mod:`repro.api.build`) — byte identity between served, sharded, and
serial runs is the service's correctness gate, faulted or not.

    python -m repro serve start --workers 4 --cache-dir /tmp/cc
    python -m repro serve load --seed 0 --clients 8 --check

Modules: ``protocol`` (wire envelopes + minimal HTTP), ``quota``
(admission control), ``jobs`` (method table -> envelope builders),
``daemon`` (the async server + scheduler), ``client``
(:class:`repro.api.Client`), ``load`` (deterministic load generator +
chaos replay + SLO report), ``cli``.
"""

from .client import Client, ServeError
from .daemon import Daemon, DaemonHandle, ServeConfig, start_in_thread
from .quota import AdmissionController, TenantQuota

__all__ = ["Client", "ServeError", "Daemon", "DaemonHandle",
           "ServeConfig", "start_in_thread", "AdmissionController",
           "TenantQuota"]
