"""The job table: serve method name -> inner versioned envelope.

One handler per :class:`repro.api.Toolchain` driver, each building its
envelope through :mod:`repro.api.build` — the exact serialization the
CLI ``--json`` paths print.  The daemon dispatches queued jobs here;
the load generator and the byte-identity gates call :func:`run_job`
*directly* (no daemon, no queue) to produce the serial reference
bytes, so any drift between served and serial output is a bug by
construction.

Handlers must stay deterministic: params in, envelope out, no wall
clock, no ambient state beyond the process-wide caches (whose replays
are bit-identical by design).  Deterministic toolchain failures
(frontend errors, VM faults, failed pointer checks, bad params) raise
:class:`JobError` and become typed ``job_failed`` error envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import Toolchain, build


class JobError(Exception):
    """The job itself failed deterministically (bad source, bad
    params, a failed GC check) — an error *envelope*, not a daemon
    crash."""


@dataclass(frozen=True)
class JobDefaults:
    """Daemon-side defaults a request's params may override."""

    model: str = "ss10"
    workers: int = 1
    max_instructions: int = 500_000_000


def _toolchain(params: dict, defaults: JobDefaults, **extra) -> Toolchain:
    try:
        return Toolchain(model=params.get("model", defaults.model),
                         workers=int(params.get("workers",
                                                defaults.workers)),
                         **extra)
    except (ValueError, TypeError) as exc:
        raise JobError(f"bad params: {exc}") from None


def _source(params: dict) -> str:
    source = params.get("source")
    if not isinstance(source, str):
        raise JobError("params need a 'source' string")
    return source


def job_annotate(params: dict, defaults: JobDefaults) -> dict:
    mode = params.get("mode", "safe")
    tc = _toolchain(params, defaults, mode=mode,
                    run_cpp=bool(params.get("run_cpp", True)))
    result = tc.annotate(_source(params))
    return build.annotate_envelope(_source(params), mode, result)


def job_check(params: dict, defaults: JobDefaults) -> dict:
    source = _source(params)
    tc = _toolchain(params, defaults,
                    run_cpp=bool(params.get("run_cpp", True)))
    return build.check_envelope(source, tc.check(source))


def job_run(params: dict, defaults: JobDefaults) -> dict:
    config = params.get("config", "O")
    tc = _toolchain(params, defaults, config=config,
                    gc_interval=int(params.get("gc_interval", 0)),
                    poison=bool(params.get("poison", False)),
                    max_instructions=int(params.get(
                        "max_instructions", defaults.max_instructions)))
    compiled = tc.compile(_source(params))
    result = tc.execute(compiled, stdin=params.get("stdin", ""))
    return build.run_envelope(result, compiled.asm.code_size(), config,
                              tc.options.model)


def job_bench(params: dict, defaults: JobDefaults) -> dict:
    tc = _toolchain(params, defaults)
    workloads = params.get("workloads")
    configs = params.get("configs")
    try:
        rows = tc.bench(tuple(workloads) if workloads else None,
                        tuple(configs) if configs else None)
    except KeyError as exc:
        raise JobError(f"unknown workload {exc.args[0]!r}") from None
    return build.bench_envelope(rows, tc.options.model)


def job_fuzz(params: dict, defaults: JobDefaults) -> dict:
    tc = _toolchain(params, defaults)
    kwargs = {}
    if "models" in params:
        kwargs["models"] = tuple(params["models"])
    if "adv_interval" in params:
        kwargs["adv_interval"] = int(params["adv_interval"])
    result = tc.fuzz(seed=int(params.get("seed", 0)),
                     iters=int(params.get("iters", 10)),
                     max_instructions=int(params.get(
                         "max_instructions", 5_000_000)),
                     **kwargs)
    return build.fuzz_envelope(result)


HANDLERS = {
    "annotate": job_annotate,
    "check": job_check,
    "run": job_run,
    "bench": job_bench,
    "fuzz": job_fuzz,
}


def run_job(method: str, params: dict, defaults: JobDefaults) -> dict:
    """Execute one job to its inner envelope.  Raises :class:`JobError`
    for deterministic failures and :class:`KeyError` for unknown
    methods (the daemon maps those to their typed error codes)."""
    handler = HANDLERS[method]
    try:
        return handler(params, defaults)
    except JobError:
        raise
    except Exception as exc:
        # Frontend/VM/GC failures are deterministic observables too —
        # a served bad program must fail byte-identically to a serial
        # run of the same program.
        raise JobError(f"{type(exc).__name__}: {exc}") from exc


__all__ = ["JobError", "JobDefaults", "HANDLERS", "run_job"]
