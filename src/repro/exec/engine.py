"""Deterministic sharded worker-pool execution with failure recovery.

The model is deliberately simple so that equivalence with the serial
path is provable:

* A job is a list of picklable *payloads* plus a module-level function
  ``fn(payload) -> result`` (it must be importable by name — closures
  cannot cross a process boundary).
* :func:`plan_shards` assigns payload *index* ``i`` to shard
  ``i % workers`` — a pure function of (n, workers), so shard membership
  never depends on timing and any task is independently replayable from
  its index alone.
* Each shard runs in one forked worker process, streaming
  ``(index, result)`` pairs back over a pipe; the parent merges them
  into **canonical payload order**, so downstream reports are
  byte-identical no matter how execution interleaved.
* ``workers <= 1`` executes inline in the calling process — same
  containment semantics (per-task exception capture), no subprocess —
  which is what reducer probes pin themselves to.

Resilience (:class:`ResilPolicy`, on by default):

* A worker dying, hanging past the per-task timeout, or corrupting its
  pipe loses only its *unreported* tasks — and those are retried, up to
  ``max_rounds`` extra rounds with deterministic backoff, replanned
  round-robin over fresh workers.  Because every task is a pure
  function of its payload and results merge in canonical order, a
  retried task's result is byte-identical to an untroubled run's.
* Each worker death is attributed to the first unreported task of the
  dead shard (the one it was presumably running).  A task blamed for
  ``max_task_deaths`` deaths is **quarantined**: it runs once more
  pinned alone in a single-task process, and if it kills that worker
  too it is reported as a contained :class:`TaskFailure` — a poison
  task costs the run one index, never the run.
* Tasks still unfinished when the retry budget runs out fall back to
  pinned serial execution (``serial_fallback``), flagged as a degraded
  run; with the fallback disabled they surface as the classic
  :class:`ShardFailure`.
* ``NO_RETRY`` restores the pre-resilience containment semantics
  (one round, shard losses surface immediately).

A run-level ``timeout`` still bounds the whole job: when the deadline
expires, unreported work surfaces as ``ShardFailure("timed out")`` and
no retries are attempted — the budget is gone.

Fault injection: the worker loop, the pipe sender, and the pinned
runner consult :mod:`repro.resil.inject` at each seam.  With no fault
plan installed (always, outside chaos testing) every hook is a single
``is None`` check.

Telemetry: when the parent's ``repro.obs`` tracer is enabled, each
worker records into a fresh tracer and ships its events home in its
final message; the parent absorbs them as shard-tagged events in one
``repro-obs-trace/1`` stream, and recovery actions surface as
``resil.*`` instants (worker_lost, retry, quarantine, degraded).
Cache hit/miss counters from the worker's process-local
:mod:`repro.exec.cache` stats are merged into the parent's the same
way.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from ..obs import clock as obs_clock
from ..obs import metrics as obs_metrics
from ..obs import runtime as obs_runtime
from ..resil import inject as resil_inject
from . import cache as cache_mod

_DEAD_REASONS = ("worker died", "pipe corrupted", "task hung")


class EngineError(RuntimeError):
    """A merged run had failures and the caller demanded success."""


@dataclass
class Task:
    index: int  # canonical merge position
    payload: Any


@dataclass
class ShardPlan:
    workers: int
    shards: list[list[Task]]

    @property
    def total(self) -> int:
        return sum(len(s) for s in self.shards)


@dataclass(frozen=True)
class ResilPolicy:
    """How hard the pool fights to finish every task.

    ``max_rounds`` is the number of *retry* rounds after the initial
    one; ``backoff_s`` gives the deterministic sleep before retry round
    k (last value repeats).  ``max_task_deaths`` worker deaths
    attributed to one task quarantine it; ``task_timeout`` (seconds
    without a worker reporting anything) converts hangs into worker
    losses.  ``serial_fallback`` runs still-unfinished tasks pinned
    one-per-process as a last resort instead of failing their shard.
    """

    max_rounds: int = 2
    max_task_deaths: int = 2
    task_timeout: float | None = None
    backoff_s: tuple[float, ...] = (0.02, 0.05)
    serial_fallback: bool = True


#: Pre-resilience semantics: one round, losses surface as ShardFailure.
NO_RETRY = ResilPolicy(max_rounds=0, serial_fallback=False)

_default_policy = ResilPolicy()


def default_policy() -> ResilPolicy:
    return _default_policy


def set_default_policy(policy: ResilPolicy) -> None:
    global _default_policy
    _default_policy = policy


@contextlib.contextmanager
def policy_context(policy: ResilPolicy | None = None, **overrides):
    """Run a block under a different default :class:`ResilPolicy`
    (``policy_context(task_timeout=5.0)`` tweaks the current one)."""
    previous = _default_policy
    base = policy if policy is not None else previous
    set_default_policy(replace(base, **overrides) if overrides else base)
    try:
        yield _default_policy
    finally:
        set_default_policy(previous)


@dataclass
class TaskFailure:
    """``fn`` raised for one payload; only that index is lost."""

    index: int
    shard: int
    error: str

    def describe(self) -> str:
        return f"task {self.index} (shard {self.shard}): {self.error}"


@dataclass
class ShardFailure:
    """A worker died or timed out; its unreported indices are lost."""

    shard: int
    reason: str
    lost_indices: list[int]

    def describe(self) -> str:
        return (f"shard {self.shard} {self.reason}: lost tasks "
                f"{self.lost_indices}")


@dataclass
class MergedRun:
    """Shard results merged back into canonical payload order."""

    results: list[Any]  # len == len(payloads); None where failed
    task_failures: list[TaskFailure] = field(default_factory=list)
    shard_failures: list[ShardFailure] = field(default_factory=list)
    workers: int = 1
    # Resilience accounting (informational; never affects results):
    retries: int = 0          # task executions beyond the first round
    worker_deaths: int = 0    # workers lost to death/hang/pipe rot
    quarantined: list[int] = field(default_factory=list)
    degraded: bool = False    # serial fallback had to finish the job
    rounds: int = 1           # pool rounds actually run

    @property
    def ok(self) -> bool:
        return not self.task_failures and not self.shard_failures

    def describe_failures(self) -> str:
        lines = [f.describe() for f in self.task_failures]
        lines += [f.describe() for f in self.shard_failures]
        return "\n".join(lines)

    def raise_on_failure(self) -> "MergedRun":
        if not self.ok:
            raise EngineError(
                f"sharded run failed ({len(self.task_failures)} task / "
                f"{len(self.shard_failures)} shard failure(s)):\n"
                + self.describe_failures())
        return self

    def resil_summary(self) -> dict:
        return {"retries": self.retries,
                "worker_deaths": self.worker_deaths,
                "quarantined": list(self.quarantined),
                "degraded": self.degraded,
                "rounds": self.rounds}


def plan_shards(payloads: Sequence[Any], workers: int) -> ShardPlan:
    """Round-robin payload index ``i`` onto shard ``i % workers``."""
    workers = max(1, int(workers))
    shards: list[list[Task]] = [[] for _ in range(workers)]
    for i, payload in enumerate(payloads):
        shards[i % workers].append(Task(i, payload))
    return ShardPlan(workers=workers, shards=shards)


def _run_inline(plan: ShardPlan,
                fn: Callable[[Any], Any]) -> MergedRun:
    merged = MergedRun(results=[None] * plan.total, workers=1)
    tracer = obs_runtime.get_tracer()
    metrics = obs_runtime.get_metrics()
    clock = obs_clock.get_clock()
    run_t0 = clock() if metrics is not None else 0
    for shard in plan.shards:  # one shard when planned with workers=1
        for task in shard:
            t0 = clock() if metrics is not None else 0
            with tracer.span("exec.task", index=task.index, shard=0) as sp:
                try:
                    merged.results[task.index] = fn(task.payload)
                except Exception as exc:  # containment parity with workers
                    merged.task_failures.append(
                        TaskFailure(task.index, 0,
                                    f"{type(exc).__name__}: {exc}"))
                    sp.set(error=type(exc).__name__)
                    if metrics is not None:
                        metrics.counter("exec.task_errors", det=False).inc()
            if metrics is not None:
                _observe_task(metrics, t0 - run_t0, clock() - t0)
    return merged


def _observe_task(metrics, queue_wait_ns: int, task_wall_ns: int) -> None:
    """Per-task engine metrics, identical for inline and worker paths.
    All exec.* metrics are wall-clock (det=False): serial runs bypass
    the engine entirely, so they can never be part of the deterministic
    worker-count-invariant snapshot."""
    metrics.counter("exec.tasks", det=False).inc()
    metrics.histogram("exec.queue_wait_ns").observe(max(queue_wait_ns, 0))
    metrics.histogram("exec.task_wall_ns").observe(max(task_wall_ns, 0))


def _worker_main(tasks: list[Task], fn: Callable[[Any], Any],
                 tracing: bool, conn, shard: int = 0,
                 attempt: int = 0, metrics_on: bool = False) -> None:
    """Worker entry point: run the shard, streaming results home.

    Runs in a forked child.  A fresh tracer is installed so the shard
    records only its own events (the fork inherited the parent's), and
    cache stats are zeroed so the final report is this shard's delta;
    likewise a fresh metrics registry records only this shard's
    observations, shipped home in the final message and merged like
    cache stats.  ``Connection.send`` is synchronous — a completed
    task's result is in the pipe before the next task starts, so even a
    worker that dies mid-shard loses only its *unreported* tasks.
    """
    if tracing:
        obs_runtime.enable_tracing()
    else:
        obs_runtime.disable_tracing()
    metrics = (obs_runtime.set_metrics(obs_metrics.MetricsRegistry())
               if metrics_on else obs_runtime.set_metrics(None))
    tracer = obs_runtime.get_tracer()
    for cache in cache_mod.active_caches():
        cache.stats = cache_mod.CacheStats()
    resil_inject.worker_started(shard, attempt)
    send = resil_inject.wrap_send(conn)
    clock = obs_clock.get_clock()
    worker_t0 = clock() if metrics is not None else 0
    sent = 0
    for task in tasks:
        resil_inject.on_task_start(task.index)
        t0 = clock() if metrics is not None else 0
        with tracer.span("exec.task", index=task.index, shard=shard) as sp:
            try:
                result = fn(task.payload)
            except Exception as exc:
                send(("error", task.index, f"{type(exc).__name__}: {exc}"))
                sp.set(error=type(exc).__name__)
                if metrics is not None:
                    metrics.counter("exec.task_errors", det=False).inc()
            else:
                send(("result", task.index, result))
        if metrics is not None:
            _observe_task(metrics, t0 - worker_t0, clock() - t0)
        sent += 1
        resil_inject.on_task_reported(sent)
    events = ([e.to_json() for e in obs_runtime.get_tracer().sorted_events()]
              if tracing else [])
    stats = {kind: cache.stats.to_dict()
             for kind, cache in cache_mod.active_caches_by_kind().items()}
    send(("done", events, stats,
          metrics.to_dict() if metrics is not None else {}))
    conn.close()


def run_sharded(payloads: Sequence[Any], fn: Callable[[Any], Any],
                workers: int = 1, timeout: float | None = None,
                label: str = "exec",
                policy: ResilPolicy | None = None) -> MergedRun:
    """Run ``fn`` over ``payloads`` across ``workers`` processes.

    Results come back merged in payload order (:class:`MergedRun`);
    failures are contained per task / per shard, never raised here —
    call :meth:`MergedRun.raise_on_failure` when partial results are
    unacceptable.  ``policy`` (default: the process-wide
    :func:`default_policy`) controls retry/quarantine behavior; pass
    :data:`NO_RETRY` for strict single-round containment.
    """
    payloads = list(payloads)
    tracer = obs_runtime.get_tracer()
    metrics = obs_runtime.get_metrics()
    if policy is None:
        policy = _default_policy
    if metrics is not None:
        metrics.counter("exec.runs", det=False).inc()
        metrics.counter("exec.tasks_total", det=False).inc(len(payloads))
        metrics.gauge("exec.workers").set(max(1, min(int(workers),
                                                     len(payloads) or 1)))
    if workers <= 1:
        with tracer.span(f"{label}.run_sharded", workers=1,
                         tasks=len(payloads), inline=True):
            return _run_inline(plan_shards(payloads, 1), fn)
    plan = plan_shards(payloads, workers)
    with tracer.span(f"{label}.run_sharded", workers=plan.workers,
                     tasks=plan.total, inline=False) as sp:
        merged = _run_resilient(plan, fn, timeout, policy)
        sp.set(task_failures=len(merged.task_failures),
               shard_failures=len(merged.shard_failures),
               retries=merged.retries,
               worker_deaths=merged.worker_deaths,
               quarantined=len(merged.quarantined),
               degraded=merged.degraded)
    return merged


@dataclass
class _ShardState:
    """One pool worker's reporting, pre-merge."""

    shard: int
    tasks: list[Task]
    results: dict[int, Any] = field(default_factory=dict)
    errors: list[tuple[int, str]] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    cache_stats: dict | None = None
    metrics: dict | None = None   # the worker registry's to_dict()
    completed: bool = False       # sent its "done" message
    death_reason: str | None = None

    def reported(self) -> set[int]:
        return set(self.results) | {i for i, _ in self.errors}

    def missing(self) -> list[int]:
        seen = self.reported()
        return [t.index for t in self.tasks if t.index not in seen]


class _Slot:
    """Live bookkeeping for one running worker."""

    def __init__(self, state: _ShardState, proc) -> None:
        self.state = state
        self.proc = proc
        self.last_progress = time.monotonic()


def _handle_message(msg: tuple, st: _ShardState) -> bool:
    """Fold one worker message into its shard state.

    Returns True when this was the shard's final ("done") message.
    """
    kind = msg[0]
    if kind == "result":
        st.results[msg[1]] = msg[2]
    elif kind == "error":
        st.errors.append((msg[1], msg[2]))
    elif kind == "done":
        st.events = msg[1]
        st.cache_stats = msg[2]
        # Older/foreign workers may send the 3-element form.
        st.metrics = msg[3] if len(msg) > 3 else None
        st.completed = True
        return True
    return False


def _run_pool_once(round_shards: list[tuple[int, list[Task]]],
                   fn: Callable[[Any], Any], tracing: bool, attempt: int,
                   deadline: float | None, policy: ResilPolicy,
                   metrics_on: bool = False) -> tuple[list[_ShardState], bool]:
    """Run one round of workers; returns shard states + timed-out flag."""
    ctx = multiprocessing.get_context("fork")
    states: list[_ShardState] = []
    slots: dict[Any, _Slot] = {}  # parent conn -> slot
    procs = []
    for shard_id, tasks in round_shards:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        p = ctx.Process(target=_worker_main,
                        args=(tasks, fn, tracing, child_conn, shard_id,
                              attempt, metrics_on),
                        daemon=True)
        p.start()
        child_conn.close()  # parent's copy — else EOF never arrives
        st = _ShardState(shard=shard_id, tasks=tasks)
        states.append(st)
        procs.append(p)
        slots[parent_conn] = _Slot(st, p)
    timed_out = False
    try:
        while slots:
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = True
                for slot in slots.values():
                    if not slot.state.completed:
                        slot.state.death_reason = "timed out"
                break
            ready = multiprocessing.connection.wait(list(slots),
                                                    timeout=0.05)
            now = time.monotonic()
            for conn in ready:
                slot = slots[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # Worker died; everything it reported is already in.
                    if not slot.state.completed:
                        slot.state.death_reason = "worker died"
                    del slots[conn]
                    conn.close()
                    continue
                except Exception:
                    # Unpicklable bytes: the pipe is rotten, the worker
                    # unusable — cut it loose and let retry recover.
                    slot.state.death_reason = "pipe corrupted"
                    slot.proc.terminate()
                    del slots[conn]
                    conn.close()
                    continue
                slot.last_progress = now
                if _handle_message(msg, slot.state):
                    del slots[conn]
                    conn.close()
            if policy.task_timeout is not None:
                now = time.monotonic()
                for conn, slot in list(slots.items()):
                    if now - slot.last_progress > policy.task_timeout:
                        slot.state.death_reason = "task hung"
                        slot.proc.terminate()
                        del slots[conn]
                        conn.close()
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5.0)
        for conn in slots:
            conn.close()
    return states, timed_out


def _run_pinned(task: Task, fn: Callable[[Any], Any], tracing: bool,
                timeout_s: float | None,
                metrics_on: bool = False) -> _ShardState:
    """Run one task alone in a dedicated process (attempt=-1: injected
    pool faults are disarmed; genuine poison still fires)."""
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    p = ctx.Process(target=_worker_main,
                    args=([task], fn, tracing, child_conn, -1, -1,
                          metrics_on),
                    daemon=True)
    p.start()
    child_conn.close()
    st = _ShardState(shard=-1, tasks=[task])
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    try:
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                st.death_reason = "task hung"
                break
            if not parent_conn.poll(0.05):
                continue
            try:
                msg = parent_conn.recv()
            except (EOFError, OSError):
                if not st.completed:
                    st.death_reason = "worker died"
                break
            except Exception:
                st.death_reason = "pipe corrupted"
                break
            if _handle_message(msg, st):
                break
    finally:
        if p.is_alive():
            p.terminate()
        p.join(timeout=5.0)
        parent_conn.close()
    return st


def _run_resilient(plan: ShardPlan, fn: Callable[[Any], Any],
                   timeout: float | None,
                   policy: ResilPolicy) -> MergedRun:
    tracer = obs_runtime.get_tracer()
    tracing = tracer.enabled
    metrics = obs_runtime.get_metrics()
    metrics_on = metrics is not None

    def count(name: str, n: int = 1) -> None:
        if metrics is not None and n:
            metrics.counter(name, det=False).inc(n)

    deadline = None if timeout is None else time.monotonic() + timeout

    home_shard = {t.index: s for s, shard in enumerate(plan.shards)
                  for t in shard}
    pending: dict[int, Task] = {t.index: t for shard in plan.shards
                                for t in shard}
    results: dict[int, Any] = {}
    failures: dict[int, TaskFailure] = {}
    lost_reason: dict[int, str] = {}
    death_counts: dict[int, int] = {}
    quarantine: dict[int, Task] = {}
    all_states: list[_ShardState] = []
    retries = worker_deaths = 0
    timed_out = False
    rounds = 0

    for attempt in range(policy.max_rounds + 1):
        if not pending or timed_out:
            break
        if attempt == 0:
            round_shards = [(s, tasks)
                            for s, tasks in enumerate(plan.shards) if tasks]
        else:
            # Deterministic backoff, then replan the survivors
            # round-robin over fresh workers.
            backoff = policy.backoff_s[
                min(attempt - 1, len(policy.backoff_s) - 1)]
            if backoff > 0:
                time.sleep(backoff)
            todo = [pending[i] for i in sorted(pending)]
            replan = plan_shards([t.payload for t in todo],
                                 min(plan.workers, len(todo)))
            # Re-label with the original payload indices.
            for shard in replan.shards:
                for slot_task in shard:
                    slot_task.index = todo[slot_task.index].index
            round_shards = [(s, tasks)
                            for s, tasks in enumerate(replan.shards) if tasks]
            retries += len(todo)
            tracer.instant("resil.retry", attempt=attempt, tasks=len(todo))
            count("exec.retries", len(todo))
        rounds += 1
        count("exec.rounds")
        states, timed_out = _run_pool_once(round_shards, fn, tracing,
                                           attempt, deadline, policy,
                                           metrics_on)
        all_states.extend(states)
        # Fold in deterministic shard order.
        for st in states:
            for idx, value in st.results.items():
                if idx in pending:
                    results[idx] = value
                    del pending[idx]
            for idx, error in st.errors:
                if idx in pending:
                    failures[idx] = TaskFailure(idx, home_shard[idx], error)
                    del pending[idx]
            missing = [i for i in st.missing() if i in pending]
            if st.death_reason in _DEAD_REASONS:
                worker_deaths += 1
                count("exec.worker_deaths")
                culprit = missing[0] if missing else None
                tracer.instant("resil.worker_lost", shard=st.shard,
                               attempt=attempt, reason=st.death_reason,
                               lost=len(missing), culprit=culprit)
                if culprit is not None:
                    death_counts[culprit] = death_counts.get(culprit, 0) + 1
                for idx in missing:
                    lost_reason[idx] = st.death_reason
                if (culprit is not None
                        and death_counts[culprit] >= policy.max_task_deaths):
                    quarantine[culprit] = pending.pop(culprit)
                    count("exec.quarantined")
                    tracer.instant("resil.quarantine", index=culprit,
                                   deaths=death_counts[culprit])
            elif st.death_reason == "timed out":
                for idx in missing:
                    lost_reason[idx] = "timed out"
            elif missing:
                # Completed worker with holes: messages were dropped in
                # the pipe.  Retry them — no death to attribute.
                tracer.instant("resil.dropped_messages", shard=st.shard,
                               attempt=attempt, count=len(missing))
                count("exec.dropped_messages", len(missing))
                for idx in missing:
                    lost_reason[idx] = "message dropped"

    merged = MergedRun(results=[None] * plan.total, workers=plan.workers,
                       retries=retries, worker_deaths=worker_deaths,
                       rounds=rounds)
    pinned_states: list[_ShardState] = []

    def run_pinned(task: Task, context: str) -> None:
        st = _run_pinned(task, fn, tracing, policy.task_timeout, metrics_on)
        pinned_states.append(st)
        idx = task.index
        if idx in st.results:
            results[idx] = st.results[idx]
        elif st.errors:
            failures[idx] = TaskFailure(idx, home_shard[idx],
                                        st.errors[0][1])
        else:
            merged.worker_deaths += 1
            deaths = death_counts.get(idx, 0) + 1
            failures[idx] = TaskFailure(
                idx, home_shard[idx],
                f"poison task ({context}): killed {deaths} worker(s), "
                f"last: {st.death_reason}")

    if timed_out:
        # Budget exhausted: no recovery attempts, classic containment.
        pending.update(quarantine)
        quarantine.clear()
        for idx in pending:
            lost_reason.setdefault(idx, "timed out")
    else:
        for idx in sorted(quarantine):
            run_pinned(quarantine.pop(idx), "quarantined rerun")
            merged.quarantined.append(idx)
        if pending and policy.serial_fallback:
            merged.degraded = True
            count("exec.degraded")
            tracer.instant("resil.degraded", tasks=len(pending))
            for idx in sorted(pending):
                run_pinned(pending.pop(idx), "serial fallback")

    # Whatever is still pending becomes per-shard failures, grouped by
    # original shard and loss reason — exactly the NO_RETRY semantics.
    by_key: dict[tuple[int, str], list[int]] = {}
    for idx in sorted(pending):
        key = (home_shard[idx], lost_reason.get(idx, "worker died"))
        by_key.setdefault(key, []).append(idx)
    for (shard, reason), indices in sorted(by_key.items()):
        merged.shard_failures.append(ShardFailure(shard, reason, indices))

    for idx, value in results.items():
        merged.results[idx] = value
    merged.task_failures = sorted(failures.values(), key=lambda f: f.index)
    # Absorb shard telemetry + cache counters in execution order (rounds
    # then shards, pinned runs last), so the merged stream is
    # deterministic given deterministic shard streams.
    for st in all_states + pinned_states:
        if st.events and tracing:
            tracer.absorb(st.events, shard=st.shard)
        if st.cache_stats:
            for kind, stats in st.cache_stats.items():
                cache = cache_mod.active_cache(kind)
                if cache is not None:
                    cache.stats.merge(stats)
        if st.metrics and metrics is not None:
            metrics.merge(st.metrics)
            metrics.counter("exec.shard_tasks", det=False,
                            shard=str(st.shard)).inc(
                len(st.results) + len(st.errors))
    return merged
