"""Deterministic sharded worker-pool execution.

The model is deliberately simple so that equivalence with the serial
path is provable:

* A job is a list of picklable *payloads* plus a module-level function
  ``fn(payload) -> result`` (it must be importable by name — closures
  cannot cross a process boundary).
* :func:`plan_shards` assigns payload *index* ``i`` to shard
  ``i % workers`` — a pure function of (n, workers), so shard membership
  never depends on timing and any task is independently replayable from
  its index alone.
* Each shard runs in one forked worker process, streaming
  ``(index, result)`` pairs back over a pipe; the parent merges them
  into **canonical payload order**, so downstream reports are
  byte-identical no matter how execution interleaved.
* ``workers <= 1`` executes inline in the calling process — same
  containment semantics (per-task exception capture), no subprocess —
  which is what reducer probes pin themselves to.

Containment:

* ``fn`` raising captures a :class:`TaskFailure` for that index only.
* A worker *dying* (hard crash, ``os._exit``, kill) poisons only the
  not-yet-reported tasks of its shard: they surface as a
  :class:`ShardFailure` in the merge, every other shard's results stand.
* A ``timeout`` (seconds, wall clock) terminates still-running workers
  and poisons their unreported tasks the same way.

Telemetry: when the parent's ``repro.obs`` tracer is enabled, each
worker records into a fresh tracer and ships its events home in its
final message; the parent absorbs them as shard-tagged events in one
``repro-obs-trace/1`` stream.  Cache hit/miss counters from the
worker's process-local :mod:`repro.exec.cache` stats are merged into
the parent's the same way.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs import runtime as obs_runtime
from . import cache as cache_mod


class EngineError(RuntimeError):
    """A merged run had failures and the caller demanded success."""


@dataclass
class Task:
    index: int  # canonical merge position
    payload: Any


@dataclass
class ShardPlan:
    workers: int
    shards: list[list[Task]]

    @property
    def total(self) -> int:
        return sum(len(s) for s in self.shards)


@dataclass
class TaskFailure:
    """``fn`` raised for one payload; only that index is lost."""

    index: int
    shard: int
    error: str

    def describe(self) -> str:
        return f"task {self.index} (shard {self.shard}): {self.error}"


@dataclass
class ShardFailure:
    """A worker died or timed out; its unreported indices are lost."""

    shard: int
    reason: str
    lost_indices: list[int]

    def describe(self) -> str:
        return (f"shard {self.shard} {self.reason}: lost tasks "
                f"{self.lost_indices}")


@dataclass
class WorkerResult:
    """Everything one worker reported back, pre-merge."""

    shard: int
    results: dict[int, Any] = field(default_factory=dict)
    task_failures: list[TaskFailure] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    cache_stats: dict | None = None
    completed: bool = False  # sent its "done" message


@dataclass
class MergedRun:
    """Shard results merged back into canonical payload order."""

    results: list[Any]  # len == len(payloads); None where failed
    task_failures: list[TaskFailure] = field(default_factory=list)
    shard_failures: list[ShardFailure] = field(default_factory=list)
    workers: int = 1

    @property
    def ok(self) -> bool:
        return not self.task_failures and not self.shard_failures

    def describe_failures(self) -> str:
        lines = [f.describe() for f in self.task_failures]
        lines += [f.describe() for f in self.shard_failures]
        return "\n".join(lines)

    def raise_on_failure(self) -> "MergedRun":
        if not self.ok:
            raise EngineError(
                f"sharded run failed ({len(self.task_failures)} task / "
                f"{len(self.shard_failures)} shard failure(s)):\n"
                + self.describe_failures())
        return self


def plan_shards(payloads: Sequence[Any], workers: int) -> ShardPlan:
    """Round-robin payload index ``i`` onto shard ``i % workers``."""
    workers = max(1, int(workers))
    shards: list[list[Task]] = [[] for _ in range(workers)]
    for i, payload in enumerate(payloads):
        shards[i % workers].append(Task(i, payload))
    return ShardPlan(workers=workers, shards=shards)


def _run_inline(plan: ShardPlan,
                fn: Callable[[Any], Any]) -> MergedRun:
    merged = MergedRun(results=[None] * plan.total, workers=1)
    for shard in plan.shards:  # one shard when planned with workers=1
        for task in shard:
            try:
                merged.results[task.index] = fn(task.payload)
            except Exception as exc:  # containment parity with workers
                merged.task_failures.append(
                    TaskFailure(task.index, 0, f"{type(exc).__name__}: {exc}"))
    return merged


def _worker_main(tasks: list[Task], fn: Callable[[Any], Any],
                 tracing: bool, conn) -> None:
    """Worker entry point: run the shard, streaming results home.

    Runs in a forked child.  A fresh tracer is installed so the shard
    records only its own events (the fork inherited the parent's), and
    cache stats are zeroed so the final report is this shard's delta.
    ``Connection.send`` is synchronous — a completed task's result is in
    the pipe before the next task starts, so even a worker that dies
    mid-shard loses only its *unreported* tasks.
    """
    if tracing:
        obs_runtime.enable_tracing()
    else:
        obs_runtime.disable_tracing()
    for cache in cache_mod.active_caches():
        cache.stats = cache_mod.CacheStats()
    for task in tasks:
        try:
            result = fn(task.payload)
        except Exception as exc:
            conn.send(("error", task.index, f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("result", task.index, result))
    events = ([e.to_json() for e in obs_runtime.get_tracer().sorted_events()]
              if tracing else [])
    stats = {kind: cache.stats.to_dict()
             for kind, cache in cache_mod.active_caches_by_kind().items()}
    conn.send(("done", events, stats))
    conn.close()


def run_sharded(payloads: Sequence[Any], fn: Callable[[Any], Any],
                workers: int = 1, timeout: float | None = None,
                label: str = "exec") -> MergedRun:
    """Run ``fn`` over ``payloads`` across ``workers`` processes.

    Results come back merged in payload order (:class:`MergedRun`);
    failures are contained per task / per shard, never raised here —
    call :meth:`MergedRun.raise_on_failure` when partial results are
    unacceptable.
    """
    payloads = list(payloads)
    tracer = obs_runtime.get_tracer()
    if workers <= 1:
        with tracer.span(f"{label}.run_sharded", workers=1,
                         tasks=len(payloads), inline=True):
            return _run_inline(plan_shards(payloads, 1), fn)
    plan = plan_shards(payloads, workers)
    with tracer.span(f"{label}.run_sharded", workers=plan.workers,
                     tasks=plan.total, inline=False) as sp:
        merged = _run_pool(plan, fn, timeout)
        sp.set(task_failures=len(merged.task_failures),
               shard_failures=len(merged.shard_failures))
    return merged


def _run_pool(plan: ShardPlan, fn: Callable[[Any], Any],
              timeout: float | None) -> MergedRun:
    ctx = multiprocessing.get_context("fork")
    tracer = obs_runtime.get_tracer()
    tracing = tracer.enabled
    states = [WorkerResult(shard=s) for s in range(plan.workers)]
    procs = []
    pending: dict[Any, WorkerResult] = {}  # parent conn -> shard state
    for s in range(plan.workers):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        p = ctx.Process(target=_worker_main,
                        args=(plan.shards[s], fn, tracing, child_conn),
                        daemon=True)
        p.start()
        child_conn.close()  # parent's copy — else EOF never arrives
        procs.append(p)
        pending[parent_conn] = states[s]
    deadline = None if timeout is None else time.monotonic() + timeout
    timed_out = False
    try:
        while pending:
            remaining = 0.1
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    timed_out = True
                    break
            ready = multiprocessing.connection.wait(
                list(pending), timeout=min(0.1, remaining))
            for conn in ready:
                st = pending[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # Worker died; everything it reported is already in.
                    del pending[conn]
                    conn.close()
                    continue
                if _handle_message(msg, st):
                    del pending[conn]
                    conn.close()
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5.0)
        for conn in pending:
            conn.close()

    merged = MergedRun(results=[None] * plan.total, workers=plan.workers)
    for st in states:
        merged.task_failures.extend(st.task_failures)
        for idx, value in st.results.items():
            merged.results[idx] = value
        if not st.completed:
            reported = set(st.results) | {f.index for f in st.task_failures}
            lost = [t.index for t in plan.shards[st.shard]
                    if t.index not in reported]
            reason = "timed out" if timed_out else "worker died"
            merged.shard_failures.append(
                ShardFailure(st.shard, reason, lost))
    merged.task_failures.sort(key=lambda f: f.index)
    merged.shard_failures.sort(key=lambda f: f.shard)
    # Absorb shard telemetry + cache counters in shard order, so the
    # merged stream is deterministic given deterministic shard streams.
    for st in states:
        if st.events and tracing:
            tracer.absorb(st.events, shard=st.shard)
        if st.cache_stats:
            for kind, stats in st.cache_stats.items():
                cache = cache_mod.active_cache(kind)
                if cache is not None:
                    cache.stats.merge(stats)
    return merged


def _handle_message(msg: tuple, st: WorkerResult) -> bool:
    """Fold one worker message into its shard state.

    Returns True when this was the shard's final ("done") message.
    """
    kind = msg[0]
    if kind == "result":
        st.results[msg[1]] = msg[2]
    elif kind == "error":
        st.task_failures.append(TaskFailure(msg[1], st.shard, msg[2]))
    elif kind == "done":
        st.events = msg[1]
        st.cache_stats = msg[2]
        st.completed = True
        return True
    return False
