"""Content-addressed on-disk caches for the compile pipeline.

Two tiers, one mechanism:

* :class:`CompileCache` (kind ``"compile"``) memoizes the full
  cfront → annotate → lower → opt → codegen pipeline at the linked
  :class:`~repro.machine.driver.CompiledProgram` boundary.
* :class:`ResultCache` (kind ``"result"``) memoizes one *executed*
  benchmark cell (a :class:`~repro.bench.harness.CellResult`) — sound
  because the VM is a deterministic simulator: cycles, GC counts, and
  output are pure functions of (program, model, stdin, gc settings).

Key anatomy — the SHA-256 of a canonical JSON object::

    {"schema":  CODE_VERSION,          # code-version salt; bump on any
                                       #   change to pipeline output
     "extra":   [..salt_context tags], # e.g. test-only broken passes
     "source":  <full source text>,
     "config":  {optimize, safe, checked, model, passes,
                 naive_keep_live, run_cpp, annotate:{...}}}

and for result-cache keys additionally the run parameters
``{compile_key, stdin, gc_interval, poison, postprocessed, entry,
max_instructions}`` plus, when active, ``pgo`` (the superinstruction
plan digest) and ``sink`` (allocation sinking).  Any component changing — one config flag, one
optimizer pass, the salt — produces a different address, so
"invalidation" is structural: stale entries are simply never addressed
again.  Sources that pull in out-of-band bytes (``#include``) are not
cacheable, since the key could not see the included text change.

Entry format: ``<root>/<key[:2]>/<key>.bin`` containing an 8-byte magic,
the SHA-256 of the payload, then the pickled payload.  Reads verify the
checksum; a corrupted entry (truncation, flipped bytes, bad pickle) is
*evicted* and reported as a miss, so the caller transparently
recompiles.  Writes are atomic (``os.replace`` of a same-directory temp
file), so concurrent workers racing on one key at worst both store the
same bytes.

Hit/miss/eviction counters live on :attr:`_DiskCache.stats`, are merged
across engine workers, surface as ``cache.hit`` / ``cache.miss`` /
``cache.evict`` instants on the active tracer, and drive the
``repro cache stats|clear|verify`` CLI.

Resilience: the cache is an accelerator, never a dependency.  A write
failing with ``OSError`` (ENOSPC and friends) is counted and skipped,
not raised.  ``breaker_threshold`` *consecutive* corrupt reads trip a
circuit breaker that bypasses the tier for the rest of the process
(every lookup a miss, every store skipped) with one stderr warning —
a rotten cache directory degrades throughput, not correctness.  Reads
and writes pass through :mod:`repro.resil.inject` so chaos plans can
corrupt entries / fail writes deterministically.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from ..api import envelopes
from ..obs import runtime as obs_runtime
from ..resil import inject as resil_inject

# Bump whenever any pipeline stage may produce different output for the
# same (source, config): it salts every key, orphaning old entries.
# /2: superinstruction fusion + allocation sinking (PR 6) changed what a
# "cell" can contain, and cells gained sink/pgo fields.
CODE_VERSION = envelopes.EXEC_CACHE

_MAGIC = b"RPROCC01"
_DIGEST_LEN = 32

# Extra salt tags pushed by salt_context() — test hooks that perturb
# pipeline behavior without changing any key component (e.g. the
# re-broken addrfold pass) MUST wrap themselves in one.
_extra_salt: list[str] = []


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_evicted: int = 0
    cleared: int = 0
    breaker_trips: int = 0
    write_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores,
                "corrupt_evicted": self.corrupt_evicted,
                "cleared": self.cleared,
                "breaker_trips": self.breaker_trips,
                "write_errors": self.write_errors}

    def merge(self, other: "CacheStats | dict") -> "CacheStats":
        d = other.to_dict() if isinstance(other, CacheStats) else other
        for name, value in d.items():
            setattr(self, name, getattr(self, name) + int(value))
        return self


def _canonical_key(obj: Any) -> str:
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def config_fingerprint(config) -> dict[str, Any] | None:
    """The key-relevant view of a ``CompileConfig``; None if the
    configuration is not cacheable (out-of-band inputs)."""
    if config.include_dirs:
        return None
    ann = config.annotate_options
    return {
        "optimize": config.optimize,
        "safe": config.safe,
        "checked": config.checked,
        "model": config.model.name,
        "passes": list(config.passes),
        "naive_keep_live": config.naive_keep_live,
        "run_cpp": config.run_cpp,
        "annotate": None if ann is None else {
            name: getattr(ann, name)
            for name in sorted(ann.__dataclass_fields__)},
    }


class _DiskCache:
    """Shared content-addressed store; subclasses define key schemas."""

    kind = "generic"
    #: Consecutive corrupt reads that open the circuit breaker.
    breaker_threshold = 3

    def __init__(self, root: str, salt: str = CODE_VERSION):
        self.root = os.path.abspath(root)
        self.salt = salt
        self.stats = CacheStats()
        self._corrupt_streak = 0
        self._breaker_open = False

    # -- keys --------------------------------------------------------------

    def _key(self, body: dict[str, Any]) -> str:
        return _canonical_key({"schema": self.salt, "kind": self.kind,
                               "extra": list(_extra_salt), **body})

    # -- storage -----------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".bin")

    def get(self, key: str) -> Any | None:
        """Load + verify one entry; corrupt entries are evicted."""
        if self._breaker_open:
            self.stats.misses += 1
            self._count_metric("cache.misses")
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            self.stats.misses += 1
            self._instant("cache.miss", key)
            self._count_metric("cache.misses")
            return None
        blob = resil_inject.filter_cache_read(self.kind, blob)
        payload = self._verified_payload(blob)
        if payload is None:
            self._evict(path, key)
            self.stats.misses += 1
            self._note_corrupt()
            self._count_metric("cache.misses")
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._evict(path, key)
            self.stats.misses += 1
            self._note_corrupt()
            self._count_metric("cache.misses")
            return None
        self.stats.hits += 1
        self._corrupt_streak = 0
        self._instant("cache.hit", key)
        self._count_metric("cache.hits")
        return value

    def put(self, key: str, value: Any) -> None:
        if self._breaker_open:
            return
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        path = self._path(key)
        tmp = None
        try:
            resil_inject.check_cache_write(self.kind)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       prefix=".tmp-" + key[:8])
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            # Disk trouble (ENOSPC and friends) must never fail the run:
            # the cache is an accelerator, not a dependency.
            self._cleanup_tmp(tmp)
            self.stats.write_errors += 1
            self._instant("cache.write_error", key)
            self._count_metric("cache.write_errors")
            return
        except BaseException:
            self._cleanup_tmp(tmp)
            raise
        self.stats.stores += 1
        self._count_metric("cache.stores")

    @staticmethod
    def _cleanup_tmp(tmp: str | None) -> None:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- circuit breaker ---------------------------------------------------

    @property
    def breaker_open(self) -> bool:
        return self._breaker_open

    def _note_corrupt(self) -> None:
        self._corrupt_streak += 1
        self._count_metric("cache.corrupt_reads")
        if (not self._breaker_open
                and self._corrupt_streak >= self.breaker_threshold):
            self._breaker_open = True
            self.stats.breaker_trips += 1
            self._count_metric("cache.breaker_trips")
            tracer = obs_runtime.get_tracer()
            if tracer.enabled:
                tracer.instant("cache.breaker_trip", kind=self.kind,
                               streak=self._corrupt_streak)
            print(f"! cache[{self.kind}]: circuit breaker open after "
                  f"{self._corrupt_streak} consecutive corrupt reads; "
                  f"bypassing this tier for the rest of the run",
                  file=sys.stderr)

    def reset_breaker(self) -> None:
        self._corrupt_streak = 0
        self._breaker_open = False

    @staticmethod
    def _verified_payload(blob: bytes) -> bytes | None:
        if len(blob) < len(_MAGIC) + _DIGEST_LEN:
            return None
        if blob[:len(_MAGIC)] != _MAGIC:
            return None
        digest = blob[len(_MAGIC):len(_MAGIC) + _DIGEST_LEN]
        payload = blob[len(_MAGIC) + _DIGEST_LEN:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        return payload

    def _evict(self, path: str, key: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
        self.stats.corrupt_evicted += 1
        self._instant("cache.evict", key)
        self._count_metric("cache.evictions")

    def _instant(self, name: str, key: str) -> None:
        tracer = obs_runtime.get_tracer()
        if tracer.enabled:
            tracer.instant(name, kind=self.kind, key=key[:16])

    def _count_metric(self, name: str) -> None:
        """Bump the per-tier counter on the active metrics registry.

        Cache outcomes are pure functions of disk content, so absent
        injected faults the counters are deterministic (det=True) and
        merge exactly across engine shards."""
        metrics = obs_runtime.get_metrics()
        if metrics is not None:
            metrics.counter(name, tier=self.kind).inc()

    # -- maintenance -------------------------------------------------------

    def entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for sub in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(".bin"):
                    yield os.path.join(subdir, name)

    def entry_count(self) -> int:
        return sum(1 for _ in self.entry_paths())

    def total_bytes(self) -> int:
        return sum(os.path.getsize(p) for p in self.entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        self.stats.cleared += removed
        return removed

    def verify(self) -> dict[str, int]:
        """Checksum-verify every entry, evicting corrupt ones."""
        checked = ok = evicted = 0
        for path in list(self.entry_paths()):
            checked += 1
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
            except OSError:
                continue
            payload = self._verified_payload(blob)
            good = payload is not None
            if good:
                try:
                    pickle.loads(payload)
                except Exception:
                    good = False
            if good:
                ok += 1
            else:
                self._evict(path, os.path.basename(path)[:-4])
                evicted += 1
        return {"checked": checked, "ok": ok, "evicted": evicted}


class CompileCache(_DiskCache):
    """kind="compile": source+config -> pickled CompiledProgram."""

    kind = "compile"

    def key_for(self, source: str, config) -> str | None:
        """Content address for one compilation; None = not cacheable."""
        fp = config_fingerprint(config)
        if fp is None or "#include" in source:
            return None
        return self._key({"source": source, "config": fp})


class ResultCache(_DiskCache):
    """kind="result": source + config + run parameters -> executed cell.

    Sound because the VM is a deterministic simulator: given the same
    program, machine model, stdin, and GC settings, cycles/instructions/
    collections/output are bit-identical on every run.
    """

    kind = "result"

    def key_for(self, source: str, config, *, stdin: str = "",
                gc_interval: int = 0, poison: bool = False,
                postprocessed: bool = False, entry: str = "main",
                max_instructions: int = 500_000_000,
                pgo: str | None = None, sink: bool = False) -> str | None:
        fp = config_fingerprint(config)
        if fp is None or "#include" in source:
            return None
        body = {
            "source": source, "config": fp, "stdin": stdin,
            "gc_interval": gc_interval, "poison": poison,
            "postprocessed": postprocessed, "entry": entry,
            "max_instructions": max_instructions}
        # PGO/sinking salt the key only when active, so every key minted
        # before these knobs existed still addresses the same entry —
        # and a PGO'd cell can never alias its unPGO'd twin (the plan
        # digest folds in the exact hot-block set).
        if pgo is not None:
            body["pgo"] = pgo
        if sink:
            body["sink"] = True
        return self._key(body)


# -- process-wide active caches -------------------------------------------
#
# Mirrors obs.runtime: drivers look the active caches up here so any
# entry point can switch caching on without threading cache objects
# through every call.  Engine workers inherit the registry via fork and
# ship their stats deltas home for merging.

_active: dict[str, _DiskCache] = {}


def install_cache(cache: _DiskCache) -> _DiskCache:
    _active[cache.kind] = cache
    return cache


def uninstall_cache(kind: str | None = None) -> None:
    if kind is None:
        _active.clear()
    else:
        _active.pop(kind, None)


def active_cache(kind: str = "compile") -> _DiskCache | None:
    return _active.get(kind)


def active_caches() -> list[_DiskCache]:
    return list(_active.values())


def active_caches_by_kind() -> dict[str, _DiskCache]:
    return dict(_active)


@contextmanager
def cache_context(*caches: _DiskCache):
    """Temporarily install ``caches``; restores the previous registry."""
    previous = dict(_active)
    try:
        for cache in caches:
            install_cache(cache)
        yield caches[0] if len(caches) == 1 else caches
    finally:
        _active.clear()
        _active.update(previous)


@contextmanager
def salt_context(tag: str):
    """Push an extra salt component onto every key computed inside.

    Any hook that changes pipeline *behavior* without changing a key
    component (monkeypatched passes, experimental rewrites) must wrap
    itself in one of these, or a warm cache would serve stale code.
    """
    _extra_salt.append(tag)
    try:
        yield
    finally:
        _extra_salt.remove(tag)


def open_caches(root: str, salt: str = CODE_VERSION) -> tuple[CompileCache, ResultCache]:
    """Both tiers rooted under one directory (``compile/``, ``result/``)."""
    return (CompileCache(os.path.join(root, "compile"), salt),
            ResultCache(os.path.join(root, "result"), salt))
