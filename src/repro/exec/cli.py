"""``repro cache`` — inspect and maintain the on-disk caches.

    python -m repro cache stats  [--cache-dir DIR] [--json]
    python -m repro cache clear  [--cache-dir DIR]
    python -m repro cache verify [--cache-dir DIR] [--json]

``stats`` reports per-tier entry counts and byte sizes; ``clear``
deletes every entry; ``verify`` checksum-validates every entry and
evicts corrupt ones (exit status 1 if any were evicted).  The default
directory comes from ``--cache-dir`` or ``$REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..api import envelopes
from ..cliutil import add_report_flags
from .cache import open_caches

DEFAULT_DIR_ENV = "REPRO_CACHE_DIR"


def resolve_cache_dir(arg: str | None) -> str | None:
    return arg or os.environ.get(DEFAULT_DIR_ENV) or None


def cmd_cache(args: argparse.Namespace) -> int:
    root = resolve_cache_dir(args.cache_dir)
    if root is None:
        print("error: no cache directory (pass --cache-dir or set "
              f"${DEFAULT_DIR_ENV})", file=sys.stderr)
        return 2
    tiers = open_caches(root)
    if args.action == "stats":
        report = envelopes.make(envelopes.CACHE_STATS, {
            cache.kind: {"entries": cache.entry_count(),
                         "bytes": cache.total_bytes()}
            for cache in tiers})
        report["root"] = os.path.abspath(root)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(f"cache root: {report['root']}")
            for cache in tiers:
                t = report[cache.kind]
                print(f"  {cache.kind:8s} {t['entries']:6d} entries, "
                      f"{t['bytes']} bytes")
        return 0
    if args.action == "clear":
        for cache in tiers:
            removed = cache.clear()
            print(f"{cache.kind}: removed {removed} entries")
        return 0
    if args.action == "verify":
        evicted_total = 0
        report = envelopes.make(envelopes.CACHE_VERIFY, {})
        for cache in tiers:
            result = cache.verify()
            report[cache.kind] = result
            evicted_total += result["evicted"]
            if not args.json:
                print(f"{cache.kind}: {result['ok']}/{result['checked']} ok, "
                      f"{result['evicted']} corrupt entries evicted")
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        return 1 if evicted_total else 0
    raise AssertionError(f"unknown cache action {args.action!r}")


def add_cache_parser(sub) -> None:
    p = sub.add_parser("cache", help="inspect/maintain the on-disk caches")
    p.add_argument("action", choices=("stats", "clear", "verify"))
    p.add_argument("--cache-dir", default=None,
                   help=f"cache root (default: ${DEFAULT_DIR_ENV})")
    add_report_flags(
        p, json_schema=f"{envelopes.CACHE_STATS} / {envelopes.CACHE_VERIFY}",
        workers=False, metrics=False)
    p.set_defaults(fn=cmd_cache)
