"""Deterministic sharded execution engine + content-addressed caches.

``repro.exec`` is the scaling layer under every driver in the repo: the
benchmark harness (``repro.bench``), the differential fuzzing campaign
(``repro.fuzz``), and the oracle itself all shard their embarrassingly
parallel cell matrices through :func:`engine.run_sharded`, and the
compile pipeline memoizes linked :class:`~repro.machine.driver.CompiledProgram`
objects through :class:`cache.CompileCache`.

The contract that makes both safe is the repo's core invariant: every
measured quantity (cycles, instructions, GC check counts, collections,
program output) is a deterministic function of the inputs — so results
computed in a worker process, or replayed from an on-disk cache entry,
are *bit-identical* to the serial, cold path.  ``tests/test_exec``
asserts that equivalence end to end.
"""

from .cache import (  # noqa: F401
    CacheStats, CompileCache, ResultCache, active_cache, cache_context,
    install_cache, salt_context, uninstall_cache,
)
from .engine import (  # noqa: F401
    NO_RETRY, EngineError, MergedRun, ResilPolicy, ShardFailure, ShardPlan,
    TaskFailure, default_policy, plan_shards, policy_context, run_sharded,
    set_default_policy,
)
