"""repro — reproduction of Hans-J. Boehm, "Simple Garbage-Collector-
Safety" (PLDI 1996).

Subpackages:

* :mod:`repro.cfront` — C frontend (lexer, mini-cpp, parser, types,
  typechecker, unparser).
* :mod:`repro.core` — the paper's contribution: BASE/BASEADDR, the
  KEEP_LIVE annotator (GC-safety mode), the pointer-arithmetic checker
  (debugging mode), and source-safety diagnostics.
* :mod:`repro.gc` — Boehm-style conservative mark-sweep collector over
  simulated memory, with GC_base / GC_same_obj primitives.
* :mod:`repro.machine` — optimizing compiler (IR, passes, linear-scan
  register allocation, RISC codegen) + executing VM with cost models
  for the paper's three machines.
* :mod:`repro.postproc` — the peephole postprocessor.
* :mod:`repro.workloads` / :mod:`repro.bench` — the cordtest / cfrac /
  gawk / gs stand-ins and the table-reproduction harness.

Quick start (the unified facade)::

    from repro.api import Toolchain
    tc = Toolchain()
    print(tc.annotate("char *f(char *p) { return p + 1; }").text)

The deprecated module-level ``annotate_source`` / ``check_source``
shims were removed in the serve PR: the facade (or its daemon twin,
:class:`repro.api.Client`) is the only entry point.
"""

from .api import Mode, Options, Toolchain
from .core.api import AnnotatedSource

__version__ = "1.0.0"
__all__ = ["AnnotatedSource", "Toolchain", "Options", "Mode",
           "__version__"]
