"""Typed AST -> IR lowering.

Two compilation styles, matching the paper's measured configurations:

* optimized (``debug=False``): scalar locals whose address is never taken
  live in virtual registers; the optimizer pipeline then runs over the
  IR.
* debuggable (``debug=True``, the ``-g`` column): *every* local lives in
  a frame slot and every use goes through memory — "If the values of all
  logically visible variables are explicitly stored ... they will also
  be available for the garbage collector."  No optimizer runs.

KeepLive AST nodes lower to the ``keep`` IR barrier (safe mode) or to a
real ``GC_same_obj`` call (checked mode).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfront import cast as A
from ..cfront.ctypes import (
    Array, CType, Function, INT, IntType, Pointer, Struct, VOID, WORD_SIZE,
)
from ..cfront.symbols import Symbol, SymbolTable
from .ir import FrameSlot, GlobalVar, Inst, IRFunc, IRProgram, Vreg

MAX_REG_ARGS = 6


class LowerError(Exception):
    pass


@dataclass
class MemLoc:
    """An addressable location: frame slot, global, or computed address."""

    kind: str  # 'frame' | 'global' | 'addr'
    name: str = ""
    addr: Vreg | None = None
    width: int = 4
    signed: bool = True


class Lowerer:
    def __init__(self, unit: A.TranslationUnit, symbols: SymbolTable,
                 debug: bool = False, naive_keep_live: bool = False):
        self.unit = unit
        self.symbols = symbols
        self.debug = debug
        self.naive_keep_live = naive_keep_live
        self.program = IRProgram()
        self.fn: IRFunc = None  # type: ignore[assignment]
        self._scopes: list[dict[str, object]] = [{}]
        self._break_stack: list[str] = []
        self._continue_stack: list[str] = []
        self._slot_counter = 0

    # -- entry --------------------------------------------------------------

    def lower(self) -> IRProgram:
        for item in self.unit.items:
            if isinstance(item, A.Decl) and item.storage != "typedef":
                self._lower_global_decl(item)
        for item in self.unit.items:
            if isinstance(item, A.FuncDef):
                self._lower_function(item)
        return self.program

    # -- globals --------------------------------------------------------------

    def _lower_global_decl(self, decl: A.Decl) -> None:
        for d in decl.declarators:
            ctype = d.ctype
            if ctype.is_function or decl.storage == "extern":
                continue
            size = max(ctype.size, 1)
            gvar = GlobalVar(d.name, size, max(ctype.align, 1))
            gvar.relocs = []  # type: ignore[attr-defined]
            data = bytearray(size)
            if d.init is not None:
                self._encode_init(d.init, ctype, data, 0, gvar)
            gvar.init_bytes = bytes(data)
            self.program.globals[d.name] = gvar
            self._scopes[0][d.name] = gvar

    def _encode_init(self, init: A.Node, ctype: CType, out: bytearray,
                     offset: int, gvar: GlobalVar) -> None:
        if isinstance(init, A.InitList):
            if isinstance(ctype, Array):
                for i, item in enumerate(init.items):
                    self._encode_init(item, ctype.element, out,
                                      offset + i * ctype.element.size, gvar)
            elif isinstance(ctype, Struct):
                for item, fld in zip(init.items, ctype.fields):
                    self._encode_init(item, fld.ctype, out,
                                      offset + fld.offset, gvar)
            else:
                raise LowerError(f"brace initializer for scalar global {gvar.name}")
            return
        assert isinstance(init, A.Expr)
        if isinstance(init, A.StringLit):
            if isinstance(ctype, Array):
                raw = init.value.encode("latin-1") + b"\0"
                out[offset : offset + len(raw)] = raw
                return
            symbol = self.program.intern_string(init.value)
            gvar.relocs.append((offset, symbol))  # type: ignore[attr-defined]
            return
        value = _const_value(init)
        if value is None:
            raise LowerError(
                f"global initializer for {gvar.name} is not a supported constant")
        width = max(ctype.size, 1) if ctype.size in (1, 2, 4) else 4
        out[offset : offset + width] = (value % (1 << (8 * width))).to_bytes(width, "little")

    # -- functions --------------------------------------------------------------

    def _lower_function(self, fndef: A.FuncDef) -> None:
        assert isinstance(fndef.ctype, Function)
        self.fn = IRFunc(fndef.name)
        self._scopes.append({})
        taken = _address_taken_names(fndef)
        if len(fndef.params) > MAX_REG_ARGS:
            raise LowerError(f"{fndef.name}: more than {MAX_REG_ARGS} parameters")
        for param in fndef.params:
            vreg = self.fn.new_vreg(param.name)
            self.fn.params.append(vreg)
            if self.debug or param.name in taken or not param.ctype.decay().is_scalar:
                slot = self._new_slot(param.name, max(param.ctype.decay().size, 4),
                                      param.ctype.align)
                self._scopes[-1][param.name] = (slot, param.ctype.decay())
                addr = self._slot_addr(slot)
                self.fn.emit(Inst("store", args=(vreg, addr),
                                  width=min(param.ctype.decay().size or 4, 4)))
            else:
                self._scopes[-1][param.name] = (vreg, param.ctype.decay())
        self._lower_stmt(fndef.body, taken)
        if not self.fn.insts or self.fn.insts[-1].op != "ret":
            self.fn.emit(Inst("ret"))
        self.fn.layout_frame()
        self.program.functions[fndef.name] = self.fn
        self._scopes.pop()

    def _new_slot(self, name: str, size: int, align: int = 4) -> FrameSlot:
        self._slot_counter += 1
        return self.fn.add_slot(f"{name}.{self._slot_counter}", size, max(align, 1))

    def _slot_addr(self, slot: FrameSlot) -> Vreg:
        dst = self.fn.new_vreg(f"&{slot.name}")
        self.fn.emit(Inst("frame", dst=dst, symbol=slot.name))
        return dst

    # -- scope helpers --------------------------------------------------------------

    def _bind_local(self, name: str, ctype: CType, taken: set[str]) -> None:
        memory_resident = (
            self.debug or name in taken
            or isinstance(ctype, (Array, Struct))
            or not ctype.is_scalar
        )
        if memory_resident:
            slot = self._new_slot(name, max(ctype.size, 4), ctype.align)
            self._scopes[-1][name] = (slot, ctype)
        else:
            self._scopes[-1][name] = (self.fn.new_vreg(name), ctype)

    def _bind_static_local(self, d: A.Declarator) -> None:
        self._slot_counter += 1
        mangled = f"{self.fn.name}.{d.name}.{self._slot_counter}"
        size = max(d.ctype.size, 1)
        gvar = GlobalVar(mangled, size, max(d.ctype.align, 1))
        gvar.relocs = []  # type: ignore[attr-defined]
        data = bytearray(size)
        if d.init is not None:
            self._encode_init(d.init, d.ctype, data, 0, gvar)
        gvar.init_bytes = bytes(data)
        self.program.globals[mangled] = gvar
        self._scopes[-1][d.name] = gvar

    def _lookup(self, name: str):
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # -- statements ---------------------------------------------------------------

    def _lower_stmt(self, stmt: A.Node, taken: set[str]) -> None:
        fn = self.fn
        if isinstance(stmt, A.Block):
            self._scopes.append({})
            for item in stmt.items:
                self._lower_stmt(item, taken)
            self._scopes.pop()
        elif isinstance(stmt, A.Decl):
            if stmt.storage == "typedef":
                return
            for d in stmt.declarators:
                if d.ctype.is_function:
                    continue
                if stmt.storage == "static":
                    # Block-scope statics live in static storage under a
                    # mangled name, initialized at link time.
                    self._bind_static_local(d)
                    continue
                self._bind_local(d.name, d.ctype, taken)
                if d.init is not None:
                    self._lower_local_init(d, taken)
        elif isinstance(stmt, A.ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr, want_value=False)
        elif isinstance(stmt, A.If):
            else_l = fn.new_label("else")
            end_l = fn.new_label("endif")
            cond = self._expr(stmt.cond)
            fn.emit(Inst("bz", args=(cond,), symbol=else_l))
            self._lower_stmt(stmt.then, taken)
            if stmt.otherwise is not None:
                fn.emit(Inst("jmp", symbol=end_l))
                fn.emit(Inst("label", symbol=else_l))
                self._lower_stmt(stmt.otherwise, taken)
                fn.emit(Inst("label", symbol=end_l))
            else:
                fn.emit(Inst("label", symbol=else_l))
        elif isinstance(stmt, A.While):
            top = fn.new_label("while")
            end = fn.new_label("wend")
            fn.emit(Inst("label", symbol=top))
            cond = self._expr(stmt.cond)
            fn.emit(Inst("bz", args=(cond,), symbol=end))
            self._break_stack.append(end)
            self._continue_stack.append(top)
            self._lower_stmt(stmt.body, taken)
            self._break_stack.pop()
            self._continue_stack.pop()
            fn.emit(Inst("jmp", symbol=top))
            fn.emit(Inst("label", symbol=end))
        elif isinstance(stmt, A.DoWhile):
            top = fn.new_label("do")
            cont = fn.new_label("docond")
            end = fn.new_label("dend")
            fn.emit(Inst("label", symbol=top))
            self._break_stack.append(end)
            self._continue_stack.append(cont)
            self._lower_stmt(stmt.body, taken)
            self._break_stack.pop()
            self._continue_stack.pop()
            fn.emit(Inst("label", symbol=cont))
            cond = self._expr(stmt.cond)
            fn.emit(Inst("bnz", args=(cond,), symbol=top))
            fn.emit(Inst("label", symbol=end))
        elif isinstance(stmt, A.For):
            self._scopes.append({})
            if stmt.init is not None:
                self._lower_stmt(stmt.init, taken)
            top = fn.new_label("for")
            cont = fn.new_label("fstep")
            end = fn.new_label("fend")
            fn.emit(Inst("label", symbol=top))
            if stmt.cond is not None:
                cond = self._expr(stmt.cond)
                fn.emit(Inst("bz", args=(cond,), symbol=end))
            self._break_stack.append(end)
            self._continue_stack.append(cont)
            self._lower_stmt(stmt.body, taken)
            self._break_stack.pop()
            self._continue_stack.pop()
            fn.emit(Inst("label", symbol=cont))
            if stmt.step is not None:
                self._expr(stmt.step, want_value=False)
            fn.emit(Inst("jmp", symbol=top))
            fn.emit(Inst("label", symbol=end))
            self._scopes.pop()
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                value = self._expr(stmt.value)
                self.fn.emit(Inst("ret", args=(value,)))
            else:
                self.fn.emit(Inst("ret"))
        elif isinstance(stmt, A.Break):
            if not self._break_stack:
                raise LowerError("break outside loop/switch")
            fn.emit(Inst("jmp", symbol=self._break_stack[-1]))
        elif isinstance(stmt, A.Continue):
            if not self._continue_stack:
                raise LowerError("continue outside loop")
            fn.emit(Inst("jmp", symbol=self._continue_stack[-1]))
        elif isinstance(stmt, A.Switch):
            self._lower_switch(stmt, taken)
        elif isinstance(stmt, A.Goto):
            fn.emit(Inst("jmp", symbol=f".{fn.name}_user_{stmt.label}"))
        elif isinstance(stmt, A.Label):
            fn.emit(Inst("label", symbol=f".{fn.name}_user_{stmt.name}"))
            if stmt.body is not None:
                self._lower_stmt(stmt.body, taken)
        elif isinstance(stmt, (A.Case, A.Default)):
            raise LowerError("case/default outside switch")
        else:
            raise LowerError(f"cannot lower statement {type(stmt).__name__}")

    def _lower_local_init(self, d: A.Declarator, taken: set[str]) -> None:
        binding = self._lookup(d.name)
        assert binding is not None
        loc, ctype = binding
        if isinstance(d.init, A.InitList):
            assert isinstance(loc, FrameSlot)
            base = self._slot_addr(loc)
            self._lower_initlist(d.init, ctype, base, 0)
            return
        assert isinstance(d.init, A.Expr)
        if isinstance(ctype, Array) and isinstance(d.init, A.StringLit):
            assert isinstance(loc, FrameSlot)
            base = self._slot_addr(loc)
            for i, ch in enumerate(d.init.value + "\0"):
                v = self._const(ord(ch))
                off = self._add_imm(base, i)
                self.fn.emit(Inst("store", args=(v, off), width=1))
            return
        value = self._expr(d.init)
        if isinstance(loc, Vreg):
            # Register-resident narrow locals must hold normalized values
            # (memory-resident ones are truncated by the store width).
            value = self._coerce(value, d.init.ctype, ctype)
        self._store_to(loc, ctype, value)

    def _lower_initlist(self, init: A.InitList, ctype: CType, base: Vreg,
                        offset: int) -> None:
        if isinstance(ctype, Array):
            for i, item in enumerate(init.items):
                off = offset + i * ctype.element.size
                if isinstance(item, A.InitList):
                    self._lower_initlist(item, ctype.element, base, off)
                else:
                    value = self._expr(item)  # type: ignore[arg-type]
                    addr = self._add_imm(base, off)
                    self.fn.emit(Inst("store", args=(value, addr),
                                      width=min(ctype.element.size, 4)))
        elif isinstance(ctype, Struct):
            for item, fld in zip(init.items, ctype.fields):
                off = offset + fld.offset
                if isinstance(item, A.InitList):
                    self._lower_initlist(item, fld.ctype, base, off)
                else:
                    value = self._expr(item)  # type: ignore[arg-type]
                    addr = self._add_imm(base, off)
                    self.fn.emit(Inst("store", args=(value, addr),
                                      width=min(fld.ctype.size, 4)))
        else:
            raise LowerError("initializer list for scalar local")

    def _lower_switch(self, stmt: A.Switch, taken: set[str]) -> None:
        fn = self.fn
        cond = self._expr(stmt.cond)
        end = fn.new_label("swend")
        cases: list[tuple[int, str]] = []
        default_label: str | None = None
        body_items = stmt.body.items if isinstance(stmt.body, A.Block) else [stmt.body]
        # First pass: assign labels to case arms.
        labeled: list[tuple[str | None, A.Node]] = []
        for item in body_items:
            node: A.Node | None = item
            while isinstance(node, (A.Case, A.Default)):
                label = fn.new_label("case")
                if isinstance(node, A.Case):
                    value = _const_value(node.value)
                    if value is None:
                        raise LowerError("non-constant case label")
                    cases.append((value, label))
                else:
                    default_label = label
                labeled.append((label, node))
                node = node.body
            if node is not None and not isinstance(node, (A.Case, A.Default)):
                labeled.append((None, node))
        for value, label in cases:
            v = self._const(value)
            t = fn.new_vreg("case_cmp")
            fn.emit(Inst("bin", dst=t, subop="eq", args=(cond, v)))
            fn.emit(Inst("bnz", args=(t,), symbol=label))
        fn.emit(Inst("jmp", symbol=default_label or end))
        self._break_stack.append(end)
        for label, node in labeled:
            if label is not None:
                fn.emit(Inst("label", symbol=label))
            if isinstance(node, (A.Case, A.Default)):
                continue
            self._lower_stmt(node, taken)
        self._break_stack.pop()
        fn.emit(Inst("label", symbol=end))

    # -- expressions ---------------------------------------------------------------

    def _const(self, value: int) -> Vreg:
        dst = self.fn.new_vreg()
        self.fn.emit(Inst("const", dst=dst, imm=value & 0xFFFFFFFF))
        return dst

    def _add_imm(self, base: Vreg, imm: int) -> Vreg:
        if imm == 0:
            return base
        off = self._const(imm)
        dst = self.fn.new_vreg()
        self.fn.emit(Inst("bin", dst=dst, subop="add", args=(base, off)))
        return dst

    def _expr(self, e: A.Expr, want_value: bool = True) -> Vreg:
        """Lower an expression; return the vreg holding its value."""
        fn = self.fn
        if isinstance(e, A.IntLit):
            return self._const(e.value)
        if isinstance(e, A.CharLit):
            return self._const(e.value)
        if isinstance(e, A.FloatLit):
            raise LowerError("floating point is not supported by the backend")
        if isinstance(e, A.StringLit):
            symbol = self.program.intern_string(e.value)
            dst = fn.new_vreg("str")
            fn.emit(Inst("la", dst=dst, symbol=symbol))
            return dst
        if isinstance(e, A.Ident):
            return self._load_ident(e)
        if isinstance(e, A.KeepLive):
            return self._lower_keep_live(e)
        if isinstance(e, A.Assign):
            return self._lower_assign(e, want_value)
        if isinstance(e, (A.Unary, A.Postfix)) and e.op in ("++", "--"):
            return self._lower_incdec(e, want_value)
        if isinstance(e, A.Unary):
            return self._lower_unary(e)
        if isinstance(e, A.Binary):
            return self._lower_binary(e)
        if isinstance(e, A.Cond):
            return self._lower_cond(e, want_value)
        if isinstance(e, A.Comma):
            result = self._const(0)
            for i, item in enumerate(e.items):
                last = i == len(e.items) - 1
                value = self._expr(item, want_value=last and want_value)
                if last:
                    result = value
            return result
        if isinstance(e, A.Call):
            return self._lower_call(e)
        if isinstance(e, (A.Index, A.Member)):
            loc = self._lvalue(e)
            return self._load_loc(loc, e.ctype)
        if isinstance(e, A.Cast):
            return self._lower_cast(e)
        if isinstance(e, A.SizeofExpr):
            assert e.operand.ctype is not None
            return self._const(e.operand.ctype.size)
        if isinstance(e, A.SizeofType):
            return self._const(e.of_type.size)
        raise LowerError(f"cannot lower expression {type(e).__name__}")

    # -- identifiers & lvalues ----------------------------------------------------

    def _load_ident(self, e: A.Ident) -> Vreg:
        binding = self._lookup(e.name)
        if binding is None:
            sym = self.symbols.lookup(e.name)
            if sym is not None and sym.ctype.is_function:
                dst = self.fn.new_vreg(e.name)
                self.fn.emit(Inst("la", dst=dst, symbol=e.name))
                return dst
            raise LowerError(f"undefined identifier {e.name!r}")
        if isinstance(binding, GlobalVar):
            return self._load_loc(self._global_loc(binding, e.ctype), e.ctype)
        loc, ctype = binding
        if isinstance(loc, Vreg):
            return loc
        return self._load_loc(self._frame_loc(loc, ctype), e.ctype)

    def _global_loc(self, gvar: GlobalVar, ctype: CType | None) -> MemLoc:
        addr = self.fn.new_vreg(f"&{gvar.name}")
        self.fn.emit(Inst("la", dst=addr, symbol=gvar.name))
        width, signed = _access_shape(ctype)
        return MemLoc("addr", addr=addr, width=width, signed=signed)

    def _frame_loc(self, slot: FrameSlot, ctype: CType | None) -> MemLoc:
        addr = self._slot_addr(slot)
        width, signed = _access_shape(ctype)
        return MemLoc("addr", addr=addr, width=width, signed=signed)

    def _load_loc(self, loc: MemLoc, ctype: CType | None) -> Vreg:
        if ctype is not None and isinstance(ctype, (Array, Struct, Function)):
            # Arrays/structs "load" as their address (decay).
            assert loc.addr is not None
            return loc.addr
        dst = self.fn.new_vreg()
        assert loc.addr is not None
        self.fn.emit(Inst("load", dst=dst, args=(loc.addr,),
                          width=loc.width, signed=loc.signed))
        return dst

    def _lvalue(self, e: A.Expr) -> MemLoc:
        """Lower an lvalue to an addressable location (never a register:
        register lvalues are handled by the assignment fast path)."""
        fn = self.fn
        if isinstance(e, A.Ident):
            binding = self._lookup(e.name)
            if binding is None:
                raise LowerError(f"undefined identifier {e.name!r}")
            if isinstance(binding, GlobalVar):
                return self._global_loc(binding, e.ctype)
            loc, ctype = binding
            if isinstance(loc, Vreg):
                raise LowerError(
                    f"cannot take the address of register variable {e.name!r}")
            return self._frame_loc(loc, e.ctype)
        if isinstance(e, A.Unary) and e.op == "*":
            addr = self._expr(e.operand)
            width, signed = _access_shape(e.ctype)
            return MemLoc("addr", addr=addr, width=width, signed=signed)
        if isinstance(e, A.Index):
            base = self._expr(e.base)
            index = self._expr(e.index)
            base_t = e.base.ctype.decay() if e.base.ctype is not None else None
            if base_t is not None and not base_t.is_pointer:
                base, index = index, base
                base_t = e.index.ctype.decay() if e.index.ctype is not None else None
            assert isinstance(base_t, Pointer)
            scaled = self._scale(index, base_t.target.size)
            addr = fn.new_vreg("elem")
            fn.emit(Inst("bin", dst=addr, subop="add", args=(base, scaled)))
            width, signed = _access_shape(e.ctype)
            return MemLoc("addr", addr=addr, width=width, signed=signed)
        if isinstance(e, A.Member):
            if e.arrow:
                base = self._expr(e.base)
                struct = e.base.ctype.decay().target  # type: ignore[union-attr]
            else:
                base_loc = self._lvalue(e.base)
                assert base_loc.addr is not None
                base = base_loc.addr
                struct = e.base.ctype
            assert isinstance(struct, Struct)
            fld = struct.field(e.name)
            assert fld is not None
            addr = self._add_imm(base, fld.offset)
            width, signed = _access_shape(e.ctype)
            return MemLoc("addr", addr=addr, width=width, signed=signed)
        if isinstance(e, A.KeepLive):
            # KEEP_LIVE of an lvalue is not an lvalue in C; handled as value.
            raise LowerError("KEEP_LIVE result is not an lvalue")
        raise LowerError(f"not an lvalue: {type(e).__name__}")

    def _scale(self, index: Vreg, elem_size: int) -> Vreg:
        if elem_size == 1:
            return index
        size = self._const(elem_size)
        dst = self.fn.new_vreg()
        self.fn.emit(Inst("bin", dst=dst, subop="mul", args=(index, size)))
        return dst

    def _store_to(self, loc, ctype: CType, value: Vreg) -> None:
        if isinstance(loc, Vreg):
            self.fn.emit(Inst("mov", dst=loc, args=(value,)))
            return
        if isinstance(loc, FrameSlot):
            addr = self._slot_addr(loc)
            width, _ = _access_shape(ctype)
            self.fn.emit(Inst("store", args=(value, addr), width=width))
            return
        if isinstance(loc, GlobalVar):
            mem = self._global_loc(loc, ctype)
            assert mem.addr is not None
            self.fn.emit(Inst("store", args=(value, mem.addr), width=mem.width))
            return
        assert isinstance(loc, MemLoc) and loc.addr is not None
        self.fn.emit(Inst("store", args=(value, loc.addr), width=loc.width))

    # -- assignment ------------------------------------------------------------------

    def _lower_assign(self, e: A.Assign, want_value: bool) -> Vreg:
        target_t = e.target.ctype
        if isinstance(target_t, Struct) and e.op == "=":
            return self._lower_struct_copy(e)
        if e.op == "=":
            value = self._expr(e.value)
            value = self._coerce(value, e.value.ctype, target_t)
            binding = self._binding_for_simple(e.target)
            if isinstance(binding, Vreg):
                self.fn.emit(Inst("mov", dst=binding, args=(value,)))
                return binding
            loc = self._lvalue(e.target)
            self.fn.emit(Inst("store", args=(value, loc.addr), width=loc.width))
            return value
        # Compound assignment: evaluate target address once.
        op = {"+=": "add", "-=": "sub", "*=": "mul", "/=": "div", "%=": "mod",
              "&=": "and", "|=": "or", "^=": "xor", "<<=": "shl", ">>=": "shr"}[e.op]
        binding = self._binding_for_simple(e.target)
        rhs = self._expr(e.value)
        if target_t is not None and target_t.is_pointer and op in ("add", "sub"):
            rhs = self._scale(rhs, target_t.target.size)  # type: ignore[union-attr]
        if isinstance(binding, Vreg):
            dst = binding
            self.fn.emit(Inst("bin", dst=dst, subop=op, args=(binding, rhs)))
            self._normalize_narrow(binding, target_t)
            return dst
        loc = self._lvalue(e.target)
        old = self._load_loc(loc, e.target.ctype)
        new = self.fn.new_vreg()
        self.fn.emit(Inst("bin", dst=new, subop=op, args=(old, rhs)))
        self.fn.emit(Inst("store", args=(new, loc.addr), width=loc.width))
        return new

    def _binding_for_simple(self, target: A.Expr) -> Vreg | None:
        if isinstance(target, A.Ident):
            binding = self._lookup(target.name)
            if binding is not None and not isinstance(binding, GlobalVar):
                loc, _ = binding
                if isinstance(loc, Vreg):
                    return loc
        return None

    def _lower_struct_copy(self, e: A.Assign) -> Vreg:
        assert isinstance(e.target.ctype, Struct)
        size = e.target.ctype.size
        dst_loc = self._lvalue(e.target)
        src_loc = self._lvalue(e.value)
        assert dst_loc.addr is not None and src_loc.addr is not None
        for off in range(0, size, WORD_SIZE):
            width = min(WORD_SIZE, size - off)
            tmp = self.fn.new_vreg()
            self.fn.emit(Inst("load", dst=tmp,
                              args=(self._add_imm(src_loc.addr, off),), width=width))
            self.fn.emit(Inst("store",
                              args=(tmp, self._add_imm(dst_loc.addr, off)), width=width))
        return dst_loc.addr

    # -- inc/dec (unannotated path) ----------------------------------------------------

    def _lower_incdec(self, e: A.Expr, want_value: bool) -> Vreg:
        assert isinstance(e, (A.Unary, A.Postfix))
        prefix = isinstance(e, A.Unary)
        target = e.operand
        step = 1
        if target.ctype is not None and target.ctype.is_pointer:
            step = target.ctype.target.size  # type: ignore[union-attr]
        delta = step if e.op == "++" else -step
        binding = self._binding_for_simple(target)
        amount = self._const(delta & 0xFFFFFFFF)
        if isinstance(binding, Vreg):
            if prefix or not want_value:
                self.fn.emit(Inst("bin", dst=binding, subop="add",
                                  args=(binding, amount)))
                self._normalize_narrow(binding, target.ctype)
                return binding
            old = self.fn.new_vreg("postfix")
            self.fn.emit(Inst("mov", dst=old, args=(binding,)))
            self.fn.emit(Inst("bin", dst=binding, subop="add",
                              args=(binding, amount)))
            self._normalize_narrow(binding, target.ctype)
            return old
        loc = self._lvalue(target)
        old = self._load_loc(loc, target.ctype)
        new = self.fn.new_vreg()
        self.fn.emit(Inst("bin", dst=new, subop="add", args=(old, amount)))
        self.fn.emit(Inst("store", args=(new, loc.addr), width=loc.width))
        return new if prefix else old

    # -- unary / binary ---------------------------------------------------------------

    def _lower_unary(self, e: A.Unary) -> Vreg:
        fn = self.fn
        if e.op == "*":
            loc = self._lvalue(e)
            return self._load_loc(loc, e.ctype)
        if e.op == "&":
            loc = self._lvalue(e.operand)
            assert loc.addr is not None
            return loc.addr
        value = self._expr(e.operand)
        if e.op == "+":
            return value
        if e.op == "-":
            dst = fn.new_vreg()
            fn.emit(Inst("un", dst=dst, subop="neg", args=(value,)))
            return dst
        if e.op == "~":
            dst = fn.new_vreg()
            fn.emit(Inst("un", dst=dst, subop="bnot", args=(value,)))
            return dst
        if e.op == "!":
            zero = self._const(0)
            dst = fn.new_vreg()
            fn.emit(Inst("bin", dst=dst, subop="eq", args=(value, zero)))
            return dst
        raise LowerError(f"unary operator {e.op!r}")

    _BIN_MAP = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
                "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
                "==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                ">": "gt", ">=": "ge"}

    def _lower_binary(self, e: A.Binary) -> Vreg:
        fn = self.fn
        if e.op in ("&&", "||"):
            return self._lower_logical(e)
        left_t = e.left.ctype.decay() if e.left.ctype is not None else INT
        right_t = e.right.ctype.decay() if e.right.ctype is not None else INT
        left = self._expr(e.left)
        right = self._expr(e.right)
        subop = self._BIN_MAP[e.op]
        if e.op in ("+", "-"):
            if left_t.is_pointer and right_t.is_pointer:
                diff = fn.new_vreg()
                fn.emit(Inst("bin", dst=diff, subop="sub", args=(left, right)))
                elem = left_t.target.size  # type: ignore[union-attr]
                if elem > 1:
                    size = self._const(elem)
                    out = fn.new_vreg()
                    fn.emit(Inst("bin", dst=out, subop="div", args=(diff, size)))
                    return out
                return diff
            if left_t.is_pointer:
                right = self._scale(right, left_t.target.size)  # type: ignore[union-attr]
            elif right_t.is_pointer:
                left = self._scale(left, right_t.target.size)  # type: ignore[union-attr]
        if e.op in ("<", "<=", ">", ">="):
            unsigned = (left_t.is_pointer or right_t.is_pointer
                        or (isinstance(left_t, IntType) and not left_t.signed)
                        or (isinstance(right_t, IntType) and not right_t.signed))
            if unsigned:
                subop = "u" + subop
        if e.op == ">>" and isinstance(left_t, IntType) and not left_t.signed:
            subop = "shru"  # logical shift for unsigned operands
        dst = fn.new_vreg()
        fn.emit(Inst("bin", dst=dst, subop=subop, args=(left, right)))
        return dst

    def _lower_logical(self, e: A.Binary) -> Vreg:
        fn = self.fn
        result = fn.new_vreg("logic")
        short = fn.new_label("sc")
        end = fn.new_label("scend")
        left = self._expr(e.left)
        zero = self._const(0)
        lbool = fn.new_vreg()
        fn.emit(Inst("bin", dst=lbool, subop="ne", args=(left, zero)))
        fn.emit(Inst("mov", dst=result, args=(lbool,)))
        if e.op == "&&":
            fn.emit(Inst("bz", args=(lbool,), symbol=end))
        else:
            fn.emit(Inst("bnz", args=(lbool,), symbol=end))
        right = self._expr(e.right)
        zero2 = self._const(0)
        rbool = fn.new_vreg()
        fn.emit(Inst("bin", dst=rbool, subop="ne", args=(right, zero2)))
        fn.emit(Inst("mov", dst=result, args=(rbool,)))
        fn.emit(Inst("label", symbol=end))
        return result

    def _lower_cond(self, e: A.Cond, want_value: bool) -> Vreg:
        fn = self.fn
        result = fn.new_vreg("cond")
        else_l = fn.new_label("celse")
        end_l = fn.new_label("cend")
        cond = self._expr(e.cond)
        fn.emit(Inst("bz", args=(cond,), symbol=else_l))
        then = self._expr(e.then, want_value)
        fn.emit(Inst("mov", dst=result, args=(then,)))
        fn.emit(Inst("jmp", symbol=end_l))
        fn.emit(Inst("label", symbol=else_l))
        other = self._expr(e.otherwise, want_value)
        fn.emit(Inst("mov", dst=result, args=(other,)))
        fn.emit(Inst("label", symbol=end_l))
        return result

    # -- calls, casts, KEEP_LIVE ----------------------------------------------------

    def _lower_call(self, e: A.Call) -> Vreg:
        fn = self.fn
        args = [self._expr(a) for a in e.args]
        if len(args) > MAX_REG_ARGS:
            raise LowerError(f"call with more than {MAX_REG_ARGS} arguments")
        dst = fn.new_vreg("ret")
        if isinstance(e.func, A.Ident) and self._lookup(e.func.name) is None:
            fn.emit(Inst("call", dst=dst, symbol=e.func.name, args=tuple(args)))
        else:
            target = self._expr(e.func)
            fn.emit(Inst("callr", dst=dst, args=(target, *args)))
        return dst

    def _lower_cast(self, e: A.Cast) -> Vreg:
        value = self._expr(e.operand)
        return self._coerce(value, e.operand.ctype, e.to_type)

    def _normalize_narrow(self, binding: Vreg, ctype: CType | None) -> None:
        """Re-normalize a register-resident char/short after in-place
        arithmetic (wraparound semantics of the narrow type)."""
        if isinstance(ctype, IntType) and ctype.size < 4:
            subop = ("sext" if ctype.signed else "zext") + str(ctype.size * 8)
            self.fn.emit(Inst("un", dst=binding, subop=subop, args=(binding,)))

    def _coerce(self, value: Vreg, src: CType | None, dst: CType | None) -> Vreg:
        """Integer narrowing/sign-extension on explicit conversions."""
        if dst is None or src is None:
            return value
        if isinstance(dst, IntType) and dst.size < 4:
            out = self.fn.new_vreg()
            subop = ("sext" if dst.signed else "zext") + str(dst.size * 8)
            self.fn.emit(Inst("un", dst=out, subop=subop, args=(value,)))
            return out
        return value

    def _lower_keep_live(self, e: A.KeepLive) -> Vreg:
        value = self._expr(e.value)
        base = self._expr(e.base)
        dst = self.fn.new_vreg("kl")
        if e.checked:
            self.fn.emit(Inst("call", dst=dst, symbol="GC_same_obj",
                              args=(value, base)))
        elif self.naive_keep_live:
            # The paper's strawman: an opaque identity function call.
            self.fn.emit(Inst("call", dst=dst, symbol="KEEP_LIVE",
                              args=(value, base)))
        else:
            self.fn.emit(Inst("keep", dst=dst, args=(value, base)))
        return dst


def _access_shape(ctype: CType | None) -> tuple[int, bool]:
    if ctype is None:
        return 4, True
    decayed = ctype
    if isinstance(decayed, IntType):
        return decayed.size, decayed.signed
    return 4, True


def _const_value(e: A.Expr) -> int | None:
    if isinstance(e, A.IntLit):
        return e.value
    if isinstance(e, A.CharLit):
        return e.value
    if isinstance(e, A.Unary) and e.op == "-":
        inner = _const_value(e.operand)
        return None if inner is None else -inner
    if isinstance(e, A.Cast):
        return _const_value(e.operand)
    if isinstance(e, A.SizeofType):
        return e.of_type.size
    if isinstance(e, A.Binary):
        a, b = _const_value(e.left), _const_value(e.right)
        if a is None or b is None:
            return None
        try:
            return {
                "+": a + b, "-": a - b, "*": a * b,
                "/": a // b if b else None, "%": a % b if b else None,
                "<<": a << b, ">>": a >> b, "&": a & b, "|": a | b, "^": a ^ b,
            }[e.op]
        except KeyError:
            return None
    return None


def _address_taken_names(fndef: A.FuncDef) -> set[str]:
    """Names of locals/params whose address is taken anywhere in the body."""
    taken: set[str] = set()
    for node in A.walk(fndef.body):
        if isinstance(node, A.Unary) and node.op == "&":
            root = node.operand
            while isinstance(root, (A.Member, A.Index)):
                if isinstance(root, A.Member) and root.arrow:
                    root = None  # address is inside the heap, not a local
                    break
                if isinstance(root, A.Index):
                    base_t = root.base.ctype
                    if base_t is not None and base_t.is_pointer:
                        root = None  # &p[i] reads p's value, not its address
                        break
                root = root.base
            if isinstance(root, A.Ident):
                taken.add(root.name)
    return taken


def lower_unit(unit: A.TranslationUnit, symbols: SymbolTable,
               debug: bool = False, naive_keep_live: bool = False) -> IRProgram:
    """Lower a typechecked translation unit to IR."""
    return Lowerer(unit, symbols, debug, naive_keep_live).lower()
