"""The virtual machine: executes generated machine code against the
simulated memory, with the conservative collector scanning its
registers, stack, and static data as GC-roots.

The VM counts instructions and cycles (per the active machine model) —
those counts are the "running time" of every benchmark table.  An
``gc_interval`` makes collections fire asynchronously every N
instructions, the paper's multi-threaded/asynchronous-collection threat
model under which GC-safety failures become observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gc.collector import Collector, GCCheckError, RootRange
from ..gc.memory import Memory, MemoryFault, PAGE_SIZE, STACK_TOP, STATIC_BASE
from .asm import ALU_OPS, ARG_REGS, BRANCH_OPS, FP, MInst, MProgram, RV, SCRATCH, SP, UNARY_OPS
from .models import MachineModel, SPARC_10

FUNC_BASE = 0x0400_0000
_MASK = 0xFFFFFFFF


class VMError(Exception):
    pass


class ExitProgram(Exception):
    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")


@dataclass
class RunResult:
    exit_code: int
    instructions: int
    cycles: int
    output: str
    collections: int
    checks: int

    def __repr__(self) -> str:
        return (f"RunResult(exit={self.exit_code}, insts={self.instructions}, "
                f"cycles={self.cycles}, collections={self.collections})")


class VM:
    def __init__(self, program: MProgram, model: MachineModel = SPARC_10,
                 collector: Collector | None = None,
                 gc_interval: int = 0, stack_size: int = 1 << 20,
                 max_instructions: int = 500_000_000):
        self.program = program
        self.model = model
        self.gc = collector if collector is not None else Collector()
        self.memory: Memory = self.gc.memory
        self.gc_interval = gc_interval
        self.max_instructions = max_instructions
        self.regs: dict[str, int] = {}
        self.output: list[str] = []
        self.stdin = ""
        self._stdin_pos = 0
        self.instructions = 0
        self.cycles = 0
        self._rand_state = 0x2545F491

        self._link(stack_size)
        self.gc.add_root_provider(self._register_roots)
        self.gc.add_range_provider(self._stack_and_static_ranges)

    # -- linking -----------------------------------------------------------

    def _link(self, stack_size: int) -> None:
        addr = STATIC_BASE
        self.global_addr: dict[str, int] = {}
        for name, gvar in self.program.globals.items():
            align = max(gvar.align, 1)
            addr = (addr + align - 1) // align * align
            gvar.address = addr
            self.global_addr[name] = addr
            self.memory.map_range(addr, max(gvar.size, 1))
            if gvar.init_bytes:
                self.memory.write_bytes(addr, gvar.init_bytes)
            addr += gvar.size
        self.static_end = addr
        for name, gvar in self.program.globals.items():
            for offset, symbol in getattr(gvar, "relocs", []):
                self.memory.store_word(gvar.address + offset,
                                       self.global_addr[symbol])
        # Function entry points get fake, non-heap addresses.
        self.func_addr: dict[str, int] = {}
        self.addr_func: dict[int, str] = {}
        names = list(self.program.functions) + sorted(BUILTINS)
        for i, name in enumerate(names):
            fa = FUNC_BASE + i * 16
            self.func_addr[name] = fa
            self.addr_func[fa] = name
        # Flatten code.
        self.code: dict[str, list[MInst]] = {}
        self.labels: dict[str, dict[str, int]] = {}
        for name, mf in self.program.functions.items():
            self.code[name] = mf.insts
            self.labels[name] = {inst.symbol: i for i, inst in enumerate(mf.insts)
                                 if inst.op == "label"}
        # Stack.
        self.stack_base = STACK_TOP - stack_size
        self.memory.map_range(self.stack_base, stack_size)

    # -- roots -------------------------------------------------------------

    def _register_roots(self):
        return list(self.regs.values())

    def _stack_and_static_ranges(self):
        sp = self.regs.get(SP, STACK_TOP)
        yield RootRange(max(sp, self.stack_base), STACK_TOP, "stack")
        yield RootRange(STATIC_BASE, self.static_end, "static")

    # -- execution ------------------------------------------------------------

    def run(self, entry: str = "main", args: tuple[int, ...] = ()) -> RunResult:
        self.regs = {SP: STACK_TOP - 64, FP: STACK_TOP - 64, RV: 0}
        for reg in ARG_REGS + SCRATCH:
            self.regs[reg] = 0
        for i in range(16):  # allocatable pools (model-sized subsets used)
            self.regs[f"t{i}"] = 0
            self.regs[f"s{i}"] = 0
        for i, a in enumerate(args):
            self.regs[ARG_REGS[i]] = a & _MASK
        start_checks = self.gc.stats.checks_performed
        start_colls = self.gc.stats.collections
        try:
            self._call(entry)
            code = _signed(self.regs[RV])
        except ExitProgram as ex:
            code = ex.code
        return RunResult(code, self.instructions, self.cycles,
                         "".join(self.output),
                         self.gc.stats.collections - start_colls,
                         self.gc.stats.checks_performed - start_checks)

    def _call(self, name: str) -> None:
        """Execute function ``name`` until it returns (recursive VM calls
        mirror the call stack; Python recursion depth bounds C depth)."""
        builtin = BUILTINS.get(name)
        if builtin is not None:
            self._run_builtin(name, builtin)
            return
        insts = self.code.get(name)
        if insts is None:
            raise VMError(f"call to undefined function {name!r}")
        labels = self.labels[name]
        regs = self.regs
        model = self.model
        pc = 0
        n = len(insts)
        while pc < n:
            inst = insts[pc]
            op = inst.op
            self.instructions += 1
            if self.instructions > self.max_instructions:
                raise VMError("instruction budget exceeded (runaway program?)")
            if self.gc_interval and self.instructions % self.gc_interval == 0:
                self.gc.collect()
            taken = False
            if op == "label" or op == "nop" or op == "keepsafe":
                pass
            elif op == "li":
                regs[inst.rd] = (inst.imm or 0) & _MASK
            elif op == "la":
                regs[inst.rd] = self._symbol_addr(inst.symbol)
            elif op == "mov":
                regs[inst.rd] = regs[inst.rs1]
            elif op in ALU_OPS:
                a = regs[inst.rs1]
                b = regs[inst.rs2] if inst.rs2 is not None else (inst.imm or 0)
                regs[inst.rd] = _alu(op, a, b)
            elif op in UNARY_OPS:
                regs[inst.rd] = _unary(op, regs[inst.rs1])
            elif op == "ld":
                addr = regs[inst.rs1] + (regs[inst.rs2] if inst.rs2 else (inst.imm or 0))
                regs[inst.rd] = self._load(addr & _MASK, inst.width, inst.signed)
            elif op == "st":
                addr = regs[inst.rs1] + (regs[inst.rs2] if inst.rs2 else (inst.imm or 0))
                self._store(addr & _MASK, regs[inst.rd], inst.width)
            elif op == "jmp":
                pc = labels[inst.symbol]
                taken = True
            elif op == "bz":
                if regs[inst.rs1] == 0:
                    pc = labels[inst.symbol]
                    taken = True
            elif op == "bnz":
                if regs[inst.rs1] != 0:
                    pc = labels[inst.symbol]
                    taken = True
            elif op == "call":
                self.cycles += model.cycles_for(op)
                self._call(inst.symbol)
                pc += 1
                continue
            elif op == "callr":
                target = self.addr_func.get(regs[inst.rs1])
                if target is None:
                    raise VMError(f"indirect call to non-function address "
                                  f"0x{regs[inst.rs1]:08x}")
                self.cycles += model.cycles_for(op)
                self._call(target)
                pc += 1
                continue
            elif op == "ret":
                self.cycles += model.cycles_for(op)
                return
            else:
                raise VMError(f"cannot execute {op!r}")
            self.cycles += model.cycles_for(op, taken)
            pc += 1
        # Fell off the end: treat as return.

    def _symbol_addr(self, symbol: str) -> int:
        addr = self.global_addr.get(symbol)
        if addr is not None:
            return addr
        fa = self.func_addr.get(symbol)
        if fa is not None:
            return fa
        raise VMError(f"undefined symbol {symbol!r}")

    def _load(self, addr: int, width: int, signed: bool) -> int:
        try:
            return self.memory.load(addr, width, signed) & _MASK
        except MemoryFault:
            raise VMError(f"load fault at 0x{addr:08x}") from None

    def _store(self, addr: int, value: int, width: int) -> None:
        try:
            self.memory.store(addr, value, width)
        except MemoryFault:
            raise VMError(f"store fault at 0x{addr:08x}") from None

    # -- builtins ------------------------------------------------------------

    def _run_builtin(self, name: str, fn) -> None:
        args = [self.regs[r] for r in ARG_REGS]
        value, extra_cycles = fn(self, args)
        self.regs[RV] = value & _MASK
        self.cycles += extra_cycles

    # I/O helpers used by builtins.

    def _emit_out(self, text: str) -> None:
        self.output.append(text)

    def _getchar(self) -> int:
        if self._stdin_pos >= len(self.stdin):
            return 0xFFFFFFFF  # EOF (-1)
        ch = self.stdin[self._stdin_pos]
        self._stdin_pos += 1
        return ord(ch) & 0xFF


def _signed(x: int) -> int:
    x &= _MASK
    return x - (1 << 32) if x >= 1 << 31 else x


def _alu(op: str, a: int, b: int) -> int:
    from .opt.local import eval_bin
    mapping = {"seq": "eq", "sne": "ne", "slt": "lt", "sle": "le",
               "sgt": "gt", "sge": "ge", "sltu": "ult", "sleu": "ule",
               "sgtu": "ugt", "sgeu": "uge", "srl": "shru"}
    sub = mapping.get(op, op)
    result = eval_bin(sub, a & _MASK, b & _MASK)
    if result is None:  # division by zero
        raise VMError(f"integer division by zero in {op}")
    return result & _MASK


def _unary(op: str, a: int) -> int:
    from .opt.local import eval_un
    return eval_un(op, a & _MASK) & _MASK


# ---------------------------------------------------------------------------
# Builtin library ("Standard C libraries were not preprocessed").
# Each builtin: fn(vm, args[6]) -> (return value, extra cycles).
# ---------------------------------------------------------------------------


def _bi_gc_malloc(vm: VM, args):
    addr = vm.gc.malloc(_signed(args[0]))
    return addr, 30


def _bi_gc_malloc_atomic(vm: VM, args):
    addr = vm.gc.malloc_atomic(_signed(args[0]))
    return addr, 30


def _bi_calloc(vm: VM, args):
    addr = vm.gc.malloc(_signed(args[0]) * _signed(args[1]))
    return addr, 30


def _bi_realloc(vm: VM, args):
    return vm.gc.realloc(args[0], _signed(args[1])), 40


def _bi_free(vm: VM, args):
    return 0, 2  # the collector reclaims; free is a no-op


def _bi_gc_collect(vm: VM, args):
    vm.gc.collect()
    return 0, 200


def _bi_same_obj(vm: VM, args):
    return vm.gc.same_obj(args[0], args[1]), vm.model.builtin_check_cycles


def _bi_pre_incr(vm: VM, args):
    return (vm.gc.pre_incr(args[0], _signed(args[1])),
            vm.model.builtin_check_cycles + 2 * vm.model.load_cycles)


def _bi_post_incr(vm: VM, args):
    return (vm.gc.post_incr(args[0], _signed(args[1])),
            vm.model.builtin_check_cycles + 2 * vm.model.load_cycles)


def _bi_gc_base(vm: VM, args):
    return vm.gc.base(args[0]) or 0, vm.model.builtin_check_cycles


def _bi_gc_check_base(vm: VM, args):
    return vm.gc.check_base(args[0]), vm.model.builtin_check_cycles


def _bi_keep_live_identity(vm: VM, args):
    """The naive KEEP_LIVE: returns its first argument.  Being a real
    call, its cost is the call overhead itself (already charged by the
    call instruction) plus a couple of cycles."""
    return args[0], 2


def _bi_putchar(vm: VM, args):
    vm._emit_out(chr(args[0] & 0xFF))
    return args[0], 10


def _bi_puts(vm: VM, args):
    s = vm.memory.read_cstring(args[0])
    vm._emit_out(s + "\n")
    return 0, 10 + len(s)


def _bi_getchar(vm: VM, args):
    return vm._getchar(), 10


def _bi_printf(vm: VM, args):
    fmt = vm.memory.read_cstring(args[0])
    rendered = _format(vm, fmt, args, 1)
    vm._emit_out(rendered)
    return len(rendered), 20 + 2 * len(rendered)


def _bi_strlen(vm: VM, args):
    s = vm.memory.read_cstring(args[0])
    return len(s), 4 + 2 * len(s)


def _bi_strcpy(vm: VM, args):
    s = vm.memory.read_cstring(args[1])
    vm.memory.write_bytes(args[0], s.encode("latin-1") + b"\0")
    return args[0], 4 + 3 * len(s)


def _bi_strcmp(vm: VM, args):
    a = vm.memory.read_cstring(args[0])
    b = vm.memory.read_cstring(args[1])
    result = 0 if a == b else (-1 if a < b else 1)
    return result & _MASK, 4 + 2 * min(len(a), len(b))


def _bi_strncmp(vm: VM, args):
    n = _signed(args[2])
    a = vm.memory.read_cstring(args[0])[:n]
    b = vm.memory.read_cstring(args[1])[:n]
    result = 0 if a == b else (-1 if a < b else 1)
    return result & _MASK, 4 + 2 * min(len(a), len(b))


def _bi_strcat(vm: VM, args):
    a = vm.memory.read_cstring(args[0])
    b = vm.memory.read_cstring(args[1])
    vm.memory.write_bytes(args[0] + len(a), b.encode("latin-1") + b"\0")
    return args[0], 4 + 3 * len(b)


def _bi_strchr(vm: VM, args):
    s = vm.memory.read_cstring(args[0])
    ch = chr(args[1] & 0xFF)
    pos = s.find(ch)
    return (0 if pos < 0 else args[0] + pos), 4 + 2 * (pos if pos >= 0 else len(s))


def _bi_memcpy(vm: VM, args):
    n = _signed(args[2])
    data = vm.memory.read_bytes(args[1], n)
    vm.memory.write_bytes(args[0], data)
    return args[0], 4 + n


def _bi_memset(vm: VM, args):
    n = _signed(args[2])
    vm.memory.fill(args[0], n, args[1] & 0xFF)
    return args[0], 4 + n


def _bi_abs(vm: VM, args):
    return abs(_signed(args[0])) & _MASK, 2


def _bi_atoi(vm: VM, args):
    s = vm.memory.read_cstring(args[0]).strip()
    sign = 1
    if s[:1] in "+-":
        sign = -1 if s[0] == "-" else 1
        s = s[1:]
    digits = ""
    for ch in s:
        if not ch.isdigit():
            break
        digits += ch
    return (sign * int(digits or "0")) & _MASK, 10 + 2 * len(digits)


def _bi_exit(vm: VM, args):
    raise ExitProgram(_signed(args[0]))


def _bi_abort(vm: VM, args):
    raise VMError("abort() called")


def _bi_rand(vm: VM, args):
    vm._rand_state = (vm._rand_state * 1103515245 + 12345) & _MASK
    return (vm._rand_state >> 16) & 0x7FFF, 8


def _bi_srand(vm: VM, args):
    vm._rand_state = args[0] or 1
    return 0, 2


def _format(vm: VM, fmt: str, args, argi: int) -> str:
    out: list[str] = []
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        width = ""
        while i < len(fmt) and (fmt[i].isdigit() or fmt[i] == "-"):
            width += fmt[i]
            i += 1
        spec = fmt[i] if i < len(fmt) else "%"
        i += 1
        if argi >= len(args):
            argi = len(args) - 1
        if spec == "d":
            text = str(_signed(args[argi])); argi += 1
        elif spec == "u":
            text = str(args[argi] & _MASK); argi += 1
        elif spec == "x":
            text = format(args[argi] & _MASK, "x"); argi += 1
        elif spec == "c":
            text = chr(args[argi] & 0xFF); argi += 1
        elif spec == "s":
            text = vm.memory.read_cstring(args[argi]); argi += 1
        elif spec == "%":
            text = "%"
        else:
            text = "%" + spec
        if width:
            try:
                w = int(width)
                text = text.ljust(-w) if w < 0 else text.rjust(w)
            except ValueError:
                pass
        out.append(text)
    return "".join(out)


def _bi_sprintf(vm: VM, args):
    fmt = vm.memory.read_cstring(args[1])
    rendered = _format(vm, fmt, args, 2)
    vm.memory.write_bytes(args[0], rendered.encode("latin-1") + b"\0")
    return len(rendered), 20 + 2 * len(rendered)


def _bi_strncpy(vm: VM, args):
    n = _signed(args[2])
    s = vm.memory.read_cstring(args[1])[:n]
    data = s.encode("latin-1")
    data = data + b"\0" * (n - len(data))
    vm.memory.write_bytes(args[0], data)
    return args[0], 4 + 3 * n


def _bi_strstr(vm: VM, args):
    hay = vm.memory.read_cstring(args[0])
    needle = vm.memory.read_cstring(args[1])
    pos = hay.find(needle)
    return (0 if pos < 0 else args[0] + pos), 6 + 2 * len(hay)


def _ctype_builtin(predicate):
    def bi(vm: VM, args):
        c = args[0] & 0xFF
        return int(predicate(chr(c))), 4
    return bi


def _bi_toupper(vm: VM, args):
    return ord(chr(args[0] & 0xFF).upper()), 4


def _bi_tolower(vm: VM, args):
    return ord(chr(args[0] & 0xFF).lower()), 4


def _bi_assert_fail(vm: VM, args):
    msg = vm.memory.read_cstring(args[0]) if args[0] else "?"
    raise VMError(f"assertion failed: {msg}")


BUILTINS = {
    "GC_malloc": _bi_gc_malloc,
    "GC_malloc_atomic": _bi_gc_malloc_atomic,
    "GC_realloc": _bi_realloc,
    "GC_free": _bi_free,
    "GC_collect": _bi_gc_collect,
    "GC_gcollect": _bi_gc_collect,
    "GC_same_obj": _bi_same_obj,
    "GC_pre_incr": _bi_pre_incr,
    "GC_post_incr": _bi_post_incr,
    "GC_base": _bi_gc_base,
    "GC_check_base": _bi_gc_check_base,
    "KEEP_LIVE": _bi_keep_live_identity,
    "malloc": _bi_gc_malloc,
    "calloc": _bi_calloc,
    "realloc": _bi_realloc,
    "free": _bi_free,
    "putchar": _bi_putchar,
    "puts": _bi_puts,
    "getchar": _bi_getchar,
    "printf": _bi_printf,
    "strlen": _bi_strlen,
    "strcpy": _bi_strcpy,
    "strcmp": _bi_strcmp,
    "strncmp": _bi_strncmp,
    "strcat": _bi_strcat,
    "strchr": _bi_strchr,
    "memcpy": _bi_memcpy,
    "memmove": _bi_memcpy,
    "memset": _bi_memset,
    "abs": _bi_abs,
    "atoi": _bi_atoi,
    "sprintf": _bi_sprintf,
    "strncpy": _bi_strncpy,
    "strstr": _bi_strstr,
    "isdigit": _ctype_builtin(str.isdigit),
    "isalpha": _ctype_builtin(str.isalpha),
    "isalnum": _ctype_builtin(str.isalnum),
    "isspace": _ctype_builtin(str.isspace),
    "isupper": _ctype_builtin(str.isupper),
    "islower": _ctype_builtin(str.islower),
    "toupper": _bi_toupper,
    "tolower": _bi_tolower,
    "exit": _bi_exit,
    "abort": _bi_abort,
    "rand": _bi_rand,
    "srand": _bi_srand,
    "__assert_fail": _bi_assert_fail,
}
