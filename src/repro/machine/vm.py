"""The virtual machine: executes generated machine code against the
simulated memory, with the conservative collector scanning its
registers, stack, and static data as GC-roots.

The VM counts instructions and cycles (per the active machine model) —
those counts are the "running time" of every benchmark table.  An
``gc_interval`` makes collections fire asynchronously every N
instructions, the paper's multi-threaded/asynchronous-collection threat
model under which GC-safety failures become observable.

Execution engine
----------------

The VM is a *threaded-code* interpreter: at link time every
:class:`MInst` is compiled once into a small closure with its operands,
branch targets, cycle cost, and callee already resolved, so the
per-instruction dispatch loop is just ``pc = ops[pc](pc)`` plus the
instruction accounting.  Counts are identical to a naive
decode-per-instruction loop — the benchmark tables depend on exact
cycle and instruction totals — only the Python-level interpretation
overhead changes.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from ..gc.collector import Collector, GCCheckError, RootRange
from ..gc.memory import Memory, MemoryFault, PAGE_SIZE, STACK_TOP, STATIC_BASE
from ..obs import clock as obs_clock
from ..obs import metrics as obs_metrics
from ..obs import runtime as obs_runtime
from ..obs.vmprof import CHECK_BUILTINS, VMProfile
from .asm import ALU_OPS, ARG_REGS, BRANCH_OPS, FP, MInst, MProgram, RV, SCRATCH, SP, UNARY_OPS
from .models import MachineModel, SPARC_10

FUNC_BASE = 0x0400_0000
_MASK = 0xFFFFFFFF

# Sentinel pc returned by ``ret`` closures: always >= len(ops), so the
# execution loop's ``pc < n`` test exits.
_RET_PC = 1 << 30


class VMError(Exception):
    pass


class ExitProgram(Exception):
    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")


@dataclass
class RunResult:
    exit_code: int
    instructions: int
    cycles: int
    output: str
    collections: int
    checks: int

    def __repr__(self) -> str:
        return (f"RunResult(exit={self.exit_code}, insts={self.instructions}, "
                f"cycles={self.cycles}, collections={self.collections})")


def _s32(x: int) -> int:
    """Signed view of an already-masked 32-bit value."""
    return x - 0x1_0000_0000 if x >= 0x8000_0000 else x


def _alu_div(a: int, b: int) -> int:
    sa, sb = _s32(a), _s32(b)
    if sb == 0:
        raise VMError("integer division by zero in div")
    q = abs(sa) // abs(sb)
    return (q if (sa < 0) == (sb < 0) else -q) & _MASK


def _alu_mod(a: int, b: int) -> int:
    sa, sb = _s32(a), _s32(b)
    if sb == 0:
        raise VMError("integer division by zero in mod")
    q = abs(sa) // abs(sb)
    q = q if (sa < 0) == (sb < 0) else -q
    return (sa - q * sb) & _MASK


# Two-operand ALU semantics on masked 32-bit values (C truncating
# division; the same semantics `opt.local.eval_bin` folds with).
ALU_FUNCS = {
    "add": lambda a, b: (a + b) & _MASK,
    "sub": lambda a, b: (a - b) & _MASK,
    "mul": lambda a, b: (a * b) & _MASK,
    "div": _alu_div,
    "mod": _alu_mod,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: (a << (b & 31)) & _MASK,
    "shr": lambda a, b: (_s32(a) >> (b & 31)) & _MASK,
    "srl": lambda a, b: a >> (b & 31),
    "seq": lambda a, b: int(a == b),
    "sne": lambda a, b: int(a != b),
    "slt": lambda a, b: int(_s32(a) < _s32(b)),
    "sle": lambda a, b: int(_s32(a) <= _s32(b)),
    "sgt": lambda a, b: int(_s32(a) > _s32(b)),
    "sge": lambda a, b: int(_s32(a) >= _s32(b)),
    "sltu": lambda a, b: int(a < b),
    "sleu": lambda a, b: int(a <= b),
    "sgtu": lambda a, b: int(a > b),
    "sgeu": lambda a, b: int(a >= b),
}

UNARY_FUNCS = {
    "neg": lambda a: (-a) & _MASK,
    "not": lambda a: int(a == 0),
    "bnot": lambda a: (~a) & _MASK,
    "sext8": lambda a: ((a & 0xFF) - 0x100 if a & 0x80 else a & 0xFF) & _MASK,
    "zext8": lambda a: a & 0xFF,
    "sext16": lambda a: ((a & 0xFFFF) - 0x10000 if a & 0x8000 else a & 0xFFFF) & _MASK,
    "zext16": lambda a: a & 0xFFFF,
}


class VM:
    def __init__(self, program: MProgram, model: MachineModel = SPARC_10,
                 collector: Collector | None = None,
                 gc_interval: int = 0, stack_size: int = 1 << 20,
                 max_instructions: int = 500_000_000,
                 profile: VMProfile | None = None,
                 superinst=None):
        self.program = program
        self.model = model
        # Optional profile-guided fusion plan (machine.superinst
        # .SuperinstPlan); applied at closure-compile time below.
        self.superinst = superinst
        self.superinst_stats = None
        self.gc = collector if collector is not None else Collector()
        # Hot-spot profiling is strictly opt-in: either an explicit
        # profile or the process-wide sink (``repro.obs`` --profile).
        # When None, the compiled closures below are the plain ones —
        # the interpreter fast path is untouched.
        self._profile = (profile if profile is not None
                         else obs_runtime.session_profile())
        self.memory: Memory = self.gc.memory
        self.gc_interval = gc_interval
        self.max_instructions = max_instructions
        # The register file dict is created once and mutated in place:
        # the compiled closures capture it, and the collector's root
        # provider reads it.
        self.regs: dict[str, int] = {}
        self.output: list[str] = []
        self.stdin = ""
        self._stdin_pos = 0
        # [instructions, cycles] — shared mutable cell the compiled
        # closures and execution loop update.
        self._st = [0, 0]
        self._rand_state = 0x2545F491

        self._link(stack_size)
        self._compile_all()
        self.gc.add_root_provider(self._register_roots)
        self.gc.add_range_provider(self._stack_and_static_ranges)

    # Instruction/cycle counters live in ``_st`` for speed; expose the
    # original attribute API.

    @property
    def instructions(self) -> int:
        return self._st[0]

    @instructions.setter
    def instructions(self, value: int) -> None:
        self._st[0] = value

    @property
    def cycles(self) -> int:
        return self._st[1]

    @cycles.setter
    def cycles(self, value: int) -> None:
        self._st[1] = value

    # -- linking -----------------------------------------------------------

    def _link(self, stack_size: int) -> None:
        addr = STATIC_BASE
        self.global_addr: dict[str, int] = {}
        for name, gvar in self.program.globals.items():
            align = max(gvar.align, 1)
            addr = (addr + align - 1) // align * align
            gvar.address = addr
            self.global_addr[name] = addr
            self.memory.map_range(addr, max(gvar.size, 1))
            if gvar.init_bytes:
                self.memory.write_bytes(addr, gvar.init_bytes)
            addr += gvar.size
        self.static_end = addr
        for name, gvar in self.program.globals.items():
            for offset, symbol in getattr(gvar, "relocs", []):
                self.memory.store_word(gvar.address + offset,
                                       self.global_addr[symbol])
        # Function entry points get fake, non-heap addresses.
        self.func_addr: dict[str, int] = {}
        self.addr_func: dict[int, str] = {}
        names = list(self.program.functions) + sorted(BUILTINS)
        for i, name in enumerate(names):
            fa = FUNC_BASE + i * 16
            self.func_addr[name] = fa
            self.addr_func[fa] = name
        # Flatten code.
        self.code: dict[str, list[MInst]] = {}
        self.labels: dict[str, dict[str, int]] = {}
        for name, mf in self.program.functions.items():
            self.code[name] = mf.insts
            self.labels[name] = {inst.symbol: i for i, inst in enumerate(mf.insts)
                                 if inst.op == "label"}
        # Stack.
        self.stack_base = STACK_TOP - stack_size
        self.memory.map_range(self.stack_base, stack_size)

    # -- roots -------------------------------------------------------------

    def _register_roots(self):
        return list(self.regs.values())

    def _stack_and_static_ranges(self):
        sp = self.regs.get(SP, STACK_TOP)
        yield RootRange(max(sp, self.stack_base), STACK_TOP, "stack")
        yield RootRange(STATIC_BASE, self.static_end, "static")

    # -- instruction compilation -------------------------------------------

    def _compile_all(self) -> None:
        self._ops: dict[str, list] = {}
        fuse = None
        plan = self.superinst
        # Fusion is incompatible with the asynchronous-collection
        # trigger: gc_interval must observe every instruction boundary,
        # so a nonzero interval disables superinstructions outright
        # rather than shifting where collections land.
        if plan is not None and plan.blocks and not self.gc_interval:
            from .superinst import SuperinstStats, fuse_function
            self.superinst_stats = SuperinstStats()
            fuse = fuse_function
        for name, insts in self.code.items():
            ops = self._compile_function(insts, self.labels[name])
            fused = ()
            if fuse is not None:
                fused = fuse(self, name, insts, self.labels[name], ops, plan)
                self.superinst_stats.add(name, fused)
            if self._profile is not None:
                ops = self._wrap_profiled(name, insts, ops, fused)
            self._ops[name] = ops

    def _wrap_profiled(self, name: str, insts: list[MInst], ops: list,
                       fused=()) -> list:
        """Wrap each compiled closure with a cycle-attribution shim (see
        ``obs.vmprof`` for the attribution rules).  The shims only read
        the shared counters, so instruction/cycle totals are identical
        with and without profiling."""
        prof = self._profile
        st = self._st
        regs = self.regs
        vm = self
        call_cost = self.model.cycles_for("call")
        callr_cost = self.model.cycles_for("callr")

        # Basic block of instruction i: the latest preceding label.
        block = "entry"
        block_of: list[str] = []
        for inst in insts:
            if inst.op == "label":
                block = inst.symbol
            block_of.append(block)

        fcell = prof.func_cell(name)
        fused_at = {r.start: r for r in fused}
        wrapped: list = []
        for i, (inst, op) in enumerate(zip(insts, ops)):
            bcell = prof.block_cell(name, block_of[i])
            run = fused_at.get(i)
            if run is not None:
                # Superinstruction: measure the counter deltas of the
                # whole run (early exits make both dynamic) and credit
                # them to the run's function and block — the fused
                # closure settles counters exactly as the constituents
                # would, so the profiler invariants survive fusion.
                # The loop counted the leader before dispatch; add it.

                def w(pc, _op=op, _f=fcell, _b=bcell):
                    i0 = st[0]
                    c0 = st[1]
                    npc = _op(pc)
                    dn = st[0] - i0 + 1
                    d = st[1] - c0
                    _f[0] += d
                    _f[1] += dn
                    _b[0] += d
                    _b[1] += dn
                    return npc
            elif inst.op == "call" and inst.symbol not in BUILTINS:
                # Compiled callee runs *inside* op(): attribute only the
                # static call cost here; the callee's shims do the rest.
                ccell = prof.func_cell(inst.symbol)

                def w(pc, _op=op, _f=fcell, _b=bcell, _c=ccell,
                      _cost=call_cost):
                    # Attribute before executing: the callee may unwind
                    # via exit() and never return here.
                    _c[2] += 1
                    _f[0] += _cost
                    _f[1] += 1
                    _b[0] += _cost
                    _b[1] += 1
                    return _op(pc)
            elif inst.op == "callr":
                rs1 = inst.rs1
                site_block = block_of[i]

                def w(pc, _op=op, _f=fcell, _b=bcell, _rs1=rs1, _i=i,
                      _blk=site_block, _cost=callr_cost):
                    callee = vm.addr_func.get(regs[_rs1])
                    if callee is not None and callee not in BUILTINS:
                        prof.func_cell(callee)[2] += 1
                        _f[0] += _cost
                        _f[1] += 1
                        _b[0] += _cost
                        _b[1] += 1
                        return _op(pc)
                    before = st[1]
                    npc = _op(pc)
                    d = st[1] - before
                    if callee in CHECK_BUILTINS:
                        prof.check_cell(name, _blk, _i, callee)[0] += 1
                    _f[0] += d
                    _f[1] += 1
                    _b[0] += d
                    _b[1] += 1
                    return npc
            else:
                # Plain instructions and builtin calls: the measured
                # cycle delta is exactly this instruction's cost (plus
                # the builtin's extra cycles — builtins are leaves).
                site = None
                if inst.op == "call" and inst.symbol in CHECK_BUILTINS:
                    site = prof.check_cell(name, block_of[i], i, inst.symbol)

                def w(pc, _op=op, _f=fcell, _b=bcell, _site=site):
                    before = st[1]
                    npc = _op(pc)
                    d = st[1] - before
                    _f[0] += d
                    _f[1] += 1
                    _b[0] += d
                    _b[1] += 1
                    if _site is not None:
                        _site[0] += 1
                    return npc
            wrapped.append(w)
        return wrapped

    def _compile_function(self, insts: list[MInst], labels: dict[str, int]) -> list:
        """Translate an instruction list into a parallel list of
        closures; closure i executes inst i and returns the next pc."""
        regs = self.regs
        st = self._st
        mem = self.memory
        pages = mem._pages
        model = self.model
        vm = self

        def op_skip(pc):  # label / nop / keepsafe: zero cost
            return pc + 1

        def make_li(rd, val, cost):
            def op(pc):
                regs[rd] = val
                st[1] += cost
                return pc + 1
            return op

        def make_mov(rd, rs1, cost):
            def op(pc):
                regs[rd] = regs[rs1]
                st[1] += cost
                return pc + 1
            return op

        def make_undef_symbol(symbol):
            def op(pc):
                raise VMError(f"undefined symbol {symbol!r}")
            return op

        def make_add_ri(rd, rs1, imm, cost):
            def op(pc):
                regs[rd] = (regs[rs1] + imm) & _MASK
                st[1] += cost
                return pc + 1
            return op

        def make_add_rr(rd, rs1, rs2, cost):
            def op(pc):
                regs[rd] = (regs[rs1] + regs[rs2]) & _MASK
                st[1] += cost
                return pc + 1
            return op

        def make_sub_ri(rd, rs1, imm, cost):
            def op(pc):
                regs[rd] = (regs[rs1] - imm) & _MASK
                st[1] += cost
                return pc + 1
            return op

        def make_sub_rr(rd, rs1, rs2, cost):
            def op(pc):
                regs[rd] = (regs[rs1] - regs[rs2]) & _MASK
                st[1] += cost
                return pc + 1
            return op

        def make_alu_ri(fn, rd, rs1, imm, cost):
            def op(pc):
                regs[rd] = fn(regs[rs1], imm)
                st[1] += cost
                return pc + 1
            return op

        def make_alu_rr(fn, rd, rs1, rs2, cost):
            def op(pc):
                regs[rd] = fn(regs[rs1], regs[rs2])
                st[1] += cost
                return pc + 1
            return op

        def make_unary(fn, rd, rs1, cost):
            def op(pc):
                regs[rd] = fn(regs[rs1])
                st[1] += cost
                return pc + 1
            return op

        def make_ld_word(rd, rs1, rs2, imm, cost):
            # The dominant load: aligned-in-page 4-byte word.  Falls
            # back to Memory.load for page-crossing or unmapped access.
            def op(pc):
                a = (regs[rs1] + (regs[rs2] if rs2 else imm)) & _MASK
                off = a & 0xFFF
                page = pages.get(a >> 12)
                if page is None or off > 0xFFC:
                    try:
                        v = mem.load(a, 4, False)
                    except MemoryFault:
                        raise VMError(f"load fault at 0x{a:08x}") from None
                    regs[rd] = v & _MASK
                else:
                    regs[rd] = int.from_bytes(page[off:off + 4], "little")
                st[1] += cost
                return pc + 1
            return op

        def make_ld(rd, rs1, rs2, imm, width, signed, cost):
            def op(pc):
                a = (regs[rs1] + (regs[rs2] if rs2 else imm)) & _MASK
                off = a & 0xFFF
                page = pages.get(a >> 12)
                if page is None or off + width > 0x1000:
                    try:
                        v = mem.load(a, width, signed)
                    except MemoryFault:
                        raise VMError(f"load fault at 0x{a:08x}") from None
                    regs[rd] = v & _MASK
                else:
                    regs[rd] = int.from_bytes(
                        page[off:off + width], "little", signed=signed) & _MASK
                st[1] += cost
                return pc + 1
            return op

        def make_st(rd, rs1, rs2, imm, width, cost):
            nbytes = width
            vmask = (1 << (8 * width)) - 1
            def op(pc):
                a = (regs[rs1] + (regs[rs2] if rs2 else imm)) & _MASK
                off = a & 0xFFF
                page = pages.get(a >> 12)
                if page is None or off + nbytes > 0x1000:
                    try:
                        mem.store(a, regs[rd], nbytes)
                    except MemoryFault:
                        raise VMError(f"store fault at 0x{a:08x}") from None
                else:
                    page[off:off + nbytes] = (regs[rd] & vmask).to_bytes(nbytes, "little")
                st[1] += cost
                return pc + 1
            return op

        def make_jmp(target, cost):
            def op(pc):
                st[1] += cost
                return target
            return op

        def make_bad_label(symbol):
            def op(pc):
                raise KeyError(symbol)  # matches the decode-loop behavior
            return op

        def make_bz(rs1, target, cost_not, cost_taken):
            def op(pc):
                if regs[rs1] == 0:
                    st[1] += cost_taken
                    return target
                st[1] += cost_not
                return pc + 1
            return op

        def make_bnz(rs1, target, cost_not, cost_taken):
            def op(pc):
                if regs[rs1] != 0:
                    st[1] += cost_taken
                    return target
                st[1] += cost_not
                return pc + 1
            return op

        def make_call_builtin(fn, cost):
            a0, a1, a2, a3, a4, a5 = ARG_REGS
            def op(pc):
                st[1] += cost
                value, extra = fn(vm, [regs[a0], regs[a1], regs[a2],
                                       regs[a3], regs[a4], regs[a5]])
                regs[RV] = value & _MASK
                st[1] += extra
                return pc + 1
            return op

        def make_call_compiled(name, cost):
            # The callee may not be compiled yet (mutual recursion /
            # forward reference); resolve once on first execution.
            cell = []
            def op(pc):
                if not cell:
                    target = vm._ops.get(name)
                    if target is None:
                        raise VMError(f"call to undefined function {name!r}")
                    cell.append(target)
                st[1] += cost
                _exec_loop(vm, cell[0])
                return pc + 1
            return op

        def make_callr(rs1, cost):
            def op(pc):
                fa = regs[rs1]
                name = vm.addr_func.get(fa)
                if name is None:
                    raise VMError(f"indirect call to non-function address "
                                  f"0x{fa:08x}")
                builtin = BUILTINS.get(name)
                st[1] += cost
                if builtin is not None:
                    value, extra = builtin(vm, [regs[r] for r in ARG_REGS])
                    regs[RV] = value & _MASK
                    st[1] += extra
                else:
                    target = vm._ops.get(name)
                    if target is None:
                        raise VMError(f"call to undefined function {name!r}")
                    _exec_loop(vm, target)
                return pc + 1
            return op

        def make_ret(cost):
            def op(pc):
                st[1] += cost
                return _RET_PC
            return op

        ops: list = []
        for inst in insts:
            op = inst.op
            cost = model.cycles_for(op)
            if op == "label" or op == "nop" or op == "keepsafe":
                ops.append(op_skip)
            elif op == "li":
                ops.append(make_li(inst.rd, (inst.imm or 0) & _MASK, cost))
            elif op == "la":
                addr = self.global_addr.get(inst.symbol)
                if addr is None:
                    addr = self.func_addr.get(inst.symbol)
                if addr is None:
                    ops.append(make_undef_symbol(inst.symbol))
                else:
                    ops.append(make_li(inst.rd, addr, cost))
            elif op == "mov":
                ops.append(make_mov(inst.rd, inst.rs1, cost))
            elif op in ALU_OPS:
                if inst.rs2 is not None:
                    if op == "add":
                        ops.append(make_add_rr(inst.rd, inst.rs1, inst.rs2, cost))
                    elif op == "sub":
                        ops.append(make_sub_rr(inst.rd, inst.rs1, inst.rs2, cost))
                    else:
                        ops.append(make_alu_rr(ALU_FUNCS[op], inst.rd,
                                               inst.rs1, inst.rs2, cost))
                else:
                    imm = (inst.imm or 0) & _MASK
                    if op == "add":
                        ops.append(make_add_ri(inst.rd, inst.rs1, imm, cost))
                    elif op == "sub":
                        ops.append(make_sub_ri(inst.rd, inst.rs1, imm, cost))
                    else:
                        ops.append(make_alu_ri(ALU_FUNCS[op], inst.rd,
                                               inst.rs1, imm, cost))
            elif op in UNARY_OPS:
                ops.append(make_unary(UNARY_FUNCS[op], inst.rd, inst.rs1, cost))
            elif op == "ld":
                if inst.width == 4:  # signedness is irrelevant under the 32-bit mask
                    ops.append(make_ld_word(inst.rd, inst.rs1, inst.rs2,
                                            inst.imm or 0, cost))
                else:
                    ops.append(make_ld(inst.rd, inst.rs1, inst.rs2,
                                       inst.imm or 0, inst.width, inst.signed, cost))
            elif op == "st":
                ops.append(make_st(inst.rd, inst.rs1, inst.rs2,
                                   inst.imm or 0, inst.width, cost))
            elif op == "jmp":
                # A taken branch resumes at the instruction *after* the
                # label (the decode loop did pc = label; pc += 1).
                target = labels.get(inst.symbol)
                taken_cost = model.cycles_for(op, taken=True)
                ops.append(make_jmp(target + 1, taken_cost) if target is not None
                           else make_bad_label(inst.symbol))
            elif op == "bz" or op == "bnz":
                target = labels.get(inst.symbol)
                if target is None:
                    ops.append(make_bad_label(inst.symbol))
                else:
                    taken_cost = model.cycles_for(op, taken=True)
                    maker = make_bz if op == "bz" else make_bnz
                    ops.append(maker(inst.rs1, target + 1, cost, taken_cost))
            elif op == "call":
                builtin = BUILTINS.get(inst.symbol)
                if builtin is not None:
                    ops.append(make_call_builtin(builtin, cost))
                else:
                    ops.append(make_call_compiled(inst.symbol, cost))
            elif op == "callr":
                ops.append(make_callr(inst.rs1, cost))
            elif op == "ret":
                ops.append(make_ret(cost))
            else:
                raise VMError(f"cannot execute {op!r}")
        return ops

    # -- execution ------------------------------------------------------------

    def run(self, entry: str = "main", args: tuple[int, ...] = ()) -> RunResult:
        # Compiled closures (and root providers) hold a reference to the
        # register dict: reset it in place.
        # Python recursion mirrors the C call stack; leave generous
        # headroom for deeply recursive workloads.
        limit = sys.getrecursionlimit()
        if limit < 20000:
            sys.setrecursionlimit(20000)
        regs = self.regs
        regs.clear()
        regs[SP] = STACK_TOP - 64
        regs[FP] = STACK_TOP - 64
        regs[RV] = 0
        for reg in ARG_REGS + SCRATCH:
            regs[reg] = 0
        for i in range(16):  # allocatable pools (model-sized subsets used)
            regs[f"t{i}"] = 0
            regs[f"s{i}"] = 0
        for i, a in enumerate(args):
            regs[ARG_REGS[i]] = a & _MASK
        start_checks = self.gc.stats.checks_performed
        start_colls = self.gc.stats.collections
        start_insts, start_cycles = self._st
        if self._profile is not None:
            self._profile.func_cell(entry)[2] += 1
        tracer = obs_runtime.get_tracer()
        # Metrics are sampled at run() granularity only: per-instruction
        # observation would dominate the dispatch loop, and the disabled
        # path must stay one ``is None`` test.
        metrics = obs_runtime.get_metrics()
        t0_ns = obs_clock.now_ns() if metrics is not None else 0
        span = tracer.span("vm.run", entry=entry, model=self.model.name,
                           gc_interval=self.gc_interval)
        with span:
            try:
                self._call(entry)
                code = _signed(regs[RV])
            except ExitProgram as ex:
                code = ex.code
            result = RunResult(code, self._st[0], self._st[1],
                               "".join(self.output),
                               self.gc.stats.collections - start_colls,
                               self.gc.stats.checks_performed - start_checks)
            span.set(exit_code=result.exit_code,
                     instructions=result.instructions - start_insts,
                     cycles=result.cycles - start_cycles,
                     collections=result.collections, checks=result.checks)
        if metrics is not None:
            cycles = result.cycles - start_cycles
            metrics.counter("vm.runs").inc()
            metrics.counter("vm.instructions").inc(
                result.instructions - start_insts)
            metrics.counter("vm.cycles").inc(cycles)
            metrics.counter("vm.collections").inc(result.collections)
            metrics.counter("vm.checks").inc(result.checks)
            metrics.histogram("vm.run_cycles",
                              bounds=obs_metrics.COUNT_BUCKETS,
                              det=True).observe(cycles)
            metrics.histogram("vm.run_wall_ns").observe(
                obs_clock.now_ns() - t0_ns)
        if self._profile is not None:
            self._profile.runs += 1
        return result

    def _call(self, name: str) -> None:
        """Execute function ``name`` until it returns (recursive VM calls
        mirror the call stack; Python recursion depth bounds C depth)."""
        builtin = BUILTINS.get(name)
        if builtin is not None:
            self._run_builtin(name, builtin)
            return
        ops = self._ops.get(name)
        if ops is None:
            raise VMError(f"call to undefined function {name!r}")
        _exec_loop(self, ops)

    def _symbol_addr(self, symbol: str) -> int:
        addr = self.global_addr.get(symbol)
        if addr is not None:
            return addr
        fa = self.func_addr.get(symbol)
        if fa is not None:
            return fa
        raise VMError(f"undefined symbol {symbol!r}")

    def _load(self, addr: int, width: int, signed: bool) -> int:
        try:
            return self.memory.load(addr, width, signed) & _MASK
        except MemoryFault:
            raise VMError(f"load fault at 0x{addr:08x}") from None

    def _store(self, addr: int, value: int, width: int) -> None:
        try:
            self.memory.store(addr, value, width)
        except MemoryFault:
            raise VMError(f"store fault at 0x{addr:08x}") from None

    # -- builtins ------------------------------------------------------------

    def _run_builtin(self, name: str, fn) -> None:
        args = [self.regs[r] for r in ARG_REGS]
        value, extra_cycles = fn(self, args)
        self.regs[RV] = value & _MASK
        self._st[1] += extra_cycles

    # I/O helpers used by builtins.

    def _emit_out(self, text: str) -> None:
        self.output.append(text)

    def _getchar(self) -> int:
        if self._stdin_pos >= len(self.stdin):
            return 0xFFFFFFFF  # EOF (-1)
        ch = self.stdin[self._stdin_pos]
        self._stdin_pos += 1
        return ord(ch) & 0xFF


def _exec_loop(vm: VM, ops: list) -> None:
    """The interpreter inner loop: run one compiled function until it
    returns.  Instruction counting, the instruction budget, and the
    asynchronous-collection trigger live here so every closure stays
    minimal; the accounting matches the original decode loop exactly
    (count first, then collect, then execute)."""
    st = vm._st
    n = len(ops)
    pc = 0
    budget = vm.max_instructions
    interval = vm.gc_interval
    if interval:
        collect = vm.gc.collect
        while pc < n:
            ic = st[0] + 1
            st[0] = ic
            if ic > budget:
                raise VMError("instruction budget exceeded (runaway program?)")
            if not ic % interval:
                collect()
            pc = ops[pc](pc)
    else:
        while pc < n:
            ic = st[0] + 1
            st[0] = ic
            if ic > budget:
                raise VMError("instruction budget exceeded (runaway program?)")
            pc = ops[pc](pc)
    # Fell off the end (or hit ret): treat as return.


def _signed(x: int) -> int:
    x &= _MASK
    return x - (1 << 32) if x >= 1 << 31 else x


# ---------------------------------------------------------------------------
# Builtin library ("Standard C libraries were not preprocessed").
# Each builtin: fn(vm, args[6]) -> (return value, extra cycles).
# ---------------------------------------------------------------------------


def _bi_gc_malloc(vm: VM, args):
    addr = vm.gc.malloc(_signed(args[0]))
    return addr, 30


def _bi_gc_malloc_atomic(vm: VM, args):
    addr = vm.gc.malloc_atomic(_signed(args[0]))
    return addr, 30


def _bi_calloc(vm: VM, args):
    addr = vm.gc.malloc(_signed(args[0]) * _signed(args[1]))
    return addr, 30


def _bi_realloc(vm: VM, args):
    return vm.gc.realloc(args[0], _signed(args[1])), 40


def _bi_free(vm: VM, args):
    return 0, 2  # the collector reclaims; free is a no-op


def _bi_gc_collect(vm: VM, args):
    vm.gc.collect()
    return 0, 200


def _bi_same_obj(vm: VM, args):
    return vm.gc.same_obj(args[0], args[1]), vm.model.builtin_check_cycles


def _bi_pre_incr(vm: VM, args):
    return (vm.gc.pre_incr(args[0], _signed(args[1])),
            vm.model.builtin_check_cycles + 2 * vm.model.load_cycles)


def _bi_post_incr(vm: VM, args):
    return (vm.gc.post_incr(args[0], _signed(args[1])),
            vm.model.builtin_check_cycles + 2 * vm.model.load_cycles)


def _bi_gc_base(vm: VM, args):
    return vm.gc.base(args[0]) or 0, vm.model.builtin_check_cycles


def _bi_gc_check_base(vm: VM, args):
    return vm.gc.check_base(args[0]), vm.model.builtin_check_cycles


def _bi_keep_live_identity(vm: VM, args):
    """The naive KEEP_LIVE: returns its first argument.  Being a real
    call, its cost is the call overhead itself (already charged by the
    call instruction) plus a couple of cycles."""
    return args[0], 2


def _bi_putchar(vm: VM, args):
    vm._emit_out(chr(args[0] & 0xFF))
    return args[0], 10


def _bi_puts(vm: VM, args):
    s = vm.memory.read_cstring(args[0])
    vm._emit_out(s + "\n")
    return 0, 10 + len(s)


def _bi_getchar(vm: VM, args):
    return vm._getchar(), 10


def _bi_printf(vm: VM, args):
    fmt = vm.memory.read_cstring(args[0])
    rendered = _format(vm, fmt, args, 1)
    vm._emit_out(rendered)
    return len(rendered), 20 + 2 * len(rendered)


def _bi_strlen(vm: VM, args):
    s = vm.memory.read_cstring(args[0])
    return len(s), 4 + 2 * len(s)


def _bi_strcpy(vm: VM, args):
    s = vm.memory.read_cstring(args[1])
    vm.memory.write_bytes(args[0], s.encode("latin-1") + b"\0")
    return args[0], 4 + 3 * len(s)


def _bi_strcmp(vm: VM, args):
    a = vm.memory.read_cstring(args[0])
    b = vm.memory.read_cstring(args[1])
    result = 0 if a == b else (-1 if a < b else 1)
    return result & _MASK, 4 + 2 * min(len(a), len(b))


def _bi_strncmp(vm: VM, args):
    n = _signed(args[2])
    a = vm.memory.read_cstring(args[0])[:n]
    b = vm.memory.read_cstring(args[1])[:n]
    result = 0 if a == b else (-1 if a < b else 1)
    return result & _MASK, 4 + 2 * min(len(a), len(b))


def _bi_strcat(vm: VM, args):
    a = vm.memory.read_cstring(args[0])
    b = vm.memory.read_cstring(args[1])
    vm.memory.write_bytes(args[0] + len(a), b.encode("latin-1") + b"\0")
    return args[0], 4 + 3 * len(b)


def _bi_strchr(vm: VM, args):
    s = vm.memory.read_cstring(args[0])
    ch = chr(args[1] & 0xFF)
    pos = s.find(ch)
    return (0 if pos < 0 else args[0] + pos), 4 + 2 * (pos if pos >= 0 else len(s))


def _bi_memcpy(vm: VM, args):
    n = _signed(args[2])
    data = vm.memory.read_bytes(args[1], n)
    vm.memory.write_bytes(args[0], data)
    return args[0], 4 + n


def _bi_memset(vm: VM, args):
    n = _signed(args[2])
    vm.memory.fill(args[0], n, args[1] & 0xFF)
    return args[0], 4 + n


def _bi_abs(vm: VM, args):
    return abs(_signed(args[0])) & _MASK, 2


def _bi_atoi(vm: VM, args):
    s = vm.memory.read_cstring(args[0]).strip()
    sign = 1
    if s[:1] in "+-":
        sign = -1 if s[0] == "-" else 1
        s = s[1:]
    digits = ""
    for ch in s:
        if not ch.isdigit():
            break
        digits += ch
    return (sign * int(digits or "0")) & _MASK, 10 + 2 * len(digits)


def _bi_exit(vm: VM, args):
    raise ExitProgram(_signed(args[0]))


def _bi_abort(vm: VM, args):
    raise VMError("abort() called")


def _bi_rand(vm: VM, args):
    vm._rand_state = (vm._rand_state * 1103515245 + 12345) & _MASK
    return (vm._rand_state >> 16) & 0x7FFF, 8


def _bi_srand(vm: VM, args):
    vm._rand_state = args[0] or 1
    return 0, 2


def _format(vm: VM, fmt: str, args, argi: int) -> str:
    out: list[str] = []
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        width = ""
        while i < len(fmt) and (fmt[i].isdigit() or fmt[i] == "-"):
            width += fmt[i]
            i += 1
        spec = fmt[i] if i < len(fmt) else "%"
        i += 1
        if argi >= len(args):
            argi = len(args) - 1
        if spec == "d":
            text = str(_signed(args[argi])); argi += 1
        elif spec == "u":
            text = str(args[argi] & _MASK); argi += 1
        elif spec == "x":
            text = format(args[argi] & _MASK, "x"); argi += 1
        elif spec == "c":
            text = chr(args[argi] & 0xFF); argi += 1
        elif spec == "s":
            text = vm.memory.read_cstring(args[argi]); argi += 1
        elif spec == "%":
            text = "%"
        else:
            text = "%" + spec
        if width:
            try:
                w = int(width)
                text = text.ljust(-w) if w < 0 else text.rjust(w)
            except ValueError:
                pass
        out.append(text)
    return "".join(out)


def _bi_sprintf(vm: VM, args):
    fmt = vm.memory.read_cstring(args[1])
    rendered = _format(vm, fmt, args, 2)
    vm.memory.write_bytes(args[0], rendered.encode("latin-1") + b"\0")
    return len(rendered), 20 + 2 * len(rendered)


def _bi_strncpy(vm: VM, args):
    n = _signed(args[2])
    s = vm.memory.read_cstring(args[1])[:n]
    data = s.encode("latin-1")
    data = data + b"\0" * (n - len(data))
    vm.memory.write_bytes(args[0], data)
    return args[0], 4 + 3 * n


def _bi_strstr(vm: VM, args):
    hay = vm.memory.read_cstring(args[0])
    needle = vm.memory.read_cstring(args[1])
    pos = hay.find(needle)
    return (0 if pos < 0 else args[0] + pos), 6 + 2 * len(hay)


def _ctype_builtin(predicate):
    def bi(vm: VM, args):
        c = args[0] & 0xFF
        return int(predicate(chr(c))), 4
    return bi


def _bi_toupper(vm: VM, args):
    return ord(chr(args[0] & 0xFF).upper()), 4


def _bi_tolower(vm: VM, args):
    return ord(chr(args[0] & 0xFF).lower()), 4


def _bi_assert_fail(vm: VM, args):
    msg = vm.memory.read_cstring(args[0]) if args[0] else "?"
    raise VMError(f"assertion failed: {msg}")


BUILTINS = {
    "GC_malloc": _bi_gc_malloc,
    "GC_malloc_atomic": _bi_gc_malloc_atomic,
    "GC_realloc": _bi_realloc,
    "GC_free": _bi_free,
    "GC_collect": _bi_gc_collect,
    "GC_gcollect": _bi_gc_collect,
    "GC_same_obj": _bi_same_obj,
    "GC_pre_incr": _bi_pre_incr,
    "GC_post_incr": _bi_post_incr,
    "GC_base": _bi_gc_base,
    "GC_check_base": _bi_gc_check_base,
    "KEEP_LIVE": _bi_keep_live_identity,
    "malloc": _bi_gc_malloc,
    "calloc": _bi_calloc,
    "realloc": _bi_realloc,
    "free": _bi_free,
    "putchar": _bi_putchar,
    "puts": _bi_puts,
    "getchar": _bi_getchar,
    "printf": _bi_printf,
    "strlen": _bi_strlen,
    "strcpy": _bi_strcpy,
    "strcmp": _bi_strcmp,
    "strncmp": _bi_strncmp,
    "strcat": _bi_strcat,
    "strchr": _bi_strchr,
    "memcpy": _bi_memcpy,
    "memmove": _bi_memcpy,
    "memset": _bi_memset,
    "abs": _bi_abs,
    "atoi": _bi_atoi,
    "sprintf": _bi_sprintf,
    "strncpy": _bi_strncpy,
    "strstr": _bi_strstr,
    "isdigit": _ctype_builtin(str.isdigit),
    "isalpha": _ctype_builtin(str.isalpha),
    "isalnum": _ctype_builtin(str.isalnum),
    "isspace": _ctype_builtin(str.isspace),
    "isupper": _ctype_builtin(str.isupper),
    "islower": _ctype_builtin(str.islower),
    "toupper": _bi_toupper,
    "tolower": _bi_tolower,
    "exit": _bi_exit,
    "abort": _bi_abort,
    "rand": _bi_rand,
    "srand": _bi_srand,
    "__assert_fail": _bi_assert_fail,
}
