"""Assembly text parser: the inverse of ``MInst.render``.

The paper's postprocessor "operates on the SPARC assembly code level" —
a standalone filter between compiler and assembler.  This module lets
ours be used the same way: render a program to text, hand the text to
any tool (or a person), parse it back, postprocess, re-render.

Grammar is exactly what :meth:`repro.machine.asm.MInst.render` emits::

    name:  ! frame=N          function header
    label:                    label line
        op operands...        one instruction
        !keepsafe r1, r2      KEEP_LIVE marker
"""

from __future__ import annotations

import re

from .asm import ALU_OPS, MFunc, MInst, MProgram, UNARY_OPS

_FUNC_RE = re.compile(r"^(\w+):\s*!\s*frame=(\d+)\s*$")
_LABEL_RE = re.compile(r"^([.\w][\w.$]*):\s*$")
_MEM_RE = re.compile(r"^\[(\w+)\+(-?\w+)\]$")

_LD_SUFFIX = {"b": (1, True), "bu": (1, False), "h": (2, True),
              "hu": (2, False), "w": (4, True)}


class AsmParseError(Exception):
    def __init__(self, message: str, line_no: int, line: str):
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


def _split_operands(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def _reg_or_imm(token: str) -> tuple[str | None, int | None]:
    """Classify an operand as a register name or immediate."""
    try:
        return None, int(token, 0)
    except ValueError:
        return token, None


def parse_instruction(line: str, line_no: int = 0) -> MInst:
    text = line.strip()
    label = _LABEL_RE.match(text)
    if label is not None:
        return MInst("label", symbol=label.group(1))
    if text.startswith("!keepsafe"):
        ops = _split_operands(text[len("!keepsafe"):])
        if len(ops) != 2:
            raise AsmParseError("keepsafe needs two registers", line_no, line)
        return MInst("keepsafe", rs1=ops[0], rs2=ops[1])
    parts = text.split(None, 1)
    op = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    ops = _split_operands(rest)

    if op == "nop":
        return MInst("nop")
    if op == "ret":
        return MInst("ret")
    if op == "li":
        return MInst("li", rd=ops[0], imm=int(ops[1], 0))
    if op == "la":
        return MInst("la", rd=ops[0], symbol=ops[1])
    if op == "mov":
        return MInst("mov", rd=ops[0], rs1=ops[1])
    if op in ALU_OPS:
        reg, imm = _reg_or_imm(ops[2])
        return MInst(op, rd=ops[0], rs1=ops[1], rs2=reg, imm=imm)
    if op in UNARY_OPS:
        return MInst(op, rd=ops[0], rs1=ops[1])
    if op.startswith("ld") or op.startswith("st"):
        kind = op[:2]
        suffix = op[2:]
        if suffix not in _LD_SUFFIX:
            raise AsmParseError(f"bad width suffix {suffix!r}", line_no, line)
        width, signed = _LD_SUFFIX[suffix]
        mem = _MEM_RE.match(ops[1])
        if mem is None:
            raise AsmParseError("bad memory operand", line_no, line)
        base, offset = mem.group(1), mem.group(2)
        reg, imm = _reg_or_imm(offset)
        return MInst(kind, rd=ops[0], rs1=base, rs2=reg, imm=imm,
                     width=width, signed=signed)
    if op == "jmp":
        return MInst("jmp", symbol=ops[0])
    if op in ("bz", "bnz"):
        return MInst(op, rs1=ops[0], symbol=ops[1])
    if op == "call":
        return MInst("call", symbol=ops[0], nargs=int(ops[1]))
    if op == "callr":
        return MInst("callr", rs1=ops[0], nargs=int(ops[1]))
    raise AsmParseError(f"unknown mnemonic {op!r}", line_no, line)


def parse_function(text: str) -> MFunc:
    funcs = parse_program_text(text).functions
    if len(funcs) != 1:
        raise ValueError(f"expected exactly one function, got {len(funcs)}")
    return next(iter(funcs.values()))


def parse_program_text(text: str) -> MProgram:
    """Parse rendered assembly back into an MProgram (code only; globals
    are carried separately)."""
    prog = MProgram()
    current: MFunc | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line.strip():
            continue
        header = _FUNC_RE.match(line.strip())
        if header is not None:
            current = MFunc(header.group(1), [], int(header.group(2)))
            prog.functions[current.name] = current
            continue
        if current is None:
            raise AsmParseError("instruction before function header",
                                line_no, line)
        current.insts.append(parse_instruction(line, line_no))
    return prog


def round_trip(prog: MProgram) -> MProgram:
    """render -> parse; the result must execute identically (tested)."""
    parsed = parse_program_text(prog.render())
    parsed.globals = dict(prog.globals)
    return parsed
