"""Loop-invariant code motion (constants and address materialization).

Conservative by construction: only single-definition ``const``/``la``/
``frame`` instructions are hoisted out of natural loops (a label with a
later backward branch to it).  Those instructions are pure, their
operands are immediate, and a single definition dominating all uses
stays dominating when moved to the loop preheader, so no dataflow
analysis is needed.

This keeps the ``-O`` baseline honest: without it, every pointer-scaling
constant would be re-materialized on each iteration and the KEEP_LIVE
overhead would look artificially small.
"""

from __future__ import annotations

from ..ir import Inst, IRFunc, Vreg

_HOISTABLE = frozenset(("const", "la", "frame"))


def run(fn: IRFunc) -> bool:
    changed = False
    while _hoist_once(fn):
        changed = True
    return changed


def _hoist_once(fn: IRFunc) -> bool:
    label_at = {inst.symbol: i for i, inst in enumerate(fn.insts) if inst.op == "label"}
    # Find loop regions: label index -> furthest backward-branch index.
    regions: dict[int, int] = {}
    for j, inst in enumerate(fn.insts):
        if inst.op in ("jmp", "bz", "bnz"):
            i = label_at.get(inst.symbol, -1)
            if 0 <= i < j:
                regions[i] = max(regions.get(i, j), j)
    if not regions:
        return False

    def_counts: dict[Vreg, int] = {}
    for inst in fn.insts:
        if inst.dst is not None:
            def_counts[inst.dst] = def_counts.get(inst.dst, 0) + 1

    for start in sorted(regions):
        end = regions[start]
        for k in range(start + 1, end + 1):
            inst = fn.insts[k]
            if (inst.op in _HOISTABLE and inst.dst is not None
                    and def_counts.get(inst.dst, 0) == 1):
                del fn.insts[k]
                fn.insts.insert(start, inst)
                return True
    return False
