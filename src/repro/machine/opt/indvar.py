"""Induction-variable strength reduction.

The paper's second named source of disguised pointers: "Similar problems
may occur as a result of induction variable optimizations".  This pass
turns per-iteration address computations

    loop:  t1 = shl i, k        ; or t1 = mul i, 2^k
           t2 = add a, t1
           ... [t2] ...
           i  = add i, c

into a walking pointer

    pre:   pv = a + (i << k)
    loop:  t2 = pv
           ... [t2] ...
           i  = add i, c
           pv = pv + (c << k)

With a collector that recognizes interior pointers (our default, and the
paper's framework), the walking pointer keeps the object reachable, so
the transformation is GC-safe by itself; its role here is to make the
``-O`` baseline more realistic and to interact with KEEP_LIVE (an
annotated address flows through the ``keep`` barrier, whose operand is
not an ``add``, so annotated code is simply not transformed — the
overhead the postprocessor then recovers).

The pass is *not* in the default pipeline (the calibrated tables in
EXPERIMENTS.md were measured without it); enable it with
``CompileConfig(passes=(..., "indvar", ...))``.  The ablation benchmark
measures its effect.

Constraints (all conservative):
* natural loop = backward branch to a label, with no branches from
  outside the region targeting labels inside it;
* the induction variable has exactly one definition in the region:
  ``i = add i, c`` with ``c`` a loop-invariant constant;
* the address pattern's base ``a`` and scale are loop-invariant, the
  scaled temp is single-use, and the pattern sits in the region.
"""

from __future__ import annotations

from ..ir import Inst, IRFunc, Vreg


def run(fn: IRFunc) -> bool:
    changed = False
    while _reduce_one(fn):
        changed = True
    return changed


def _loop_regions(fn: IRFunc) -> list[tuple[int, int]]:
    label_at = {inst.symbol: i for i, inst in enumerate(fn.insts)
                if inst.op == "label"}
    regions: dict[int, int] = {}
    for j, inst in enumerate(fn.insts):
        if inst.op in ("jmp", "bz", "bnz"):
            i = label_at.get(inst.symbol, -1)
            if 0 <= i < j:
                regions[i] = max(regions.get(i, j), j)
    out = []
    for start, end in sorted(regions.items()):
        labels_inside = {fn.insts[k].symbol for k in range(start, end + 1)
                         if fn.insts[k].op == "label"}
        entered_sideways = any(
            inst.op in ("jmp", "bz", "bnz") and inst.symbol in labels_inside
            for k, inst in enumerate(fn.insts)
            if k < start or k > end)
        if not entered_sideways:
            out.append((start, end))
    return out


def _single_defs(fn: IRFunc) -> dict[Vreg, Inst]:
    counts: dict[Vreg, int] = {}
    first: dict[Vreg, Inst] = {}
    for inst in fn.insts:
        if inst.dst is not None:
            counts[inst.dst] = counts.get(inst.dst, 0) + 1
            first.setdefault(inst.dst, inst)
    return {v: first[v] for v, n in counts.items() if n == 1}


def _reduce_one(fn: IRFunc) -> bool:
    single = _single_defs(fn)

    def const_of(v: Vreg) -> int | None:
        inst = single.get(v)
        if inst is not None and inst.op == "const":
            return inst.imm
        return None

    for start, end in _loop_regions(fn):
        region = range(start, end + 1)
        defs_in_region: dict[Vreg, list[int]] = {}
        for k in region:
            dst = fn.insts[k].dst
            if dst is not None:
                defs_in_region.setdefault(dst, []).append(k)

        def invariant(v: Vreg) -> bool:
            return v not in defs_in_region

        # Find basic induction variables: i defined once as i = add i, c.
        for iv, def_sites in defs_in_region.items():
            if len(def_sites) != 1:
                continue
            inc_idx = def_sites[0]
            inc = fn.insts[inc_idx]
            if inc.op != "bin" or inc.subop != "add" or iv not in inc.args:
                continue
            other = inc.args[1] if inc.args[0] == iv else inc.args[0]
            step = const_of(other)
            if step is None or not invariant(other):
                continue
            if _reduce_address_of(fn, start, end, iv, step, inc_idx,
                                  defs_in_region, single, const_of):
                return True
    return False


def _reduce_address_of(fn, start, end, iv, step, inc_idx, defs_in_region,
                       single, const_of) -> bool:
    """Find and rewrite one scaled-address pattern of ``iv``."""
    uses: dict[Vreg, int] = {}
    for inst in fn.insts:
        for a in inst.args:
            uses[a] = uses.get(a, 0) + 1

    for k in range(start, end + 1):
        scaled = fn.insts[k]
        if scaled.op != "bin" or scaled.subop not in ("shl", "mul"):
            continue
        if not scaled.args or scaled.args[0] != iv:
            continue
        factor_v = scaled.args[1]
        factor = const_of(factor_v)
        if factor is None:
            continue
        stride = (step << factor) if scaled.subop == "shl" else step * factor
        t1 = scaled.dst
        if t1 is None or uses.get(t1, 0) != 1 or len(defs_in_region.get(t1, [])) != 1:
            continue
        # The add that forms the address.
        addr_idx = None
        for m in range(k + 1, end + 1):
            inst = fn.insts[m]
            if inst.op == "bin" and inst.subop == "add" and t1 in inst.args:
                addr_idx = m
                break
            if inst.dst == t1:
                break
        if addr_idx is None:
            continue
        addr = fn.insts[addr_idx]
        base = addr.args[1] if addr.args[0] == t1 else addr.args[0]
        if base in defs_in_region or addr.dst is None:
            continue
        t2 = addr.dst
        if len(defs_in_region.get(t2, [])) != 1:
            continue
        # t2 must only be used inside the region (its value is not
        # maintained after the loop).
        for n, inst in enumerate(fn.insts):
            if t2 in inst.args and not (start <= n <= end):
                return False
        # The pattern must be computed on the same side of the increment
        # every iteration; require it strictly before the increment.
        if not (k < inc_idx and addr_idx < inc_idx):
            continue

        pv = fn.new_vreg("indvar")
        pre_t = fn.new_vreg()
        pre_f = fn.new_vreg()
        stride_v = fn.new_vreg()
        pre = [
            Inst("const", dst=pre_f, imm=factor),
            Inst("bin", dst=pre_t, subop=scaled.subop, args=(iv, pre_f)),
            Inst("bin", dst=pv, subop="add", args=(base, pre_t)),
            Inst("const", dst=stride_v, imm=stride & 0xFFFFFFFF),
        ]
        # Rewrite inside the region first (indices shift after insert).
        fn.insts[addr_idx] = Inst("mov", dst=t2, args=(pv,))
        fn.insts[k] = Inst("comment", text="indvar: scaled index removed")
        bump = Inst("bin", dst=pv, subop="add", args=(pv, stride_v))
        fn.insts.insert(inc_idx + 1, bump)
        fn.insts[start:start] = pre
        return True
    return False
