"""Strength reduction: multiplies and divides by powers of two become
shifts.  Pointer scaling (``p + i*4``) makes this the single most common
arithmetic pattern in pointer-intensive code, so the paper's machines
all do it; for us it keeps the ``-O`` baseline honest.
"""

from __future__ import annotations

from ..ir import Inst, IRFunc, Vreg


def run(fn: IRFunc) -> bool:
    """Rewrite mul/div-by-2^k into shifts; returns True if changed."""
    # Const values per vreg, valid only when the vreg has exactly one
    # definition in the whole function (a safe, simple approximation —
    # lowering emits single-def consts).
    defs: dict[Vreg, list[Inst]] = {}
    for inst in fn.insts:
        if inst.dst is not None:
            defs.setdefault(inst.dst, []).append(inst)
    const_of: dict[Vreg, int] = {}
    for vreg, insts in defs.items():
        if len(insts) == 1 and insts[0].op == "const":
            const_of[vreg] = insts[0].imm or 0

    changed = False
    out: list[Inst] = []
    for inst in fn.insts:
        if inst.op == "bin" and inst.subop == "mul" and len(inst.args) == 2:
            a, b = inst.args
            cb = const_of.get(b)
            if cb is None and const_of.get(a) is not None:
                a, b, cb = b, a, const_of.get(a)
            if cb is not None and cb > 1 and (cb & (cb - 1)) == 0:
                shift = cb.bit_length() - 1
                amount = fn.new_vreg()
                out.append(Inst("const", dst=amount, imm=shift))
                out.append(Inst("bin", dst=inst.dst, subop="shl", args=(a, amount)))
                changed = True
                continue
        # Signed division by 2^k is not a plain shift for negative
        # dividends; keep div (the VM charges full div cost).
        out.append(inst)
    fn.insts = out
    return changed
