"""The optimizer pipeline.

Order matters: local value numbering first (feeds everything), loop-
invariant hoisting, strength reduction, the address-reassociation
"disguising" pass, then dead-code elimination to sweep up, iterated to a
fixpoint.

When tracing is enabled (``repro.obs``), every pass invocation emits an
``opt.<pass>`` span carrying the IR-size delta and a rewrite count —
the number of instruction slots the pass touched, computed by
fingerprinting the instruction list before/after (passes mutate
``Inst`` objects in place, so identity alone cannot detect rewrites).
"""

from __future__ import annotations

from . import addrfold, deadcode, indvar, licm, local, strength
from ..ir import IRFunc, Inst
from ...obs import runtime as obs_runtime

DEFAULT_PASSES = ("local", "licm", "strength", "addrfold", "deadcode")

_PASS_FNS = {
    "local": local.run,
    "licm": licm.run,
    "strength": strength.run,
    "addrfold": addrfold.run,
    "indvar": indvar.run,  # not in DEFAULT_PASSES; see opt/indvar.py
    "deadcode": deadcode.run,
}


def _fingerprint(inst: Inst) -> tuple:
    return (inst.op, inst.dst, inst.args, inst.imm, inst.subop,
            inst.width, inst.signed, inst.symbol)


def _count_rewrites(before: list[tuple], after: list[tuple]) -> int:
    """Instruction slots changed between two fingerprint lists: strip
    the common prefix and suffix, count the differing middle (covers
    in-place rewrites, insertions, and deletions alike)."""
    lo = 0
    hi_b, hi_a = len(before), len(after)
    while lo < hi_b and lo < hi_a and before[lo] == after[lo]:
        lo += 1
    while hi_b > lo and hi_a > lo and before[hi_b - 1] == after[hi_a - 1]:
        hi_b -= 1
        hi_a -= 1
    return max(hi_b - lo, hi_a - lo)


def optimize(fn: IRFunc, passes: tuple[str, ...] = DEFAULT_PASSES,
             max_rounds: int = 4) -> None:
    """Run the pass pipeline over ``fn`` until a fixpoint (bounded)."""
    tracer = obs_runtime.get_tracer()
    if not tracer.enabled:
        for _ in range(max_rounds):
            changed = False
            for name in passes:
                changed |= _PASS_FNS[name](fn)
            if not changed:
                return
        return
    with tracer.span("opt.function", function=fn.name,
                     insts_in=len(fn.insts)) as fsp:
        rounds = 0
        for rnd in range(max_rounds):
            rounds = rnd + 1
            changed = False
            for name in passes:
                before = [_fingerprint(i) for i in fn.insts]
                with tracer.span(f"opt.{name}", function=fn.name,
                                 round=rnd) as sp:
                    pass_changed = _PASS_FNS[name](fn)
                    after = [_fingerprint(i) for i in fn.insts]
                    sp.set(changed=bool(pass_changed),
                           insts_before=len(before), insts_after=len(after),
                           insts_delta=len(after) - len(before),
                           rewrites=_count_rewrites(before, after))
                changed |= pass_changed
            if not changed:
                break
        fsp.set(insts_out=len(fn.insts), rounds=rounds)
