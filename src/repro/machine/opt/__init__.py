"""The optimizer pipeline.

Order matters: local value numbering first (feeds everything), loop-
invariant hoisting, strength reduction, the address-reassociation
"disguising" pass, then dead-code elimination to sweep up, iterated to a
fixpoint.
"""

from . import addrfold, deadcode, indvar, licm, local, strength
from ..ir import IRFunc

DEFAULT_PASSES = ("local", "licm", "strength", "addrfold", "deadcode")

_PASS_FNS = {
    "local": local.run,
    "licm": licm.run,
    "strength": strength.run,
    "addrfold": addrfold.run,
    "indvar": indvar.run,  # not in DEFAULT_PASSES; see opt/indvar.py
    "deadcode": deadcode.run,
}


def optimize(fn: IRFunc, passes: tuple[str, ...] = DEFAULT_PASSES,
             max_rounds: int = 4) -> None:
    """Run the pass pipeline over ``fn`` until a fixpoint (bounded)."""
    for _ in range(max_rounds):
        changed = False
        for name in passes:
            changed |= _PASS_FNS[name](fn)
        if not changed:
            return
