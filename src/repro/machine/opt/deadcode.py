"""Global dead-code elimination over virtual registers.

Removes pure instructions whose destination is never used (iterating to
a fixpoint so chains of dead computations disappear).  ``keep`` is never
removed: it is the optimization barrier whose entire purpose is to
survive passes like this one.
"""

from __future__ import annotations

from ..ir import Inst, IRFunc, Vreg

_PURE_OPS = frozenset("const mov un bin la frame load".split())


def run(fn: IRFunc) -> bool:
    changed = False
    while True:
        used: set[Vreg] = set()
        for inst in fn.insts:
            used.update(inst.args)
        dead = [
            i for i, inst in enumerate(fn.insts)
            if inst.op in _PURE_OPS and inst.dst is not None
            and inst.dst not in used
        ]
        if not dead:
            return changed
        for i in reversed(dead):
            del fn.insts[i]
        changed = True
